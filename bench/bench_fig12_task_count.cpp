// Paper Fig. 12: task completion ratio versus the number of offered tasks
// (30-270), single-rooted tree, default deadline/size.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig12_task_count", "Fig. 12: task completion vs task count");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 12", "varying offered task count 30-270", o);

  std::vector<exp::SweepPoint> points;
  for (int tasks = 30; tasks <= 270; tasks += 30) {
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.task_count = tasks;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(tasks), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);
  std::cout << "Task completion ratio\n";
  exp::print_metric_table(std::cout, "tasks", points, exp::all_schedulers(), result,
                          bench::task_ratio);
  bench::finish_sweep_bench(cli, o, "fig12_task_count", "task_count", points, exp::all_schedulers(),
                           result);
  return 0;
}
