// Paper Fig. 10: flow completion ratio versus mean flow size when every task
// has exactly one flow (task == flow), which isolates the near-optimal
// flow-level behaviour of TAPS. The paper uses 36 000 single-flow tasks; the
// scaled preset keeps the same tasks-per-host density.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig10_flowratio",
                "Fig. 10: flow completion ratio vs size, single-flow tasks");
  bench::add_common_options(cli);
  cli.add_option("tasks", "single-flow task count (0 = preset: 36000 full / 240 scaled)", "0");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 10", "flow completion ratio, single-flow tasks, varying size", o);

  int tasks = static_cast<int>(cli.integer("tasks"));
  if (tasks == 0) tasks = o.full_scale ? 36'000 : 240;

  std::vector<exp::SweepPoint> points;
  for (int kb = 60; kb <= 300; kb += 30) {
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.single_flow_tasks = true;
    s.workload.task_count = tasks;
    s.workload.arrival_rate = tasks * 10.0;  // keep the burst window ~100 ms
    s.workload.mean_flow_size = kb * 1000.0;
    s.workload.flow_size_stddev = kb * 250.0;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(kb), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);
  std::cout << "Flow completion ratio (task == flow: identical to task ratio here)\n";
  exp::print_metric_table(std::cout, "size-KB", points, exp::all_schedulers(), result,
                          bench::flow_ratio);
  bench::finish_sweep_bench(cli, o, "fig10_flowratio", "size_kb", points, exp::all_schedulers(),
                           result);
  return 0;
}
