// Paper Fig. 3: the global-scheduling motivation. Four flows on a 5-switch
// topology; PDQ with bounded switch flow lists cannot use the idle
// bottleneck links in the first time unit and loses f4; TAPS's global slice
// allocation fits all four (f4 split across (0,1) and (2,3), Fig. 3(b)).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/taps_scheduler.hpp"
#include "metrics/report.hpp"
#include "sched/pdq.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace {

using namespace taps;

struct Fig3Topo {
  std::unique_ptr<topo::GenericTopology> topology;
  topo::NodeId h1, h2, h3, h4;
};

Fig3Topo make_topo() {
  topo::Graph g;
  const auto s1 = g.add_node(topo::NodeKind::kTor, "S1");
  const auto s2 = g.add_node(topo::NodeKind::kTor, "S2");
  const auto s3 = g.add_node(topo::NodeKind::kTor, "S3");
  const auto s4 = g.add_node(topo::NodeKind::kTor, "S4");
  const auto s5 = g.add_node(topo::NodeKind::kAggregation, "S5");
  Fig3Topo t;
  t.h1 = g.add_node(topo::NodeKind::kHost, "1");
  t.h2 = g.add_node(topo::NodeKind::kHost, "2");
  t.h3 = g.add_node(topo::NodeKind::kHost, "3");
  t.h4 = g.add_node(topo::NodeKind::kHost, "4");
  g.add_duplex_link(t.h1, s1, 1.0);
  g.add_duplex_link(t.h2, s2, 1.0);
  g.add_duplex_link(t.h3, s3, 1.0);
  g.add_duplex_link(t.h4, s4, 1.0);
  g.add_duplex_link(s1, s5, 1.0);
  g.add_duplex_link(s2, s5, 1.0);
  g.add_duplex_link(s3, s5, 1.0);
  g.add_duplex_link(s4, s5, 1.0);
  t.topology = std::make_unique<topo::GenericTopology>(
      std::move(g), std::vector<topo::NodeId>{t.h1, t.h2, t.h3, t.h4}, "fig3");
  return t;
}

std::size_t run_scheme(sim::Scheduler& sched) {
  Fig3Topo t = make_topo();
  net::Network net(*t.topology);
  auto one = [&](topo::NodeId a, topo::NodeId b, double size, double deadline) {
    net::FlowSpec f;
    f.src = a;
    f.dst = b;
    f.size = size;
    net.add_task(0.0, deadline, std::vector<net::FlowSpec>{f});
  };
  one(t.h1, t.h2, 1.0, 1.0);  // f1
  one(t.h1, t.h4, 1.0, 2.0);  // f2
  one(t.h3, t.h2, 1.0, 2.0);  // f3
  one(t.h3, t.h4, 2.0, 3.0);  // f4
  sim::FluidSimulator simulator(net, sched);
  (void)simulator.run();
  std::size_t flows = 0;
  for (const auto& f : net.flows()) {
    if (f.state == net::FlowState::kCompleted) ++flows;
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fig3_global", "Fig. 3: global vs distributed scheduling");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);

  std::cout << "=== Fig. 3: global vs distributed scheduling ===\n"
            << "f1(1,d1) 1->2, f2(1,d2) 1->4, f3(1,d2) 3->2, f4(2,d3) 3->4\n\n";

  bench::BenchRunner runner;
  runner.options().verbose = false;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 3);

  metrics::Table table({"scheme", "flows-completed", "paper"});
  auto scheme = [&](const std::string& bench_id, const std::string& label,
                    const std::string& paper, auto make_sched) {
    auto s = make_sched();
    const std::size_t flows = run_scheme(*s);
    table.row(label, flows, paper);
    runner.add_metric(bench_id + "/flows_completed", static_cast<double>(flows));
    if (o.json) {
      runner.run("sim_wall/" + bench_id, [&] {
        auto fresh = make_sched();
        bench::do_not_optimize(run_scheme(*fresh));
      });
    }
  };
  scheme("pdq_list2", "PDQ, switch flow-list limit 2", "3 (f4 lost)", [] {
    return std::make_unique<sched::Pdq>(
        sched::PdqConfig{.early_termination = true, .flow_list_limit = 2});
  });
  scheme("pdq_ideal", "PDQ, idealized (no list limit)", "n/a (no list artifact)",
         [] { return std::make_unique<sched::Pdq>(); });
  scheme("taps", "TAPS global scheduling", "4 (optimal, Fig. 3b)",
         [] { return std::make_unique<core::TapsScheduler>(); });
  table.print(std::cout);
  bench::maybe_write_table_csv(o, table);
  bench::maybe_write_json(o, "fig3_global", runner);
  return 0;
}
