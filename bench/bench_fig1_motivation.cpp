// Paper Fig. 1: the task-level vs flow-level motivation example. Two tasks
// of two flows each compete for one unit-capacity bottleneck:
//   t1: f11 (size 2, deadline 4), f12 (size 4, deadline 4)
//   t2: f21 (size 1, deadline 4), f22 (size 3, deadline 4)
// Reproduces rows (b)-(e): Fair Sharing, D3, PDQ and task-aware (TAPS).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/taps_scheduler.hpp"
#include "metrics/report.hpp"
#include "sched/d3.hpp"
#include "sched/fair_sharing.hpp"
#include "sched/pdq.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace {

using namespace taps;

struct Dumbbell {
  std::unique_ptr<topo::GenericTopology> topology;
  std::vector<topo::NodeId> left, right;
};

Dumbbell make_dumbbell() {
  topo::Graph g;
  const auto s1 = g.add_node(topo::NodeKind::kTor, "s1");
  const auto s2 = g.add_node(topo::NodeKind::kTor, "s2");
  g.add_duplex_link(s1, s2, 1.0);
  Dumbbell d;
  std::vector<topo::NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    const auto l = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
    const auto r = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
    g.add_duplex_link(l, s1, 1.0);
    g.add_duplex_link(r, s2, 1.0);
    d.left.push_back(l);
    d.right.push_back(r);
    hosts.push_back(l);
    hosts.push_back(r);
  }
  d.topology =
      std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts), "dumbbell");
  return d;
}

net::FlowSpec make_flow(topo::NodeId src, topo::NodeId dst, double size) {
  net::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  return f;
}

struct Row {
  std::string scheme;
  std::size_t flows = 0;
  std::size_t tasks = 0;
};

Row run_scheme(const std::string& name, sim::Scheduler& sched) {
  Dumbbell d = make_dumbbell();
  net::Network net(*d.topology);
  net.add_task(0.0, 4.0,
               std::vector<net::FlowSpec>{make_flow(d.left[0], d.right[0], 2.0),
                                          make_flow(d.left[1], d.right[1], 4.0)});
  net.add_task(0.0, 4.0,
               std::vector<net::FlowSpec>{make_flow(d.left[2], d.right[2], 1.0),
                                          make_flow(d.left[3], d.right[3], 3.0)});
  sim::FluidSimulator simulator(net, sched);
  (void)simulator.run();
  Row row{name, 0, 0};
  for (const auto& f : net.flows()) {
    if (f.state == net::FlowState::kCompleted) ++row.flows;
  }
  for (const auto& t : net.tasks()) {
    if (t.state == net::TaskState::kCompleted) ++row.tasks;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fig1_motivation", "Fig. 1: task-level vs flow-level motivation");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);

  std::cout << "=== Fig. 1: task-level vs flow-level scheduling motivation ===\n"
            << "t1 = {2,4 units}, t2 = {1,3 units}, all deadlines 4, one bottleneck\n\n";

  bench::BenchRunner runner;
  runner.options().verbose = false;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 3);

  metrics::Table table({"scheme", "flows-completed", "tasks-completed", "paper"});
  auto scheme = [&](const std::string& bench_id, const std::string& label,
                    const std::string& paper, auto make_sched) {
    auto s = make_sched();
    const Row r = run_scheme(label, *s);
    table.row(r.scheme, r.flows, r.tasks, paper);
    runner.add_metric(bench_id + "/flows_completed", static_cast<double>(r.flows));
    runner.add_metric(bench_id + "/tasks_completed", static_cast<double>(r.tasks));
    if (o.json) {
      runner.run("sim_wall/" + bench_id, [&] {
        auto fresh = make_sched();
        bench::do_not_optimize(run_scheme(label, *fresh));
      });
    }
  };
  scheme("fair_sharing", "FairSharing (1b)", "1 flow, 0 tasks",
         [] { return std::make_unique<sched::FairSharing>(); });
  scheme("d3", "D3 (1c)", "1 flow, 0 tasks", [] { return std::make_unique<sched::D3>(); });
  scheme("pdq_no_et", "PDQ, no ET (1d)", "2 flows, 0 tasks", [] {
    return std::make_unique<sched::Pdq>(sched::PdqConfig{.early_termination = false});
  });
  scheme("taps", "Task-aware/TAPS (1e)", "2 flows, 1 task",
         [] { return std::make_unique<core::TapsScheduler>(); });
  table.print(std::cout);
  bench::maybe_write_table_csv(o, table);
  bench::maybe_write_json(o, "fig1_motivation", runner);
  return 0;
}
