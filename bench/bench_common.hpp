// Shared scaffolding for the per-figure bench binaries: standard CLI options
// (--full / --seed / --repeats / --threads), sweep construction helpers, and
// the banner every bench prints so output is self-describing.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"

namespace taps::bench {

struct CommonOptions {
  bool full_scale = false;
  std::uint64_t seed = 42;
  std::size_t repeats = 3;
  std::size_t threads = 0;  // 0 = all cores
};

inline void add_common_options(util::Cli& cli) {
  cli.add_flag("full", "paper-scale topology/workload (much slower)");
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_option("repeats", "seeds averaged per sweep point", "3");
  cli.add_option("threads", "sweep worker threads (0 = all cores)", "0");
  cli.add_option("csv", "also write the sweep to this CSV file", "");
}

/// Write the sweep to --csv if the option was given.
inline void maybe_write_csv(const util::Cli& cli, const std::string& x_label,
                            const std::vector<exp::SweepPoint>& points,
                            const std::vector<exp::SchedulerKind>& schedulers,
                            const exp::SweepResult& result) {
  const std::string path = cli.str("csv");
  if (path.empty()) return;
  exp::write_sweep_csv(path, x_label, points, schedulers, result);
  std::cout << "\n(sweep written to " << path << ")\n";
}

inline CommonOptions read_common_options(const util::Cli& cli) {
  CommonOptions o;
  o.full_scale = cli.flag("full");
  o.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  o.repeats = static_cast<std::size_t>(cli.integer("repeats"));
  o.threads = static_cast<std::size_t>(cli.integer("threads"));
  return o;
}

inline void banner(const std::string& figure, const std::string& what,
                   const CommonOptions& o) {
  std::cout << "=== " << figure << ": " << what << " ===\n"
            << "scale: " << (o.full_scale ? "paper (full)" : "scaled") << ", seed: " << o.seed
            << ", repeats/point: " << o.repeats << "\n\n";
}

/// Metric selectors used across figures.
inline double task_ratio(const metrics::RunMetrics& m) { return m.task_completion_ratio; }
inline double flow_ratio(const metrics::RunMetrics& m) { return m.flow_completion_ratio; }
inline double app_throughput(const metrics::RunMetrics& m) { return m.app_throughput; }
inline double wasted_bw(const metrics::RunMetrics& m) { return m.wasted_bandwidth_ratio; }

}  // namespace taps::bench
