// Shared scaffolding for the per-figure bench binaries: the uniform CLI
// option set (--full / --seed / --repeats / --threads / --csv / --json),
// sweep construction helpers, the banner every bench prints, and the glue
// that turns sweep results and metric tables into the machine-readable
// BENCH_<name>.json documents the perf-regression gate consumes
// (scripts/bench_compare.py; see docs/BENCHMARKING.md).
#pragma once

#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"

namespace taps::bench {

struct CommonOptions {
  bool full_scale = false;
  std::uint64_t seed = 42;
  std::size_t repeats = 3;
  std::size_t threads = 0;  // 0 = all cores
  bool json = false;
  std::string json_out;      // "" = BENCH_<name>.json in the current directory
  std::string csv;           // "" = no CSV output
  std::string timeline_dir;  // "" = no timeline capture
};

/// Every bench binary takes the same option set so automation can drive them
/// uniformly. Binaries with no parallel sweep accept --threads as a no-op;
/// fixed paper examples (Figs. 1-3) accept --full/--seed/--repeats the same
/// way rather than rejecting them.
inline void add_common_options(util::Cli& cli) {
  cli.add_flag("full", "paper-scale topology/workload (much slower)");
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_option("repeats", "seeds averaged per sweep point", "3");
  cli.add_option("threads", "sweep worker threads (0 = all cores)", "0");
  cli.add_option("csv", "also write the results to this CSV file", "");
  cli.add_flag("json", "write machine-readable BENCH_<name>.json (regression gate input)");
  cli.add_option("json-out", "override the --json output path", "");
  cli.add_option("timeline-dir",
                 "write per-cell taps-timeline binaries (.tlbin) into this directory "
                 "(render with scripts/render_gantt.py)",
                 "");
}

inline CommonOptions read_common_options(const util::Cli& cli) {
  CommonOptions o;
  o.full_scale = cli.flag("full");
  o.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  o.repeats = static_cast<std::size_t>(cli.integer("repeats"));
  o.threads = static_cast<std::size_t>(cli.integer("threads"));
  o.json = cli.flag("json") || !cli.str("json-out").empty();
  o.json_out = cli.str("json-out");
  o.csv = cli.str("csv");
  o.timeline_dir = cli.str("timeline-dir");
  return o;
}

inline void banner(const std::string& figure, const std::string& what,
                   const CommonOptions& o) {
  std::cout << "=== " << figure << ": " << what << " ===\n"
            << "scale: " << (o.full_scale ? "paper (full)" : "scaled") << ", seed: " << o.seed
            << ", repeats/point: " << o.repeats << "\n\n";
}

/// Config capture recorded in every BENCH_<name>.json document.
inline std::vector<std::pair<std::string, std::string>> config_pairs(const CommonOptions& o) {
  return {{"full", o.full_scale ? "true" : "false"},
          {"seed", std::to_string(o.seed)},
          {"repeats", std::to_string(o.repeats)},
          {"threads", std::to_string(o.threads)}};
}

/// Write the runner's document to --json(-out) if requested.
inline void maybe_write_json(const CommonOptions& o, const std::string& bench_name,
                             const BenchRunner& runner) {
  if (!o.json) return;
  const std::string path = runner.write_json(bench_name, o.json_out, config_pairs(o));
  std::cout << "\n(bench JSON written to " << path << ")\n";
}

/// Write the sweep to --csv if the option was given.
inline void maybe_write_csv(const util::Cli& cli, const std::string& x_label,
                            const std::vector<exp::SweepPoint>& points,
                            const std::vector<exp::SchedulerKind>& schedulers,
                            const exp::SweepResult& result) {
  const std::string path = cli.str("csv");
  if (path.empty()) return;
  exp::write_sweep_csv(path, x_label, points, schedulers, result);
  std::cout << "\n(sweep written to " << path << ")\n";
}

/// Write a metric table to --csv if the option was given (table-shaped
/// benches that have no sweep).
inline void maybe_write_table_csv(const CommonOptions& o, const metrics::Table& table) {
  if (o.csv.empty()) return;
  std::ofstream out(o.csv);
  if (!out) throw std::runtime_error("cannot open CSV output: " + o.csv);
  table.write_csv(out);
  std::cout << "\n(table written to " << o.csv << ")\n";
}

/// Write the runner's metrics as a two-column (metric,value) CSV to --csv
/// (benches whose natural output is many small tables rather than one sweep).
inline void maybe_write_metrics_csv(const CommonOptions& o, const BenchRunner& runner) {
  if (o.csv.empty()) return;
  metrics::Table table({"metric", "value"});
  for (const auto& [name, value] : runner.metrics()) table.row(name, value);
  std::ofstream out(o.csv);
  if (!out) throw std::runtime_error("cannot open CSV output: " + o.csv);
  table.write_csv(out);
  std::cout << "\n(metrics written to " << o.csv << ")\n";
}

/// Fold a sweep into a runner document: one gated timing benchmark per
/// scheduler (samples = its per-point simulation wall seconds) plus
/// non-gated metric entries for every (point, scheduler) cell.
inline void record_sweep(BenchRunner& runner, const std::string& x_label,
                         const std::vector<exp::SweepPoint>& points,
                         const std::vector<exp::SchedulerKind>& schedulers,
                         const exp::SweepResult& result) {
  for (std::size_t si = 0; si < schedulers.size(); ++si) {
    std::vector<double> wall;
    wall.reserve(points.size());
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      wall.push_back(result.cell(pi, si, schedulers.size()).result.wall_seconds);
    }
    runner.add_samples(std::string("sim_wall/") + exp::to_string(schedulers[si]),
                       std::move(wall));
  }
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    for (std::size_t si = 0; si < schedulers.size(); ++si) {
      const auto& cell = result.cell(pi, si, schedulers.size());
      const std::string prefix = x_label + "=" + metrics::Table::format(points[pi].x) + "/" +
                                 exp::to_string(schedulers[si]) + "/";
      runner.add_metric(prefix + "task_completion_ratio", cell.result.metrics.task_completion_ratio);
      runner.add_metric(prefix + "flow_completion_ratio", cell.result.metrics.flow_completion_ratio);
      runner.add_metric(prefix + "app_throughput", cell.result.metrics.app_throughput);
      runner.add_metric(prefix + "wasted_bandwidth_ratio",
                        cell.result.metrics.wasted_bandwidth_ratio);
    }
  }
}

/// One call for the standard sweep-bench tail: --csv and --json handling.
inline void finish_sweep_bench(const util::Cli& cli, const CommonOptions& o,
                               const std::string& bench_name, const std::string& x_label,
                               const std::vector<exp::SweepPoint>& points,
                               const std::vector<exp::SchedulerKind>& schedulers,
                               const exp::SweepResult& result) {
  maybe_write_csv(cli, x_label, points, schedulers, result);
  if (!o.json) return;
  BenchRunner runner;
  runner.options().verbose = false;
  record_sweep(runner, x_label, points, schedulers, result);
  maybe_write_json(o, bench_name, runner);
}

/// Metric selectors used across figures.
inline double task_ratio(const metrics::RunMetrics& m) { return m.task_completion_ratio; }
inline double flow_ratio(const metrics::RunMetrics& m) { return m.flow_completion_ratio; }
inline double app_throughput(const metrics::RunMetrics& m) { return m.app_throughput; }
inline double wasted_bw(const metrics::RunMetrics& m) { return m.wasted_bandwidth_ratio; }

}  // namespace taps::bench
