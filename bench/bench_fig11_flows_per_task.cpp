// Paper Fig. 11: task completion ratio versus mean number of flows per task
// (400-2000 at paper scale; the scaled preset sweeps the same flows-per-host
// density on the small tree: 8-40).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig11_flows_per_task",
                "Fig. 11: task completion vs flows per task");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 11", "varying mean flows per task", o);

  std::vector<exp::SweepPoint> points;
  for (int i = 0; i < 9; ++i) {
    // Paper scale: 400, 600, ..., 2000. Scaled: 8, 12, ..., 40.
    const double flows = o.full_scale ? 400.0 + 200.0 * i : 8.0 + 4.0 * i;
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.flows_per_task_mean = flows;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{flows, s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);
  std::cout << "Task completion ratio\n";
  exp::print_metric_table(std::cout, "flows/task", points, exp::all_schedulers(), result,
                          bench::task_ratio);
  std::cout << "\nExpected shape: monotone decrease for everyone (bigger coflows are\n"
               "harder to finish whole); TAPS stays on top via admission control.\n";
  bench::finish_sweep_bench(cli, o, "fig11_flows_per_task", "flows_per_task", points, exp::all_schedulers(),
                           result);
  return 0;
}
