// Paper Fig. 7: task completion ratio versus mean flow deadline on the
// multi-rooted (fat-tree) topology. Baselines route with flow-level ECMP;
// TAPS picks paths with its centralized algorithm.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig7_deadline_multi",
                "Fig. 7: task completion vs deadline, fat-tree (multi-rooted)");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 7", "varying mean deadline 20-60 ms, fat-tree", o);

  std::vector<exp::SweepPoint> points;
  for (int ms = 20; ms <= 60; ms += 5) {
    workload::Scenario s = workload::Scenario::fat_tree(o.full_scale);
    s.workload.mean_deadline = ms / 1000.0;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(ms), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);
  std::cout << "Task completion ratio\n";
  exp::print_metric_table(std::cout, "deadline-ms", points, exp::all_schedulers(), result,
                          bench::task_ratio);
  bench::finish_sweep_bench(cli, o, "fig7_deadline_multi", "deadline_ms", points, exp::all_schedulers(),
                           result);
  return 0;
}
