// Simulation-engine scale benchmark: fat-tree workloads from 10k to 1M
// flows pushed through FluidSimulator under both engines —
//   - sim_scale/<preset>/indexed:   SimEngine::kIndexed (the default),
//   - sim_scale/<preset>/reference: SimEngine::kReference (the oracle loop;
//     skipped at the 1M preset, where its O(active)-per-event rescan is the
//     point of the exercise, not a number worth waiting for).
// One sample = seconds per simulator event for one full run (fresh network
// and workload per repeat; construction and generation are untimed), so the
// gated quantity tracks per-event engine cost, not workload size. Derived
// metrics record events/sec, the indexed-over-reference speedup, and the
// process peak RSS after each preset.
//
// Every dual-engine preset also cross-checks bit-identity inline: outcome
// fingerprints (flow states, remaining/bytes_sent/completion_time bits,
// SimStats outcome fields) must match between engines or the bench aborts.
//
// `--quick` runs the k=8/10k-flow preset only (the CI smoke + regression
// gate input); the default adds k=16/100k; `--full` adds k=32/1M (indexed
// only). With `--json` the run writes BENCH_sim_scale.json for
// scripts/bench_compare.py.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/taps_scheduler.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"
#include "workload/task_generator.hpp"

namespace {

using taps::bench::BenchRunner;

struct Preset {
  std::string name;
  int k = 8;                    // fat-tree arity
  int task_count = 0;           // x flows_per_task flows on average
  double flows_per_task = 0.0;  // coflow width (the paper's Fig. 11 axis)
  double arrival_rate = 0.0;    // tasks/sec
  double mean_flow_size = 0.0;  // bytes
  double deadline = 0.0;        // uniform (SLO-style) relative deadline, seconds
  bool both_engines = true;     // reference engine too (off for the 1M preset)
};

/// Wide coflow-style tasks (hundreds of flows sharing one deadline, the
/// paper's Fig. 11 regime): arrivals — and with them TAPS replanning — are
/// rare relative to simulator events, while the shared deadline keeps
/// hundreds-to-thousands of flows in flight at once. That makes the
/// per-event engine passes, not the planner, the measured quantity.
taps::workload::WorkloadConfig workload_for(const Preset& p) {
  taps::workload::WorkloadConfig wc;
  wc.task_count = p.task_count;
  wc.flows_per_task_mean = p.flows_per_task;
  wc.arrival_rate = p.arrival_rate;
  wc.mean_flow_size = p.mean_flow_size;
  wc.flow_size_stddev = p.mean_flow_size / 4.0;
  // Uniform SLO-style deadline: the floor clamps an (effectively zero)
  // exponential draw, so every task gets the same relative deadline. Arrivals
  // then always carry the latest absolute deadline and extend the EDF tail,
  // which keeps admission realistic at deep queue depths.
  wc.min_deadline = p.deadline;
  wc.mean_deadline = p.deadline / 50.0;
  return wc;
}

struct RunOutcome {
  double seconds = 0.0;
  taps::sim::SimStats stats;
  std::uint64_t fingerprint = 0;  // FNV-1a over outcomes; engine-invariant
  std::size_t flows = 0;
};

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

RunOutcome run_once(const taps::topo::FatTree& ft, const Preset& p, std::uint64_t seed,
                    taps::sim::SimEngine engine) {
  taps::net::Network net(ft);
  taps::util::Rng rng(seed);
  (void)taps::workload::generate(net, workload_for(p), rng);

  taps::core::TapsConfig cfg;
  // The reference configuration is the pre-indexed engine verbatim: the
  // O(active) event loop AND the per-event rate rescan it was built around.
  // Rate maintenance is bit-transparent either way (pinned by the
  // equivalence property suite), so the fingerprint cross-check still holds
  // across the toggle.
  cfg.event_driven_rates = engine == taps::sim::SimEngine::kIndexed;
  // Wide coflow tasks mean few arrivals, and trimming is arrival-counted —
  // at the default interval (64) these presets would never trim and every
  // replan would re-merge the whole run's slice history. Trimming never
  // changes a schedule, so this is shared, bit-transparent configuration.
  cfg.trim_interval = 1;
  // Candidate-path budget 8 (vs the repo default 16): controller planning
  // cost is bench_micro_replan's and bench_ablation's quantity, not this
  // bench's — a smaller budget keeps the shared planner out of the
  // per-event numbers at these task widths. Identical for both engines.
  cfg.max_paths = 8;
  taps::core::TapsScheduler scheduler(cfg);
  taps::sim::FluidSimulator simulator(net, scheduler, engine);

  const auto t0 = std::chrono::steady_clock::now();
  const taps::sim::SimStats stats = simulator.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats = stats;
  out.flows = net.flows().size();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, &stats.end_time, sizeof(stats.end_time));
  h = fnv1a(h, &stats.events, sizeof(stats.events));
  h = fnv1a(h, &stats.completions, sizeof(stats.completions));
  h = fnv1a(h, &stats.misses, sizeof(stats.misses));
  for (const taps::net::Flow& f : net.flows()) {
    const auto state = static_cast<std::uint8_t>(f.state);
    h = fnv1a(h, &state, sizeof(state));
    h = fnv1a(h, &f.remaining, sizeof(double));
    h = fnv1a(h, &f.bytes_sent, sizeof(double));
    h = fnv1a(h, &f.completion_time, sizeof(double));
  }
  out.fingerprint = h;
  return out;
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux reports KiB
}

/// Bench one (preset, engine): samples are seconds per event. Returns the
/// median sec/event and the last run's fingerprint for cross-checking.
struct EngineResult {
  double sec_per_event = 0.0;
  std::uint64_t fingerprint = 0;
};

EngineResult bench_engine(BenchRunner& runner, const taps::topo::FatTree& ft,
                          const Preset& p, std::uint64_t seed, std::size_t repeats,
                          taps::sim::SimEngine engine) {
  const std::string name =
      "sim_scale/" + p.name + "/" + taps::sim::to_string(engine);
  std::vector<double> samples;
  samples.reserve(repeats);
  RunOutcome last;
  for (std::size_t r = 0; r < repeats; ++r) {
    last = run_once(ft, p, taps::util::hash_combine(seed, r), engine);
    samples.push_back(last.seconds / static_cast<double>(last.stats.events));
  }
  const double median = runner.add_samples(name, std::move(samples)).median;
  runner.add_metric(name + "/events_per_sec", 1.0 / median);
  runner.add_metric(name + "/events", static_cast<double>(last.stats.events));
  runner.add_metric(name + "/flows", static_cast<double>(last.flows));
  runner.add_metric(name + "/completions", static_cast<double>(last.stats.completions));
  runner.add_metric(name + "/flows_touched",
                    static_cast<double>(last.stats.effort.flows_touched));
  runner.add_metric(name + "/lazy_skips",
                    static_cast<double>(last.stats.effort.lazy_skips));
  std::cout << name << ": " << last.flows << " flows, " << last.stats.events
            << " events, " << last.stats.completions << " completions, "
            << last.stats.misses << " misses, " << 1.0 / median
            << " events/sec, avg touched/event "
            << static_cast<double>(last.stats.effort.flows_touched) /
                   static_cast<double>(last.stats.events)
            << "\n";
  return {median, last.fingerprint};
}

}  // namespace

int main(int argc, char** argv) {
  taps::util::Cli cli("bench_sim_scale",
                      "simulation-engine scale: fat-tree workloads from 10k to 1M "
                      "flows under the indexed and reference engines, with inline "
                      "bit-identity cross-checks");
  taps::bench::add_common_options(cli);
  cli.add_flag("quick", "k=8 / 10k-flow preset only (CI smoke + regression gate)");
  if (!cli.parse(argc, argv)) return 1;
  const taps::bench::CommonOptions o = taps::bench::read_common_options(cli);
  const bool quick = cli.flag("quick");

  taps::bench::banner("sim_scale", "million-flow simulation engine scaling", o);
  if (quick) std::cout << "(quick mode: k8_10k preset only)\n\n";

  // Preset shape matters: deadlines must be generous enough that admission
  // succeeds across seeds (a rejected task contributes planner work but no
  // events, which starves the loop both engines share). Exclusive slices
  // must align on every link of a 6-hop path, so a wide coflow's makespan
  // runs several times the naive per-host queue estimate and admitted
  // flows linger far beyond their 80 ms transmit time (10 MB on a 1 Gb/s
  // edge) — tens of thousands queue admitted-but-paused while only the few
  // hundred holding a current slice transmit, the gap the indexed engine
  // exploits and the reference rescan pays for on every event.
  std::vector<Preset> presets;
  presets.push_back({"k8_10k", 8, 10, 1000.0, 0.5, 10.0e6, 4.500, true});
  if (!quick)
    presets.push_back({"k16_100k", 16, 10, 10000.0, 0.5, 10.0e6, 48.000, true});
  // The 1M preset deliberately overloads the fabric: TAPS admission control
  // sheds most tasks (the paper's overload behaviour), and the engine still
  // ingests every arrival and drives ~240k admitted flows to completion.
  if (!quick && o.full_scale)
    presets.push_back({"k32_1m", 32, 125, 8000.0, 2.0, 10.0e6, 24.000, false});

  BenchRunner runner;
  runner.options().repeats = o.repeats;
  runner.options().verbose = false;

  for (const Preset& p : presets) {
    const taps::topo::FatTree ft(
        taps::topo::FatTreeConfig{p.k, taps::topo::kGigabitPerSecond});
    const EngineResult indexed =
        bench_engine(runner, ft, p, o.seed, o.repeats, taps::sim::SimEngine::kIndexed);
    if (p.both_engines) {
      const EngineResult reference = bench_engine(runner, ft, p, o.seed, o.repeats,
                                                  taps::sim::SimEngine::kReference);
      if (indexed.fingerprint != reference.fingerprint) {
        std::cerr << "bench_sim_scale: ENGINE DIVERGENCE at preset " << p.name
                  << " (indexed fingerprint != reference fingerprint)\n";
        return 1;
      }
      const double speedup = reference.sec_per_event / indexed.sec_per_event;
      runner.add_metric("sim_scale/" + p.name + "/speedup", speedup);
      std::cout << "sim_scale/" << p.name << "/speedup = " << speedup << "x\n";
    }
    runner.add_metric("sim_scale/" + p.name + "/peak_rss_mb", peak_rss_mb());
  }

  taps::bench::maybe_write_metrics_csv(o, runner);
  taps::bench::maybe_write_json(o, "sim_scale", runner);
  return 0;
}
