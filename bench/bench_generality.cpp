// Topology generality (paper Sec. III-B design goal: "applicability to
// general data center network topologies"): the same workload density run on
// the single-rooted tree, the fat-tree, and the server-centric BCube —
// including the architectures the paper names (Fat-Tree, BCube) — with every
// scheduler. TAPS's slice allocation and routing use each topology's own
// candidate paths; baselines use ECMP over the same candidates.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "topo/bcube.hpp"
#include "workload/task_generator.hpp"

namespace {

using namespace taps;

struct TopoCase {
  std::string label;
  std::string id;  // stable key used in BENCH_generality.json entries
  std::unique_ptr<topo::Topology> topology;
  double flows_per_task;
  double arrival_rate;
};

std::vector<TopoCase> make_cases() {
  std::vector<TopoCase> cases;
  cases.push_back(TopoCase{"single-rooted (240 hosts)", "single_rooted",
                           std::make_unique<topo::SingleRootedTree>(
                               topo::SingleRootedConfig::scaled()),
                           24.0, 300.0});
  cases.push_back(TopoCase{"fat-tree k=8 (128 hosts)", "fat_tree_k8",
                           std::make_unique<topo::FatTree>(topo::FatTreeConfig::scaled()),
                           96.0, 1500.0});
  cases.push_back(TopoCase{"BCube(8,1) (64 servers)", "bcube_8_1",
                           std::make_unique<topo::BCube>(topo::BCubeConfig{8, 1}),
                           48.0, 1500.0});
  cases.push_back(TopoCase{"BCube(4,2) (64 servers)", "bcube_4_2",
                           std::make_unique<topo::BCube>(topo::BCubeConfig{4, 2}),
                           48.0, 1500.0});
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_generality",
                "all schedulers across tree / fat-tree / BCube topologies");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Generality", "same workload density across topology families", o);

  std::vector<std::string> headers{"topology"};
  for (const exp::SchedulerKind k : exp::all_schedulers()) headers.emplace_back(exp::to_string(k));
  metrics::Table table(std::move(headers));

  bench::BenchRunner runner;
  runner.options().verbose = false;

  for (const TopoCase& tc : make_cases()) {
    std::vector<std::string> row{tc.label};
    for (const exp::SchedulerKind kind : exp::all_schedulers()) {
      double ratio = 0.0;
      std::vector<double> walls;
      walls.reserve(o.repeats);
      for (std::size_t r = 0; r < o.repeats; ++r) {
        net::Network net(*tc.topology);
        workload::WorkloadConfig wc;
        wc.task_count = 30;
        wc.flows_per_task_mean = tc.flows_per_task;
        wc.arrival_rate = tc.arrival_rate;
        util::Rng rng(util::hash_combine(o.seed, r));
        util::Rng wl = rng.fork("workload");
        (void)workload::generate(net, wc, wl);
        const auto sched = exp::make_scheduler(kind, 16);
        const auto start = std::chrono::steady_clock::now();
        sim::FluidSimulator simulator(net, *sched);
        (void)simulator.run();
        walls.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count());
        ratio += metrics::collect(net).task_completion_ratio;
      }
      row.push_back(metrics::Table::format(ratio / static_cast<double>(o.repeats)));
      const std::string id = tc.id + "/" + exp::to_string(kind);
      runner.add_metric(id + "/task_ratio", ratio / static_cast<double>(o.repeats));
      if (o.json) runner.add_samples("sim_wall/" + id, std::move(walls));
    }
    table.add_row(std::move(row));
  }
  std::cout << "Task completion ratio per topology\n";
  table.print(std::cout);
  std::cout << "\nBCube paths relay through intermediate servers (server-centric); the\n"
               "schedulers run unchanged, supporting the paper's generality claim.\n";
  bench::maybe_write_metrics_csv(o, runner);
  bench::maybe_write_json(o, "generality", runner);
  return 0;
}
