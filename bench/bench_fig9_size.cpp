// Paper Fig. 9: application throughput (a) and task completion ratio (b)
// versus mean flow size (60-300 KB), single-rooted tree, deadline 40 ms.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig9_size", "Fig. 9: throughput & task completion vs flow size");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 9", "varying mean flow size 60-300 KB, single-rooted tree", o);

  std::vector<exp::SweepPoint> points;
  for (int kb = 60; kb <= 300; kb += 30) {
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.mean_flow_size = kb * 1000.0;
    s.workload.flow_size_stddev = kb * 250.0;  // keep the paper's spread ratio
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(kb), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);
  std::cout << "(a) Application throughput\n";
  exp::print_metric_table(std::cout, "size-KB", points, exp::all_schedulers(), result,
                          bench::app_throughput);
  std::cout << "\n(b) Task completion ratio\n";
  exp::print_metric_table(std::cout, "size-KB", points, exp::all_schedulers(), result,
                          bench::task_ratio);
  bench::finish_sweep_bench(cli, o, "fig9_size", "size_kb", points, exp::all_schedulers(),
                           result);
  return 0;
}
