// Paper Fig. 8: wasted-bandwidth ratio versus mean deadline, single-rooted
// tree — (a) all schedulers, (b) zoomed without Fair Sharing (which wastes an
// order of magnitude more than the rest).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig8_wasted", "Fig. 8: wasted bandwidth vs deadline");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 8", "wasted bandwidth ratio, varying deadline 20-60 ms", o);

  std::vector<exp::SweepPoint> points;
  for (int ms = 20; ms <= 60; ms += 10) {
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.mean_deadline = ms / 1000.0;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(ms), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);

  std::cout << "(a) Wasted bandwidth ratio, all schedulers\n";
  exp::print_metric_table(std::cout, "deadline-ms", points, exp::all_schedulers(), result,
                          bench::wasted_bw);

  std::vector<exp::SchedulerKind> no_fair(exp::all_schedulers().begin() + 1,
                                          exp::all_schedulers().end());
  // Re-index the same results without re-running: print from a filtered sweep.
  std::cout << "\n(b) Wasted bandwidth ratio without Fair Sharing\n";
  {
    exp::SweepResult filtered;
    const std::size_t n = exp::all_schedulers().size();
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (std::size_t si = 1; si < n; ++si) {
        filtered.cells.push_back(result.cell(pi, si, n));
      }
    }
    exp::print_metric_table(std::cout, "deadline-ms", points, no_fair, filtered,
                            bench::wasted_bw);
  }
  std::cout << "\nExpected shape: Fair Sharing wastes far more than everyone; Baraat\n"
               "(deadline-agnostic) wastes most among the rest; Varys and TAPS waste\n"
               "nothing (rejected tasks never transmit).\n";
  bench::finish_sweep_bench(cli, o, "fig8_wasted", "deadline_ms", points, exp::all_schedulers(),
                           result);
  return 0;
}
