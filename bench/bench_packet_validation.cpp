// Fluid-vs-packet cross-validation: the paper (and our figure benches)
// evaluate with a flow-level (fluid) simulator. This bench replays the same
// workload through the packet-level engine (MTU packets, store-and-forward,
// per-link FIFO queues, paced senders) and reports the per-scheduler deltas,
// quantifying how much the fluid abstraction gives away.
#include <iostream>

#include "bench_common.hpp"
#include "core/taps_scheduler.hpp"
#include "pkt/packet_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/task_generator.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_packet_validation", "fluid vs packet-level simulator agreement");
  bench::add_common_options(cli);
  cli.add_option("mtu", "packet size in bytes", "1500");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Validation", "fluid vs packet-level engines, same workloads", o);

  pkt::PacketSimConfig pc;
  pc.mtu = cli.num("mtu");

  struct Row {
    std::string label;
    exp::SchedulerKind kind;
    double guard = 0.0;  // TAPS planner guard band (seconds)
  };
  std::vector<Row> rows;
  for (const exp::SchedulerKind kind : exp::all_schedulers()) {
    rows.push_back(Row{exp::to_string(kind), kind, 0.0});
  }
  rows.push_back(Row{"TAPS+guard(1ms)", exp::SchedulerKind::kTaps, 0.001});

  auto make = [&](const Row& row, std::size_t max_paths) -> std::unique_ptr<sim::Scheduler> {
    if (row.guard > 0.0) {
      core::TapsConfig config;
      config.max_paths = max_paths;
      config.guard_band = row.guard;
      return std::make_unique<core::TapsScheduler>(config);
    }
    return exp::make_scheduler(row.kind, max_paths);
  };

  bench::BenchRunner runner;
  runner.options().verbose = false;

  metrics::Table table({"scheduler", "task-ratio(fluid)", "task-ratio(packet)", "delta",
                        "flow-ratio(fluid)", "flow-ratio(packet)", "max-queue"});
  for (const Row& row : rows) {
    double tf = 0.0, tp = 0.0, ff = 0.0, fp = 0.0;
    std::size_t max_queue = 0;
    for (std::size_t r = 0; r < o.repeats; ++r) {
      workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
      s.seed = util::hash_combine(o.seed, r);
      const auto topology = workload::make_topology(s);

      auto fresh_net = [&] {
        auto net = std::make_unique<net::Network>(*topology);
        util::Rng rng(s.seed);
        util::Rng wl = rng.fork("workload");
        (void)workload::generate(*net, s.workload, wl);
        return net;
      };

      {
        auto net = fresh_net();
        const auto sched = make(row, s.max_paths);
        sim::FluidSimulator simulator(*net, *sched);
        (void)simulator.run();
        const auto m = metrics::collect(*net);
        tf += m.task_completion_ratio;
        ff += m.flow_completion_ratio;
      }
      {
        auto net = fresh_net();
        const auto sched = make(row, s.max_paths);
        pkt::PacketSimulator simulator(*net, *sched, pc);
        const pkt::PacketSimStats stats = simulator.run();
        const auto m = metrics::collect(*net);
        tp += m.task_completion_ratio;
        fp += m.flow_completion_ratio;
        max_queue = std::max(max_queue, stats.max_queue_depth);
      }
    }
    const double n = static_cast<double>(o.repeats);
    table.row(row.label, tf / n, tp / n, (tp - tf) / n, ff / n, fp / n,
              static_cast<long long>(max_queue));
    runner.add_metric(row.label + "/task_ratio_fluid", tf / n);
    runner.add_metric(row.label + "/task_ratio_packet", tp / n);
    runner.add_metric(row.label + "/delta", (tp - tf) / n);
    runner.add_metric(row.label + "/max_queue", static_cast<double>(max_queue));
  }
  table.print(std::cout);
  std::cout << "\nNegative deltas are the cost of packetization (store-and-forward\n"
               "pipeline latency + MTU rounding) on plans that finish within a hair of\n"
               "the deadline. D3 suffers most: its rate request targets the deadline\n"
               "*exactly*, so every deadline-critical flow lands one pipeline late.\n"
               "TAPS's makeup-transmission mechanism (strays finish on plan-idle links)\n"
               "absorbs most of the quantization; the small residual delta is pipeline\n"
               "latency on exact-fit admissions, which the --guard-band style planner\n"
               "slack trades against admission count. Bounded max-queue confirms paced\n"
               "senders do not build standing queues.\n";
  bench::maybe_write_metrics_csv(o, runner);
  bench::maybe_write_json(o, "packet_validation", runner);
  return 0;
}
