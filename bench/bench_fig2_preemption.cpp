// Paper Fig. 2: the preemptive-scheduling motivation. Two tasks of two unit
// flows each on one unit bottleneck:
//   t1: deadline 4 (arrives first), t2: deadline 2 (more urgent, arrives after)
// Baraat serializes by task FIFO and starves t2; Varys's static reservations
// reject t2; TAPS re-plans globally and completes both.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/taps_scheduler.hpp"
#include "metrics/report.hpp"
#include "sched/baraat.hpp"
#include "sched/varys.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace {

using namespace taps;

struct Dumbbell {
  std::unique_ptr<topo::GenericTopology> topology;
  std::vector<topo::NodeId> left, right;
};

Dumbbell make_dumbbell() {
  topo::Graph g;
  const auto s1 = g.add_node(topo::NodeKind::kTor, "s1");
  const auto s2 = g.add_node(topo::NodeKind::kTor, "s2");
  g.add_duplex_link(s1, s2, 1.0);
  Dumbbell d;
  std::vector<topo::NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    const auto l = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
    const auto r = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
    g.add_duplex_link(l, s1, 1.0);
    g.add_duplex_link(r, s2, 1.0);
    d.left.push_back(l);
    d.right.push_back(r);
    hosts.push_back(l);
    hosts.push_back(r);
  }
  d.topology =
      std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts), "dumbbell");
  return d;
}

net::FlowSpec make_flow(topo::NodeId src, topo::NodeId dst, double size) {
  net::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  return f;
}

std::size_t run_scheme(sim::Scheduler& sched) {
  Dumbbell d = make_dumbbell();
  net::Network net(*d.topology);
  net.add_task(0.0, 4.0,
               std::vector<net::FlowSpec>{make_flow(d.left[0], d.right[0], 1.0),
                                          make_flow(d.left[1], d.right[1], 1.0)});
  net.add_task(0.0, 2.0,
               std::vector<net::FlowSpec>{make_flow(d.left[2], d.right[2], 1.0),
                                          make_flow(d.left[3], d.right[3], 1.0)});
  sim::FluidSimulator simulator(net, sched);
  (void)simulator.run();
  std::size_t tasks = 0;
  for (const auto& t : net.tasks()) {
    if (t.state == net::TaskState::kCompleted) ++tasks;
  }
  return tasks;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fig2_preemption", "Fig. 2: task-level scheduling vs TAPS preemption");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);

  std::cout << "=== Fig. 2: existing task-level scheduling vs TAPS (preemption) ===\n"
            << "t1 = {1,1 units, deadline 4}, t2 = {1,1 units, deadline 2}\n\n";

  bench::BenchRunner runner;
  runner.options().verbose = false;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 3);

  metrics::Table table({"scheme", "tasks-completed", "paper-figure"});
  auto scheme = [&](const std::string& bench_id, const std::string& label,
                    const std::string& paper, auto make_sched) {
    auto s = make_sched();
    const std::size_t tasks = run_scheme(*s);
    table.row(label, tasks, paper);
    runner.add_metric(bench_id + "/tasks_completed", static_cast<double>(tasks));
    if (o.json) {
      runner.run("sim_wall/" + bench_id, [&] {
        auto fresh = make_sched();
        bench::do_not_optimize(run_scheme(*fresh));
      });
    }
  };
  scheme("baraat", "Baraat (2b)", "t2 starved by task FIFO (urgent task lost)",
         [] { return std::make_unique<sched::Baraat>(); });
  scheme("varys", "Varys (2c)", "t2 rejected: 1 task",
         [] { return std::make_unique<sched::Varys>(); });
  scheme("taps", "TAPS (2d)", "both fit via re-planning: 2 tasks",
         [] { return std::make_unique<core::TapsScheduler>(); });
  table.print(std::cout);
  bench::maybe_write_table_csv(o, table);
  bench::maybe_write_json(o, "fig2_preemption", runner);
  return 0;
}
