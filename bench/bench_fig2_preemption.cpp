// Paper Fig. 2: the preemptive-scheduling motivation. Two tasks of two unit
// flows each on one unit bottleneck:
//   t1: deadline 4 (arrives first), t2: deadline 2 (more urgent, arrives after)
// Baraat serializes by task FIFO and starves t2; Varys's static reservations
// reject t2; TAPS re-plans globally and completes both.
#include <iostream>
#include <memory>

#include "core/taps_scheduler.hpp"
#include "metrics/report.hpp"
#include "sched/baraat.hpp"
#include "sched/varys.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace {

using namespace taps;

struct Dumbbell {
  std::unique_ptr<topo::GenericTopology> topology;
  std::vector<topo::NodeId> left, right;
};

Dumbbell make_dumbbell() {
  topo::Graph g;
  const auto s1 = g.add_node(topo::NodeKind::kTor, "s1");
  const auto s2 = g.add_node(topo::NodeKind::kTor, "s2");
  g.add_duplex_link(s1, s2, 1.0);
  Dumbbell d;
  std::vector<topo::NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    const auto l = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
    const auto r = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
    g.add_duplex_link(l, s1, 1.0);
    g.add_duplex_link(r, s2, 1.0);
    d.left.push_back(l);
    d.right.push_back(r);
    hosts.push_back(l);
    hosts.push_back(r);
  }
  d.topology =
      std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts), "dumbbell");
  return d;
}

net::FlowSpec make_flow(topo::NodeId src, topo::NodeId dst, double size) {
  net::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  return f;
}

std::size_t run_scheme(sim::Scheduler& sched) {
  Dumbbell d = make_dumbbell();
  net::Network net(*d.topology);
  net.add_task(0.0, 4.0,
               std::vector<net::FlowSpec>{make_flow(d.left[0], d.right[0], 1.0),
                                          make_flow(d.left[1], d.right[1], 1.0)});
  net.add_task(0.0, 2.0,
               std::vector<net::FlowSpec>{make_flow(d.left[2], d.right[2], 1.0),
                                          make_flow(d.left[3], d.right[3], 1.0)});
  sim::FluidSimulator simulator(net, sched);
  (void)simulator.run();
  std::size_t tasks = 0;
  for (const auto& t : net.tasks()) {
    if (t.state == net::TaskState::kCompleted) ++tasks;
  }
  return tasks;
}

}  // namespace

int main() {
  std::cout << "=== Fig. 2: existing task-level scheduling vs TAPS (preemption) ===\n"
            << "t1 = {1,1 units, deadline 4}, t2 = {1,1 units, deadline 2}\n\n";

  metrics::Table table({"scheme", "tasks-completed", "paper-figure"});
  {
    sched::Baraat s;
    table.row("Baraat (2b)", run_scheme(s),
              std::string("t2 starved by task FIFO (urgent task lost)"));
  }
  {
    sched::Varys s;
    table.row("Varys (2c)", run_scheme(s), std::string("t2 rejected: 1 task"));
  }
  {
    core::TapsScheduler s;
    table.row("TAPS (2d)", run_scheme(s), std::string("both fit via re-planning: 2 tasks"));
  }
  table.print(std::cout);
  return 0;
}
