// Paper Fig. 6: application throughput (a) and task completion ratio (b)
// versus mean flow deadline (20-60 ms) on the single-rooted tree, for all
// six schedulers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig6_deadline_single",
                "Fig. 6: throughput & task completion vs deadline, single-rooted tree");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Fig. 6", "varying mean deadline 20-60 ms, single-rooted tree", o);

  std::vector<exp::SweepPoint> points;
  for (int ms = 20; ms <= 60; ms += 5) {
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.workload.mean_deadline = ms / 1000.0;
    s.seed = o.seed;
    points.push_back(exp::SweepPoint{static_cast<double>(ms), s});
  }

  const auto result =
      exp::run_sweep(points, exp::all_schedulers(), o.threads, o.repeats, o.timeline_dir);

  std::cout << "(a) Application throughput (bytes of deadline-met flows / total bytes)\n";
  exp::print_metric_table(std::cout, "deadline-ms", points, exp::all_schedulers(), result,
                          bench::app_throughput);
  std::cout << "\n(b) Task completion ratio (all flows of the task met the deadline)\n";
  exp::print_metric_table(std::cout, "deadline-ms", points, exp::all_schedulers(), result,
                          bench::task_ratio);
  bench::finish_sweep_bench(cli, o, "fig6_deadline_single", "deadline_ms", points, exp::all_schedulers(),
                           result);
  return 0;
}
