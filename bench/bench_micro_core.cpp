// Microbenchmarks for the controller's hot paths: the interval-set
// primitives behind Algorithm 3, whole-set planning (Algorithms 1-2),
// max-min filling, the SDN controller's per-probe decision latency — the
// metric that bounds how fast TAPS can admit tasks — and end-to-end
// simulation throughput per scheduler.
//
// Complements bench_micro_replan (which A/Bs the optimized replan against
// the reference path); this binary tracks the broader primitive surface.
// With `--json` the run writes BENCH_micro_core.json for
// scripts/bench_compare.py.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/path_allocation.hpp"
#include "core/taps_scheduler.hpp"
#include "exp/experiment.hpp"
#include "sched/fair_sharing.hpp"
#include "sdn/controller.hpp"
#include "topo/fattree.hpp"
#include "topo/tree.hpp"
#include "util/rng.hpp"
#include "workload/task_generator.hpp"

namespace {

using namespace taps;
using bench::BenchRunner;
using bench::do_not_optimize;

void bench_interval_insert(BenchRunner& runner, std::size_t n) {
  util::Rng rng(1);
  std::vector<std::pair<double, double>> ivs;
  ivs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform_real(0.0, 1000.0);
    ivs.emplace_back(lo, lo + rng.uniform_real(0.01, 2.0));
  }
  runner.run("interval_set/insert/n=" + std::to_string(n), [&] {
    util::IntervalSet s;
    for (const auto& [lo, hi] : ivs) s.insert(lo, hi);
    do_not_optimize(s);
  });
}

void bench_interval_allocate(BenchRunner& runner, std::size_t n) {
  util::Rng rng(2);
  util::IntervalSet occ;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform_real(0.0, 1000.0);
    occ.insert(lo, lo + rng.uniform_real(0.01, 0.5));
  }
  runner.run("interval_set/allocate_earliest/n=" + std::to_string(n), [&] {
    do_not_optimize(occ.allocate_earliest(0.0, 3.0));
  });
}

void bench_path_union(BenchRunner& runner, std::size_t slices_per_link) {
  core::OccupancyMap occ(6);
  util::Rng rng(3);
  topo::Path path;
  path.links = {0, 1, 2, 3, 4, 5};
  for (topo::LinkId l = 0; l < 6; ++l) {
    topo::Path single;
    single.links = {l};
    util::IntervalSet s;
    double t = rng.uniform_real(0.0, 0.001);
    for (std::size_t i = 0; i < slices_per_link; ++i) {
      const double len = rng.uniform_real(0.0001, 0.002);
      s.insert(t, t + len);
      t += len + rng.uniform_real(0.0001, 0.002) + 0.0001;
    }
    occ.occupy(single, s);
  }
  runner.run("occupancy/path_union/slices=" + std::to_string(slices_per_link),
             [&] { do_not_optimize(occ.path_union(path)); });
}

/// Whole-task planning cost on the scaled tree (Algorithm 1's inner loop).
void bench_plan_flows(BenchRunner& runner, int flows) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  workload::WorkloadConfig wc;
  wc.task_count = 1;
  wc.flows_per_task_mean = flows;
  wc.arrival_rate = 1.0;
  util::Rng rng(4);
  (void)workload::generate(net, wc, rng);
  std::vector<net::FlowId> order;
  for (const auto& f : net.flows()) order.push_back(f.id());
  core::sort_edf_sjf(net, order);

  core::OccupancyMap occ(net.graph().link_count());
  runner.run("plan_flows/flows=" + std::to_string(flows), [&] {
    occ.reset(net.graph().link_count());
    do_not_optimize(core::plan_flows(net, occ, order, 0.0, core::PlanConfig{}));
  });
}

/// Controller decision latency per probe on the fat-tree (multi-path). Each
/// probe admits state into the controller, so every repeat gets a fresh
/// network + controller built outside the timed region (add_samples).
void bench_controller_on_probe(BenchRunner& runner, std::size_t repeats) {
  const topo::FatTree ft(topo::FatTreeConfig::scaled());
  constexpr std::size_t kTasks = 8;
  std::vector<double> samples;
  samples.reserve(repeats);
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    net::Network net(ft);
    workload::WorkloadConfig wc;
    wc.task_count = kTasks;
    wc.flows_per_task_mean = 16;
    wc.arrival_rate = 1e9;  // all at t=0
    util::Rng rng(5);
    (void)workload::generate(net, wc, rng);
    sdn::Controller controller(net, sdn::ControllerConfig{});

    const auto start = std::chrono::steady_clock::now();
    for (const auto& task : net.tasks()) {
      sdn::ProbePacket probe;
      probe.task = task.id();
      for (const net::FlowId fid : task.spec.flows) {
        const auto& f = net.flow(fid);
        probe.flows.push_back(sdn::SchedulingHeader{fid, task.id(), f.spec.src, f.spec.dst,
                                                    f.spec.size, f.spec.deadline});
      }
      do_not_optimize(controller.on_probe(probe, 0.0));
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count() / static_cast<double>(kTasks));
  }
  runner.add_samples("controller/on_probe", std::move(samples), kTasks);
}

void bench_progressive_fill(BenchRunner& runner, int flows) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  workload::WorkloadConfig wc;
  wc.task_count = 1;
  wc.flows_per_task_mean = flows;
  util::Rng rng(6);
  (void)workload::generate(net, wc, rng);

  sched::FairSharing fs;
  fs.bind(net);
  fs.on_task_arrival(0, 0.0);
  runner.run("progressive_fill/flows=" + std::to_string(flows),
             [&] { do_not_optimize(fs.assign_rates(0.0)); });
}

/// End-to-end simulation throughput per scheduler (rate recomputation is
/// each policy's hot loop).
void bench_end_to_end(BenchRunner& runner, exp::SchedulerKind kind) {
  workload::Scenario scenario = workload::Scenario::single_rooted(false);
  scenario.workload.task_count = 20;
  scenario.workload.flows_per_task_mean = 12.0;
  runner.run(std::string("sim/") + exp::to_string(kind), [&] {
    const exp::ExperimentResult r = exp::run_experiment(scenario, kind);
    do_not_optimize(r.metrics.task_completion_ratio);
  });
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_micro_core",
                "controller hot-path microbenchmarks: IntervalSet primitives, "
                "path_union, plan_flows, SDN probe latency, per-scheduler "
                "simulation throughput");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::CommonOptions o = bench::read_common_options(cli);

  bench::banner("micro_core", "controller hot-path microbenchmarks", o);

  BenchRunner runner;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 5);

  for (const std::size_t n : {64u, 512u, 4096u}) bench_interval_insert(runner, n);
  for (const std::size_t n : {64u, 512u, 4096u}) bench_interval_allocate(runner, n);
  for (const std::size_t n : {16u, 128u, 1024u}) bench_path_union(runner, n);
  for (const int flows : {32, 128, 512}) bench_plan_flows(runner, flows);
  bench_controller_on_probe(runner, runner.options().repeats);
  for (const int flows : {32, 256, 1024}) bench_progressive_fill(runner, flows);
  for (int k = 0; k <= 6; ++k) bench_end_to_end(runner, static_cast<exp::SchedulerKind>(k));

  bench::maybe_write_metrics_csv(o, runner);
  bench::maybe_write_json(o, "micro_core", runner);
  return 0;
}
