// Microbenchmarks (google-benchmark) for the controller's hot paths: the
// interval-set primitives behind Algorithm 3, whole-set planning
// (Algorithms 1-2), max-min filling, and the SDN controller's per-probe
// decision latency — the metric that bounds how fast TAPS can admit tasks.
#include <benchmark/benchmark.h>

#include "core/path_allocation.hpp"
#include "exp/experiment.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "sdn/controller.hpp"
#include "topo/fattree.hpp"
#include "topo/tree.hpp"
#include "util/rng.hpp"
#include "workload/task_generator.hpp"

namespace {

using namespace taps;

void BM_IntervalInsert(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  std::vector<std::pair<double, double>> ivs;
  ivs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double lo = rng.uniform_real(0.0, 1000.0);
    ivs.emplace_back(lo, lo + rng.uniform_real(0.01, 2.0));
  }
  for (auto _ : state) {
    util::IntervalSet s;
    for (const auto& [lo, hi] : ivs) s.insert(lo, hi);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntervalInsert)->Arg(64)->Arg(512)->Arg(4096);

void BM_IntervalAllocateEarliest(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  util::IntervalSet occ;
  for (int i = 0; i < n; ++i) {
    const double lo = rng.uniform_real(0.0, 1000.0);
    occ.insert(lo, lo + rng.uniform_real(0.01, 0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(occ.allocate_earliest(0.0, 3.0));
  }
}
BENCHMARK(BM_IntervalAllocateEarliest)->Arg(64)->Arg(512)->Arg(4096);

void BM_PathUnion(benchmark::State& state) {
  const auto slices_per_link = static_cast<int>(state.range(0));
  core::OccupancyMap occ(6);
  util::Rng rng(3);
  topo::Path path;
  path.links = {0, 1, 2, 3, 4, 5};
  for (topo::LinkId l = 0; l < 6; ++l) {
    topo::Path single;
    single.links = {l};
    util::IntervalSet s;
    double t = rng.uniform_real(0.0, 0.001);
    for (int i = 0; i < slices_per_link; ++i) {
      const double len = rng.uniform_real(0.0001, 0.002);
      s.insert(t, t + len);
      t += len + rng.uniform_real(0.0001, 0.002) + 0.0001;
    }
    occ.occupy(single, s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(occ.path_union(path));
  }
}
BENCHMARK(BM_PathUnion)->Arg(16)->Arg(128)->Arg(1024);

/// Whole-task planning cost on the scaled tree (Algorithm 1's inner loop).
void BM_PlanFlows(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  workload::WorkloadConfig wc;
  wc.task_count = 1;
  wc.flows_per_task_mean = flows;
  wc.arrival_rate = 1.0;
  util::Rng rng(4);
  (void)workload::generate(net, wc, rng);
  std::vector<net::FlowId> order;
  for (const auto& f : net.flows()) order.push_back(f.id());
  core::sort_edf_sjf(net, order);

  for (auto _ : state) {
    core::OccupancyMap occ(net.graph().link_count());
    benchmark::DoNotOptimize(core::plan_flows(net, occ, order, 0.0, core::PlanConfig{}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(order.size()));
}
BENCHMARK(BM_PlanFlows)->Arg(32)->Arg(128)->Arg(512);

/// Controller decision latency per probe on the fat-tree (multi-path).
void BM_ControllerOnProbe(benchmark::State& state) {
  const topo::FatTree ft(topo::FatTreeConfig::scaled());
  for (auto _ : state) {
    state.PauseTiming();
    net::Network net(ft);
    workload::WorkloadConfig wc;
    wc.task_count = 8;
    wc.flows_per_task_mean = 16;
    wc.arrival_rate = 1e9;  // all at t=0
    util::Rng rng(5);
    (void)workload::generate(net, wc, rng);
    sdn::Controller controller(net, sdn::ControllerConfig{});
    state.ResumeTiming();

    for (const auto& task : net.tasks()) {
      sdn::ProbePacket probe;
      probe.task = task.id();
      for (const net::FlowId fid : task.spec.flows) {
        const auto& f = net.flow(fid);
        probe.flows.push_back(sdn::SchedulingHeader{fid, task.id(), f.spec.src, f.spec.dst,
                                                    f.spec.size, f.spec.deadline});
      }
      benchmark::DoNotOptimize(controller.on_probe(probe, 0.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ControllerOnProbe)->Unit(benchmark::kMicrosecond);

void BM_ProgressiveFill(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  workload::WorkloadConfig wc;
  wc.task_count = 1;
  wc.flows_per_task_mean = flows;
  util::Rng rng(6);
  (void)workload::generate(net, wc, rng);

  sched::FairSharing fs;
  fs.bind(net);
  fs.on_task_arrival(0, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.assign_rates(0.0));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_ProgressiveFill)->Arg(32)->Arg(256)->Arg(1024);

/// End-to-end simulation throughput per scheduler: how many simulated events
/// each policy sustains per second of wall clock (rate recomputation is each
/// policy's hot loop).
void BM_EndToEndScheduler(benchmark::State& state) {
  const auto kind = static_cast<exp::SchedulerKind>(state.range(0));
  workload::Scenario scenario = workload::Scenario::single_rooted(false);
  scenario.workload.task_count = 20;
  scenario.workload.flows_per_task_mean = 12.0;

  std::int64_t events = 0;
  for (auto _ : state) {
    const exp::ExperimentResult r = exp::run_experiment(scenario, kind);
    events += static_cast<std::int64_t>(r.stats.events);
    benchmark::DoNotOptimize(r.metrics.task_completion_ratio);
  }
  state.SetItemsProcessed(events);
  state.SetLabel(exp::to_string(kind));
}
BENCHMARK(BM_EndToEndScheduler)
    ->DenseRange(0, 6, 1)  // the six paper schedulers + D2TCP
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
