// Paper Fig. 14 (Sec. VI): effective application throughput over time on
// the 8-host partial fat-tree testbed, TAPS (full SDN message-path
// emulation) vs Fair Sharing. 100 flows, mean 100 KB, mean deadline 40 ms.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "metrics/report.hpp"
#include "sdn/testbed.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("bench_fig14_testbed", "Fig. 14: testbed effective throughput over time");
  cli.add_option("seed", "workload RNG seed", "42");
  cli.add_option("flows", "number of iperf-style flows", "100");
  cli.add_option("size-kb", "mean flow size in KB", "100");
  cli.add_option("deadline-ms", "mean deadline in ms", "40");
  cli.add_option("bin-ms", "series bin width in ms", "1");
  cli.add_option("latency-us", "controller probe->decision latency in microseconds", "0");
  cli.add_flag("stress",
               "denser variant (200 flows, 200 KB, 25 ms) approximating the "
               "hardware overheads the fluid model lacks; sharpens the Fair "
               "Sharing effectiveness drop toward the paper's ~60%");
  // Uniform automation options (bench_common's set minus the ones this bench
  // already declares in its own units above).
  cli.add_option("repeats", "timed repetitions for --json", "3");
  cli.add_option("threads", "accepted for uniformity (single-run bench)", "0");
  cli.add_option("csv", "also write the time series to this CSV file", "");
  cli.add_flag("json", "write machine-readable BENCH_<name>.json (regression gate input)");
  cli.add_option("json-out", "override the --json output path", "");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  bench::CommonOptions o;
  o.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  o.repeats = static_cast<std::size_t>(cli.integer("repeats"));
  o.threads = static_cast<std::size_t>(cli.integer("threads"));
  o.json = cli.flag("json") || !cli.str("json-out").empty();
  o.json_out = cli.str("json-out");
  o.csv = cli.str("csv");

  sdn::TestbedConfig config;
  config.seed = o.seed;
  config.flow_count = static_cast<int>(cli.integer("flows"));
  config.mean_flow_size = cli.num("size-kb") * 1000.0;
  config.mean_deadline = cli.num("deadline-ms") / 1000.0;
  config.bin_width = cli.num("bin-ms") / 1000.0;
  config.control_latency = cli.num("latency-us") / 1e6;
  if (cli.flag("stress")) {
    config.flow_count = 200;
    config.mean_flow_size = 200e3;
    config.mean_deadline = 0.025;
  }

  std::cout << "=== Fig. 14: effective application throughput, TAPS vs Fair Sharing ===\n"
            << "partial fat-tree testbed (8 hosts), " << config.flow_count
            << " flows, mean " << config.mean_flow_size / 1000.0 << " KB, deadline "
            << config.mean_deadline * 1000.0 << " ms\n\n";

  const sdn::TestbedResult r = sdn::run_testbed(config);

  metrics::Table series({"t-ms", "TAPS-effective-%", "FairSharing-effective-%"});
  const std::size_t bins = std::max(r.taps_bins.size(), r.fair_bins.size());
  for (std::size_t i = 0; i < bins; ++i) {
    const double taps_pct =
        i < r.taps_bins.size() ? 100.0 * r.taps_bins[i].effective_fraction() : 0.0;
    const double fair_pct =
        i < r.fair_bins.size() ? 100.0 * r.fair_bins[i].effective_fraction() : 0.0;
    series.row((static_cast<double>(i) + 0.5) * config.bin_width * 1000.0, taps_pct,
               fair_pct);
  }
  series.print(std::cout);

  std::cout << "\nSummary\n";
  metrics::Table summary(
      {"scheme", "task-ratio", "wasted-bw", "useful-MB", "wasted-MB"});
  summary.row("TAPS", r.taps_metrics.task_completion_ratio,
              r.taps_metrics.wasted_bandwidth_ratio, r.taps_metrics.useful_bytes / 1e6,
              r.taps_metrics.wasted_bytes / 1e6);
  summary.row("FairSharing", r.fair_metrics.task_completion_ratio,
              r.fair_metrics.wasted_bandwidth_ratio, r.fair_metrics.useful_bytes / 1e6,
              r.fair_metrics.wasted_bytes / 1e6);
  summary.print(std::cout);

  std::cout << "\nSDN control/data plane accounting: " << r.probes << " probes, " << r.grants
            << " grants, " << r.entries_installed << " entries installed, "
            << r.entries_withdrawn << " withdrawn, " << r.quanta_sent
            << " packet bursts, " << r.switch_drops << " switch drops\n";

  bench::maybe_write_table_csv(o, series);
  if (o.json) {
    bench::BenchRunner runner;
    runner.options().verbose = false;
    runner.options().repeats = std::max<std::size_t>(o.repeats, 3);
    runner.add_metric("taps/task_completion_ratio", r.taps_metrics.task_completion_ratio);
    runner.add_metric("taps/wasted_bandwidth_ratio", r.taps_metrics.wasted_bandwidth_ratio);
    runner.add_metric("fair_sharing/task_completion_ratio",
                      r.fair_metrics.task_completion_ratio);
    runner.add_metric("fair_sharing/wasted_bandwidth_ratio",
                      r.fair_metrics.wasted_bandwidth_ratio);
    runner.add_metric("sdn/probes", static_cast<double>(r.probes));
    runner.add_metric("sdn/grants", static_cast<double>(r.grants));
    runner.add_metric("sdn/entries_installed", static_cast<double>(r.entries_installed));
    runner.add_metric("sdn/switch_drops", static_cast<double>(r.switch_drops));
    runner.run("testbed_wall", [&] { bench::do_not_optimize(sdn::run_testbed(config)); });
    bench::maybe_write_json(o, "fig14_testbed", runner);
  }
  return 0;
}
