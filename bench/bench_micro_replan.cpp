// Microbenchmarks for the TAPS replan hot path (the cost the ROADMAP cares
// about: what the controller pays on EVERY task arrival).
//
// Covered:
//   - util::IntervalSet insert/erase and earliest-fit under heavy
//     fragmentation (the per-link primitive of Algorithm 3);
//   - OccupancyMap::collides and path_union(_from) over a deep map;
//   - the full per-arrival replan (EDF+SJF sort + plan_flows) at 1k/10k/50k
//     admitted flows on the scaled fat-tree, with the fused allocator +
//     candidate cache (optimized) A/B'd against the pre-optimization
//     reference path (reference_allocator, no scratch, fresh map per replan);
//   - the steady-state per-arrival cost through TapsScheduler itself, with
//     the incremental journaled session A/B'd against the from-scratch full
//     replan on the same warm instance (arrival/admitted=N/...);
//   - the end-to-end arrival cascade: N tasks admitted back-to-back through
//     a fresh scheduler, where prefix reuse turns the total cost superlinear
//     in its favour (cascade/arrivals=N/...);
//   - the hierarchical-admission cascade: a reject-heavy hotspot workload
//     A/B'd with the pod-local feasibility precheck on vs off
//     (cascade_hier/arrivals=N/...) — decisions are bit-identical, the
//     precheck only changes what a rejection costs;
//   - exp::run_sweep thread scaling on a small scenario.
//
// `--quick` shrinks everything to CI-smoke scale. With `--json` the run
// writes BENCH_micro_replan.json for scripts/bench_compare.py; the
// `replan/admitted=N/speedup` metrics record optimized-vs-reference ratios.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/occupancy.hpp"
#include "core/path_allocation.hpp"
#include "core/taps_scheduler.hpp"
#include "exp/sweep.hpp"
#include "net/network.hpp"
#include "topo/fattree.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace {

using taps::bench::BenchRunner;
using taps::bench::do_not_optimize;

/// A set of n busy intervals [2i, 2i+1) — unit holes between all neighbors,
/// the worst fragmentation shape for earliest-fit scans.
taps::util::IntervalSet fragmented_set(std::size_t n) {
  taps::util::IntervalSet set;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = 2.0 * static_cast<double>(i);
    set.insert(lo, lo + 1.0);
  }
  return set;
}

void bench_interval_set(BenchRunner& runner, bool quick) {
  const std::size_t n = quick ? 256 : 4096;
  const double span = 2.0 * static_cast<double>(n);

  taps::util::Rng rng(20260807);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.uniform_real(0.0, span - 2.0);

  // Mid-set insert + erase on a fragmented set (state stays bounded: every
  // op removes at most what it added plus one pre-existing busy window).
  {
    taps::util::IntervalSet set = fragmented_set(n);
    std::size_t k = 0;
    runner.run("interval_set/insert_erase", [&] {
      const double lo = xs[k++ & 1023];
      set.insert(lo, lo + 0.75);
      set.erase(lo, lo + 0.75);
      do_not_optimize(set);
    });
  }

  // Earliest-fit needing several holes, from a moving start time.
  {
    const taps::util::IntervalSet set = fragmented_set(n);
    std::size_t k = 0;
    runner.run("interval_set/allocate_earliest", [&] {
      const double from = xs[k++ & 1023];
      const auto got = set.allocate_earliest(from, 25.5, span + 64.0);
      do_not_optimize(got);
    });
  }
}

void bench_occupancy(BenchRunner& runner, bool quick) {
  // A 6-hop path (fat-tree inter-pod length) over a map whose links carry
  // phase-shifted busy patterns, so the path union is ragged.
  const std::size_t link_count = 8;
  const std::size_t per_link = quick ? 128 : 2048;
  taps::core::OccupancyMap occ(link_count);
  taps::topo::Path path;
  for (std::size_t l = 0; l < 6; ++l) {
    path.links.push_back(static_cast<taps::topo::LinkId>(l));
    taps::util::IntervalSet busy;
    for (std::size_t i = 0; i < per_link; ++i) {
      const double lo =
          3.0 * static_cast<double>(i) + 0.35 * static_cast<double>(l);
      busy.insert(lo, lo + 1.0);
    }
    taps::topo::Path one;
    one.links.push_back(static_cast<taps::topo::LinkId>(l));
    occ.occupy(one, busy);
  }
  const double span = 3.0 * static_cast<double>(per_link);

  taps::util::Rng rng(77);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.uniform_real(0.0, span - 8.0);

  {
    std::size_t k = 0;
    runner.run("occupancy/collides", [&] {
      const double lo = xs[k++ & 1023];
      taps::util::IntervalSet probe;
      probe.insert(lo, lo + 0.25);
      probe.insert(lo + 2.0, lo + 2.25);
      do_not_optimize(occ.collides(path, probe));
    });
  }
  {
    runner.run("occupancy/path_union", [&] {
      do_not_optimize(occ.path_union(path));
    });
  }
  {
    std::size_t k = 0;
    runner.run("occupancy/path_union_from", [&] {
      // Monotone-ish query times: the hint cache resumes instead of
      // re-bisecting (mirrors the replan's advancing `now`).
      do_not_optimize(occ.path_union_from(path, xs[k++ & 1023]));
    });
  }
}

/// N single-flow tasks between random host pairs on the scaled fat-tree:
/// ~0.5-2 ms transfers with deadlines spread over [50 ms, 4 s], so the
/// occupancy map gets deep and fragmented like a loaded controller's.
struct ReplanInstance {
  taps::net::Network net;
  std::vector<taps::net::FlowId> order;  // EDF+SJF, pre-sorted once

  explicit ReplanInstance(const taps::topo::Topology& topo, std::size_t flows,
                          std::uint64_t seed)
      : net(topo) {
    const auto& hosts = topo.hosts();
    const auto last = static_cast<std::int64_t>(hosts.size()) - 1;
    const double cap = net.capacity();
    taps::util::Rng rng(seed);
    for (std::size_t i = 0; i < flows; ++i) {
      taps::net::FlowSpec fs;
      fs.src = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
      do {
        fs.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
      } while (fs.dst == fs.src);
      fs.size = cap * rng.uniform_real(0.0005, 0.002);
      const double deadline = rng.uniform_real(0.05, 4.0);
      net.add_task(0.0, deadline, std::span<const taps::net::FlowSpec>(&fs, 1));
    }
    order.resize(flows);
    for (std::size_t i = 0; i < flows; ++i) {
      order[i] = static_cast<taps::net::FlowId>(i);
    }
    taps::core::sort_edf_sjf(net, order);
  }
};

void bench_replan(BenchRunner& runner, bool quick, std::uint64_t seed) {
  const taps::topo::FatTree topo(taps::topo::FatTreeConfig::scaled());
  const std::size_t link_count = topo.graph().link_count();

  std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{200} : std::vector<std::size_t>{1000, 10000, 50000};
  for (const std::size_t n : scales) {
    const ReplanInstance inst(topo, n, seed + n);
    // One timed op == one Algorithm-1 replan: re-sort the admitted set and
    // re-plan every flow through a fresh occupancy map.
    const auto replan = [&](const taps::core::PlanConfig& config,
                            taps::core::OccupancyMap& occ,
                            taps::core::PlanScratch* scratch) {
      occ.reset(link_count);
      std::vector<taps::net::FlowId> order = inst.order;
      taps::core::sort_edf_sjf(inst.net, order);
      const auto plans =
          taps::core::plan_flows(inst.net, occ, order, 0.0, config, scratch);
      do_not_optimize(plans);
    };

    const std::string prefix = "replan/admitted=" + std::to_string(n) + "/";
    taps::core::OccupancyMap occ(link_count);
    taps::core::PlanScratch scratch;
    const taps::core::PlanConfig optimized{};
    const auto& opt =
        runner.run(prefix + "optimized", [&] { replan(optimized, occ, &scratch); });
    const double opt_median = opt.median;

    // The pre-optimization path: reference TimeAllocation (full path-union
    // materialization), no candidate cache, occupancy storage re-grown every
    // replan. Skipped at 50k where it would dominate the bench's runtime.
    if (n <= 10000) {
      taps::core::PlanConfig reference{};
      reference.reference_allocator = true;
      const auto& ref = runner.run(prefix + "reference", [&] {
        taps::core::OccupancyMap fresh(link_count);
        replan(reference, fresh, nullptr);
      });
      runner.add_metric(prefix + "speedup", ref.median / opt_median);
    }
  }
}

/// Register `tasks` single-flow tasks, all arriving at t=0 with near-sorted
/// deadlines spread over [50 ms, 4 s]: deadline(i) = base + i*step + jitter
/// where jitter < `jitter_steps`*step, so each arrival sorts into the last
/// few EDF positions (small replanned tails under the incremental session,
/// full re-plans under the oracle).
void fill_arrival_tasks(taps::net::Network& net, const taps::topo::Topology& topo,
                        std::size_t tasks, std::uint64_t seed, double jitter_steps) {
  const auto& hosts = topo.hosts();
  const auto last = static_cast<std::int64_t>(hosts.size()) - 1;
  const double cap = net.capacity();
  const double step = 4.0 / static_cast<double>(tasks);
  taps::util::Rng rng(seed);
  for (std::size_t i = 0; i < tasks; ++i) {
    taps::net::FlowSpec fs;
    fs.src = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
    do {
      fs.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
    } while (fs.dst == fs.src);
    fs.size = cap * rng.uniform_real(0.0005, 0.002);
    const double deadline = 0.05 + step * static_cast<double>(i) +
                            rng.uniform_real(0.0, jitter_steps * step);
    net.add_task(0.0, deadline, std::span<const taps::net::FlowSpec>(&fs, 1));
  }
}

/// Seconds elapsed feeding tasks [first, first+count) through `sched` at t=0.
double time_arrivals(taps::core::TapsScheduler& sched, std::size_t first,
                     std::size_t count) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    sched.on_task_arrival(static_cast<taps::net::TaskId>(first + i), 0.0);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Steady-state per-arrival cost through TapsScheduler: ONE warm instance
/// holding N admitted flows; each sample times fresh spare-task arrivals with
/// the incremental session toggled on/off via set_incremental_replan, so both
/// modes pay their price against bit-identical committed state. Incremental
/// samples batch several arrivals (the per-op time is total/batch) because a
/// single reused-prefix arrival is too fast to time single-shot; the admitted
/// count drifts by well under the batch total over the run, which is
/// deterministic and identical across runs — the gate compares like with like.
void bench_arrival(BenchRunner& runner, bool quick, std::uint64_t seed) {
  const taps::topo::FatTree topo(taps::topo::FatTreeConfig::scaled());
  const std::size_t n = quick ? 200 : 10000;
  const std::size_t repeats = runner.options().repeats;
  const std::size_t batch = quick ? 25 : 4;  // incremental arrivals per sample
  const std::size_t spares = (1 + repeats) + batch * (1 + repeats);

  taps::net::Network net(topo);
  // jitter_steps = 0: strictly increasing deadlines, so warming the instance
  // costs one planned flow per arrival instead of a quadratic cascade.
  fill_arrival_tasks(net, topo, n + spares, seed, 0.0);

  taps::core::TapsScheduler sched;
  sched.bind(net);
  for (std::size_t i = 0; i < n; ++i) {
    sched.on_task_arrival(static_cast<taps::net::TaskId>(i), 0.0);
  }

  std::size_t next = n;
  const auto measure = [&](bool incremental, std::size_t per_sample) {
    sched.set_incremental_replan(incremental);
    time_arrivals(sched, next, per_sample);  // warmup in this mode, untimed
    next += per_sample;
    std::vector<double> samples;
    samples.reserve(repeats);
    for (std::size_t r = 0; r < repeats; ++r) {
      samples.push_back(time_arrivals(sched, next, per_sample) /
                        static_cast<double>(per_sample));
      next += per_sample;
    }
    return samples;
  };

  const std::string prefix = "arrival/admitted=" + std::to_string(n) + "/";
  std::vector<double> full = measure(/*incremental=*/false, 1);
  std::vector<double> inc = measure(/*incremental=*/true, batch);
  const double full_median = runner.add_samples(prefix + "full", std::move(full)).median;
  const double inc_median =
      runner.add_samples(prefix + "incremental", std::move(inc), batch).median;
  runner.add_metric(prefix + "speedup", full_median / inc_median);
}

/// End-to-end arrival cascade: each op binds a fresh scheduler and feeds N
/// near-sorted-deadline tasks through it back-to-back. The oracle pays a full
/// replan per arrival (Θ(N²) planned flows); the session adopts the committed
/// prefix and replans only the tail, so its advantage grows with N — the
/// speedup metrics at matched scales record that superlinear separation. The
/// full-replan runs are capped at 1000 arrivals (beyond that one op takes
/// minutes); incremental extends to 50k where the oracle is untimeable.
void bench_cascade(BenchRunner& runner, bool quick, std::uint64_t seed) {
  const taps::topo::FatTree topo(taps::topo::FatTreeConfig::scaled());
  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{100}
            : std::vector<std::size_t>{200, 1000, 10000, 50000};
  constexpr std::size_t kFullCap = 1000;       // largest oracle-timed scale
  constexpr std::size_t kSlowSamples = 3;      // samples for multi-second ops

  const auto cascade = [&](std::size_t n, bool incremental) {
    taps::net::Network net(topo);
    fill_arrival_tasks(net, topo, n, seed + n, /*jitter_steps=*/3.0);
    taps::core::TapsConfig config;
    config.incremental_replan = incremental;
    taps::core::TapsScheduler sched(config);
    sched.bind(net);
    const double secs = time_arrivals(sched, 0, n);
    return std::make_pair(secs, sched.counters());
  };

  for (const std::size_t n : scales) {
    const std::string prefix = "cascade/arrivals=" + std::to_string(n) + "/";
    const bool slow = !quick && n >= 10000;
    const std::size_t reps = slow ? kSlowSamples : runner.options().repeats;

    std::vector<double> inc;
    inc.reserve(reps);
    taps::core::TapsCounters counters;
    for (std::size_t r = 0; r < reps; ++r) {
      auto [secs, c] = cascade(n, /*incremental=*/true);
      inc.push_back(secs);
      counters = c;
    }
    const double inc_median =
        runner.add_samples(prefix + "incremental", std::move(inc)).median;
    // Fraction of per-arrival planning avoided by prefix adoption (cross-
    // arrival reuse + checkpoint resume vs flows actually re-planned).
    const double reused = static_cast<double>(counters.cross_arrival_reuse_flows +
                                              counters.checkpoint_reuse_flows);
    const double planned = static_cast<double>(counters.flows_planned);
    runner.add_metric(prefix + "reuse_ratio", reused / std::max(1.0, reused + planned));

    if (quick || n <= kFullCap) {
      const std::size_t full_reps = (!quick && n >= kFullCap) ? kSlowSamples : reps;
      std::vector<double> full;
      full.reserve(full_reps);
      for (std::size_t r = 0; r < full_reps; ++r) {
        full.push_back(cascade(n, /*incremental=*/false).first);
      }
      const double full_median =
          runner.add_samples(prefix + "full", std::move(full)).median;
      runner.add_metric(prefix + "speedup", full_median / inc_median);
    }
  }
}

/// Reject-heavy cascade for the hierarchical pod precheck, all at t=0:
/// ~65% background tasks (random host pairs, near-sorted deadlines over
/// [50 ms, 4 s], 0.5-2 ms transfers — mostly admitted, so the committed set
/// and the occupancy map grow like a loaded controller's) interleaved with
/// ~35% doomed probes from 8 hotspot hosts whose transfer exceeds their
/// deadline window (1.05-1.6x) — provably infeasible before any occupancy
/// is consulted. Without the precheck every probe still pays a trial
/// replan at its (random) EDF position over the committed tail; with it
/// the probe is fast-rejected for the cost of the adoption-only re-commit.
void fill_hotspot_tasks(taps::net::Network& net, const taps::topo::Topology& topo,
                        std::size_t tasks, std::uint64_t seed) {
  const auto& hosts = topo.hosts();
  const auto last = static_cast<std::int64_t>(hosts.size()) - 1;
  const double cap = net.capacity();
  constexpr std::size_t kHotspots = 8;
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / kHotspots);
  const double step = 4.0 / static_cast<double>(tasks);
  taps::util::Rng rng(seed);
  for (std::size_t i = 0; i < tasks; ++i) {
    taps::net::FlowSpec fs;
    if (rng.bernoulli(0.35)) {  // hotspot probe: cannot fit even an idle link
      const auto hot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kHotspots) - 1));
      fs.src = hosts[(hot * stride) % hosts.size()];
      do {
        fs.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
      } while (fs.dst == fs.src);
      const double deadline = rng.uniform_real(0.05, 4.0);
      fs.size = cap * deadline * rng.uniform_real(1.05, 1.6);
      net.add_task(0.0, deadline, std::span<const taps::net::FlowSpec>(&fs, 1));
    } else {  // background: near-sorted deadline ramp, mostly admitted
      fs.src = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
      do {
        fs.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, last))];
      } while (fs.dst == fs.src);
      fs.size = cap * rng.uniform_real(0.0005, 0.002);
      const double deadline =
          0.05 + step * static_cast<double>(i) + rng.uniform_real(0.0, 3.0 * step);
      net.add_task(0.0, deadline, std::span<const taps::net::FlowSpec>(&fs, 1));
    }
  }
}

/// Hierarchical-admission cascade A/B: the hotspot cascade with the
/// pod-local feasibility precheck on vs off on otherwise identical
/// schedulers. Outcomes are bit-identical either way (pinned by
/// tests/core/taps_hierarchy_prop_test.cpp); the precheck only changes what
/// a rejection costs — a provably-infeasible arrival skips the trial replan
/// and pays just the adoption-only compacting re-commit. The
/// fast_reject_share metric records how often the fast path fired, so the
/// speedup can be read against its coverage.
void bench_cascade_hier(BenchRunner& runner, bool quick, std::uint64_t seed) {
  const taps::topo::FatTree topo(taps::topo::FatTreeConfig::scaled());
  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{100} : std::vector<std::size_t>{1000, 10000};
  constexpr std::size_t kSlowSamples = 3;  // samples for multi-second ops

  const auto cascade = [&](std::size_t n, bool precheck) {
    taps::net::Network net(topo);
    fill_hotspot_tasks(net, topo, n, seed + n);
    taps::core::TapsConfig config;
    config.hierarchical_precheck = precheck;
    taps::core::TapsScheduler sched(config);
    sched.bind(net);
    const double secs = time_arrivals(sched, 0, n);
    return std::make_pair(secs, sched.counters());
  };

  for (const std::size_t n : scales) {
    const std::string prefix = "cascade_hier/arrivals=" + std::to_string(n) + "/";
    const bool slow = !quick && n >= 10000;
    const std::size_t reps = slow ? kSlowSamples : runner.options().repeats;

    std::vector<double> on;
    on.reserve(reps);
    taps::core::TapsCounters counters;
    for (std::size_t r = 0; r < reps; ++r) {
      auto [secs, c] = cascade(n, /*precheck=*/true);
      on.push_back(secs);
      counters = c;
    }
    const double on_median =
        runner.add_samples(prefix + "precheck_on", std::move(on)).median;

    std::vector<double> off;
    off.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      off.push_back(cascade(n, /*precheck=*/false).first);
    }
    const double off_median =
        runner.add_samples(prefix + "precheck_off", std::move(off)).median;

    runner.add_metric(prefix + "speedup", off_median / on_median);
    runner.add_metric(
        prefix + "fast_reject_share",
        static_cast<double>(counters.pod_fast_rejects) /
            static_cast<double>(std::max<std::size_t>(1, counters.tasks_rejected)));
  }
}

void bench_sweep_threads(BenchRunner& runner, bool quick) {
  // Thread scaling of the sweep fan-out itself (cells are independent
  // simulations). On a 1-core host the curve is flat — that is the honest
  // answer, and the determinism test guarantees results do not depend on it.
  taps::workload::Scenario base = taps::workload::Scenario::single_rooted(false);
  base.workload.task_count = quick ? 10 : 60;
  std::vector<taps::exp::SweepPoint> points;
  for (int i = 0; i < 4; ++i) {
    taps::exp::SweepPoint p;
    p.x = static_cast<double>(i);
    p.scenario = base;
    p.scenario.seed = taps::util::hash_combine(base.seed, static_cast<std::uint64_t>(i));
    points.push_back(std::move(p));
  }
  const std::vector<taps::exp::SchedulerKind> scheds{taps::exp::SchedulerKind::kTaps};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    runner.run("sweep/threads=" + std::to_string(threads), [&] {
      do_not_optimize(taps::exp::run_sweep(points, scheds, threads, 1));
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  taps::util::Cli cli("bench_micro_replan",
                      "TAPS hot-path microbenchmarks: IntervalSet, OccupancyMap, "
                      "per-arrival replan at 1k/10k/50k flows, incremental-session "
                      "A/B + arrival cascades, hierarchical pod-precheck A/B, "
                      "sweep thread scaling");
  taps::bench::add_common_options(cli);
  cli.add_flag("quick", "tiny CI-smoke scale (fewer flows, smaller sets)");
  if (!cli.parse(argc, argv)) return 1;
  const taps::bench::CommonOptions o = taps::bench::read_common_options(cli);
  const bool quick = cli.flag("quick");

  taps::bench::banner("micro_replan", "TAPS hot-path microbenchmarks", o);
  if (quick) std::cout << "(quick mode: CI-smoke scale)\n\n";

  BenchRunner runner;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 5);

  bench_interval_set(runner, quick);
  bench_occupancy(runner, quick);
  bench_replan(runner, quick, o.seed);
  bench_arrival(runner, quick, o.seed);
  bench_cascade(runner, quick, o.seed);
  bench_cascade_hier(runner, quick, o.seed);
  bench_sweep_threads(runner, quick);

  for (const auto& [name, value] : runner.metrics()) {
    std::cout << "metric  " << name << " = " << value << "\n";
  }

  taps::bench::maybe_write_metrics_csv(o, runner);
  taps::bench::maybe_write_json(o, "micro_replan", runner);
  return 0;
}
