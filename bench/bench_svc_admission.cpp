// End-to-end throughput of the admission controller service: a pod-local
// arrival stream on the scaled fat-tree pushed through svc::AdmissionService
// in its three operating points —
//   - admit/global_seq:       shards=1, pumped inline (the paper's single
//                             global controller);
//   - admit/sharded8_seq:     shards=8, pumped inline (sharded domains,
//                             still one thread — isolates the sharding win
//                             from the threading win);
//   - admit/sharded8_threads4: shards=8, dispatcher + 4 workers, batches of
//                             64 (the full service: submit-all then
//                             wait_idle).
// A second, mixed stream (~30% of tasks span two pods) measures
// hierarchical cross-pod admission through the same three operating points
// (admit_mixed/...), plus the retired classification for reference
// (admit_mixed/legacy_sharded8_seq: cross_pod=false, spanning tasks
// rejected kCrossShard).
//
// One sample = one fresh service admitting the whole stream; construction
// is untimed. Derived metrics record admissions/sec, the accept ratio and
// the kCrossShard reject share per configuration, the sharded and threaded
// speedups over the global sequential baseline, and — on the mixed stream —
// the sharded service's accept-ratio agreement with the unsharded global
// controller (the admission-quality cost of going hierarchical).
//
// `--quick` shrinks the streams to CI-smoke scale. With `--json` the run
// writes BENCH_svc_admission.json for scripts/bench_compare.py.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "svc/service.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace {

using taps::bench::BenchRunner;

/// Pod-local single-flow tasks with strictly increasing arrivals (the
/// service's submit path requires monotone arrival order): ~2-20 ms
/// transfers at moderate deadline slack, so the planner accepts most of the
/// stream and every shard carries a live working set while admitting.
std::vector<taps::svc::TaskRequest> pod_local_stream(const taps::topo::FatTree& ft,
                                                     std::size_t n, std::uint64_t seed) {
  const int half = ft.k() / 2;
  const double capacity = ft.graph().links().front().capacity;
  taps::util::Rng rng(seed);
  std::vector<taps::svc::TaskRequest> out;
  out.reserve(n);
  double arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrival += rng.exponential(0.01) + 1e-7;
    const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
    const auto host = [&] {
      return ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                     static_cast<int>(rng.uniform_int(0, half - 1)));
    };
    const taps::topo::NodeId src = host();
    taps::topo::NodeId dst = src;
    while (dst == src) dst = host();
    const double transfer = rng.uniform_real(0.002, 0.02);
    taps::svc::TaskRequest req;
    req.arrival = arrival;
    req.deadline = arrival + rng.uniform_real(1.2, 3.0) * transfer;
    req.flows.push_back({src, dst, transfer * capacity});
    out.push_back(std::move(req));
  }
  return out;
}

/// Mixed arrival stream: same shape as pod_local_stream, but ~30% of tasks
/// span two pods — the traffic the sharded service used to reject
/// kCrossShard unconditionally and now admits on its global domain under
/// the per-pod uplink budget.
std::vector<taps::svc::TaskRequest> mixed_stream(const taps::topo::FatTree& ft,
                                                 std::size_t n, std::uint64_t seed) {
  const int half = ft.k() / 2;
  const double capacity = ft.graph().links().front().capacity;
  taps::util::Rng rng(seed);
  std::vector<taps::svc::TaskRequest> out;
  out.reserve(n);
  double arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrival += rng.exponential(0.01) + 1e-7;
    const int src_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
    int dst_pod = src_pod;
    if (rng.bernoulli(0.3)) {
      while (dst_pod == src_pod) {
        dst_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
      }
    }
    const auto host = [&](int pod) {
      return ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                     static_cast<int>(rng.uniform_int(0, half - 1)));
    };
    const taps::topo::NodeId src = host(src_pod);
    taps::topo::NodeId dst = src;
    while (dst == src) dst = host(dst_pod);
    const double transfer = rng.uniform_real(0.002, 0.02);
    taps::svc::TaskRequest req;
    req.arrival = arrival;
    req.deadline = arrival + rng.uniform_real(1.2, 3.0) * transfer;
    req.flows.push_back({src, dst, transfer * capacity});
    out.push_back(std::move(req));
  }
  return out;
}

struct RunOutcome {
  double seconds = 0.0;
  std::size_t accepted = 0;
  std::size_t cross_shard = 0;  // Reason::kCrossShard rejects
};

/// One timed admission run: fresh service (untimed), then submit the whole
/// stream and drain it — pump() inline, or wait_idle() on a started service.
RunOutcome run_stream(const taps::topo::FatTree& ft,
                      const std::vector<taps::svc::TaskRequest>& requests,
                      const taps::svc::ServiceConfig& config, bool started) {
  taps::svc::AdmissionService service(ft, config);
  if (started) service.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (const taps::svc::TaskRequest& r : requests) (void)service.submit(r);
  if (started) {
    service.wait_idle();
  } else {
    service.pump();
  }
  const auto t1 = std::chrono::steady_clock::now();
  service.stop();
  const taps::svc::ServiceStats stats = service.stats();
  if (stats.responses != requests.size()) {
    std::cerr << "bench_svc_admission: response count mismatch ("
              << stats.responses << " != " << requests.size() << ")\n";
  }
  const std::size_t cross_shard =
      stats.by_reason[static_cast<std::size_t>(taps::svc::Reason::kCrossShard)];
  return {std::chrono::duration<double>(t1 - t0).count(), stats.accepted, cross_shard};
}

struct ConfigResult {
  double median = 0.0;
  std::size_t accepted = 0;
};

/// Time `repeats` runs of one configuration and record samples plus the
/// derived admissions/sec, accept-ratio and kCrossShard-share metrics.
ConfigResult bench_config(BenchRunner& runner, const std::string& name,
                          const taps::topo::FatTree& ft,
                          const std::vector<taps::svc::TaskRequest>& requests,
                          const taps::svc::ServiceConfig& config, bool started) {
  const std::size_t repeats = runner.options().repeats;
  std::vector<double> samples;
  samples.reserve(repeats);
  std::size_t accepted = 0;
  std::size_t cross_shard = 0;
  (void)run_stream(ft, requests, config, started);  // warmup, untimed
  for (std::size_t r = 0; r < repeats; ++r) {
    const RunOutcome out = run_stream(ft, requests, config, started);
    samples.push_back(out.seconds);
    accepted = out.accepted;
    cross_shard = out.cross_shard;
  }
  const double median = runner.add_samples(name, std::move(samples)).median;
  runner.add_metric(name + "/admissions_per_sec",
                    static_cast<double>(accepted) / median);
  runner.add_metric(name + "/accept_ratio",
                    static_cast<double>(accepted) /
                        static_cast<double>(requests.size()));
  runner.add_metric(name + "/cross_shard_share",
                    static_cast<double>(cross_shard) /
                        static_cast<double>(requests.size()));
  return {median, accepted};
}

}  // namespace

int main(int argc, char** argv) {
  taps::util::Cli cli("bench_svc_admission",
                      "admission-service throughput: pod-local and mixed cross-pod "
                      "arrival streams through the global sequential controller, the "
                      "pod-sharded hierarchical controller, and the batched+threaded "
                      "service");
  taps::bench::add_common_options(cli);
  cli.add_flag("quick", "tiny CI-smoke scale (shorter arrival stream)");
  if (!cli.parse(argc, argv)) return 1;
  const taps::bench::CommonOptions o = taps::bench::read_common_options(cli);
  const bool quick = cli.flag("quick");

  taps::bench::banner("svc_admission", "admission controller service throughput", o);
  if (quick) std::cout << "(quick mode: CI-smoke scale)\n\n";

  BenchRunner runner;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 5);

  const taps::topo::FatTree ft(taps::topo::FatTreeConfig::scaled());  // k=8, 128 hosts
  const std::size_t n = quick ? 1000 : 20000;
  const std::vector<taps::svc::TaskRequest> requests = pod_local_stream(ft, n, o.seed);

  taps::svc::ServiceConfig config;
  config.queue_capacity = requests.size() + 1;  // submit-all never backpressures
  config.shard.compact_interval = 1024;

  config.shards = 1;
  config.threads = 0;
  const ConfigResult global_seq =
      bench_config(runner, "admit/global_seq", ft, requests, config, /*started=*/false);

  config.shards = 8;
  const ConfigResult sharded_seq =
      bench_config(runner, "admit/sharded8_seq", ft, requests, config, /*started=*/false);

  config.threads = 4;
  config.max_batch = 64;
  const ConfigResult sharded_threaded = bench_config(runner, "admit/sharded8_threads4", ft,
                                                     requests, config, /*started=*/true);

  runner.add_metric("admit/sharded_speedup", global_seq.median / sharded_seq.median);
  runner.add_metric("admit/threaded_speedup", global_seq.median / sharded_threaded.median);

  // Hierarchical cross-pod admission: the mixed stream through the same
  // operating points. Spanning tasks ride the dedicated global domain
  // (local reserve -> global commit); legacy_sharded8_seq keeps the old
  // classification for reference, so its cross_shard_share metric records
  // exactly the traffic the hierarchical path recovers.
  const std::vector<taps::svc::TaskRequest> mixed = mixed_stream(ft, n, o.seed + 1);
  config.shards = 1;
  config.threads = 0;
  const ConfigResult mixed_global =
      bench_config(runner, "admit_mixed/global_seq", ft, mixed, config, /*started=*/false);

  config.shards = 8;
  const ConfigResult mixed_sharded =
      bench_config(runner, "admit_mixed/sharded8_seq", ft, mixed, config, /*started=*/false);

  config.threads = 4;
  const ConfigResult mixed_threaded = bench_config(runner, "admit_mixed/sharded8_threads4",
                                                   ft, mixed, config, /*started=*/true);

  config.threads = 0;
  config.cross_pod = false;
  (void)bench_config(runner, "admit_mixed/legacy_sharded8_seq", ft, mixed, config,
                     /*started=*/false);
  config.cross_pod = true;

  runner.add_metric("admit_mixed/sharded_speedup", mixed_global.median / mixed_sharded.median);
  runner.add_metric("admit_mixed/threaded_speedup",
                    mixed_global.median / mixed_threaded.median);
  // Admission-quality agreement with the unsharded controller: 1.0 means
  // hierarchical admission accepted exactly as much of the mixed stream.
  runner.add_metric("admit_mixed/accept_agreement",
                    static_cast<double>(mixed_sharded.accepted) /
                        static_cast<double>(std::max<std::size_t>(1, mixed_global.accepted)));

  for (const auto& [name, value] : runner.metrics()) {
    std::cout << "metric  " << name << " = " << value << "\n";
  }

  taps::bench::maybe_write_metrics_csv(o, runner);
  taps::bench::maybe_write_json(o, "svc_admission", runner);
  return 0;
}
