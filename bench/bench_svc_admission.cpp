// End-to-end throughput of the admission controller service: a pod-local
// arrival stream on the scaled fat-tree pushed through svc::AdmissionService
// in its three operating points —
//   - admit/global_seq:       shards=1, pumped inline (the paper's single
//                             global controller);
//   - admit/sharded8_seq:     shards=8, pumped inline (sharded domains,
//                             still one thread — isolates the sharding win
//                             from the threading win);
//   - admit/sharded8_threads4: shards=8, dispatcher + 4 workers, batches of
//                             64 (the full service: submit-all then
//                             wait_idle).
// One sample = one fresh service admitting the whole stream; construction
// is untimed. Derived metrics record admissions/sec per configuration and
// the sharded and threaded speedups over the global sequential baseline.
//
// `--quick` shrinks the stream to CI-smoke scale. With `--json` the run
// writes BENCH_svc_admission.json for scripts/bench_compare.py.
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "svc/service.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace {

using taps::bench::BenchRunner;

/// Pod-local single-flow tasks with strictly increasing arrivals (the
/// service's submit path requires monotone arrival order): ~2-20 ms
/// transfers at moderate deadline slack, so the planner accepts most of the
/// stream and every shard carries a live working set while admitting.
std::vector<taps::svc::TaskRequest> pod_local_stream(const taps::topo::FatTree& ft,
                                                     std::size_t n, std::uint64_t seed) {
  const int half = ft.k() / 2;
  const double capacity = ft.graph().links().front().capacity;
  taps::util::Rng rng(seed);
  std::vector<taps::svc::TaskRequest> out;
  out.reserve(n);
  double arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrival += rng.exponential(0.01) + 1e-7;
    const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
    const auto host = [&] {
      return ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                     static_cast<int>(rng.uniform_int(0, half - 1)));
    };
    const taps::topo::NodeId src = host();
    taps::topo::NodeId dst = src;
    while (dst == src) dst = host();
    const double transfer = rng.uniform_real(0.002, 0.02);
    taps::svc::TaskRequest req;
    req.arrival = arrival;
    req.deadline = arrival + rng.uniform_real(1.2, 3.0) * transfer;
    req.flows.push_back({src, dst, transfer * capacity});
    out.push_back(std::move(req));
  }
  return out;
}

struct RunOutcome {
  double seconds = 0.0;
  std::size_t accepted = 0;
};

/// One timed admission run: fresh service (untimed), then submit the whole
/// stream and drain it — pump() inline, or wait_idle() on a started service.
RunOutcome run_stream(const taps::topo::FatTree& ft,
                      const std::vector<taps::svc::TaskRequest>& requests,
                      const taps::svc::ServiceConfig& config, bool started) {
  taps::svc::AdmissionService service(ft, config);
  if (started) service.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (const taps::svc::TaskRequest& r : requests) (void)service.submit(r);
  if (started) {
    service.wait_idle();
  } else {
    service.pump();
  }
  const auto t1 = std::chrono::steady_clock::now();
  service.stop();
  const taps::svc::ServiceStats stats = service.stats();
  if (stats.responses != requests.size()) {
    std::cerr << "bench_svc_admission: response count mismatch ("
              << stats.responses << " != " << requests.size() << ")\n";
  }
  return {std::chrono::duration<double>(t1 - t0).count(), stats.accepted};
}

/// Time `repeats` runs of one configuration and record samples plus the
/// derived admissions/sec and accept-ratio metrics. Returns the median.
double bench_config(BenchRunner& runner, const std::string& name,
                    const taps::topo::FatTree& ft,
                    const std::vector<taps::svc::TaskRequest>& requests,
                    const taps::svc::ServiceConfig& config, bool started) {
  const std::size_t repeats = runner.options().repeats;
  std::vector<double> samples;
  samples.reserve(repeats);
  std::size_t accepted = 0;
  (void)run_stream(ft, requests, config, started);  // warmup, untimed
  for (std::size_t r = 0; r < repeats; ++r) {
    const RunOutcome out = run_stream(ft, requests, config, started);
    samples.push_back(out.seconds);
    accepted = out.accepted;
  }
  const double median = runner.add_samples(name, std::move(samples)).median;
  runner.add_metric(name + "/admissions_per_sec",
                    static_cast<double>(accepted) / median);
  runner.add_metric(name + "/accept_ratio",
                    static_cast<double>(accepted) /
                        static_cast<double>(requests.size()));
  return median;
}

}  // namespace

int main(int argc, char** argv) {
  taps::util::Cli cli("bench_svc_admission",
                      "admission-service throughput: a pod-local arrival stream "
                      "through the global sequential controller, the pod-sharded "
                      "controller, and the batched+threaded service");
  taps::bench::add_common_options(cli);
  cli.add_flag("quick", "tiny CI-smoke scale (shorter arrival stream)");
  if (!cli.parse(argc, argv)) return 1;
  const taps::bench::CommonOptions o = taps::bench::read_common_options(cli);
  const bool quick = cli.flag("quick");

  taps::bench::banner("svc_admission", "admission controller service throughput", o);
  if (quick) std::cout << "(quick mode: CI-smoke scale)\n\n";

  BenchRunner runner;
  runner.options().repeats = std::max<std::size_t>(o.repeats, 5);

  const taps::topo::FatTree ft(taps::topo::FatTreeConfig::scaled());  // k=8, 128 hosts
  const std::size_t n = quick ? 1000 : 20000;
  const std::vector<taps::svc::TaskRequest> requests = pod_local_stream(ft, n, o.seed);

  taps::svc::ServiceConfig config;
  config.queue_capacity = requests.size() + 1;  // submit-all never backpressures
  config.shard.compact_interval = 1024;

  config.shards = 1;
  config.threads = 0;
  const double global_seq =
      bench_config(runner, "admit/global_seq", ft, requests, config, /*started=*/false);

  config.shards = 8;
  const double sharded_seq =
      bench_config(runner, "admit/sharded8_seq", ft, requests, config, /*started=*/false);

  config.threads = 4;
  config.max_batch = 64;
  const double sharded_threaded = bench_config(runner, "admit/sharded8_threads4", ft,
                                               requests, config, /*started=*/true);

  runner.add_metric("admit/sharded_speedup", global_seq / sharded_seq);
  runner.add_metric("admit/threaded_speedup", global_seq / sharded_threaded);

  for (const auto& [name, value] : runner.metrics()) {
    std::cout << "metric  " << name << " = " << value << "\n";
  }

  taps::bench::maybe_write_metrics_csv(o, runner);
  taps::bench::maybe_write_json(o, "svc_admission", runner);
  return 0;
}
