// Ablations for the design choices DESIGN.md calls out:
//   (a) candidate-path budget (Algorithm 2's "all possible paths" vs a cap):
//       completion ratio and controller cost vs max_paths on the fat-tree;
//   (b) TAPS heuristic vs the exact optimal admission on random single-link
//       instances (quantifies the price of the greedy EDF+SJF heuristic);
//   (c) PDQ switch flow-list limit: how the Fig. 3 artifact scales.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimal.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/pdq.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace {

using namespace taps;

void ablate_max_paths(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(a) TAPS candidate-path budget on the fat-tree\n";
  metrics::Table table({"max-paths", "task-ratio", "replans", "wall-s"});
  for (const std::size_t mp : {1u, 2u, 4u, 8u, 16u, 32u}) {
    workload::Scenario s = workload::Scenario::fat_tree(o.full_scale);
    s.seed = o.seed;
    s.max_paths = mp;
    double ratio = 0.0, wall = 0.0;
    std::size_t replans = 0;
    std::vector<double> walls;
    walls.reserve(o.repeats);
    for (std::size_t r = 0; r < o.repeats; ++r) {
      workload::Scenario sr = s;
      sr.seed = util::hash_combine(s.seed, r);
      const auto run = exp::run_experiment_full(sr, exp::SchedulerKind::kTaps);
      ratio += run.result.metrics.task_completion_ratio;
      wall += run.result.wall_seconds;
      walls.push_back(run.result.wall_seconds);
      const auto* taps = dynamic_cast<const core::TapsScheduler*>(run.scheduler.get());
      if (taps != nullptr) replans += taps->counters().replans;
    }
    table.row(static_cast<long long>(mp), ratio / static_cast<double>(o.repeats),
              static_cast<long long>(replans), wall);
    runner.add_samples("sim_wall/max_paths=" + std::to_string(mp), std::move(walls));
    runner.add_metric("max_paths=" + std::to_string(mp) + "/task_ratio",
                      ratio / static_cast<double>(o.repeats));
    runner.add_metric("max_paths=" + std::to_string(mp) + "/replans",
                      static_cast<double>(replans));
  }
  table.print(std::cout);
  std::cout << "\n";
}

void ablate_vs_optimal(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(b) TAPS admission vs exact optimum (single bottleneck link)\n";
  util::Rng rng(o.seed);
  metrics::Table table({"instances", "taps-tasks", "optimal-tasks", "ratio"});
  int taps_total = 0, opt_total = 0, instances = 0;

  for (int trial = 0; trial < 40; ++trial) {
    // Random single-link instance: 6 single-flow tasks at t=0.
    topo::Graph g;
    const auto s1 = g.add_node(topo::NodeKind::kTor, "s1");
    const auto s2 = g.add_node(topo::NodeKind::kTor, "s2");
    g.add_duplex_link(s1, s2, 1.0);
    std::vector<topo::NodeId> hosts;
    std::vector<topo::NodeId> left, right;
    for (int i = 0; i < 6; ++i) {
      const auto l = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
      const auto r = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
      g.add_duplex_link(l, s1, 1.0);
      g.add_duplex_link(r, s2, 1.0);
      left.push_back(l);
      right.push_back(r);
      hosts.push_back(l);
      hosts.push_back(r);
    }
    topo::GenericTopology topo(std::move(g), hosts, "dumbbell");
    net::Network net(topo);
    std::vector<core::SlTask> sl;
    for (int i = 0; i < 6; ++i) {
      const double deadline = rng.uniform_real(1.0, 6.0);
      const double size = rng.uniform_real(0.4, 2.5);
      net::FlowSpec f;
      f.src = left[static_cast<std::size_t>(i)];
      f.dst = right[static_cast<std::size_t>(i)];
      f.size = size;
      net.add_task(0.0, deadline, std::vector<net::FlowSpec>{f});
      sl.push_back(core::SlTask{{core::SlFlow{0.0, deadline, size}}});
    }
    core::TapsScheduler sched;
    sim::FluidSimulator simulator(net, sched);
    (void)simulator.run();
    for (const auto& t : net.tasks()) {
      if (t.state == net::TaskState::kCompleted) ++taps_total;
    }
    opt_total += static_cast<int>(core::optimal_single_link(sl).tasks_completed);
    ++instances;
  }
  table.row(instances, taps_total, opt_total,
            opt_total > 0 ? static_cast<double>(taps_total) / opt_total : 1.0);
  table.print(std::cout);
  std::cout << "\n";
  runner.add_metric("vs_optimal/taps_tasks", taps_total);
  runner.add_metric("vs_optimal/optimal_tasks", opt_total);
  runner.add_metric("vs_optimal/ratio",
                    opt_total > 0 ? static_cast<double>(taps_total) / opt_total : 1.0);
}

void ablate_flow_list(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(c) PDQ switch flow-list limit (distributed-scheduling artifact)\n";
  metrics::Table table({"flow-list-limit", "task-ratio", "flow-ratio"});
  for (const std::size_t limit : {1u, 2u, 4u, 8u, 0u}) {  // 0 = unlimited
    workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
    s.seed = o.seed;
    double tr = 0.0, fr = 0.0;
    for (std::size_t r = 0; r < o.repeats; ++r) {
      workload::Scenario sr = s;
      sr.seed = util::hash_combine(s.seed, r);
      const auto topology = workload::make_topology(sr);
      net::Network net(*topology);
      util::Rng rng(sr.seed);
      util::Rng wl = rng.fork("workload");
      (void)workload::generate(net, sr.workload, wl);
      sched::Pdq sched(
          sched::PdqConfig{.early_termination = true, .flow_list_limit = limit});
      sim::FluidSimulator simulator(net, sched);
      (void)simulator.run();
      const auto m = metrics::collect(net);
      tr += m.task_completion_ratio;
      fr += m.flow_completion_ratio;
    }
    const std::string key =
        limit == 0 ? std::string("unlimited") : std::to_string(limit);
    table.row(key, tr / static_cast<double>(o.repeats),
              fr / static_cast<double>(o.repeats));
    runner.add_metric("flow_list=" + key + "/task_ratio",
                      tr / static_cast<double>(o.repeats));
    runner.add_metric("flow_list=" + key + "/flow_ratio",
                      fr / static_cast<double>(o.repeats));
  }
  table.print(std::cout);
}

void ablate_preempt_policy(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(d) Reject-rule preemption policy, with single- and multi-wave tasks\n";
  metrics::Table table(
      {"waves/task", "policy", "task-ratio", "preemptions", "wasted-bw"});
  for (const int waves : {1, 2, 3}) {
    for (const core::PreemptPolicy policy :
         {core::PreemptPolicy::kProgress, core::PreemptPolicy::kSchedulable}) {
      double ratio = 0.0, waste = 0.0;
      std::size_t preemptions = 0;
      for (std::size_t r = 0; r < o.repeats; ++r) {
        workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
        s.seed = util::hash_combine(o.seed, r);
        s.workload.waves_per_task = waves;
        const auto topology = workload::make_topology(s);
        net::Network net(*topology);
        util::Rng rng(s.seed);
        util::Rng wl = rng.fork("workload");
        (void)workload::generate(net, s.workload, wl);
        core::TapsConfig config;
        config.preempt_policy = policy;
        core::TapsScheduler sched(config);
        sim::FluidSimulator simulator(net, sched);
        (void)simulator.run();
        const auto m = metrics::collect(net);
        ratio += m.task_completion_ratio;
        waste += m.wasted_bandwidth_ratio;
        preemptions += sched.counters().tasks_preempted;
      }
      const std::string policy_key =
          policy == core::PreemptPolicy::kProgress ? "progress" : "schedulable";
      table.row(waves,
                policy == core::PreemptPolicy::kProgress ? "progress (paper)"
                                                         : "schedulable",
                ratio / static_cast<double>(o.repeats),
                static_cast<long long>(preemptions),
                waste / static_cast<double>(o.repeats));
      const std::string prefix =
          "waves=" + std::to_string(waves) + "/" + policy_key + "/";
      runner.add_metric(prefix + "task_ratio", ratio / static_cast<double>(o.repeats));
      runner.add_metric(prefix + "preemptions", static_cast<double>(preemptions));
      runner.add_metric(prefix + "wasted_bw", waste / static_cast<double>(o.repeats));
    }
  }
  table.print(std::cout);
  std::cout << "\nprogress = the paper's literal rule (preempt only tasks with strictly\n"
               "less completed work); schedulable = forward-looking variant that lets a\n"
               "fully feasible newcomer displace a doomed incumbent. Preemptions and the\n"
               "waste they strand only appear with multi-wave tasks or the aggressive\n"
               "policy.\n";
}

void ablate_routing(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(e) Routing contribution: TAPS scheduling with centralized vs ECMP paths\n";
  metrics::Table table({"routing", "task-ratio", "flow-ratio"});
  for (const bool ecmp : {false, true}) {
    double tr = 0.0, fr = 0.0;
    for (std::size_t r = 0; r < o.repeats; ++r) {
      workload::Scenario s = workload::Scenario::fat_tree(o.full_scale);
      s.seed = util::hash_combine(o.seed, r);
      const auto topology = workload::make_topology(s);
      net::Network net(*topology);
      util::Rng rng(s.seed);
      util::Rng wl = rng.fork("workload");
      (void)workload::generate(net, s.workload, wl);
      core::TapsConfig config;
      config.max_paths = s.max_paths;
      config.ecmp_routing = ecmp;
      core::TapsScheduler sched(config);
      sim::FluidSimulator simulator(net, sched);
      (void)simulator.run();
      const auto m = metrics::collect(net);
      tr += m.task_completion_ratio;
      fr += m.flow_completion_ratio;
    }
    table.row(ecmp ? "ECMP hash (ablated)" : "centralized (Algorithm 2)",
              tr / static_cast<double>(o.repeats), fr / static_cast<double>(o.repeats));
    const std::string prefix = ecmp ? "routing=ecmp/" : "routing=centralized/";
    runner.add_metric(prefix + "task_ratio", tr / static_cast<double>(o.repeats));
    runner.add_metric(prefix + "flow_ratio", fr / static_cast<double>(o.repeats));
  }
  table.print(std::cout);
  std::cout << "\nBoth rows keep TAPS's slice scheduling and reject rule; only path\n"
               "selection differs — the gap is the routing scheme's own contribution.\n\n";
}

void ablate_size_distribution(const bench::CommonOptions& o, bench::BenchRunner& runner) {
  std::cout << "(f) Flow-size distribution robustness (paper assumes normal sizes)\n";
  std::vector<std::string> headers{"distribution"};
  for (const exp::SchedulerKind k : exp::all_schedulers()) headers.emplace_back(exp::to_string(k));
  metrics::Table table(std::move(headers));
  for (const workload::SizeDistribution dist :
       {workload::SizeDistribution::kNormal, workload::SizeDistribution::kLognormal,
        workload::SizeDistribution::kPareto}) {
    std::vector<std::string> row{workload::to_string(dist)};
    for (const exp::SchedulerKind kind : exp::all_schedulers()) {
      double ratio = 0.0;
      for (std::size_t r = 0; r < o.repeats; ++r) {
        workload::Scenario s = workload::Scenario::single_rooted(o.full_scale);
        s.seed = util::hash_combine(o.seed, r);
        s.workload.size_distribution = dist;
        ratio += exp::run_experiment(s, kind).metrics.task_completion_ratio;
      }
      row.push_back(metrics::Table::format(ratio / static_cast<double>(o.repeats)));
      runner.add_metric(std::string("size_dist=") + workload::to_string(dist) + "/" +
                            exp::to_string(kind) + "/task_ratio",
                        ratio / static_cast<double>(o.repeats));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nHeavy tails make whole-task completion harder for everyone (one\n"
               "elephant dooms its task); the scheduler ordering should survive.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_ablation", "TAPS design-choice ablations");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bench::CommonOptions o = bench::read_common_options(cli);
  bench::banner("Ablations",
                "path budget / optimality gap / PDQ flow lists / preemption policy", o);

  bench::BenchRunner runner;
  runner.options().verbose = false;
  ablate_max_paths(o, runner);
  ablate_vs_optimal(o, runner);
  ablate_flow_list(o, runner);
  ablate_preempt_policy(o, runner);
  ablate_routing(o, runner);
  ablate_size_distribution(o, runner);
  bench::maybe_write_metrics_csv(o, runner);
  bench::maybe_write_json(o, "ablation", runner);
  return 0;
}
