// Trace-driven experiments: generate a workload once, persist it to CSV, and
// re-run the exact same trace under any scheduler — the workflow for
// comparing policies on production-like traces, or for sharing a workload
// alongside a bug report.
//
//   ./trace_workflow --out /tmp/workload.csv            # generate + evaluate
//   ./trace_workflow --in /tmp/workload.csv --scheduler taps
#include <iostream>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("trace_workflow", "save/load workload traces and replay them");
  cli.add_option("in", "existing trace CSV to replay (skip generation)", "");
  cli.add_option("out", "where to write the generated trace", "/tmp/taps_workload.csv");
  cli.add_option("scheduler", "one scheduler to replay, or 'all'", "all");
  cli.add_option("seed", "generation seed", "42");
  cli.add_option("tasks", "tasks to generate", "30");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  workload::Scenario scenario = workload::Scenario::single_rooted(false);
  scenario.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  scenario.workload.task_count = static_cast<int>(cli.integer("tasks"));
  const auto topology = workload::make_topology(scenario);

  std::string trace_path = cli.str("in");
  if (trace_path.empty()) {
    // Generate and persist.
    net::Network net(*topology);
    util::Rng rng(scenario.seed);
    util::Rng wl = rng.fork("workload");
    (void)workload::generate(net, scenario.workload, wl);
    trace_path = cli.str("out");
    workload::save_trace(net, trace_path);
    std::cout << "generated " << net.tasks().size() << " tasks / " << net.flows().size()
              << " flows -> " << trace_path << "\n\n";
  }

  std::vector<exp::SchedulerKind> kinds;
  if (cli.str("scheduler") == "all") {
    kinds = exp::all_schedulers();
  } else {
    kinds.push_back(exp::parse_scheduler(cli.str("scheduler")));
  }

  metrics::Table table({"scheduler", "task-ratio", "flow-ratio", "wasted-bw"});
  for (const exp::SchedulerKind kind : kinds) {
    net::Network net(*topology);
    (void)workload::load_trace(net, trace_path);
    const auto scheduler = exp::make_scheduler(kind, scenario.max_paths);
    sim::FluidSimulator simulator(net, *scheduler);
    (void)simulator.run();
    const metrics::RunMetrics m = metrics::collect(net);
    table.row(exp::to_string(kind), m.task_completion_ratio, m.flow_completion_ratio,
              m.wasted_bandwidth_ratio);
  }
  std::cout << "replayed " << trace_path << ":\n\n";
  table.print(std::cout);
  std::cout << "\nReplays are bit-identical across runs: the trace carries every size,\n"
               "endpoint and deadline, so results depend only on the scheduler.\n";
  return 0;
}
