// Using the TAPS core as a standalone *admission planner*: given a set of
// deadline tasks, ask "which would the controller accept, and what transmit
// schedule would each flow get?" — useful for capacity planning without
// running a simulation. Also cross-checks the heuristic against the exact
// optimal admission on a single bottleneck.
//
//   ./admission_planner [--tasks N] [--seed S] [--deadline-ms D] [--size-kb KB]
#include <iostream>
#include <sstream>

#include "core/optimal.hpp"
#include "core/taps_scheduler.hpp"
#include "metrics/report.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace taps;

struct Dumbbell {
  std::unique_ptr<topo::GenericTopology> topology;
  std::vector<topo::NodeId> left, right;
};

Dumbbell make_dumbbell(int side) {
  topo::Graph g;
  const auto s1 = g.add_node(topo::NodeKind::kTor, "s1");
  const auto s2 = g.add_node(topo::NodeKind::kTor, "s2");
  g.add_duplex_link(s1, s2, topo::kGigabitPerSecond);
  Dumbbell d;
  std::vector<topo::NodeId> hosts;
  for (int i = 0; i < side; ++i) {
    const auto l = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
    const auto r = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
    g.add_duplex_link(l, s1, topo::kGigabitPerSecond);
    g.add_duplex_link(r, s2, topo::kGigabitPerSecond);
    d.left.push_back(l);
    d.right.push_back(r);
    hosts.push_back(l);
    hosts.push_back(r);
  }
  d.topology =
      std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts), "dumbbell");
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("admission_planner", "plan task admission and slices without simulating");
  cli.add_option("tasks", "tasks competing for one bottleneck (max 12)", "8");
  cli.add_option("seed", "RNG seed", "42");
  cli.add_option("deadline-ms", "mean relative deadline", "12");
  cli.add_option("size-kb", "mean flow size (KB)", "300");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const int tasks = std::min<int>(12, static_cast<int>(cli.integer("tasks")));
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const double mean_deadline = cli.num("deadline-ms") / 1000.0;
  const double mean_size = cli.num("size-kb") * 1000.0;

  Dumbbell d = make_dumbbell(tasks);
  net::Network net(*d.topology);
  std::vector<core::SlTask> sl;
  for (int i = 0; i < tasks; ++i) {
    const double deadline = std::max(0.001, rng.exponential(mean_deadline));
    const double size = rng.normal_truncated(mean_size, mean_size / 3.0, 10e3);
    net::FlowSpec f;
    f.src = d.left[static_cast<std::size_t>(i)];
    f.dst = d.right[static_cast<std::size_t>(i)];
    f.size = size;
    net.add_task(0.0, deadline, std::vector<net::FlowSpec>{f});
    sl.push_back(core::SlTask{{core::SlFlow{0.0, deadline, size / topo::kGigabitPerSecond}}});
  }

  // Drive the controller's decision logic directly (no simulator needed):
  // feed arrivals at t=0 in task order, as the SDN controller would.
  core::TapsScheduler planner;
  planner.bind(net);
  for (const auto& t : net.tasks()) planner.on_task_arrival(t.id(), 0.0);

  std::cout << "Admission plan for " << tasks << " single-flow tasks on one 1 Gbps link\n\n";
  metrics::Table table({"task", "size-KB", "deadline-ms", "decision", "slices (ms)"});
  std::size_t accepted = 0;
  for (const auto& t : net.tasks()) {
    const auto& f = net.flow(t.spec.flows[0]);
    std::string slices = "-";
    const bool ok = t.state == net::TaskState::kAdmitted;
    if (ok) {
      ++accepted;
      std::ostringstream os;
      bool first = true;
      for (const auto& iv : planner.slices(f.id()).intervals()) {
        if (!first) os << " + ";
        os << "[" << iv.lo * 1000.0 << ", " << iv.hi * 1000.0 << ")";
        first = false;
      }
      slices = os.str();
    }
    table.row(static_cast<long long>(t.id()), f.spec.size / 1000.0,
              f.spec.deadline * 1000.0, ok ? "ACCEPT" : "reject", slices);
  }
  table.print(std::cout);

  const core::OptimalResult opt = core::optimal_single_link(sl);
  std::cout << "\nTAPS accepted " << accepted << " / " << tasks
            << " tasks; exact optimum on this instance: " << opt.tasks_completed << "\n";

  // ASCII Gantt of the bottleneck link: each column is a time slot, each
  // accepted task paints its digit over its granted slices. Exclusive link
  // use means no two digits ever want the same column.
  double horizon = 0.0;
  for (const auto& t : net.tasks()) {
    if (t.state != net::TaskState::kAdmitted) continue;
    const auto& slices = planner.slices(net.flow(t.spec.flows[0]).id());
    if (!slices.empty()) horizon = std::max(horizon, slices.back_end());
  }
  if (horizon > 0.0) {
    constexpr int kWidth = 64;
    std::string lane(kWidth, '.');
    for (const auto& t : net.tasks()) {
      if (t.state != net::TaskState::kAdmitted) continue;
      const char mark = static_cast<char>('0' + (t.id() % 10));
      for (const auto& iv : planner.slices(net.flow(t.spec.flows[0]).id()).intervals()) {
        const int lo = static_cast<int>(iv.lo / horizon * kWidth);
        const int hi = std::max(lo + 1, static_cast<int>(iv.hi / horizon * kWidth));
        for (int c = lo; c < hi && c < kWidth; ++c) lane[static_cast<std::size_t>(c)] = mark;
      }
    }
    std::cout << "\nbottleneck schedule (0.." << horizon * 1000.0
              << " ms, digits = task ids, '.' = idle):\n  " << lane << "\n";
  }
  return 0;
}
