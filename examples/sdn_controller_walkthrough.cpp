// A step-by-step walk through the TAPS SDN control plane (paper Fig. 4) on
// the 8-host testbed topology: probes in, admission decisions, time-slice
// grants, flow-table installs, data-plane quanta, and TERMs out — printing
// each message so the protocol is visible.
//
//   ./sdn_controller_walkthrough [--seed S] [--flows N]
#include <iomanip>
#include <iostream>

#include "metrics/timeseries.hpp"
#include "sdn/server_agent.hpp"
#include "topo/partial_fattree.hpp"
#include "util/cli.hpp"
#include "workload/task_generator.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("sdn_controller_walkthrough", "trace the TAPS control plane message flow");
  cli.add_option("seed", "workload seed", "7");
  cli.add_option("flows", "number of single-flow tasks", "8");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  topo::PartialFatTree topology;
  net::Network net(topology);
  workload::WorkloadConfig wc;
  wc.task_count = static_cast<int>(cli.integer("flows"));
  wc.single_flow_tasks = true;
  wc.mean_flow_size = 150e3;
  wc.mean_deadline = 0.020;
  wc.arrival_rate = 2000.0;
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  util::Rng wl = rng.fork("workload");
  (void)workload::generate(net, wc, wl);

  sdn::Controller controller(net, sdn::ControllerConfig{});
  metrics::SegmentRecorder recorder;
  sim::EventQueue queue;

  std::unordered_map<topo::NodeId, sdn::ServerAgent> agents;
  sdn::ServerAgent::Env env;
  env.queue = &queue;
  env.net = &net;
  env.controller = &controller;
  env.recorder = &recorder;
  for (const topo::NodeId host : topology.hosts()) {
    agents.emplace(host, sdn::ServerAgent(host, env));
  }

  std::cout << std::fixed << std::setprecision(3);
  auto ms = [](double s) { return s * 1000.0; };

  for (const auto& task : net.tasks()) {
    queue.schedule(task.spec.arrival, [&, tid = task.id()](double now) {
      sdn::ProbePacket probe;
      probe.task = tid;
      probe.sent_at = now;
      for (const net::FlowId fid : net.task(tid).spec.flows) {
        const auto& f = net.flow(fid);
        probe.flows.push_back(sdn::SchedulingHeader{fid, tid, f.spec.src, f.spec.dst,
                                                    f.spec.size, f.spec.deadline});
        std::cout << "t=" << ms(now) << "ms  PROBE  task " << tid << " flow " << fid << "  "
                  << net.graph().node(f.spec.src).name << " -> "
                  << net.graph().node(f.spec.dst).name << "  " << f.spec.size / 1e3
                  << " KB, deadline t=" << ms(f.spec.deadline) << "ms\n";
      }
      const sdn::ScheduleReply reply = controller.on_probe(probe, now);
      if (!reply.accepted) {
        std::cout << "          REJECT task " << tid << " (reject rule)\n";
        return;
      }
      for (const sdn::SliceGrant& g : reply.grants) {
        std::cout << "          GRANT  flow " << g.flow << "  slices " << g.slices
                  << "  via";
        for (std::size_t i = 1; i < g.path.links.size(); ++i) {
          std::cout << ' ' << net.graph().node(net.graph().link(g.path.links[i]).src).name;
        }
        std::cout << "\n";
        agents.at(net.flow(g.flow).spec.src).on_grant(g);
      }
    });
  }

  while (!queue.empty()) queue.run_next();

  std::cout << "\nfinal states:\n";
  for (const auto& t : net.tasks()) {
    const auto& f = net.flow(t.spec.flows[0]);
    std::cout << "  task " << t.id() << ": " << net::to_string(t.state);
    if (f.state == net::FlowState::kCompleted) {
      std::cout << " (finished t=" << ms(f.completion_time) << "ms, deadline t="
                << ms(f.spec.deadline) << "ms)";
    }
    std::cout << "\n";
  }
  std::cout << "\ncontrol plane: " << controller.entries_installed() << " entries installed, "
            << controller.entries_withdrawn() << " withdrawn; switches saw "
            << recorder.segment_count() << " transmission segments, 0 drops expected\n";
  return 0;
}
