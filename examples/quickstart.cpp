// Quickstart: build a scaled single-rooted data-center tree, generate a
// deadline-sensitive task workload, run every scheduler, and print the
// paper's headline metrics side by side.
//
//   ./quickstart [--seed N] [--tasks N] [--deadline-ms X] [--full]
#include <iostream>

#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace taps;

  util::Cli cli("quickstart", "run all schedulers once on the default scenario");
  cli.add_option("seed", "workload RNG seed", "42");
  cli.add_option("tasks", "number of tasks", "30");
  cli.add_option("deadline-ms", "mean flow deadline in milliseconds", "40");
  cli.add_option("size-kb", "mean flow size in kilobytes", "200");
  cli.add_flag("full", "use the paper-scale 36000-host topology (slow)");
  cli.add_flag("extended", "also run the D2TCP extension scheduler");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  workload::Scenario scenario = workload::Scenario::single_rooted(cli.flag("full"));
  scenario.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  scenario.workload.task_count = static_cast<int>(cli.integer("tasks"));
  scenario.workload.mean_deadline = cli.num("deadline-ms") / 1000.0;
  scenario.workload.mean_flow_size = cli.num("size-kb") * 1000.0;

  std::cout << "topology: " << scenario.name << ", tasks: " << scenario.workload.task_count
            << ", mean deadline: " << scenario.workload.mean_deadline * 1000.0
            << " ms, mean flow size: " << scenario.workload.mean_flow_size / 1000.0
            << " KB, seed: " << scenario.seed << "\n\n";

  metrics::Table table({"scheduler", "task-ratio", "flow-ratio", "app-throughput",
                        "wasted-bw", "events", "wall-s"});
  const auto& schedulers =
      cli.flag("extended") ? exp::extended_schedulers() : exp::all_schedulers();
  for (const exp::SchedulerKind kind : schedulers) {
    const exp::ExperimentResult r = exp::run_experiment(scenario, kind);
    table.row(exp::to_string(kind), r.metrics.task_completion_ratio,
              r.metrics.flow_completion_ratio, r.metrics.app_throughput,
              r.metrics.wasted_bandwidth_ratio, r.stats.events, r.wall_seconds);
  }
  table.print(std::cout);
  std::cout << "\nA task counts as completed only if every one of its flows met the deadline.\n";
  return 0;
}
