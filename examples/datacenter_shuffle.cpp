// MapReduce-style shuffle: the workload the paper's introduction motivates.
//
// A job's shuffle stage is one *task*: every mapper sends a partition to
// every reducer, and the stage is useful only if ALL of those flows finish
// before the job's deadline. This example builds a fat-tree, expresses a few
// shuffle jobs directly against the public API (explicit mapper/reducer
// placement, per-job deadline), and compares TAPS against the baselines on
// job-level success.
//
//   ./datacenter_shuffle [--jobs N] [--mappers M] [--reducers R]
//                        [--deadline-ms D] [--partition-kb KB] [--seed S]
#include <algorithm>
#include <iostream>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"
#include "sim/simulator.hpp"
#include "topo/fattree.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace taps;

struct ShuffleSpec {
  int jobs;
  int mappers;
  int reducers;
  double deadline;      // relative, seconds
  double partition;     // bytes per mapper->reducer flow
  double arrival_gap;   // seconds between job submissions
  std::uint64_t seed;
};

/// Place each job's mappers and reducers on random distinct hosts and
/// register the full mapper x reducer flow set as one task.
void build_shuffles(net::Network& net, const topo::FatTree& ft, const ShuffleSpec& spec) {
  util::Rng rng(spec.seed);
  const auto& hosts = ft.hosts();
  for (int j = 0; j < spec.jobs; ++j) {
    // Sample mappers+reducers without replacement.
    std::vector<topo::NodeId> pool(hosts.begin(), hosts.end());
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    const auto mappers_begin = pool.begin();
    const auto reducers_begin = pool.begin() + spec.mappers;

    std::vector<net::FlowSpec> flows;
    flows.reserve(static_cast<std::size_t>(spec.mappers) * spec.reducers);
    for (int m = 0; m < spec.mappers; ++m) {
      for (int r = 0; r < spec.reducers; ++r) {
        net::FlowSpec f;
        f.src = *(mappers_begin + m);
        f.dst = *(reducers_begin + r);
        // Partition sizes skew around the mean (stragglers are what make
        // task-level deadlines hard).
        f.size = rng.normal_truncated(spec.partition, spec.partition / 3.0,
                                      spec.partition / 10.0);
        flows.push_back(f);
      }
    }
    const double arrival = j * spec.arrival_gap;
    net.add_task(arrival, arrival + spec.deadline, flows);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("datacenter_shuffle", "MapReduce shuffle stages as deadline tasks");
  cli.add_option("jobs", "number of shuffle jobs", "16");
  cli.add_option("mappers", "mappers per job", "8");
  cli.add_option("reducers", "reducers per job", "4");
  cli.add_option("deadline-ms", "per-job shuffle deadline", "30");
  cli.add_option("partition-kb", "mean bytes per mapper->reducer partition (KB)", "300");
  cli.add_option("gap-ms", "job inter-arrival gap", "3");
  cli.add_option("seed", "placement/size RNG seed", "42");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  ShuffleSpec spec{};
  spec.jobs = static_cast<int>(cli.integer("jobs"));
  spec.mappers = static_cast<int>(cli.integer("mappers"));
  spec.reducers = static_cast<int>(cli.integer("reducers"));
  spec.deadline = cli.num("deadline-ms") / 1000.0;
  spec.partition = cli.num("partition-kb") * 1000.0;
  spec.arrival_gap = cli.num("gap-ms") / 1000.0;
  spec.seed = static_cast<std::uint64_t>(cli.integer("seed"));

  const topo::FatTree ft(topo::FatTreeConfig::scaled());
  std::cout << spec.jobs << " shuffle jobs of " << spec.mappers << "x" << spec.reducers
            << " flows (" << spec.partition / 1000.0 << " KB partitions, "
            << spec.deadline * 1000.0 << " ms deadline) on a k=" << ft.k()
            << " fat-tree with " << ft.host_count() << " hosts\n\n";

  metrics::Table table({"scheduler", "jobs-done", "job-ratio", "flow-ratio", "wasted-bw"});
  for (const exp::SchedulerKind kind : exp::all_schedulers()) {
    net::Network net(ft);
    build_shuffles(net, ft, spec);
    const auto scheduler = exp::make_scheduler(kind, 16);
    sim::FluidSimulator simulator(net, *scheduler);
    (void)simulator.run();
    const metrics::RunMetrics m = metrics::collect(net);
    table.row(exp::to_string(kind), m.tasks_completed, m.task_completion_ratio,
              m.flow_completion_ratio, m.wasted_bandwidth_ratio);
  }
  table.print(std::cout);
  std::cout << "\nA job counts only when every one of its " << spec.mappers * spec.reducers
            << " shuffle flows met the deadline.\n";
  return 0;
}
