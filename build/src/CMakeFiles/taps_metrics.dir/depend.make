# Empty dependencies file for taps_metrics.
# This may be replaced when dependencies are built.
