file(REMOVE_RECURSE
  "CMakeFiles/taps_metrics.dir/metrics/collector.cpp.o"
  "CMakeFiles/taps_metrics.dir/metrics/collector.cpp.o.d"
  "CMakeFiles/taps_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/taps_metrics.dir/metrics/report.cpp.o.d"
  "CMakeFiles/taps_metrics.dir/metrics/timeseries.cpp.o"
  "CMakeFiles/taps_metrics.dir/metrics/timeseries.cpp.o.d"
  "libtaps_metrics.a"
  "libtaps_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
