file(REMOVE_RECURSE
  "libtaps_metrics.a"
)
