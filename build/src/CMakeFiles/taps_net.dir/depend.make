# Empty dependencies file for taps_net.
# This may be replaced when dependencies are built.
