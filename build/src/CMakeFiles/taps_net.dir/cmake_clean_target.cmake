file(REMOVE_RECURSE
  "libtaps_net.a"
)
