file(REMOVE_RECURSE
  "CMakeFiles/taps_net.dir/net/flow.cpp.o"
  "CMakeFiles/taps_net.dir/net/flow.cpp.o.d"
  "CMakeFiles/taps_net.dir/net/network.cpp.o"
  "CMakeFiles/taps_net.dir/net/network.cpp.o.d"
  "CMakeFiles/taps_net.dir/net/task.cpp.o"
  "CMakeFiles/taps_net.dir/net/task.cpp.o.d"
  "libtaps_net.a"
  "libtaps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
