# Empty dependencies file for taps_exp.
# This may be replaced when dependencies are built.
