file(REMOVE_RECURSE
  "libtaps_exp.a"
)
