file(REMOVE_RECURSE
  "CMakeFiles/taps_exp.dir/exp/experiment.cpp.o"
  "CMakeFiles/taps_exp.dir/exp/experiment.cpp.o.d"
  "CMakeFiles/taps_exp.dir/exp/sweep.cpp.o"
  "CMakeFiles/taps_exp.dir/exp/sweep.cpp.o.d"
  "libtaps_exp.a"
  "libtaps_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
