file(REMOVE_RECURSE
  "CMakeFiles/taps_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/taps_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/taps_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/taps_sim.dir/sim/simulator.cpp.o.d"
  "libtaps_sim.a"
  "libtaps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
