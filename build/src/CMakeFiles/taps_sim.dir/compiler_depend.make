# Empty compiler generated dependencies file for taps_sim.
# This may be replaced when dependencies are built.
