file(REMOVE_RECURSE
  "libtaps_sim.a"
)
