
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/occupancy.cpp" "src/CMakeFiles/taps_core.dir/core/occupancy.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/occupancy.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/CMakeFiles/taps_core.dir/core/optimal.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/optimal.cpp.o.d"
  "/root/repo/src/core/path_allocation.cpp" "src/CMakeFiles/taps_core.dir/core/path_allocation.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/path_allocation.cpp.o.d"
  "/root/repo/src/core/reject_rule.cpp" "src/CMakeFiles/taps_core.dir/core/reject_rule.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/reject_rule.cpp.o.d"
  "/root/repo/src/core/taps_scheduler.cpp" "src/CMakeFiles/taps_core.dir/core/taps_scheduler.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/taps_scheduler.cpp.o.d"
  "/root/repo/src/core/time_allocation.cpp" "src/CMakeFiles/taps_core.dir/core/time_allocation.cpp.o" "gcc" "src/CMakeFiles/taps_core.dir/core/time_allocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
