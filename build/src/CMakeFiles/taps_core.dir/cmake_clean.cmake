file(REMOVE_RECURSE
  "CMakeFiles/taps_core.dir/core/occupancy.cpp.o"
  "CMakeFiles/taps_core.dir/core/occupancy.cpp.o.d"
  "CMakeFiles/taps_core.dir/core/optimal.cpp.o"
  "CMakeFiles/taps_core.dir/core/optimal.cpp.o.d"
  "CMakeFiles/taps_core.dir/core/path_allocation.cpp.o"
  "CMakeFiles/taps_core.dir/core/path_allocation.cpp.o.d"
  "CMakeFiles/taps_core.dir/core/reject_rule.cpp.o"
  "CMakeFiles/taps_core.dir/core/reject_rule.cpp.o.d"
  "CMakeFiles/taps_core.dir/core/taps_scheduler.cpp.o"
  "CMakeFiles/taps_core.dir/core/taps_scheduler.cpp.o.d"
  "CMakeFiles/taps_core.dir/core/time_allocation.cpp.o"
  "CMakeFiles/taps_core.dir/core/time_allocation.cpp.o.d"
  "libtaps_core.a"
  "libtaps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
