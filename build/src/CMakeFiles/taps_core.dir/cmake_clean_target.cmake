file(REMOVE_RECURSE
  "libtaps_core.a"
)
