# Empty compiler generated dependencies file for taps_core.
# This may be replaced when dependencies are built.
