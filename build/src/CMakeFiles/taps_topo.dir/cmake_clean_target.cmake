file(REMOVE_RECURSE
  "libtaps_topo.a"
)
