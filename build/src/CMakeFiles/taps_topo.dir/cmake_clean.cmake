file(REMOVE_RECURSE
  "CMakeFiles/taps_topo.dir/topo/bcube.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/bcube.cpp.o.d"
  "CMakeFiles/taps_topo.dir/topo/fattree.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/fattree.cpp.o.d"
  "CMakeFiles/taps_topo.dir/topo/graph.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/graph.cpp.o.d"
  "CMakeFiles/taps_topo.dir/topo/partial_fattree.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/partial_fattree.cpp.o.d"
  "CMakeFiles/taps_topo.dir/topo/paths.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/paths.cpp.o.d"
  "CMakeFiles/taps_topo.dir/topo/tree.cpp.o"
  "CMakeFiles/taps_topo.dir/topo/tree.cpp.o.d"
  "libtaps_topo.a"
  "libtaps_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
