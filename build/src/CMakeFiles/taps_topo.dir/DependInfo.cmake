
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/bcube.cpp" "src/CMakeFiles/taps_topo.dir/topo/bcube.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/bcube.cpp.o.d"
  "/root/repo/src/topo/fattree.cpp" "src/CMakeFiles/taps_topo.dir/topo/fattree.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/fattree.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/CMakeFiles/taps_topo.dir/topo/graph.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/graph.cpp.o.d"
  "/root/repo/src/topo/partial_fattree.cpp" "src/CMakeFiles/taps_topo.dir/topo/partial_fattree.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/partial_fattree.cpp.o.d"
  "/root/repo/src/topo/paths.cpp" "src/CMakeFiles/taps_topo.dir/topo/paths.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/paths.cpp.o.d"
  "/root/repo/src/topo/tree.cpp" "src/CMakeFiles/taps_topo.dir/topo/tree.cpp.o" "gcc" "src/CMakeFiles/taps_topo.dir/topo/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
