# Empty compiler generated dependencies file for taps_topo.
# This may be replaced when dependencies are built.
