# Empty dependencies file for taps_util.
# This may be replaced when dependencies are built.
