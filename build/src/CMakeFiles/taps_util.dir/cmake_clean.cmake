file(REMOVE_RECURSE
  "CMakeFiles/taps_util.dir/util/cli.cpp.o"
  "CMakeFiles/taps_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/csv.cpp.o"
  "CMakeFiles/taps_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/interval_set.cpp.o"
  "CMakeFiles/taps_util.dir/util/interval_set.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/logging.cpp.o"
  "CMakeFiles/taps_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/rng.cpp.o"
  "CMakeFiles/taps_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/stats.cpp.o"
  "CMakeFiles/taps_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/taps_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/taps_util.dir/util/thread_pool.cpp.o.d"
  "libtaps_util.a"
  "libtaps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
