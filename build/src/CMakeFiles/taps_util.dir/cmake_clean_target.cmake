file(REMOVE_RECURSE
  "libtaps_util.a"
)
