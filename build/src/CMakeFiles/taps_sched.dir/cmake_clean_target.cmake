file(REMOVE_RECURSE
  "libtaps_sched.a"
)
