file(REMOVE_RECURSE
  "CMakeFiles/taps_sched.dir/sched/baraat.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/baraat.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/d2tcp.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/d2tcp.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/d3.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/d3.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/fair_sharing.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/fair_sharing.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/pdq.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/pdq.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/scheduler.cpp.o.d"
  "CMakeFiles/taps_sched.dir/sched/varys.cpp.o"
  "CMakeFiles/taps_sched.dir/sched/varys.cpp.o.d"
  "libtaps_sched.a"
  "libtaps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
