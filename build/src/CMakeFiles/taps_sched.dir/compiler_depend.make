# Empty compiler generated dependencies file for taps_sched.
# This may be replaced when dependencies are built.
