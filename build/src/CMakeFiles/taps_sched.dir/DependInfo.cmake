
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baraat.cpp" "src/CMakeFiles/taps_sched.dir/sched/baraat.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/baraat.cpp.o.d"
  "/root/repo/src/sched/d2tcp.cpp" "src/CMakeFiles/taps_sched.dir/sched/d2tcp.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/d2tcp.cpp.o.d"
  "/root/repo/src/sched/d3.cpp" "src/CMakeFiles/taps_sched.dir/sched/d3.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/d3.cpp.o.d"
  "/root/repo/src/sched/fair_sharing.cpp" "src/CMakeFiles/taps_sched.dir/sched/fair_sharing.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/fair_sharing.cpp.o.d"
  "/root/repo/src/sched/pdq.cpp" "src/CMakeFiles/taps_sched.dir/sched/pdq.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/pdq.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/taps_sched.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/varys.cpp" "src/CMakeFiles/taps_sched.dir/sched/varys.cpp.o" "gcc" "src/CMakeFiles/taps_sched.dir/sched/varys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
