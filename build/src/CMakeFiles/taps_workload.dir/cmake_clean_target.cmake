file(REMOVE_RECURSE
  "libtaps_workload.a"
)
