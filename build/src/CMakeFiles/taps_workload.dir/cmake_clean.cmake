file(REMOVE_RECURSE
  "CMakeFiles/taps_workload.dir/workload/scenario.cpp.o"
  "CMakeFiles/taps_workload.dir/workload/scenario.cpp.o.d"
  "CMakeFiles/taps_workload.dir/workload/task_generator.cpp.o"
  "CMakeFiles/taps_workload.dir/workload/task_generator.cpp.o.d"
  "CMakeFiles/taps_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/taps_workload.dir/workload/trace.cpp.o.d"
  "libtaps_workload.a"
  "libtaps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
