# Empty dependencies file for taps_workload.
# This may be replaced when dependencies are built.
