file(REMOVE_RECURSE
  "libtaps_sdn.a"
)
