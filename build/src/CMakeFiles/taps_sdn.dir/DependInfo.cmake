
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/controller.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/controller.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/controller.cpp.o.d"
  "/root/repo/src/sdn/flow_table.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/flow_table.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/flow_table.cpp.o.d"
  "/root/repo/src/sdn/messages.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/messages.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/messages.cpp.o.d"
  "/root/repo/src/sdn/server_agent.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/server_agent.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/server_agent.cpp.o.d"
  "/root/repo/src/sdn/switch.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/switch.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/switch.cpp.o.d"
  "/root/repo/src/sdn/testbed.cpp" "src/CMakeFiles/taps_sdn.dir/sdn/testbed.cpp.o" "gcc" "src/CMakeFiles/taps_sdn.dir/sdn/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
