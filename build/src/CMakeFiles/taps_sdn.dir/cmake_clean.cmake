file(REMOVE_RECURSE
  "CMakeFiles/taps_sdn.dir/sdn/controller.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/controller.cpp.o.d"
  "CMakeFiles/taps_sdn.dir/sdn/flow_table.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/flow_table.cpp.o.d"
  "CMakeFiles/taps_sdn.dir/sdn/messages.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/messages.cpp.o.d"
  "CMakeFiles/taps_sdn.dir/sdn/server_agent.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/server_agent.cpp.o.d"
  "CMakeFiles/taps_sdn.dir/sdn/switch.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/switch.cpp.o.d"
  "CMakeFiles/taps_sdn.dir/sdn/testbed.cpp.o"
  "CMakeFiles/taps_sdn.dir/sdn/testbed.cpp.o.d"
  "libtaps_sdn.a"
  "libtaps_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
