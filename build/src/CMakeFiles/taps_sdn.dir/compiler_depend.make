# Empty compiler generated dependencies file for taps_sdn.
# This may be replaced when dependencies are built.
