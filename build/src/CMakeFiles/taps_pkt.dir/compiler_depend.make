# Empty compiler generated dependencies file for taps_pkt.
# This may be replaced when dependencies are built.
