file(REMOVE_RECURSE
  "libtaps_pkt.a"
)
