file(REMOVE_RECURSE
  "CMakeFiles/taps_pkt.dir/pkt/packet_sim.cpp.o"
  "CMakeFiles/taps_pkt.dir/pkt/packet_sim.cpp.o.d"
  "libtaps_pkt.a"
  "libtaps_pkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taps_pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
