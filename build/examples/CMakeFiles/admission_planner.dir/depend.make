# Empty dependencies file for admission_planner.
# This may be replaced when dependencies are built.
