file(REMOVE_RECURSE
  "CMakeFiles/sdn_controller_walkthrough.dir/sdn_controller_walkthrough.cpp.o"
  "CMakeFiles/sdn_controller_walkthrough.dir/sdn_controller_walkthrough.cpp.o.d"
  "sdn_controller_walkthrough"
  "sdn_controller_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_controller_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
