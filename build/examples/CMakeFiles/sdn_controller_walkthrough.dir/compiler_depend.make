# Empty compiler generated dependencies file for sdn_controller_walkthrough.
# This may be replaced when dependencies are built.
