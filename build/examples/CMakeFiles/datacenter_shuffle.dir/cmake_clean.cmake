file(REMOVE_RECURSE
  "CMakeFiles/datacenter_shuffle.dir/datacenter_shuffle.cpp.o"
  "CMakeFiles/datacenter_shuffle.dir/datacenter_shuffle.cpp.o.d"
  "datacenter_shuffle"
  "datacenter_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
