# Empty compiler generated dependencies file for datacenter_shuffle.
# This may be replaced when dependencies are built.
