# Empty dependencies file for bench_fig7_deadline_multi.
# This may be replaced when dependencies are built.
