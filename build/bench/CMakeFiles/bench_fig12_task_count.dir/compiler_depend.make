# Empty compiler generated dependencies file for bench_fig12_task_count.
# This may be replaced when dependencies are built.
