# Empty compiler generated dependencies file for bench_fig3_global.
# This may be replaced when dependencies are built.
