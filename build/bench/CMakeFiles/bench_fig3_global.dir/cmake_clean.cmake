file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_global.dir/bench_fig3_global.cpp.o"
  "CMakeFiles/bench_fig3_global.dir/bench_fig3_global.cpp.o.d"
  "bench_fig3_global"
  "bench_fig3_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
