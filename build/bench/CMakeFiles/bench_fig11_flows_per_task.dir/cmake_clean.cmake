file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_flows_per_task.dir/bench_fig11_flows_per_task.cpp.o"
  "CMakeFiles/bench_fig11_flows_per_task.dir/bench_fig11_flows_per_task.cpp.o.d"
  "bench_fig11_flows_per_task"
  "bench_fig11_flows_per_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_flows_per_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
