# Empty compiler generated dependencies file for bench_fig11_flows_per_task.
# This may be replaced when dependencies are built.
