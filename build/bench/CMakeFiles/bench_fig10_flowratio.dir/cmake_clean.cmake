file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_flowratio.dir/bench_fig10_flowratio.cpp.o"
  "CMakeFiles/bench_fig10_flowratio.dir/bench_fig10_flowratio.cpp.o.d"
  "bench_fig10_flowratio"
  "bench_fig10_flowratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_flowratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
