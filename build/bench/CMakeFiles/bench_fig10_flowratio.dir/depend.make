# Empty dependencies file for bench_fig10_flowratio.
# This may be replaced when dependencies are built.
