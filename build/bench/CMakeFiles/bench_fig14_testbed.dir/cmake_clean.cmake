file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_testbed.dir/bench_fig14_testbed.cpp.o"
  "CMakeFiles/bench_fig14_testbed.dir/bench_fig14_testbed.cpp.o.d"
  "bench_fig14_testbed"
  "bench_fig14_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
