# Empty dependencies file for bench_fig14_testbed.
# This may be replaced when dependencies are built.
