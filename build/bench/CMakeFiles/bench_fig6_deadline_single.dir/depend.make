# Empty dependencies file for bench_fig6_deadline_single.
# This may be replaced when dependencies are built.
