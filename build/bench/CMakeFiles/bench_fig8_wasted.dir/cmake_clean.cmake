file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_wasted.dir/bench_fig8_wasted.cpp.o"
  "CMakeFiles/bench_fig8_wasted.dir/bench_fig8_wasted.cpp.o.d"
  "bench_fig8_wasted"
  "bench_fig8_wasted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wasted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
