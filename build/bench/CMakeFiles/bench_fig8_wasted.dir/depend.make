# Empty dependencies file for bench_fig8_wasted.
# This may be replaced when dependencies are built.
