file(REMOVE_RECURSE
  "CMakeFiles/bench_packet_validation.dir/bench_packet_validation.cpp.o"
  "CMakeFiles/bench_packet_validation.dir/bench_packet_validation.cpp.o.d"
  "bench_packet_validation"
  "bench_packet_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
