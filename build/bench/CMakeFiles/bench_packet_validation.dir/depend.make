# Empty dependencies file for bench_packet_validation.
# This may be replaced when dependencies are built.
