# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig1 "/root/repo/build/bench/bench_fig1_motivation")
set_tests_properties(bench_smoke_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2 "/root/repo/build/bench/bench_fig2_preemption")
set_tests_properties(bench_smoke_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build/bench/bench_fig3_global")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12 "/root/repo/build/bench/bench_fig12_task_count" "--repeats" "1")
set_tests_properties(bench_smoke_fig12 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig14 "/root/repo/build/bench/bench_fig14_testbed" "--flows" "30")
set_tests_properties(bench_smoke_fig14 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
