file(REMOVE_RECURSE
  "CMakeFiles/pkt_tests.dir/pkt/packet_sim_test.cpp.o"
  "CMakeFiles/pkt_tests.dir/pkt/packet_sim_test.cpp.o.d"
  "pkt_tests"
  "pkt_tests.pdb"
  "pkt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
