# Empty dependencies file for pkt_tests.
# This may be replaced when dependencies are built.
