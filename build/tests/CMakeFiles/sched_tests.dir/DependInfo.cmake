
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/baraat_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/baraat_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/baraat_test.cpp.o.d"
  "/root/repo/tests/sched/capacity_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/capacity_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/capacity_test.cpp.o.d"
  "/root/repo/tests/sched/d2tcp_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/d2tcp_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/d2tcp_test.cpp.o.d"
  "/root/repo/tests/sched/d3_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/d3_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/d3_test.cpp.o.d"
  "/root/repo/tests/sched/fair_sharing_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/fair_sharing_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/fair_sharing_test.cpp.o.d"
  "/root/repo/tests/sched/pdq_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/pdq_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/pdq_test.cpp.o.d"
  "/root/repo/tests/sched/varys_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/varys_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/varys_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
