file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/baraat_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/baraat_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/capacity_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/capacity_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/d2tcp_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/d2tcp_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/d3_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/d3_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/fair_sharing_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/fair_sharing_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/pdq_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/pdq_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/varys_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/varys_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
