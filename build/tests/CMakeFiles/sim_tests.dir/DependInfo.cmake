
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
