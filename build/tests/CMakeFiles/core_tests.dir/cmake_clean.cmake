file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/exclusive_use_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/exclusive_use_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/makeup_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/makeup_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/occupancy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/occupancy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/optimal_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/optimal_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/path_allocation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/path_allocation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/reject_rule_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/reject_rule_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/taps_scheduler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/taps_scheduler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/time_allocation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/time_allocation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/waves_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/waves_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
