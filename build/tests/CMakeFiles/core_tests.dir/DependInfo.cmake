
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/exclusive_use_test.cpp" "tests/CMakeFiles/core_tests.dir/core/exclusive_use_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/exclusive_use_test.cpp.o.d"
  "/root/repo/tests/core/makeup_test.cpp" "tests/CMakeFiles/core_tests.dir/core/makeup_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/makeup_test.cpp.o.d"
  "/root/repo/tests/core/occupancy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/occupancy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/occupancy_test.cpp.o.d"
  "/root/repo/tests/core/optimal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/optimal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimal_test.cpp.o.d"
  "/root/repo/tests/core/path_allocation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/path_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/path_allocation_test.cpp.o.d"
  "/root/repo/tests/core/reject_rule_test.cpp" "tests/CMakeFiles/core_tests.dir/core/reject_rule_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/reject_rule_test.cpp.o.d"
  "/root/repo/tests/core/taps_scheduler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/taps_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/taps_scheduler_test.cpp.o.d"
  "/root/repo/tests/core/time_allocation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/time_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/time_allocation_test.cpp.o.d"
  "/root/repo/tests/core/waves_test.cpp" "tests/CMakeFiles/core_tests.dir/core/waves_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/waves_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taps_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
