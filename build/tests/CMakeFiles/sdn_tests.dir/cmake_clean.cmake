file(REMOVE_RECURSE
  "CMakeFiles/sdn_tests.dir/sdn/controller_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/controller_test.cpp.o.d"
  "CMakeFiles/sdn_tests.dir/sdn/flow_table_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/flow_table_test.cpp.o.d"
  "CMakeFiles/sdn_tests.dir/sdn/server_agent_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/server_agent_test.cpp.o.d"
  "CMakeFiles/sdn_tests.dir/sdn/testbed_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/testbed_test.cpp.o.d"
  "sdn_tests"
  "sdn_tests.pdb"
  "sdn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
