#!/usr/bin/env python3
"""Determinism and repo-invariant linter for the TAPS tree (tier 3 of
docs/STATIC_ANALYSIS.md).

The reproduction's guarantees — bit-identical incremental/oracle schedules,
byte-identical sweep CSVs at any thread count — only survive if no
nondeterminism source leaks into `src/`. Runtime tests catch what they
happen to execute; this linter statically bans the whole pattern class:

  rand                  libc / std randomness outside util::Rng's seeded
                        streams (rand, srand, random, drand48,
                        std::random_device)
  wall-clock            real-time clocks in simulation logic (time(),
                        clock(), gettimeofday, clock_gettime,
                        std::chrono::{system,steady,high_resolution}_clock)
  unordered-iteration   range-for over a std::unordered_{map,set,...} —
                        iteration order is implementation-defined, so any
                        ordered output or scheduling decision fed from it
                        is nondeterministic
  pointer-key           std::{map,set,multimap,multiset} keyed on a pointer
                        — ordered by allocator addresses, i.e. by ASLR
  uninitialized-member  scalar (POD) members of aggregate structs without a
                        default initializer — config/flow/task structs are
                        value-copied everywhere, and an uninitialized field
                        is a nondeterminism (and MSan) bomb
  float-type            `float` where the repo-wide double time/byte
                        convention is required (mixed precision changes
                        rounding, breaking bitwise-equality oracles)

Escape hatch (must carry a justification on the same comment line):
    // taps-lint: allow(<rule>[, <rule>...]) -- <why this site is safe>
on the offending line or the line directly above it;
    // taps-lint: allow-file(<rule>) -- <why>
anywhere in the file disables the rule for the whole file.

Usage:
    scripts/lint_determinism.py [paths...]      # default: src/
    scripts/lint_determinism.py --list-rules

Exit codes: 0 clean, 1 findings, 2 usage error. Unit suite:
tests/scripts/lint_determinism_test.py (ctest: lint_determinism_py).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RULES = {
    "rand": "unseeded randomness; derive draws from util::Rng streams",
    "wall-clock": "wall-clock time in sim code; use simulated time "
                  "(or allow() for measurement-only timing)",
    "unordered-iteration": "iteration over an unordered container feeds "
                           "ordered output/decisions; iterate a sorted key "
                           "list (or allow() for order-independent "
                           "reductions)",
    "pointer-key": "ordered container keyed by pointer orders by address "
                   "(ASLR-dependent); key by a stable id",
    "uninitialized-member": "scalar struct member without initializer; "
                            "default-initialize every POD field",
    "float-type": "float breaks the double time/byte precision convention",
}

ALLOW_RE = re.compile(r"taps-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"taps-lint:\s*allow-file\(([^)]*)\)")

# -- simple textual rules (applied per stripped line) -----------------------

RAND_RE = re.compile(
    r"(?<![A-Za-z0-9_])(?:s?rand|random|drand48|lrand48|mrand48)\s*\("
    r"|std::random_device")
WALL_CLOCK_RE = re.compile(
    # std::time(...) in any form; bare time() only in its libc call shape
    # (time(nullptr/NULL/0)) so ctor init-lists like `time(t)` stay clean.
    r"std::time\s*\("
    r"|(?<![A-Za-z0-9_:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|(?<![A-Za-z0-9_])clock\s*\(\s*\)"
    r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
    r"|\b(?:system_clock|steady_clock|high_resolution_clock)\b")
FLOAT_RE = re.compile(r"\bfloat\b")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
ORDERED_PTR_RE = re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\((?:[^;()]|\([^()]*\))*:\s*([^)]+)\)")

SCALAR_TYPE_RE = re.compile(
    r"^(?:unsigned\s+)?(?:bool|char|short|int|long(?:\s+long)?|float|double"
    r"|std::size_t|size_t|std::u?int(?:8|16|32|64)_t|std::ptrdiff_t"
    r"|[A-Za-z_]\w*Id)(?:\s+(?:int|long))?$")
MEMBER_DECL_RE = re.compile(
    r"^\s*((?:[A-Za-z_][\w:]*(?:\s+[A-Za-z_][\w:]*)*))\s+"
    r"([A-Za-z_]\w*)\s*;\s*$")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comment and string/char-literal contents, preserving line
    structure so reported line numbers stay exact."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                    res.append("  ")
                else:
                    res.append(" ")
                    i += 1
            elif line.startswith("//", i):
                res.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                res.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                res.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        res.append("  ")
                        i += 2
                    elif line[i] == quote:
                        res.append(" ")
                        i += 1
                        break
                    else:
                        res.append(" ")
                        i += 1
            else:
                res.append(c)
                i += 1
        out.append("".join(res))
    return out


def parse_allows(lines: list[str]) -> tuple[list[set], set]:
    """Per-line allowed rule sets (an allow covers its own line and the next
    non-empty line below it) plus file-wide allows."""
    per_line: list[set] = [set() for _ in lines]
    file_wide: set = set()
    for idx, line in enumerate(lines):
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_wide.update(r.strip() for r in m.group(1).split(","))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            per_line[idx].update(rules)
            if idx + 1 < len(lines):
                per_line[idx + 1].update(rules)
    return per_line, file_wide


def template_depth_split(args: str) -> list[str]:
    """Split template argument text on top-level commas."""
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def extract_template_args(text: str, open_idx: int) -> str | None:
    """Given index of `<`, return the balanced content between it and the
    matching `>` (or None when unbalanced on this line)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
    return None


def collapse_templates(text: str) -> str:
    """`std::unordered_map<K, V> name` -> `std::unordered_map name`."""
    out, depth = [], 0
    for c in text:
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
    return "".join(out)


def unordered_names(stripped: list[str]) -> set[str]:
    """Identifiers (variables, members, type aliases) declared with an
    unordered container type anywhere in the given lines."""
    names: set[str] = set()
    aliases: set[str] = set()
    for line in stripped:
        if not UNORDERED_DECL_RE.search(line):
            # Also catch declarations whose type is a known alias.
            for alias in aliases:
                m = re.search(r"\b%s\s+([A-Za-z_]\w*)\s*[;={]" % re.escape(alias),
                              line)
                if m:
                    names.add(m.group(1))
            continue
        m = re.match(r"\s*using\s+([A-Za-z_]\w*)\s*=", line)
        if m:
            aliases.add(m.group(1))
            continue
        flat = collapse_templates(line)
        m = re.search(r"unordered_(?:multi)?(?:map|set)\s*&?\s+&?\s*"
                      r"([A-Za-z_]\w*)", flat)
        if m:
            names.add(m.group(1))
    return names


def range_for_target(expr: str) -> str | None:
    """Final identifier of a range-for range expression, or None when the
    range is a call/temporary (e.g. `net_->tasks()`)."""
    expr = expr.strip()
    if expr.endswith(")"):
        return None
    m = re.search(r"([A-Za-z_]\w*)$", expr)
    return m.group(1) if m else None


def lint_uninitialized_members(stripped: list[str], path: str,
                               findings: list, allowed) -> None:
    depth = 0
    stack: list[dict] = []
    completed: list[dict] = []
    for idx, line in enumerate(stripped):
        opens = line.count("{")
        closes = line.count("}")
        m = re.search(r"\bstruct\s+([A-Za-z_]\w*)[^;{]*\{", line)
        if m:
            stack.append({"name": m.group(1), "depth": depth, "has_ctor": False,
                          "members": []})
        if stack and not m:
            st = stack[-1]
            body_depth = st["depth"] + 1
            if depth == body_depth:
                if re.search(r"\b%s\s*\(" % re.escape(st["name"]), line):
                    st["has_ctor"] = True
                dm = MEMBER_DECL_RE.match(line)
                if dm and SCALAR_TYPE_RE.match(dm.group(1).strip()):
                    st["members"].append((idx, dm.group(1).strip(),
                                          dm.group(2)))
        depth += opens - closes
        while stack and depth <= stack[-1]["depth"]:
            completed.append(stack.pop())
    completed.extend(stack)  # unterminated at EOF: still report members
    for st in completed:
        if st["has_ctor"]:
            continue
        for idx, type_text, name in st["members"]:
            if allowed(idx, "uninitialized-member"):
                continue
            findings.append((path, idx + 1, "uninitialized-member",
                             f"struct {st['name']}: member '{type_text} "
                             f"{name}' has no default initializer"))


def lint_file(path: str, companion_text: str | None = None) -> list:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    stripped = strip_comments_and_strings(raw)
    per_line_allow, file_allow = parse_allows(raw)

    def allowed(idx: int, rule: str) -> bool:
        return rule in file_allow or rule in per_line_allow[idx]

    findings: list = []

    def add(idx: int, rule: str, detail: str = ""):
        if not allowed(idx, rule):
            findings.append((path, idx + 1, rule,
                             detail or RULES[rule]))

    known_unordered = unordered_names(stripped)
    if companion_text is not None:
        known_unordered |= unordered_names(
            strip_comments_and_strings(companion_text.splitlines()))

    for idx, line in enumerate(stripped):
        if RAND_RE.search(line):
            add(idx, "rand")
        if WALL_CLOCK_RE.search(line):
            add(idx, "wall-clock")
        if FLOAT_RE.search(line):
            add(idx, "float-type")
        for m in ORDERED_PTR_RE.finditer(line):
            args = extract_template_args(line, m.end() - 1)
            if args is None:
                continue
            key = template_depth_split(args)[0]
            if "*" in key:
                add(idx, "pointer-key",
                    f"ordered container keyed by pointer type "
                    f"'{key.strip()}'")
        for m in RANGE_FOR_RE.finditer(line):
            target = range_for_target(m.group(1))
            if target and target in known_unordered:
                add(idx, "unordered-iteration",
                    f"range-for over unordered container '{target}'")

    lint_uninitialized_members(stripped, path, findings, allowed)
    return findings


def companion_path(path: str) -> str | None:
    stem, ext = os.path.splitext(path)
    for other in (".hpp", ".h", ".cpp", ".cc"):
        if other != ext and os.path.exists(stem + other):
            return stem + other
    return None


def collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".hpp", ".h", ".cpp", ".cc")):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(set(files))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    files = collect_files(args.paths or ["src"])
    all_findings = []
    for path in files:
        comp = companion_path(path)
        comp_text = None
        if comp is not None:
            with open(comp, encoding="utf-8", errors="replace") as f:
                comp_text = f.read()
        all_findings.extend(lint_file(path, comp_text))

    for path, line, rule, detail in all_findings:
        print(f"{path}:{line}: [{rule}] {detail}")
    print(f"lint_determinism: {len(files)} files, "
          f"{len(all_findings)} findings")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
