#!/usr/bin/env python3
"""Plot sweep CSVs produced by the bench binaries (--csv).

Usage:
    bench_fig6_deadline_single --csv fig6.csv
    python3 scripts/plot_figures.py fig6.csv --metric task_completion_ratio -o fig6.png

With matplotlib installed this writes a PNG per input; without it, it renders
a Unicode chart on stdout so results are still inspectable on a bare box.
"""

import argparse
import csv
import sys
from collections import defaultdict

SCHEDULER_ORDER = ["FairSharing", "D3", "PDQ", "Baraat", "Varys", "TAPS"]


def load(path):
    """Returns (x_label, {scheduler: [(x, row-dict)]})."""
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    x_label = list(rows[0].keys())[0]
    series = defaultdict(list)
    for row in rows:
        series[row["scheduler"]].append((float(row[x_label]), row))
    for points in series.values():
        points.sort(key=lambda p: p[0])
    return x_label, series


def plot_matplotlib(path, x_label, series, metric, output):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6, 4))
    for name in SCHEDULER_ORDER:
        if name not in series:
            continue
        xs = [x for x, _ in series[name]]
        ys = [float(row[metric]) for _, row in series[name]]
        ax.plot(xs, ys, marker="o", label=name)
    ax.set_xlabel(x_label.replace("_", " "))
    ax.set_ylabel(metric.replace("_", " "))
    ax.set_ylim(bottom=0)
    ax.grid(True, alpha=0.3)
    ax.legend()
    ax.set_title(path)
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_ascii(path, x_label, series, metric, width=60, height=16):
    print(f"\n{path} — {metric} vs {x_label}")
    all_pts = [(x, float(row[metric])) for pts in series.values() for x, row in pts]
    if not all_pts:
        return
    xs = sorted({x for x, _ in all_pts})
    ymax = max(y for _, y in all_pts) or 1.0
    marks = {}
    for idx, name in enumerate(n for n in SCHEDULER_ORDER if n in series):
        symbol = name[0]
        for x, row in series[name]:
            col = int((xs.index(x) / max(1, len(xs) - 1)) * (width - 1))
            rowi = height - 1 - int(float(row[metric]) / ymax * (height - 1))
            marks.setdefault((rowi, col), symbol)
    for r in range(height):
        line = "".join(marks.get((r, c), " ") for c in range(width))
        axis_val = ymax * (height - 1 - r) / (height - 1)
        print(f"{axis_val:7.3f} |{line}")
    print(" " * 9 + "-" * width)
    print(" " * 9 + f"{xs[0]:g} .. {xs[-1]:g}  ({x_label})")
    legend = ", ".join(f"{n[0]}={n}" for n in SCHEDULER_ORDER if n in series)
    print(" " * 9 + legend)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csvs", nargs="+", help="sweep CSVs from bench --csv")
    ap.add_argument("--metric", default="task_completion_ratio",
                    help="metric column to plot (default: task_completion_ratio)")
    ap.add_argument("-o", "--output", default=None,
                    help="output PNG (single input only; default <input>.png)")
    args = ap.parse_args()

    try:
        import matplotlib  # noqa: F401
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not available — rendering text charts", file=sys.stderr)

    for path in args.csvs:
        x_label, series = load(path)
        if have_mpl:
            output = args.output if args.output and len(args.csvs) == 1 else path + ".png"
            plot_matplotlib(path, x_label, series, args.metric, output)
        else:
            plot_ascii(path, x_label, series, args.metric)


if __name__ == "__main__":
    main()
