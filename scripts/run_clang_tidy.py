#!/usr/bin/env python3
"""Drive clang-tidy over the TAPS tree from the compilation database.

Reads compile_commands.json from the build directory, keeps only first-party
translation units (src/ bench/ tests/ by default), and runs clang-tidy on
them in parallel. Any diagnostic fails the run (the repo profile in
.clang-tidy sets WarningsAsErrors: '*').

Usage:
    scripts/run_clang_tidy.py -p build [--clang-tidy clang-tidy-18]
        [--jobs N] [--filter REGEX] [--changed-only [--base REF]] [files...]

--changed-only lints just the translation units touched since --base
(default: HEAD) per `git diff` plus untracked files — seconds instead of
minutes for a pre-commit pass. A changed header selects every TU that
includes it (transitive textual scan of quoted #includes). A
--changed-only run with no changed TUs prints so and exits 0.

Exit codes: 0 clean, 1 findings, 2 usage or environment error.
See docs/STATIC_ANALYSIS.md for the workflow.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys

DEFAULT_DIRS = ("src/", "bench/", "tests/")


def load_database(build_dir: str) -> list[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}\n"
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; the "
              "top-level CMakeLists already does)", file=sys.stderr)
        raise SystemExit(2)


def first_party_sources(db: list[dict], root: str, pattern: str | None) -> list[str]:
    keep: list[str] = []
    seen: set[str] = set()
    rx = re.compile(pattern) if pattern else None
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue  # system / third-party TU
        if not rel.startswith(DEFAULT_DIRS):
            continue
        if rx and not rx.search(rel):
            continue
        if rel not in seen:
            seen.add(rel)
            keep.append(rel)
    return sorted(keep)


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def include_closure(tu: str, root: str) -> set[str]:
    """The TU plus every first-party header it reaches through quoted
    #includes (resolved against the includer's directory and src/, the two
    include roots the build uses). Textual and conservative: a false extra
    edge only means an extra file gets linted."""
    seen: set[str] = set()
    stack = [tu]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        try:
            with open(os.path.join(root, cur), encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for inc in INCLUDE_RE.findall(text):
            for cand in (
                    os.path.normpath(os.path.join(os.path.dirname(cur), inc)),
                    os.path.normpath(os.path.join("src", inc))):
                if os.path.isfile(os.path.join(root, cand)):
                    stack.append(cand)
                    break
    return seen


def changed_paths(base: str) -> set[str]:
    """Repo-relative paths changed vs `base` (worktree + index) plus
    untracked files."""
    changed: set[str] = set()
    for cmd in (["git", "diff", "--name-only", base, "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            print(f"error: {' '.join(cmd)} failed:\n{proc.stderr.strip()}",
                  file=sys.stderr)
            raise SystemExit(2)
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return {os.path.normpath(p) for p in changed
            if p.endswith((".hpp", ".h", ".cpp", ".cc"))}


def run_one(clang_tidy: str, build_dir: str, source: str) -> tuple[str, int, str]:
    try:
        proc = subprocess.run(
            [clang_tidy, "-p", build_dir, "--quiet", source],
            capture_output=True, text=True, check=False)
    except FileNotFoundError:
        print(f"error: {clang_tidy} not found on PATH", file=sys.stderr)
        raise SystemExit(2)
    # clang-tidy prints suppressed-warning counts on stderr even when clean;
    # only surface stderr when the run actually failed.
    out = proc.stdout.strip()
    if proc.returncode != 0 and proc.stderr.strip():
        out = (out + "\n" + proc.stderr.strip()).strip()
    return source, proc.returncode, out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="restrict to these sources (repo-relative); "
                             "default: every first-party TU in the database")
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build directory containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy executable to use")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel clang-tidy processes (default: cores)")
    parser.add_argument("--filter", default=None,
                        help="only lint sources matching this regex")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only TUs whose include closure touches a "
                             "file changed vs --base (plus untracked files)")
    parser.add_argument("--base", default="HEAD",
                        help="git ref to diff against for --changed-only "
                             "(default: HEAD)")
    args = parser.parse_args()

    root = os.getcwd()
    db = load_database(args.build_dir)
    sources = args.files or first_party_sources(db, root, args.filter)
    if not sources:
        print("error: no first-party sources matched", file=sys.stderr)
        return 2
    if args.changed_only:
        changed = changed_paths(args.base)
        sources = [s for s in sources if include_closure(s, root) & changed]
        if not sources:
            print(f"clang-tidy: no TUs changed vs {args.base}")
            return 0
        print(f"clang-tidy: {len(sources)} TUs reach changes vs {args.base}")

    jobs = args.jobs or os.cpu_count() or 1
    failures: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_one, args.clang_tidy, args.build_dir, s)
                   for s in sources]
        for fut in concurrent.futures.as_completed(futures):
            source, rc, out = fut.result()
            status = "ok" if rc == 0 else "FAIL"
            print(f"  {status:>4}  {source}")
            if rc != 0:
                failures.append(source)
                if out:
                    print(out)

    print(f"\nclang-tidy: {len(sources)} files, {len(failures)} with findings")
    if failures:
        for f in sorted(failures):
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
