#!/usr/bin/env python3
"""Concurrency-contract linter for the TAPS tree (tier 2.5 of
docs/STATIC_ANALYSIS.md).

The road to parallel per-pod advancement runs through one question the
compiler cannot answer alone: for every piece of mutable state, WHO may
touch it from WHERE? This linter makes the answer a checked, machine-
readable part of the source:

  unmarked-class        every namespace-scope class/struct with instance
                        data members in src/{core,net,sched,sim,svc,sdn}
                        must declare its threading contract in a marker
                        comment directly above (or on) its head line:
                            // taps-threading: single-domain
                        Vocabulary:
                          single-domain          mutable state confined to
                                                 one advancement domain /
                                                 thread at a time
                          guarded                internally synchronized;
                                                 thread-safe API
                          immutable-after-build  never mutated once built;
                                                 concurrent reads safe
                          thread-compatible      value type; each instance
                                                 used by one thread, like
                                                 std containers
  marker-vocab          a taps-threading marker outside that vocabulary
  guarded-unannotated   a class marked `guarded` whose body carries no
                        TAPS_GUARDED_BY / TAPS_PT_GUARDED_BY annotation —
                        the claim would be unverifiable by -Wthread-safety
  mutable-static        mutable statics/globals outside src/util:
                        thread_local anywhere, non-const `static` data,
                        g_-prefixed namespace-scope variables. Hidden
                        shared state is exactly what per-domain ownership
                        must not have to reason about.
  raw-primitive         raw std concurrency types (std::mutex, std::thread,
                        std::atomic, std::condition_variable, lock guards,
                        std::async, ...) outside src/util — all sharing
                        goes through the annotated util::sync layer so
                        -Wthread-safety can see it
  lock-order            a cycle in the lock acquisition graph, built from
                        TAPS_ACQUIRED_BEFORE/TAPS_ACQUIRED_AFTER
                        annotations plus syntactic MutexLock /
                        WriterMutexLock / ReaderMutexLock nesting. The
                        blessed global order lives in docs/LOCK_ORDER.md.

Escape hatch (must carry a justification on the same comment line):
    // taps-lint: allow(<rule>[, <rule>...]) -- <why this site is safe>
on the offending line or the line directly above it;
    // taps-lint: allow-file(<rule>) -- <why>
anywhere in the file disables the rule for the whole file.

Usage:
    scripts/lint_concurrency.py [paths...]      # default: src/
    scripts/lint_concurrency.py --list-rules
    scripts/lint_concurrency.py --dump-lock-order

Exit codes: 0 clean, 1 findings, 2 usage error. Unit suite:
tests/scripts/lint_concurrency_test.py (ctest: lint_concurrency_py).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RULES = {
    "unmarked-class": "class/struct with instance data members has no "
                      "taps-threading marker; declare its contract",
    "marker-vocab": "taps-threading marker outside the vocabulary "
                    "(single-domain | guarded | immutable-after-build | "
                    "thread-compatible)",
    "guarded-unannotated": "class marked `guarded` has no TAPS_GUARDED_BY / "
                           "TAPS_PT_GUARDED_BY member annotation",
    "mutable-static": "mutable static/global state outside util; move it "
                      "into caller-owned state (scratch, members)",
    "raw-primitive": "raw std concurrency primitive outside util; use the "
                     "annotated util::sync layer",
    "lock-order": "cycle in the lock acquisition graph; see "
                  "docs/LOCK_ORDER.md for the global order",
}

MARKERS = {"single-domain", "guarded", "immutable-after-build",
           "thread-compatible"}

# Directories (under src/) whose classes must carry threading markers.
MARKER_DIRS = ("core", "net", "sched", "sim", "svc", "sdn")

ALLOW_RE = re.compile(r"taps-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"taps-lint:\s*allow-file\(([^)]*)\)")
MARKER_RE = re.compile(r"taps-threading:\s*([A-Za-z][A-Za-z-]*)")

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|condition_variable(?:_any)?"
    r"|thread|jthread|this_thread"
    r"|atomic(?:_[a-z0-9_]+)?"
    r"|lock_guard|unique_lock|shared_lock|scoped_lock"
    r"|call_once|once_flag|async|counting_semaphore|binary_semaphore"
    r"|barrier|latch)\b")

THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?static\s+(?!assert)")
STATIC_IMMUTABLE_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?:inline\s+)?(?:const(?:expr|init)?\b|const\b)")
GLOBAL_G_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w:<>,\s.*&]*[\s&*])?(g_[a-z][a-z0-9_]*)\s*[;={(]")

CLASS_HEAD_RE = re.compile(
    r"^\s*(?:template\s*<[^;{]*>\s*)?(class|struct|union)\s+"
    r"(?:TAPS_\w+\s*(?:\([^)]*\))?\s*)*"
    r"(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)\b(?!\s*;)")
NAMESPACE_RE = re.compile(r"^\s*(?:inline\s+)?namespace\b")
ENUM_RE = re.compile(r"^\s*enum\b")
ACCESS_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")
TAPS_MACRO_RE = re.compile(r"\bTAPS_\w+\s*(?:\([^()]*(?:\([^()]*\)[^()]*)*\))?")
ATTR_RE = re.compile(r"\[\[[^\]]*\]\]")
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?[A-Za-z_][\w:]*(?:\s+[A-Za-z_][\w:]*)*"
    r"[\s&*]+[&*]*\s*([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*"
    r"(?:\{[^;]*\})?\s*(?:=[^;]*)?;\s*$")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|template\b|static\b|constexpr\b"
    r"|inline\s+constexpr\b|enum\b|class\b|struct\b|union\b|return\b"
    r"|delete\b|if\b|for\b|while\b|switch\b|case\b|goto\b|operator\b)")
GUARDED_ANNOTATION_RE = re.compile(r"\bTAPS_(?:PT_)?GUARDED_BY\s*\(")

ACQUIRED_BEFORE_RE = re.compile(r"\bTAPS_ACQUIRED_BEFORE\s*\(([^)]*)\)")
ACQUIRED_AFTER_RE = re.compile(r"\bTAPS_ACQUIRED_AFTER\s*\(([^)]*)\)")
LOCK_DECL_RE = re.compile(
    r"\b(?:util::)?(MutexLock|WriterMutexLock|ReaderMutexLock)\s+"
    r"([A-Za-z_]\w*)\s*[({]\s*([^);}]+?)\s*[)}]")
FUNC_QUAL_RE = re.compile(
    r"(?:^|[\s*&])([A-Za-z_]\w*)::(?:[A-Za-z_]\w*|operator[^\s(]*)\s*\(")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comment and string/char-literal contents, preserving line
    structure so reported line numbers stay exact."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                    res.append("  ")
                else:
                    res.append(" ")
                    i += 1
            elif line.startswith("//", i):
                res.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                res.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                res.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        res.append("  ")
                        i += 2
                    elif line[i] == quote:
                        res.append(" ")
                        i += 1
                        break
                    else:
                        res.append(" ")
                        i += 1
            else:
                res.append(c)
                i += 1
        out.append("".join(res))
    return out


def parse_allows(lines: list[str]) -> tuple[list[set], set]:
    """Per-line allowed rule sets (an allow covers its own line and the next
    line below it) plus file-wide allows."""
    per_line: list[set] = [set() for _ in lines]
    file_wide: set = set()
    for idx, line in enumerate(lines):
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_wide.update(r.strip() for r in m.group(1).split(","))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            per_line[idx].update(rules)
            if idx + 1 < len(lines):
                per_line[idx + 1].update(rules)
    return per_line, file_wide


def collapse_templates(text: str) -> str:
    """`std::unordered_map<K, V> name` -> `std::unordered_map name`."""
    out, depth = [], 0
    for c in text:
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
    return "".join(out)


def norm(path: str) -> str:
    return path.replace(os.sep, "/")


def is_util(path: str) -> bool:
    return "/util/" in norm(path) or norm(path).startswith("util/")


def marker_covered(path: str) -> bool:
    p = norm(path)
    return any(f"/{d}/" in p or p.startswith(f"{d}/") for d in MARKER_DIRS)


def find_marker(raw: list[str], head_idx: int) -> tuple[str | None, int]:
    """taps-threading marker on the class head line or in the contiguous
    comment block directly above it. Returns (marker, line_idx)."""
    m = MARKER_RE.search(raw[head_idx])
    if m:
        return m.group(1), head_idx
    i = head_idx - 1
    while i >= 0:
        line = raw[i].strip()
        if not (line.startswith("//") or line.startswith("*")
                or line.startswith("/*") or line.endswith("*/")):
            break
        m = MARKER_RE.search(raw[i])
        if m:
            return m.group(1), i
        i -= 1
    return None, head_idx


class Scope:
    """One open brace scope: a namespace, class/struct, enum, or other."""

    def __init__(self, kind: str, name: str, body_depth: int, head_idx: int):
        self.kind = kind          # 'class' | 'namespace' | 'enum' | 'other'
        self.name = name
        self.body_depth = body_depth
        self.head_idx = head_idx
        self.has_member = False
        self.member_idx = -1
        self.has_guard_annotation = False


def innermost_class(stack: list[Scope]) -> Scope | None:
    for sc in reversed(stack):
        if sc.kind == "class":
            return sc
    return None


def toplevel_class(stack: list[Scope]) -> Scope | None:
    for sc in stack:
        if sc.kind == "class":
            return sc
    return None


class LockGraph:
    """Acquisition-order graph: edge a -> b means `a is (or must be)
    acquired before b`. Nodes are canonical mutex names; each edge remembers
    one witness site for reporting."""

    def __init__(self):
        self.edges: dict[str, dict[str, tuple[str, int]]] = {}

    def touch(self, node: str):
        self.edges.setdefault(node, {})

    def add(self, a: str, b: str, path: str, line: int):
        self.touch(a)
        self.touch(b)
        self.edges[a].setdefault(b, (path, line))

    def cycles(self) -> list[list[str]]:
        """Every elementary cycle reachable via iterative DFS (reported once
        per distinct node set, smallest-first for determinism)."""
        found: dict[frozenset, list[str]] = {}
        color: dict[str, int] = {}
        stack_path: list[str] = []

        def dfs(u: str):
            color[u] = 1
            stack_path.append(u)
            for v in sorted(self.edges.get(u, {})):
                if color.get(v, 0) == 1:
                    cyc = stack_path[stack_path.index(v):]
                    found.setdefault(frozenset(cyc), list(cyc))
                elif color.get(v, 0) == 0:
                    dfs(v)
            stack_path.pop()
            color[u] = 2

        for node in sorted(self.edges):
            if color.get(node, 0) == 0:
                dfs(node)
        return [found[k] for k in sorted(found, key=lambda s: sorted(s))]

    def topo_order(self) -> list[str]:
        """Kahn topological order (name-sorted among ready nodes); only
        meaningful when cycle-free."""
        indeg: dict[str, int] = {n: 0 for n in self.edges}
        for u in self.edges:
            for v in self.edges[u]:
                indeg[v] = indeg.get(v, 0) + 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            u = ready.pop(0)
            order.append(u)
            for v in sorted(self.edges.get(u, {})):
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
                    ready.sort()
        return order


def canonical_mutex(expr: str, qualifier: str | None) -> str:
    """Canonical node name for a lock expression: `mu_` inside
    AdmissionService::submit -> `AdmissionService::mu_`; `progress.mu` and
    already-qualified names pass through."""
    expr = expr.strip()
    expr = re.sub(r"^\*", "", expr)  # MutexLock lock(*mu_ptr)
    if (re.fullmatch(r"[A-Za-z_]\w*", expr) and qualifier
            and not expr.startswith("g_")):
        return f"{qualifier}::{expr}"
    return expr


def lint_file(path: str, graph: LockGraph) -> list:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    stripped = strip_comments_and_strings(raw)
    per_line_allow, file_allow = parse_allows(raw)

    def allowed(idx: int, rule: str) -> bool:
        return rule in file_allow or rule in per_line_allow[idx]

    findings: list = []

    def add(idx: int, rule: str, detail: str = ""):
        if not allowed(idx, rule):
            findings.append((path, idx + 1, rule, detail or RULES[rule]))

    in_util = is_util(path)
    covered = marker_covered(path)

    depth = 0
    scope_stack: list[Scope] = []
    pending: Scope | None = None        # head seen, waiting for its `{`
    func_qualifier: str | None = None   # Class name of the enclosing method
    held: list[tuple[int, str, int]] = []  # (depth at acquisition, mutex, line)

    for idx, line in enumerate(stripped):
        code = ATTR_RE.sub(" ", line)
        nomacro = TAPS_MACRO_RE.sub(" ", code)
        flat = collapse_templates(nomacro)

        # ---- per-line textual rules --------------------------------------
        if not in_util:
            if RAW_PRIMITIVE_RE.search(code):
                add(idx, "raw-primitive",
                    f"raw primitive "
                    f"'{RAW_PRIMITIVE_RE.search(code).group(0)}' outside "
                    f"util::sync")
            if THREAD_LOCAL_RE.search(code):
                add(idx, "mutable-static",
                    "thread_local state; pass caller-owned scratch instead")
            elif (STATIC_DECL_RE.search(flat)
                  and not STATIC_IMMUTABLE_RE.search(flat)
                  and "(" not in flat):
                add(idx, "mutable-static",
                    "non-const static data; hidden shared state")
            elif depth <= 1 or (scope_stack
                                and scope_stack[-1].kind == "namespace"):
                m = GLOBAL_G_RE.match(flat)
                if m and "const" not in flat.split(m.group(1))[0]:
                    add(idx, "mutable-static",
                        f"namespace-scope global '{m.group(1)}'")

        # ---- scope tracking ----------------------------------------------
        head = CLASS_HEAD_RE.match(code) if not ENUM_RE.match(code) else None
        if head and pending is None:
            pending = Scope("class", head.group(2), depth + 1, idx)
        elif pending is None and NAMESPACE_RE.match(code) and "{" in code:
            pending = Scope("namespace", "", depth + 1, idx)
        elif pending is None and ENUM_RE.match(code) and ";" not in code:
            pending = Scope("enum", "", depth + 1, idx)

        # Method-definition qualifier (for canonical mutex names in .cpp).
        # Captured only at namespace level — qualified *calls* inside bodies
        # (std::max(...)) sit at deeper brace depth and must not clobber it.
        at_namespace_level = all(sc.kind == "namespace" for sc in scope_stack) \
            and depth == (scope_stack[-1].body_depth if scope_stack else 0)
        qual = FUNC_QUAL_RE.search(flat)
        if qual and at_namespace_level:
            func_qualifier = qual.group(1)

        # Member + annotation detection in a direct class body.
        cls = scope_stack[-1] if scope_stack else None
        if (cls is not None and cls.kind == "class"
                and depth == cls.body_depth and pending is None
                and not ACCESS_RE.match(code)):
            if GUARDED_ANNOTATION_RE.search(code):
                for sc in scope_stack:
                    if sc.kind == "class":
                        sc.has_guard_annotation = True
            if (not MEMBER_SKIP_RE.match(flat.strip())
                    and "(" not in flat and ")" not in flat):
                m = MEMBER_RE.match(flat)
                if m:
                    top = toplevel_class(scope_stack)
                    if top is not None and not top.has_member:
                        top.has_member = True
                        top.member_idx = idx

        # Lock acquisitions (syntactic nesting -> order edges). The recorded
        # depth is the brace depth AT the declaration, counting any braces
        # earlier on the same line, so `{ MutexLock l(mu); }` pops correctly.
        for lm in LOCK_DECL_RE.finditer(code):
            inner = innermost_class(scope_stack)
            qualifier = inner.name if inner is not None else func_qualifier
            mutex = canonical_mutex(lm.group(3), qualifier)
            graph.touch(mutex)
            if not allowed(idx, "lock-order"):
                for _, held_mutex, _ in held:
                    if held_mutex != mutex:
                        graph.add(held_mutex, mutex, path, idx + 1)
                    else:
                        add(idx, "lock-order",
                            f"'{mutex}' re-acquired while already held")
            prefix = code[:lm.start()]
            eff_depth = depth + prefix.count("{") - prefix.count("}")
            held.append((eff_depth, mutex, idx))

        # Declared ordering edges on mutex members.
        inner = innermost_class(scope_stack)
        qualifier = inner.name if inner is not None else func_qualifier
        member_decl = MEMBER_RE.match(flat) if "(" not in flat else None
        subject = None
        if member_decl and (ACQUIRED_BEFORE_RE.search(code)
                            or ACQUIRED_AFTER_RE.search(code)):
            subject = canonical_mutex(member_decl.group(1), qualifier)
        if subject is not None:
            for m in ACQUIRED_BEFORE_RE.finditer(code):
                for target in m.group(1).split(","):
                    graph.add(subject, canonical_mutex(target, qualifier),
                              path, idx + 1)
            for m in ACQUIRED_AFTER_RE.finditer(code):
                for target in m.group(1).split(","):
                    graph.add(canonical_mutex(target, qualifier), subject,
                              path, idx + 1)

        # ---- brace accounting (and scope exit) ---------------------------
        for c in line:
            if c == "{":
                depth += 1
                if pending is not None and depth == pending.body_depth:
                    scope_stack.append(pending)
                    pending = None
            elif c == "}":
                depth -= 1
                while scope_stack and depth < scope_stack[-1].body_depth:
                    finish_class(scope_stack.pop(), raw, path, covered,
                                 findings, allowed)
                while held and held[-1][0] > depth:
                    held.pop()
        if pending is not None and ";" in code and "{" not in code:
            pending = None  # forward declaration / member with class-ish head

    while scope_stack:
        finish_class(scope_stack.pop(), raw, path, covered, findings, allowed)
    return findings


def finish_class(scope: Scope, raw: list[str], path: str, covered: bool,
                 findings: list, allowed) -> None:
    if scope.kind != "class":
        return
    marker, marker_idx = find_marker(raw, scope.head_idx)
    if marker is not None and marker not in MARKERS:
        if not allowed(marker_idx, "marker-vocab"):
            findings.append((path, marker_idx + 1, "marker-vocab",
                             f"unknown taps-threading marker '{marker}'"))
        return
    if not covered:
        return
    if scope.has_member and marker is None:
        if not allowed(scope.head_idx, "unmarked-class"):
            findings.append((path, scope.head_idx + 1, "unmarked-class",
                             f"class '{scope.name}' has instance state "
                             f"(first member at line {scope.member_idx + 1}) "
                             f"but no taps-threading marker"))
    if marker == "guarded" and not scope.has_guard_annotation:
        if not allowed(scope.head_idx, "guarded-unannotated"):
            findings.append((path, scope.head_idx + 1, "guarded-unannotated",
                             f"class '{scope.name}' is marked guarded but "
                             f"has no TAPS_GUARDED_BY member"))


def collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".hpp", ".h", ".cpp", ".cc")):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(set(files))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--dump-lock-order", action="store_true",
                        help="print the computed global lock order and exit "
                             "(input to docs/LOCK_ORDER.md)")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    files = collect_files(args.paths or ["src"])
    graph = LockGraph()
    all_findings = []
    for path in files:
        all_findings.extend(lint_file(path, graph))

    for cycle in graph.cycles():
        witness_path, witness_line = "<declared>", 0
        first, second = cycle[0], cycle[1 % len(cycle)]
        if second in graph.edges.get(first, {}):
            witness_path, witness_line = graph.edges[first][second]
        all_findings.append(
            (witness_path, witness_line, "lock-order",
             "acquisition cycle: " + " -> ".join(cycle + [cycle[0]])))

    if args.dump_lock_order:
        cycles = graph.cycles()
        if cycles:
            for c in cycles:
                print("CYCLE: " + " -> ".join(c + [c[0]]))
            return 1
        for name in graph.topo_order():
            print(name)
        return 0

    all_findings.sort(key=lambda f: (f[0], f[1], f[2]))
    for path, line, rule, detail in all_findings:
        print(f"{path}:{line}: [{rule}] {detail}")
    print(f"lint_concurrency: {len(files)} files, "
          f"{len(all_findings)} findings")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
