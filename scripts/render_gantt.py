#!/usr/bin/env python3
"""Render taps-timeline-v1 streams as per-link Gantt charts (SVG).

Inputs are the timeline artifacts written by the simulator's
sim::TimelineRecorder — either the text dump (`taps-timeline-v1` header) or
the binary `.tlbin` form (magic `TAPSTL01`); the format is autodetected per
file (docs/TIMELINE.md has the full spec). The renderer replays the grant
stream the same way the golden/property tests do: a re-grant or preemption
clips the previous plan at the decision instant, so the drawn rectangles are
the slices that were actually executed, not every plan that was ever
committed.

Rows are links by default (`--rows flows` draws one row per flow instead;
decision-free streams such as fair-sharing runs fall back to flow rows built
from transmit events). For fat-tree runs, `--pods K` (K = the fat-tree
arity) groups the link rows by pod — link ids are mapped to pods by
mirroring the C++ topology construction order — with a labeled separator
band above each pod block, so hierarchical-admission behaviour (pod-local
traffic vs core crossings) reads directly off the chart. Preemptions are
drawn as red markers, deadline misses as hollow ones. When a chart would
exceed --max-rects rectangles it switches to an aggregated per-row
utilization heat strip and says so in the chart subtitle — large sweeps
degrade explicitly, never silently.

Usage:
    scripts/render_gantt.py TIMELINE... [--out-dir DIR] [--out FILE.svg]
        [--rows links|flows] [--pods K] [--max-rects 4000]

Exit codes: 0 ok, 2 usage or input error. Stdlib only (no pip).
"""

from __future__ import annotations

import argparse
import pathlib
import struct
import sys
from dataclasses import dataclass, field

HEADER = "taps-timeline-v1"
MAGIC = b"TAPSTL01"
VERSION = 1
KINDS = (
    "arrive",
    "admit",
    "reject",
    "preempt",
    "grant",
    "complete",
    "miss",
    "transmit",
    "end",
)


class TimelineError(Exception):
    """Malformed timeline input."""


@dataclass
class Event:
    kind: str
    time: float
    a: int = -1
    b: int = -1
    x0: float = 0.0
    x1: float = 0.0
    links: list = field(default_factory=list)
    slices: list = field(default_factory=list)  # [(lo, hi), ...]


# ---------------------------------------------------------------- parsing


def parse_binary(data: bytes) -> list[Event]:
    if data[:8] != MAGIC:
        raise TimelineError("bad magic (not a taps-timeline binary)")
    off = 8

    def take(fmt: str):
        nonlocal off
        size = struct.calcsize(fmt)
        if off + size > len(data):
            raise TimelineError("truncated stream")
        out = struct.unpack_from(fmt, data, off)
        off += size
        return out

    (version,) = take("<I")
    if version != VERSION:
        raise TimelineError(f"unsupported version {version}")
    (count,) = take("<Q")
    events: list[Event] = []
    for _ in range(count):
        kind_code, time, a, b = take("<Bdii")
        if kind_code >= len(KINDS):
            raise TimelineError(f"unknown event kind {kind_code}")
        e = Event(KINDS[kind_code], time, a, b)
        if e.kind == "grant":
            nl, ns = take("<II")
            e.links = list(take(f"<{nl}i")) if nl else []
            flat = take(f"<{2 * ns}d") if ns else ()
            e.slices = [(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]
        elif e.kind == "transmit":
            e.x0, e.x1 = take("<dd")
        events.append(e)
    return events


def _fields(parts: list[str]) -> dict:
    out = {}
    for p in parts:
        key, _, value = p.partition("=")
        out[key] = value
    return out


def parse_text(text: str) -> list[Event]:
    lines = text.splitlines()
    if not lines or lines[0] != HEADER:
        raise TimelineError(f"missing {HEADER} header")
    events: list[Event] = []
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if not parts:
            continue
        kind = parts[0]
        if kind not in KINDS and kind != "end":
            raise TimelineError(f"line {lineno}: unknown event {kind!r}")
        f = _fields(parts[1:])
        try:
            t = float(f["t"])
            if kind == "preempt":
                e = Event(kind, t, int(f["victim"]), int(f["by"]))
            elif kind in ("arrive", "admit", "reject"):
                e = Event(kind, t, int(f["task"]))
            elif kind == "end":
                e = Event(kind, t)
            else:
                e = Event(kind, t, int(f["flow"]), int(f["task"]))
                if kind == "grant":
                    if f["links"] != "-":
                        e.links = [int(x) for x in f["links"].split(",")]
                    if f["slices"] != "-":
                        e.slices = [
                            tuple(float(x) for x in s.split(":"))
                            for s in f["slices"].split(",")
                        ]
                elif kind == "transmit":
                    e.x0 = float(f["until"])
                    e.x1 = float(f["bytes"])
        except (KeyError, ValueError) as err:
            raise TimelineError(f"line {lineno}: {err}") from err
        events.append(e)
    return events


def load(path: pathlib.Path) -> list[Event]:
    data = path.read_bytes()
    if data[:8] == MAGIC:
        return parse_binary(data)
    try:
        return parse_text(data.decode("utf-8"))
    except UnicodeDecodeError as err:
        raise TimelineError("neither a timeline binary nor utf-8 text") from err


# ---------------------------------------------------------------- replay


@dataclass
class Segment:
    row: int  # link id (rows=links) or flow id (rows=flows)
    flow: int
    task: int
    lo: float
    hi: float


def _clip(slices: list, t: float) -> list:
    """The executed part of a plan cut off at decision instant `t`."""
    return [(lo, min(hi, t)) for lo, hi in slices if lo < t]


def replay(events: list[Event], rows: str) -> tuple[list[Segment], list[Event]]:
    """Turn the stream into drawable segments plus the marker events.

    Mirrors the replay contract pinned by tests/timeline/: each flow's live
    grant is clipped at the next re-grant/preempt/finish instant, so only
    executed slice portions are drawn.
    """
    live: dict[int, Event] = {}  # flow -> its current grant
    segments: list[Segment] = []
    markers: list[Event] = []

    def finalize(flow: int, t: float) -> None:
        grant = live.pop(flow, None)
        if grant is None:
            return
        for lo, hi in _clip(grant.slices, t):
            if hi <= lo:
                continue
            if rows == "flows":
                segments.append(Segment(flow, flow, grant.b, lo, hi))
            else:
                for link in grant.links:
                    segments.append(Segment(link, flow, grant.b, lo, hi))

    for e in events:
        if e.kind == "grant":
            finalize(e.a, e.time)
            live[e.a] = e
        elif e.kind == "preempt":
            for flow, grant in list(live.items()):
                if grant.b == e.a:
                    finalize(flow, e.time)
            markers.append(e)
        elif e.kind in ("complete", "miss"):
            # A completed flow's slices all end by e.time; clip past the
            # instant so the final slice is kept whole.
            finalize(e.a, e.time + 1e-12)
            if e.kind == "miss":
                markers.append(e)
        elif e.kind == "end":
            for flow in list(live):
                finalize(flow, e.time)

    if not segments and rows == "links":
        # Decision-free stream (e.g. fair sharing): fall back to flow rows
        # built from transmit records.
        for e in events:
            if e.kind == "transmit" and e.x0 > e.time:
                segments.append(Segment(e.a, e.a, e.b, e.time, e.x0))
    return segments, markers


def fattree_link_pods(k: int) -> list[int]:
    """Pod of every link id on the k-ary fat-tree.

    Mirrors the construction order of src/topo/fattree.cpp: core switches
    first (nodes only — no links yet), then per pod each aggregation switch
    is duplex-linked to its k/2 cores, then each edge switch is duplex-linked
    to the pod's aggs and its k/2 hosts. Every duplex pair therefore lands in
    its pod's contiguous link-id block, the agg<->core uplinks included —
    the same convention the C++ PodMap uses for pod uplink/downlink budgets.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    half = k // 2
    # Per pod: 2h^2 agg<->core + h * (2h edge<->agg + 2h host<->edge).
    per_pod = 6 * half * half
    return [p for p in range(k) for _ in range(per_pod)]


# ---------------------------------------------------------------- drawing

LEFT = 88
ROW_H = 20
ROW_GAP = 5
GROUP_H = 16  # pod separator band height (--pods)
TOP = 52
WIDTH = 960
BOTTOM = 34


def color(flow: int) -> str:
    hue = (flow * 137.508) % 360.0  # golden-angle walk: adjacent ids differ
    return f"hsl({hue:.1f},70%,55%)"


def _esc(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_svg(
    segments: list[Segment],
    markers: list[Event],
    title: str,
    row_kind: str,
    max_rects: int,
    groups: dict | None = None,
) -> str:
    rows = sorted({s.row for s in segments})
    if groups is not None:
        rows.sort(key=lambda r: (groups[r], r))
    t_lo = min((s.lo for s in segments), default=0.0)
    t_hi = max((s.hi for s in segments), default=1.0)
    for m in markers:
        t_hi = max(t_hi, m.time)
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    span = t_hi - t_lo
    chart_w = WIDTH - LEFT - 16

    def x(t: float) -> float:
        return LEFT + (t - t_lo) / span * chart_w

    aggregated = len(segments) > max_rects
    # Row layout: contiguous rows, with a labeled separator band above each
    # pod block when grouping is on.
    row_y: dict = {}
    group_bands: list = []  # (label, band y)
    y_cursor = TOP
    prev_group = None
    for r in rows:
        if groups is not None and groups[r] != prev_group:
            prev_group = groups[r]
            group_bands.append((f"pod {prev_group}", y_cursor))
            y_cursor += GROUP_H
        row_y[r] = y_cursor
        y_cursor += ROW_H + ROW_GAP
    height = y_cursor + BOTTOM
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
        f'<text x="{LEFT}" y="18" font-size="14">{_esc(title)}</text>',
    ]
    subtitle = f"{len(segments)} slices, {len(rows)} {row_kind}"
    if groups is not None:
        subtitle += f", grouped into {len(group_bands)} pods"
    if aggregated:
        subtitle += (
            f" — aggregated to per-row utilization ({len(segments)} rects"
            f" > --max-rects {max_rects})"
        )
    out.append(f'<text x="{LEFT}" y="34" fill="#555">{_esc(subtitle)}</text>')

    for label, gy in group_bands:
        out.append(
            f'<line x1="{LEFT}" y1="{gy + 2}" x2="{LEFT + chart_w}" '
            f'y2="{gy + 2}" stroke="#999"/>'
        )
        out.append(
            f'<text x="{LEFT - 8}" y="{gy + GROUP_H - 3}" text-anchor="end" '
            f'font-weight="bold">{_esc(label)}</text>'
        )

    prefix = "link" if row_kind == "links" else "flow"
    for r, y in row_y.items():
        out.append(
            f'<text x="{LEFT - 8}" y="{y + ROW_H - 6}" text-anchor="end">'
            f"{prefix} {r}</text>"
        )
        out.append(
            f'<line x1="{LEFT}" y1="{y + ROW_H}" x2="{LEFT + chart_w}" '
            f'y2="{y + ROW_H}" stroke="#ddd"/>'
        )

    if aggregated:
        buckets = 400
        for r, y in row_y.items():
            busy = [0.0] * buckets
            for s in (s for s in segments if s.row == r):
                b0 = int((s.lo - t_lo) / span * buckets)
                b1 = int((s.hi - t_lo) / span * buckets)
                for b in range(max(b0, 0), min(b1 + 1, buckets)):
                    blo = t_lo + b * span / buckets
                    bhi = blo + span / buckets
                    busy[b] += max(0.0, min(s.hi, bhi) - max(s.lo, blo))
            w = chart_w / buckets
            for b, occupied in enumerate(busy):
                frac = min(1.0, occupied / (span / buckets))
                if frac <= 0.0:
                    continue
                shade = int(255 - 195 * frac)
                out.append(
                    f'<rect x="{LEFT + b * w:.2f}" y="{y}" width="{w:.2f}" '
                    f'height="{ROW_H}" fill="rgb({shade},{shade},255)"/>'
                )
    else:
        for s in segments:
            out.append(
                f'<rect x="{x(s.lo):.2f}" y="{row_y[s.row]}" '
                f'width="{max(x(s.hi) - x(s.lo), 0.75):.2f}" height="{ROW_H}" '
                f'fill="{color(s.flow)}" stroke="#333" stroke-width="0.5">'
                f"<title>flow {s.flow} (task {s.task}) "
                f"[{s.lo:g}, {s.hi:g})</title></rect>"
            )

    for m in markers:
        mx = x(m.time)
        if m.kind == "preempt":
            out.append(
                f'<line x1="{mx:.2f}" y1="{TOP - 6}" x2="{mx:.2f}" '
                f'y2="{height - BOTTOM}" stroke="red" stroke-dasharray="4,3">'
                f"<title>preempt task {m.a} by task {m.b} at t={m.time:g}"
                f"</title></line>"
            )
        else:  # miss
            out.append(
                f'<circle cx="{mx:.2f}" cy="{TOP - 8}" r="4" fill="none" '
                f'stroke="red"><title>miss flow {m.a} at t={m.time:g}'
                f"</title></circle>"
            )

    ticks = 8
    axis_y = height - BOTTOM + 4
    for i in range(ticks + 1):
        t = t_lo + span * i / ticks
        out.append(
            f'<text x="{x(t):.2f}" y="{axis_y + 12}" text-anchor="middle" '
            f'fill="#555">{t:g}</text>'
        )
        out.append(
            f'<line x1="{x(t):.2f}" y1="{TOP}" x2="{x(t):.2f}" '
            f'y2="{axis_y}" stroke="#eee"/>'
        )
    out.append("</svg>")
    return "\n".join(out) + "\n"


# ------------------------------------------------------------------- main


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description="Render taps-timeline-v1 streams as Gantt SVGs."
    )
    ap.add_argument("inputs", nargs="+", metavar="TIMELINE", help=".tlbin or text dump")
    ap.add_argument("--out", help="output SVG path (single input only)")
    ap.add_argument("--out-dir", help="write <input-stem>.svg files here")
    ap.add_argument(
        "--rows",
        choices=("links", "flows"),
        default="links",
        help="one chart row per link (default) or per flow",
    )
    ap.add_argument(
        "--pods",
        type=int,
        metavar="K",
        help="group link rows by fat-tree pod (K = the fat-tree arity; "
        "link rows only)",
    )
    ap.add_argument(
        "--max-rects",
        type=int,
        default=4000,
        metavar="N",
        help="above N rectangles, aggregate rows into utilization strips",
    )
    args = ap.parse_args(argv)
    if args.out and len(args.inputs) > 1:
        ap.error("--out is for a single input; use --out-dir for several")
    pod_of_link = None
    if args.pods is not None:
        if args.rows != "links":
            ap.error("--pods applies to link rows (--rows links)")
        try:
            pod_of_link = fattree_link_pods(args.pods)
        except ValueError as err:
            ap.error(str(err))

    for name in args.inputs:
        path = pathlib.Path(name)
        try:
            events = load(path)
        except (OSError, TimelineError) as err:
            print(f"error: {path}: {err}", file=sys.stderr)
            return 2
        segments, markers = replay(events, args.rows)
        row_kind = args.rows
        if row_kind == "links" and segments and all(s.row == s.flow for s in segments):
            # transmit-only fallback renders flow rows; label them honestly
            row_kind = "flows" if not any(e.kind == "grant" for e in events) else "links"
        groups = None
        if pod_of_link is not None and row_kind == "links":
            bad = [s.row for s in segments if not 0 <= s.row < len(pod_of_link)]
            if bad:
                print(
                    f"error: {path}: link {bad[0]} is outside a k={args.pods} "
                    f"fat-tree ({len(pod_of_link)} links)",
                    file=sys.stderr,
                )
                return 2
            groups = {s.row: pod_of_link[s.row] for s in segments}
        svg = render_svg(segments, markers, path.name, row_kind, args.max_rects, groups)
        if args.out:
            out_path = pathlib.Path(args.out)
        elif args.out_dir:
            out_dir = pathlib.Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / (path.stem + ".svg")
        else:
            out_path = path.with_suffix(".svg")
        out_path.write_text(svg, encoding="utf-8")
        print(f"{path} -> {out_path} ({len(segments)} slices)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
