#!/usr/bin/env python3
"""Perf-regression gate for the taps-bench-v1 JSON documents.

Compares two BENCH_<name>.json files (a committed baseline and a fresh run,
both written by the bench binaries' --json flag) benchmark-by-benchmark on
the median and exits non-zero when any benchmark regressed by more than the
threshold. Metrics (the non-timed scalars) are reported when they drift but
never gated — they are simulation outputs, not performance.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
        [--warn-only]

Exit codes: 0 ok (or --warn-only), 1 regression past threshold, 2 usage or
input error. See docs/BENCHMARKING.md for the workflow.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "taps-bench-v1"


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}",
              file=sys.stderr)
        raise SystemExit(2)
    return doc


def benchmarks(doc: dict) -> dict[str, dict]:
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def metrics(doc: dict) -> dict[str, float]:
    return {m["name"]: m["value"] for m in doc.get("metrics", [])}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_<name>.json")
    parser.add_argument("current", help="freshly produced BENCH_<name>.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated median slowdown, fractional "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(for noisy CI runners)")
    args = parser.parse_args()  # argparse exits 2 on usage errors itself
    if args.threshold <= 0:
        print("error: --threshold must be positive", file=sys.stderr)
        return 2

    base_doc = load(args.baseline)
    cur_doc = load(args.current)

    base = benchmarks(base_doc)
    cur = benchmarks(cur_doc)
    if not base:
        print(f"error: {args.baseline} contains no benchmarks", file=sys.stderr)
        return 2

    regressions: list[str] = []
    improved = 0
    compared = 0
    for name in base:
        if name not in cur:
            print(f"  MISSING  {name}: in baseline but not in current run")
            continue
        b, c = base[name]["median"], cur[name]["median"]
        compared += 1
        if b <= 0:
            continue
        ratio = c / b
        marker = "ok"
        if ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            regressions.append(f"{name}: {b:.6g}s -> {c:.6g}s ({ratio:.2f}x)")
        elif ratio < 1.0 - args.threshold:
            marker = "improved"
            improved += 1
        print(f"  {marker:>9}  {name}: median {b:.6g}s -> {c:.6g}s ({ratio:.2f}x)")
    for name in cur:
        if name not in base:
            print(f"      new  {name}: no baseline (not gated)")

    # Metric drift is informational only.
    bm, cm = metrics(base_doc), metrics(cur_doc)
    for name in sorted(bm.keys() & cm.keys()):
        if bm[name] != cm[name]:
            print(f"   metric  {name}: {bm[name]:.6g} -> {cm[name]:.6g} (not gated)")

    print(f"\ncompared {compared} benchmarks: {len(regressions)} regressed "
          f"(> {args.threshold:.0%}), {improved} improved")
    if regressions:
        print("\nregressions:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if args.warn_only:
            print("(--warn-only: exiting 0 anyway)", file=sys.stderr)
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
