// FlowStateArena: structure-of-arrays storage for the mutable per-flow
// simulation state (remaining / rate / bytes_sent / completion_time / state).
// `net::Flow` is a view over one arena slot (slot index == FlowId), so the
// rest of the tree keeps its object-per-flow API while the simulator's hot
// loops get flat, cache-friendly arrays.
//
// Storage is chunked: slots never move once allocated, so the references a
// Flow view hands out stay valid across arena growth.
//
// Rate writes go through set_rate(), which is compare-on-write and feeds a
// deduplicated dirty list — the indexed simulation engine drains it after
// every assign_rates() call to learn which flows actually changed speed
// instead of assuming all of them did (see DESIGN.md "Simulation engine").
//
// Threading contract (the piece the parallel per-pod advancement plan
// leans on): all MUTATION — push(), set_rate(), drain_dirty(), writes
// through the non-const accessors — is confined to the owning domain, but
// the chunk TABLE is published with release/acquire semantics so threads in
// other domains may concurrently READ any slot they learned about through a
// synchronizing size() acquire (or any external happens-before edge), even
// while the owning domain keeps growing the arena. Growth never moves a
// chunk and never frees a superseded pointer table (retired tables are
// retained until destruction, a few kB each), so a stale table remains
// valid for every slot that existed when it was current. The grow-while-
// read TSan stress (tests/net/flow_arena_stress_test.cpp) pins exactly
// this: one grower, many readers, zero races.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sync.hpp"

namespace taps::net {

using FlowId = std::int32_t;
using TaskId = std::int32_t;

inline constexpr FlowId kInvalidFlow = -1;
inline constexpr TaskId kInvalidTask = -1;

enum class FlowState : std::uint8_t {
  kPending,    // not yet arrived or not yet admitted
  kActive,     // admitted, transmitting (or waiting for its time slices)
  kCompleted,  // all bytes delivered before the deadline
  kMissed,     // deadline passed with bytes remaining
  kRejected,   // never admitted (its task was rejected/preempted)
};

[[nodiscard]] const char* to_string(FlowState s);

// taps-threading: single-domain -- mutation is domain-confined; the
// atomically published chunk table additionally allows cross-domain readers
// of already-allocated slots during growth (see header comment).
class FlowStateArena {
 public:
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;  // slots per chunk

  FlowStateArena() = default;
  FlowStateArena(const FlowStateArena&) = delete;
  FlowStateArena& operator=(const FlowStateArena&) = delete;

  /// Append one slot initialized for an unstarted flow of `size` bytes;
  /// returns its index (== the FlowId the Network will assign). Owning
  /// domain only (single writer).
  std::size_t push(double size) {
    const std::size_t i = size_.load(std::memory_order_relaxed);  // single writer
    if ((i >> kChunkShift) == chunks_.size()) grow_one_chunk();
    Chunk& c = *writer_table_[i >> kChunkShift];
    const std::size_t s = i & (kChunkSize - 1);
    c.remaining[s] = size;
    c.rate[s] = 0.0;
    c.bytes_sent[s] = 0.0;
    c.completion_time[s] = -1.0;
    c.state[s] = FlowState::kPending;
    c.rate_dirty[s] = 0;
    // Publish: readers that observe size() > i are guaranteed to see the
    // slot's initialization (and, transitively, the table slot written in
    // grow_one_chunk before this store).
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  /// Slot count. An acquire read: a slot index below the returned value is
  /// safe to read from any thread (its initialization happened-before).
  [[nodiscard]] std::size_t size() const { return size_.load(std::memory_order_acquire); }

  [[nodiscard]] double& remaining(std::size_t i) { return chunk(i).remaining[slot(i)]; }
  [[nodiscard]] double& bytes_sent(std::size_t i) { return chunk(i).bytes_sent[slot(i)]; }
  [[nodiscard]] double& completion_time(std::size_t i) { return chunk(i).completion_time[slot(i)]; }
  [[nodiscard]] FlowState& state(std::size_t i) { return chunk(i).state[slot(i)]; }
  // Const reads, usable from non-owning domains on slots covered by a size()
  // acquire (and not concurrently written by the owner).
  [[nodiscard]] double remaining(std::size_t i) const { return chunk(i).remaining[slot(i)]; }
  [[nodiscard]] double bytes_sent(std::size_t i) const { return chunk(i).bytes_sent[slot(i)]; }
  [[nodiscard]] double completion_time(std::size_t i) const {
    return chunk(i).completion_time[slot(i)];
  }
  [[nodiscard]] FlowState state(std::size_t i) const { return chunk(i).state[slot(i)]; }
  /// Read-only: all rate writes must go through set_rate() for dirty tracking.
  [[nodiscard]] const double& rate(std::size_t i) const { return chunk(i).rate[slot(i)]; }

  /// Compare-on-write rate update. A changed flow enters the dirty list at
  /// most once between drains (per-slot flag), so schedulers that build rates
  /// incrementally (progressive_fill's repeated `rate += share` rounds) cost
  /// one list entry per flow, not one per round. Owning domain only.
  void set_rate(std::size_t i, double r) {
    Chunk& c = chunk(i);
    const std::size_t s = slot(i);
    if (c.rate[s] == r) return;
    c.rate[s] = r;
    if (c.rate_dirty[s] == 0) {
      c.rate_dirty[s] = 1;
      dirty_.push_back(static_cast<FlowId>(i));
    }
  }

  /// Move the dirty list (flows whose rate changed since the last drain, in
  /// first-change order) into `out` and reset the per-slot flags. The
  /// reference engine never drains; the flags then bound the list at one
  /// entry per flow, so memory stays O(flows) either way. Owning domain only.
  void drain_dirty(std::vector<FlowId>& out) {
    out.clear();
    out.swap(dirty_);
    for (const FlowId fid : out) {
      const auto i = static_cast<std::size_t>(fid);
      chunk(i).rate_dirty[slot(i)] = 0;
    }
  }

 private:
  struct Chunk {
    std::array<double, kChunkSize> remaining{};
    std::array<double, kChunkSize> rate{};
    std::array<double, kChunkSize> bytes_sent{};
    std::array<double, kChunkSize> completion_time{};
    std::array<FlowState, kChunkSize> state{};
    std::array<std::uint8_t, kChunkSize> rate_dirty{};
  };

  /// Allocate the chunk for the next slot and make it addressable through
  /// the published table. When the pointer table itself is full, a doubled
  /// copy is built and atomically swapped in; the old table is retired (kept
  /// alive), so concurrent readers holding it still resolve every slot that
  /// existed before the swap.
  void grow_one_chunk() {
    chunks_.push_back(std::make_unique<Chunk>());
    const std::size_t n = chunks_.size();
    if (n > table_capacity_) {
      const std::size_t cap = table_capacity_ == 0 ? 8 : table_capacity_ * 2;
      auto table = std::make_unique<Chunk*[]>(cap);
      for (std::size_t k = 0; k < n; ++k) table[k] = chunks_[k].get();
      writer_table_ = table.get();
      table_capacity_ = cap;
      tables_.push_back(std::move(table));
      table_.store(writer_table_, std::memory_order_release);
    } else {
      // Same array: the slot write is published by push()'s release store of
      // size_ (no reader indexes chunk n-1 before observing a size inside it).
      writer_table_[n - 1] = chunks_.back().get();
    }
  }

  [[nodiscard]] Chunk& chunk(std::size_t i) const {
    assert(i < size_.load(std::memory_order_relaxed));
    Chunk* const* table = table_.load(std::memory_order_acquire);
    return *table[i >> kChunkShift];
  }
  [[nodiscard]] static std::size_t slot(std::size_t i) { return i & (kChunkSize - 1); }

  std::vector<std::unique_ptr<Chunk>> chunks_;        // chunk ownership (writer only)
  std::vector<std::unique_ptr<Chunk*[]>> tables_;     // current + retired tables (writer only)
  Chunk** writer_table_ = nullptr;                    // writer's view of tables_.back()
  std::size_t table_capacity_ = 0;                    // writer only
  util::Atomic<Chunk* const*> table_{nullptr};        // published for cross-domain readers
  util::Atomic<std::size_t> size_{0};                 // release on push, acquire on size()
  std::vector<FlowId> dirty_;                         // writer only
};

}  // namespace taps::net
