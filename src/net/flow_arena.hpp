// FlowStateArena: structure-of-arrays storage for the mutable per-flow
// simulation state (remaining / rate / bytes_sent / completion_time / state).
// `net::Flow` is a view over one arena slot (slot index == FlowId), so the
// rest of the tree keeps its object-per-flow API while the simulator's hot
// loops get flat, cache-friendly arrays.
//
// Storage is chunked: slots never move once allocated, so the references a
// Flow view hands out stay valid across arena growth.
//
// Rate writes go through set_rate(), which is compare-on-write and feeds a
// deduplicated dirty list — the indexed simulation engine drains it after
// every assign_rates() call to learn which flows actually changed speed
// instead of assuming all of them did (see DESIGN.md "Simulation engine").
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace taps::net {

using FlowId = std::int32_t;
using TaskId = std::int32_t;

inline constexpr FlowId kInvalidFlow = -1;
inline constexpr TaskId kInvalidTask = -1;

enum class FlowState : std::uint8_t {
  kPending,    // not yet arrived or not yet admitted
  kActive,     // admitted, transmitting (or waiting for its time slices)
  kCompleted,  // all bytes delivered before the deadline
  kMissed,     // deadline passed with bytes remaining
  kRejected,   // never admitted (its task was rejected/preempted)
};

[[nodiscard]] const char* to_string(FlowState s);

class FlowStateArena {
 public:
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;  // slots per chunk

  FlowStateArena() = default;
  FlowStateArena(const FlowStateArena&) = delete;
  FlowStateArena& operator=(const FlowStateArena&) = delete;

  /// Append one slot initialized for an unstarted flow of `size` bytes;
  /// returns its index (== the FlowId the Network will assign).
  std::size_t push(double size) {
    const std::size_t i = size_;
    if ((i >> kChunkShift) == chunks_.size()) chunks_.push_back(std::make_unique<Chunk>());
    Chunk& c = *chunks_[i >> kChunkShift];
    const std::size_t s = i & (kChunkSize - 1);
    c.remaining[s] = size;
    c.rate[s] = 0.0;
    c.bytes_sent[s] = 0.0;
    c.completion_time[s] = -1.0;
    c.state[s] = FlowState::kPending;
    c.rate_dirty[s] = 0;
    ++size_;
    return i;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] double& remaining(std::size_t i) { return chunk(i).remaining[slot(i)]; }
  [[nodiscard]] double& bytes_sent(std::size_t i) { return chunk(i).bytes_sent[slot(i)]; }
  [[nodiscard]] double& completion_time(std::size_t i) { return chunk(i).completion_time[slot(i)]; }
  [[nodiscard]] FlowState& state(std::size_t i) { return chunk(i).state[slot(i)]; }
  /// Read-only: all rate writes must go through set_rate() for dirty tracking.
  [[nodiscard]] const double& rate(std::size_t i) const { return chunk(i).rate[slot(i)]; }

  /// Compare-on-write rate update. A changed flow enters the dirty list at
  /// most once between drains (per-slot flag), so schedulers that build rates
  /// incrementally (progressive_fill's repeated `rate += share` rounds) cost
  /// one list entry per flow, not one per round.
  void set_rate(std::size_t i, double r) {
    Chunk& c = chunk(i);
    const std::size_t s = slot(i);
    if (c.rate[s] == r) return;
    c.rate[s] = r;
    if (c.rate_dirty[s] == 0) {
      c.rate_dirty[s] = 1;
      dirty_.push_back(static_cast<FlowId>(i));
    }
  }

  /// Move the dirty list (flows whose rate changed since the last drain, in
  /// first-change order) into `out` and reset the per-slot flags. The
  /// reference engine never drains; the flags then bound the list at one
  /// entry per flow, so memory stays O(flows) either way.
  void drain_dirty(std::vector<FlowId>& out) {
    out.clear();
    out.swap(dirty_);
    for (const FlowId fid : out) {
      const auto i = static_cast<std::size_t>(fid);
      chunk(i).rate_dirty[slot(i)] = 0;
    }
  }

 private:
  struct Chunk {
    std::array<double, kChunkSize> remaining{};
    std::array<double, kChunkSize> rate{};
    std::array<double, kChunkSize> bytes_sent{};
    std::array<double, kChunkSize> completion_time{};
    std::array<FlowState, kChunkSize> state{};
    std::array<std::uint8_t, kChunkSize> rate_dirty{};
  };

  [[nodiscard]] Chunk& chunk(std::size_t i) const {
    assert(i < size_);
    return *chunks_[i >> kChunkShift];
  }
  [[nodiscard]] static std::size_t slot(std::size_t i) { return i & (kChunkSize - 1); }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
  std::vector<FlowId> dirty_;
};

}  // namespace taps::net
