#include "net/task.hpp"

namespace taps::net {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kPending:
      return "pending";
    case TaskState::kAdmitted:
      return "admitted";
    case TaskState::kCompleted:
      return "completed";
    case TaskState::kFailed:
      return "failed";
    case TaskState::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace taps::net
