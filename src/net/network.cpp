#include "net/network.hpp"

#include <cassert>

namespace taps::net {

TaskId Network::add_task(double arrival, double deadline, std::span<const FlowSpec> flow_specs) {
  const TaskId tid = static_cast<TaskId>(tasks_.size());
  TaskSpec tspec;
  tspec.id = tid;
  tspec.arrival = arrival;
  tspec.deadline = deadline;
  tspec.flows.reserve(flow_specs.size());
  for (const FlowSpec& fs : flow_specs) {
    FlowSpec spec = fs;
    spec.id = static_cast<FlowId>(flows_.size());
    spec.task = tid;
    spec.arrival = arrival;
    spec.deadline = deadline;
    assert(spec.src != spec.dst);
    assert(spec.size > 0.0);
    tspec.flows.push_back(spec.id);
    arena_.push(spec.size);
    flows_.emplace_back(spec, arena_);
  }
  tasks_.emplace_back(std::move(tspec));
  return tid;
}

void Network::extend_task(TaskId id, double arrival, std::span<const FlowSpec> flow_specs) {
  Task& t = task(id);
  assert(arrival >= t.spec.arrival);
  const bool dead = t.state == TaskState::kRejected || t.state == TaskState::kFailed;
  for (const FlowSpec& fs : flow_specs) {
    FlowSpec spec = fs;
    spec.id = static_cast<FlowId>(flows_.size());
    spec.task = id;
    spec.arrival = arrival;
    spec.deadline = t.spec.deadline;
    assert(spec.src != spec.dst);
    assert(spec.size > 0.0);
    t.spec.flows.push_back(spec.id);
    arena_.push(spec.size);
    flows_.emplace_back(spec, arena_);
    if (dead) flows_.back().state = FlowState::kRejected;
  }
  if (t.state == TaskState::kCompleted) t.state = TaskState::kAdmitted;
}

bool Network::uniform_capacity() const {
  const auto& links = graph().links();
  if (links.empty()) return true;
  const double c = links.front().capacity;
  for (const auto& l : links) {
    if (l.capacity != c) return false;
  }
  return true;
}

void Network::on_flow_completed(FlowId id, double now) {
  Flow& f = flow(id);
  assert(!f.finished());
  f.state = FlowState::kCompleted;
  f.remaining = 0.0;
  f.set_rate(0.0);
  f.completion_time = now;
  Task& t = task(f.task());
  ++t.completed_flows;
  if (t.state == TaskState::kAdmitted && t.completed_flows == t.flow_count()) {
    t.state = TaskState::kCompleted;
  }
}

void Network::on_flow_missed(FlowId id) {
  Flow& f = flow(id);
  assert(!f.finished());
  f.state = FlowState::kMissed;
  f.set_rate(0.0);
  Task& t = task(f.task());
  if (t.state == TaskState::kAdmitted || t.state == TaskState::kPending) {
    t.state = TaskState::kFailed;
  }
}

void Network::reject_task(TaskId id) {
  Task& t = task(id);
  t.state = TaskState::kRejected;
  for (FlowId fid : t.spec.flows) {
    Flow& f = flow(fid);
    if (!f.finished()) {
      f.state = FlowState::kRejected;
      f.set_rate(0.0);
    }
  }
}

}  // namespace taps::net
