// Network: per-run mutable state — the task/flow registry bound to a
// topology. Schedulers and the simulator operate on this object.
#pragma once

#include <span>
#include <vector>

#include "net/flow_arena.hpp"
#include "net/task.hpp"
#include "topo/paths.hpp"

namespace taps::net {

// taps-threading: single-domain -- flow table and arena mutate under one advancement domain
class Network {
 public:
  /// The topology must outlive the Network.
  explicit Network(const topo::Topology& topology) : topo_(&topology) {}

  // Flow views borrow slots in arena_; copying or moving the Network would
  // leave them bound to the old object's arena.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = delete;
  Network& operator=(Network&&) = delete;
  ~Network() = default;

  /// Register a task and its flows. Flow ids and the task id are assigned
  /// here (contiguous, in registration order) and written back into the
  /// returned structures; `spec.flows`/`flow.task` are filled in.
  TaskId add_task(double arrival, double deadline, std::span<const FlowSpec> flow_specs);

  /// Append a later wave of flows to an existing task (the paper's dynamic
  /// Algorithm-1 setting, where a task's flows arrive over time and share
  /// the task's deadline). `arrival` must be >= the task's arrival. A task
  /// that had already completed is reopened (kAdmitted) — it is complete
  /// again only when the new wave also finishes. Waves cannot be added to
  /// rejected or failed tasks (the flows are registered as kRejected).
  void extend_task(TaskId id, double arrival, std::span<const FlowSpec> flow_specs);

  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
  [[nodiscard]] const topo::Graph& graph() const { return topo_->graph(); }

  [[nodiscard]] Flow& flow(FlowId id) { return flows_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Flow& flow(FlowId id) const { return flows_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] Task& task(TaskId id) { return tasks_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[static_cast<std::size_t>(id)]; }

  [[nodiscard]] std::vector<Flow>& flows() { return flows_; }
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] std::vector<Task>& tasks() { return tasks_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Structure-of-arrays backing store for the mutable flow state. The
  /// indexed simulation engine drains its rate-dirty list; everything else
  /// reaches the same state through the Flow views.
  [[nodiscard]] FlowStateArena& flow_state() { return arena_; }

  [[nodiscard]] double link_capacity(topo::LinkId id) const { return graph().link(id).capacity; }

  /// Uniform capacity check: the paper assumes all links have equal
  /// bandwidth; TAPS relies on this to reason in transfer-time units.
  [[nodiscard]] bool uniform_capacity() const;
  [[nodiscard]] double capacity() const { return graph().links().front().capacity; }

  /// Record that a flow completed at `now`: updates flow & task state.
  void on_flow_completed(FlowId id, double now);
  /// Record that a flow missed its deadline: updates flow & task state.
  void on_flow_missed(FlowId id);
  /// Reject an entire task (on arrival, or preempted). Flows that already
  /// completed stay completed; unfinished flows become kRejected.
  void reject_task(TaskId id);

 private:
  const topo::Topology* topo_;
  FlowStateArena arena_;  // declared before flows_: the views borrow its slots
  std::vector<Flow> flows_;
  std::vector<Task> tasks_;
};

}  // namespace taps::net
