// Flow: the unit of transmission. Flows belong to tasks; all flows of a task
// share the task's (absolute) deadline.
#pragma once

#include <cstdint>

#include "topo/graph.hpp"

namespace taps::net {

using FlowId = std::int32_t;
using TaskId = std::int32_t;

inline constexpr FlowId kInvalidFlow = -1;
inline constexpr TaskId kInvalidTask = -1;

enum class FlowState : std::uint8_t {
  kPending,    // not yet arrived or not yet admitted
  kActive,     // admitted, transmitting (or waiting for its time slices)
  kCompleted,  // all bytes delivered before the deadline
  kMissed,     // deadline passed with bytes remaining
  kRejected,   // never admitted (its task was rejected/preempted)
};

[[nodiscard]] const char* to_string(FlowState s);

/// Immutable description of a flow (what the workload generator produces and
/// what the sender's probe packet carries to the controller).
struct FlowSpec {
  FlowId id = kInvalidFlow;
  TaskId task = kInvalidTask;
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  double size = 0.0;      // bytes
  double arrival = 0.0;   // seconds (same for all flows of a task)
  double deadline = 0.0;  // absolute seconds (arrival + relative deadline)
};

/// Mutable runtime state of a flow during a simulation run.
struct Flow {
  FlowSpec spec;

  FlowState state = FlowState::kPending;
  double remaining = 0.0;    // bytes left to send
  double rate = 0.0;         // currently assigned rate, bytes/second
  double bytes_sent = 0.0;   // total bytes put on the wire so far
  double completion_time = -1.0;  // set when state becomes kCompleted
  topo::Path path;           // assigned route (empty until routed)

  explicit Flow(const FlowSpec& s) : spec(s), remaining(s.size) {}

  [[nodiscard]] FlowId id() const { return spec.id; }
  [[nodiscard]] TaskId task() const { return spec.task; }
  [[nodiscard]] bool finished() const {
    return state == FlowState::kCompleted || state == FlowState::kMissed ||
           state == FlowState::kRejected;
  }
  [[nodiscard]] bool active() const { return state == FlowState::kActive; }

  /// Expected transmission time at `capacity` bytes/second (paper's E_i^j).
  [[nodiscard]] double expected_time(double capacity) const { return remaining / capacity; }

  /// Time to deadline from `now` (can be negative).
  [[nodiscard]] double time_to_deadline(double now) const { return spec.deadline - now; }
};

}  // namespace taps::net
