// Flow: the unit of transmission. Flows belong to tasks; all flows of a task
// share the task's (absolute) deadline.
#pragma once

#include <cstdint>

#include "net/flow_arena.hpp"
#include "topo/graph.hpp"

namespace taps::net {

/// Immutable description of a flow (what the workload generator produces and
/// what the sender's probe packet carries to the controller).
// taps-threading: immutable-after-build -- fixed at submission; concurrent reads safe
struct FlowSpec {
  FlowId id = kInvalidFlow;
  TaskId task = kInvalidTask;
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  double size = 0.0;      // bytes
  double arrival = 0.0;   // seconds (same for all flows of a task)
  double deadline = 0.0;  // absolute seconds (arrival + relative deadline)
};

/// Mutable runtime state of a flow during a simulation run.
///
/// The state itself lives in the Network's FlowStateArena (structure of
/// arrays, slot index == spec.id); a Flow is a view binding references into
/// that slot, so existing field access (`f.remaining`, `f.state`, ...) keeps
/// working. `rate` is read-only through the view: writes go through
/// set_rate() so the arena can track which flows a scheduler actually
/// re-rated (the indexed simulation engine consumes that dirty set).
// taps-threading: single-domain -- remaining/progress mutate under the owning advancement domain
struct Flow {
  FlowSpec spec;

  FlowState& state;          // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  double& remaining;         // bytes left to send
  const double& rate;        // currently assigned rate, bytes/second
  double& bytes_sent;        // total bytes put on the wire so far
  double& completion_time;   // set when state becomes kCompleted
  topo::Path path;           // assigned route (empty until routed)

  /// Binds the view to arena slot `s.id`; the slot must already exist
  /// (Network::add_task pushes it before constructing the view).
  Flow(const FlowSpec& s, FlowStateArena& arena)
      : spec(s),
        state(arena.state(static_cast<std::size_t>(s.id))),
        remaining(arena.remaining(static_cast<std::size_t>(s.id))),
        rate(arena.rate(static_cast<std::size_t>(s.id))),
        bytes_sent(arena.bytes_sent(static_cast<std::size_t>(s.id))),
        completion_time(arena.completion_time(static_cast<std::size_t>(s.id))),
        arena_(&arena) {}

  void set_rate(double r) const { arena_->set_rate(static_cast<std::size_t>(spec.id), r); }

  [[nodiscard]] FlowId id() const { return spec.id; }
  [[nodiscard]] TaskId task() const { return spec.task; }
  [[nodiscard]] bool finished() const {
    return state == FlowState::kCompleted || state == FlowState::kMissed ||
           state == FlowState::kRejected;
  }
  [[nodiscard]] bool active() const { return state == FlowState::kActive; }

  /// Expected transmission time at `capacity` bytes/second (paper's E_i^j).
  [[nodiscard]] double expected_time(double capacity) const { return remaining / capacity; }

  /// Time to deadline from `now` (can be negative).
  [[nodiscard]] double time_to_deadline(double now) const { return spec.deadline - now; }

 private:
  FlowStateArena* arena_;
};

}  // namespace taps::net
