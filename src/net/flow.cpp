#include "net/flow.hpp"

namespace taps::net {

const char* to_string(FlowState s) {
  switch (s) {
    case FlowState::kPending:
      return "pending";
    case FlowState::kActive:
      return "active";
    case FlowState::kCompleted:
      return "completed";
    case FlowState::kMissed:
      return "missed";
    case FlowState::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace taps::net
