// Task (coflow): a set of flows sharing an arrival time and a deadline.
// A task succeeds iff every one of its flows completes before the deadline.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.hpp"

namespace taps::net {

enum class TaskState : std::uint8_t {
  kPending,    // not yet arrived
  kAdmitted,   // accepted by the scheduler, flows in flight
  kCompleted,  // all flows completed before deadline
  kFailed,     // at least one flow missed the deadline
  kRejected,   // declined on arrival or preempted by a later task
};

[[nodiscard]] const char* to_string(TaskState s);

// taps-threading: immutable-after-build -- fixed at submission; concurrent reads safe
struct TaskSpec {
  TaskId id = kInvalidTask;
  double arrival = 0.0;
  double deadline = 0.0;  // absolute
  std::vector<FlowId> flows;
};

// taps-threading: single-domain -- completion bookkeeping mutates under the owning domain
struct Task {
  TaskSpec spec;
  TaskState state = TaskState::kPending;
  std::size_t completed_flows = 0;

  explicit Task(TaskSpec s) : spec(std::move(s)) {}

  [[nodiscard]] TaskId id() const { return spec.id; }
  [[nodiscard]] std::size_t flow_count() const { return spec.flows.size(); }
  [[nodiscard]] bool finished() const {
    return state == TaskState::kCompleted || state == TaskState::kFailed ||
           state == TaskState::kRejected;
  }

  /// Fraction of this task's flows that have completed (the paper's
  /// "completion ratio of the task", used by the reject rule).
  [[nodiscard]] double completion_ratio() const {
    return spec.flows.empty()
               ? 0.0
               : static_cast<double>(completed_flows) / static_cast<double>(spec.flows.size());
  }
};

}  // namespace taps::net
