// PDQ baseline (Hong et al., SIGCOMM'12), flow-level model: flows are
// prioritized by EDF (earliest deadline) with SJF (smallest remaining size)
// tie-break; the highest-priority flow on each link transmits alone at full
// link rate, lower-priority flows are paused. Early Termination kills flows
// that cannot meet their deadline even at full rate.
//
// Suppressed Probing and Early Start are buffer-level mechanisms and are not
// represented in a flow-level model (the paper's simulation makes the same
// choice).
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

// taps-threading: thread-compatible
struct PdqConfig {
  bool early_termination = true;
  /// PDQ switches track a bounded list of flows; a flow not in the list of
  /// every switch it traverses is paused (the paper's Fig. 3 "flow list in
  /// S3 is full" motivation). 0 = unlimited (idealized PDQ, the default).
  std::size_t flow_list_limit = 0;
};

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class Pdq final : public BaseScheduler {
 public:
  explicit Pdq(const PdqConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "PDQ"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  double assign_rates(double now) override;

 private:
  PdqConfig config_;
  std::vector<char> link_busy_;
  std::vector<std::size_t> node_list_count_;
};

}  // namespace taps::sched
