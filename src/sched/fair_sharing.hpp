// Fair Sharing baseline: deadline- and task-agnostic max-min fair sharing of
// link capacity among all active flows (the behaviour of TCP-like transports
// idealized at flow level, as in the paper's evaluation).
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

class FairSharing final : public BaseScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FairSharing"; }

  void on_task_arrival(net::TaskId id, double now) override;
  double assign_rates(double now) override;
};

}  // namespace taps::sched
