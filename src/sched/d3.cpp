#include "sched/d3.hpp"

#include <algorithm>

namespace taps::sched {

using net::Flow;
using net::FlowId;

void D3::on_task_arrival(net::TaskId id, double now) { admit_all_ecmp(id, now); }

double D3::assign_rates(double now) {
  auto& flows = active_flows();
  for (const auto& l : net_->graph().links()) {
    residual_[static_cast<std::size_t>(l.id)] = l.capacity;
  }

  // FCFS: grant deadline-driven requests in arrival order (flow id breaks
  // ties among equal arrival times, matching "earlier flows win").
  std::vector<FlowId> order(flows.begin(), flows.end());
  std::sort(order.begin(), order.end(), [this](FlowId a, FlowId b) {
    const Flow& fa = net_->flow(a);
    const Flow& fb = net_->flow(b);
    if (fa.spec.arrival != fb.spec.arrival) return fa.spec.arrival < fb.spec.arrival;
    return a < b;
  });

  for (const FlowId fid : order) {
    Flow& f = net_->flow(fid);
    const double ttd = f.time_to_deadline(now);
    // Demand: finish exactly at the deadline. A flow at/past its deadline is
    // settled by the simulator; guard anyway.
    double demand = ttd > sim::kTimeEpsilon ? f.remaining / ttd : sim::kInfinity;
    double grant = demand;
    for (const topo::LinkId lid : f.path.links) {
      grant = std::min(grant, residual_[static_cast<std::size_t>(lid)]);
    }
    grant = std::max(grant, 0.0);
    f.set_rate(grant);
    for (const topo::LinkId lid : f.path.links) {
      residual_[static_cast<std::size_t>(lid)] -= grant;
    }
  }

  // Base rate: spare capacity shared max-min among all flows.
  progressive_fill(flows, residual_);
  return sim::kInfinity;
}

}  // namespace taps::sched
