// D2TCP (Vamanan et al., SIGCOMM'12), fluid-flow model — an *extension*
// beyond the paper's evaluated baselines (the TAPS paper discusses D2TCP in
// related work but does not simulate it).
//
// D2TCP modulates DCTCP's congestion avoidance by deadline urgency: each
// flow backs off by p = alpha^d, where d = Tc/D is the ratio of the time the
// flow still needs (at its current throughput) to the time it has left,
// clamped to [0.5, 2]. Urgent flows (d > 1) back off less and so claim a
// larger share; relaxed flows yield. At flow level this converges to a
// d-weighted bandwidth split, which we model directly as weighted max-min
// sharing with the urgency recomputed from each flow's previous rate — the
// same fixed-point the congestion-window dynamics settle into.
//
// Like DCTCP/D2TCP deployments (and unlike D3/PDQ/TAPS), there is no
// admission control: doomed flows keep transmitting until their deadline
// passes, wasting bandwidth.
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

// taps-threading: thread-compatible
struct D2TcpConfig {
  double min_urgency = 0.5;  // the paper's clamp on d
  double max_urgency = 2.0;
  /// Window dynamics adapt every RTT; the fluid model refreshes urgencies at
  /// this interval even between flow arrivals/completions.
  double update_interval = 0.001;  // seconds
};

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class D2Tcp final : public BaseScheduler {
 public:
  explicit D2Tcp(const D2TcpConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "D2TCP"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  double assign_rates(double now) override;

 private:
  D2TcpConfig config_;
  std::vector<double> weights_;  // per-flow urgency d, indexed by FlowId
};

}  // namespace taps::sched
