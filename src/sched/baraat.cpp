#include "sched/baraat.hpp"

#include <algorithm>

namespace taps::sched {

using net::Flow;
using net::FlowId;

void Baraat::bind(net::Network& net) {
  BaseScheduler::bind(net);
  link_busy_.assign(net.graph().link_count(), 0);
}

void Baraat::on_task_arrival(net::TaskId id, double now) { admit_all_ecmp(id, now); }

double Baraat::assign_rates(double /*now*/) {
  auto& flows = active_flows();

  // Priority: task FIFO (arrival, then task id), then SJF within the task.
  std::vector<FlowId> order(flows.begin(), flows.end());
  std::sort(order.begin(), order.end(), [this](FlowId a, FlowId b) {
    const Flow& fa = net_->flow(a);
    const Flow& fb = net_->flow(b);
    const auto& ta = net_->task(fa.task());
    const auto& tb = net_->task(fb.task());
    if (ta.spec.arrival != tb.spec.arrival) return ta.spec.arrival < tb.spec.arrival;
    if (fa.task() != fb.task()) return fa.task() < fb.task();
    if (fa.remaining != fb.remaining) return fa.remaining < fb.remaining;
    return a < b;
  });

  std::fill(link_busy_.begin(), link_busy_.end(), 0);
  for (const FlowId fid : order) {
    Flow& f = net_->flow(fid);
    bool free = true;
    for (const topo::LinkId lid : f.path.links) {
      if (link_busy_[static_cast<std::size_t>(lid)] != 0) {
        free = false;
        break;
      }
    }
    if (free) {
      double rate = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        rate = std::min(rate, net_->link_capacity(lid));
        link_busy_[static_cast<std::size_t>(lid)] = 1;
      }
      f.set_rate(rate);
    } else {
      f.set_rate(0.0);
    }
  }
  return sim::kInfinity;
}

}  // namespace taps::sched
