// Baraat baseline (Dogar et al., SIGCOMM'14), flow-level model: task-aware
// but deadline-agnostic. Tasks are serialized FIFO by arrival; all flows of
// an earlier task strictly outrank flows of later tasks; inside a task flows
// follow SJF. Flow scheduling is PDQ-like (exclusive full-rate link use),
// with no deadline-based termination — which is exactly why Baraat wastes
// bandwidth in deadline-sensitive settings (paper Fig. 8).
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class Baraat final : public BaseScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Baraat"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  double assign_rates(double now) override;

 private:
  std::vector<char> link_busy_;
};

}  // namespace taps::sched
