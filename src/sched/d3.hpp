// D3 baseline (Wilson et al., SIGCOMM'11), flow-level model with the
// improvements described in the PDQ paper: each flow requests
// r = remaining / time-to-deadline; requests are granted greedily in flow
// *arrival order* (FCFS — the source of D3's priority-inversion problem the
// TAPS paper highlights), then spare capacity is distributed max-min as the
// base rate.
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

class D3 final : public BaseScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "D3"; }

  void on_task_arrival(net::TaskId id, double now) override;
  double assign_rates(double now) override;
};

}  // namespace taps::sched
