#include "sched/fair_sharing.hpp"

namespace taps::sched {

void FairSharing::on_task_arrival(net::TaskId id, double now) { admit_all_ecmp(id, now); }

double FairSharing::assign_rates(double /*now*/) {
  auto& flows = active_flows();
  for (const net::FlowId fid : flows) net_->flow(fid).set_rate(0.0);
  for (const auto& l : net_->graph().links()) {
    residual_[static_cast<std::size_t>(l.id)] = l.capacity;
  }
  progressive_fill(flows, residual_);
  return sim::kInfinity;
}

}  // namespace taps::sched
