// Shared infrastructure for concrete schedulers: active-flow bookkeeping,
// flow-level ECMP path assignment, and max-min progressive filling (used by
// Fair Sharing, and for spare-capacity redistribution in D3/Varys).
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace taps::sched {

/// Default cap on candidate paths considered per flow (fat-tree pairs can
/// have hundreds of equal-cost paths; see DESIGN.md).
inline constexpr std::size_t kDefaultMaxPaths = 16;

class ScheduleObserver;

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class BaseScheduler : public sim::Scheduler {
 public:
  void bind(net::Network& net) override;

  void on_flow_finished(net::FlowId id, double now) override;

  /// Attach a decision observer (see sched/schedule_observer.hpp), e.g.
  /// sim::TimelineRecorder. Survives bind(), so it can be set once before a
  /// run. Pure observation: decisions are bit-identical with or without one
  /// attached. Pass nullptr to detach.
  void set_schedule_observer(ScheduleObserver* observer) { schedule_observer_ = observer; }
  [[nodiscard]] ScheduleObserver* schedule_observer() const { return schedule_observer_; }

 protected:
  /// Admit the task's currently-arriving flows (those still kPending with
  /// arrival <= now): route each with ECMP and mark it active. Later waves
  /// of the same task are admitted when their arrival event fires. Waves of
  /// a task that was rejected as a whole are declined outright.
  void admit_all_ecmp(net::TaskId id, double now);

  /// The task's flows that are arriving at `now` and not yet handled.
  [[nodiscard]] std::vector<net::FlowId> pending_wave(net::TaskId id, double now) const;

  /// Assign a deterministic hash-based ECMP path to one flow.
  void route_ecmp(net::Flow& f);

  /// Flows currently admitted and unfinished (pruned on demand).
  [[nodiscard]] std::vector<net::FlowId>& active_flows();

  /// Max-min fair ("progressive filling") allocation of `residual` link
  /// capacity among `flows`, *added* to each flow's current rate. `residual`
  /// is indexed by LinkId and is consumed in place.
  void progressive_fill(const std::vector<net::FlowId>& flows, std::vector<double>& residual);

  /// Weighted variant: each unfrozen flow's rate grows proportionally to
  /// `weights[flow]` (indexed by FlowId) until a link saturates. With all
  /// weights equal it reduces to progressive_fill. Used by D2TCP's
  /// deadline-urgency-weighted sharing.
  void progressive_fill_weighted(const std::vector<net::FlowId>& flows,
                                 std::vector<double>& residual,
                                 const std::vector<double>& weights);

  std::vector<net::FlowId> active_;
  // Scratch buffers reused across assign_rates calls (sized to link count).
  std::vector<double> residual_;
  std::vector<int> link_flow_count_;
  std::vector<double> link_weight_;

 private:
  std::size_t max_paths_ = kDefaultMaxPaths;
  ScheduleObserver* schedule_observer_ = nullptr;
};

}  // namespace taps::sched
