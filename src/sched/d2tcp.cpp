#include "sched/d2tcp.hpp"

#include <algorithm>

namespace taps::sched {

using net::Flow;
using net::FlowId;

void D2Tcp::bind(net::Network& net) {
  BaseScheduler::bind(net);
  weights_.assign(net.flows().size(), 1.0);
}

void D2Tcp::on_task_arrival(net::TaskId id, double now) {
  admit_all_ecmp(id, now);
  if (weights_.size() < net_->flows().size()) weights_.resize(net_->flows().size(), 1.0);
}

double D2Tcp::assign_rates(double now) {
  auto& flows = active_flows();
  for (const auto& l : net_->graph().links()) {
    residual_[static_cast<std::size_t>(l.id)] = l.capacity;
  }

  // Urgency d = Tc / D: completion time at the flow's current throughput
  // over its time-to-deadline (the rate it held until this event is the
  // fluid analogue of the throughput D2TCP's window dynamics measured).
  for (const FlowId fid : flows) {
    Flow& f = net_->flow(fid);
    const double ttd = f.time_to_deadline(now);
    double d;
    if (ttd <= sim::kTimeEpsilon) {
      d = config_.max_urgency;  // past-due (simulator settles it at deadline)
    } else {
      double throughput = f.rate;
      if (throughput <= 0.0) {
        // No history yet (just admitted or previously starved): seed with
        // the full path rate, the most optimistic estimate.
        throughput = sim::kInfinity;
        for (const topo::LinkId lid : f.path.links) {
          throughput = std::min(throughput, net_->link_capacity(lid));
        }
      }
      d = (f.remaining / throughput) / ttd;
    }
    weights_[static_cast<std::size_t>(fid)] =
        std::clamp(d, config_.min_urgency, config_.max_urgency);
    f.set_rate(0.0);
  }

  progressive_fill_weighted(flows, residual_, weights_);
  // Re-adapt urgencies one "RTT" from now while anything is in flight.
  return flows.empty() ? sim::kInfinity : now + config_.update_interval;
}

}  // namespace taps::sched
