#include "sched/varys.hpp"

#include <algorithm>
#include <cassert>

namespace taps::sched {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;
using net::TaskState;

void Varys::bind(net::Network& net) {
  BaseScheduler::bind(net);
  reserved_.assign(net.graph().link_count(), 0.0);
  flow_reserve_.assign(net.flows().size(), 0.0);
}

void Varys::on_task_arrival(TaskId id, double now) {
  net::Task& t = net_->task(id);
  constexpr double kSlack = 1e-9;

  const std::vector<FlowId> wave = pending_wave(id, now);
  if (t.state == TaskState::kRejected) {
    for (const FlowId fid : wave) net_->flow(fid).state = FlowState::kRejected;
    return;
  }

  // Route first (ECMP), then test reservations link by link. The admission
  // is all-or-nothing per task: if any wave does not fit, the whole task is
  // discarded (Varys has no notion of partially useful coflows).
  // taps-threading: thread-compatible
  struct Candidate {
    FlowId id = 0;
    double reserve = 0.0;
  };
  std::vector<Candidate> cands;
  cands.reserve(wave.size());
  // Temporarily accumulate the wave's own demand per link to detect
  // intra-wave oversubscription as well.
  std::vector<std::pair<topo::LinkId, double>> demand;
  bool fits = true;
  for (const FlowId fid : wave) {
    Flow& f = net_->flow(fid);
    route_ecmp(f);
    const double rel_deadline = f.spec.deadline - now;
    if (rel_deadline <= sim::kTimeEpsilon) {
      fits = false;
      break;
    }
    const double r = f.spec.size / rel_deadline;
    cands.push_back(Candidate{fid, r});
    for (const topo::LinkId lid : f.path.links) demand.emplace_back(lid, r);
  }
  if (fits) {
    std::sort(demand.begin(), demand.end());
    for (std::size_t i = 0; i < demand.size();) {
      const topo::LinkId lid = demand[i].first;
      double sum = 0.0;
      while (i < demand.size() && demand[i].first == lid) sum += demand[i++].second;
      const auto li = static_cast<std::size_t>(lid);
      if (reserved_[li] + sum > net_->link_capacity(lid) + kSlack) {
        fits = false;
        break;
      }
    }
  }

  if (!fits) {
    // Release reservations held by this task's in-flight flows, then drop it.
    for (const FlowId fid : t.spec.flows) {
      const Flow& f = net_->flow(fid);
      const double r = flow_reserve_[static_cast<std::size_t>(fid)];
      if (r > 0.0 && !f.finished()) {
        for (const topo::LinkId lid : f.path.links) {
          reserved_[static_cast<std::size_t>(lid)] -= r;
        }
        flow_reserve_[static_cast<std::size_t>(fid)] = 0.0;
      }
    }
    net_->reject_task(id);
    return;
  }
  if (t.state == TaskState::kPending) t.state = TaskState::kAdmitted;
  for (const Candidate& c : cands) {
    Flow& f = net_->flow(c.id);
    f.state = FlowState::kActive;
    flow_reserve_[static_cast<std::size_t>(c.id)] = c.reserve;
    for (const topo::LinkId lid : f.path.links) {
      reserved_[static_cast<std::size_t>(lid)] += c.reserve;
    }
    active_.push_back(c.id);
  }
}

void Varys::on_flow_finished(FlowId id, double now) {
  const Flow& f = net_->flow(id);
  const double r = flow_reserve_[static_cast<std::size_t>(id)];
  if (r > 0.0) {
    for (const topo::LinkId lid : f.path.links) {
      reserved_[static_cast<std::size_t>(lid)] -= r;
    }
    flow_reserve_[static_cast<std::size_t>(id)] = 0.0;
  }
  BaseScheduler::on_flow_finished(id, now);
}

double Varys::assign_rates(double /*now*/) {
  auto& flows = active_flows();
  for (const auto& l : net_->graph().links()) {
    residual_[static_cast<std::size_t>(l.id)] = l.capacity;
  }
  // Guaranteed reservation first...
  for (const FlowId fid : flows) {
    Flow& f = net_->flow(fid);
    const double r = flow_reserve_[static_cast<std::size_t>(fid)];
    f.set_rate(r);
    for (const topo::LinkId lid : f.path.links) {
      residual_[static_cast<std::size_t>(lid)] =
          std::max(0.0, residual_[static_cast<std::size_t>(lid)] - r);
    }
  }
  // ...then spare capacity max-min on top (finishes admitted flows early).
  progressive_fill(flows, residual_);
  return sim::kInfinity;
}

}  // namespace taps::sched
