#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace taps::sched {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;
using net::TaskState;

void BaseScheduler::bind(net::Network& net) {
  sim::Scheduler::bind(net);
  active_.clear();
  residual_.assign(net.graph().link_count(), 0.0);
  link_flow_count_.assign(net.graph().link_count(), 0);
  link_weight_.assign(net.graph().link_count(), 0.0);
}

void BaseScheduler::on_flow_finished(net::FlowId /*id*/, double /*now*/) {
  // Finished flows are pruned lazily by active_flows() at the next
  // assign_rates call; an eager std::erase here is O(active) per completion
  // (O(n^2) over a run) and bought nothing the prune doesn't.
}

std::vector<FlowId> BaseScheduler::pending_wave(TaskId id, double now) const {
  std::vector<FlowId> wave;
  wave.reserve(net_->task(id).spec.flows.size());
  for (const FlowId fid : net_->task(id).spec.flows) {
    const Flow& f = net_->flow(fid);
    if (f.state == FlowState::kPending && f.spec.arrival <= now + sim::kTimeEpsilon) {
      wave.push_back(fid);
    }
  }
  return wave;
}

void BaseScheduler::admit_all_ecmp(TaskId id, double now) {
  net::Task& t = net_->task(id);
  const std::vector<FlowId> wave = pending_wave(id, now);
  if (t.state == TaskState::kRejected) {
    // The whole task was declined earlier; its later waves never transmit.
    for (const FlowId fid : wave) net_->flow(fid).state = FlowState::kRejected;
    return;
  }
  if (t.state == TaskState::kPending) t.state = TaskState::kAdmitted;
  for (const FlowId fid : wave) {
    Flow& f = net_->flow(fid);
    route_ecmp(f);
    f.state = FlowState::kActive;
    active_.push_back(fid);
  }
}

void BaseScheduler::route_ecmp(Flow& f) {
  const auto candidates = net_->topology().paths(f.spec.src, f.spec.dst, max_paths_);
  assert(!candidates.empty());
  const std::uint64_t h = util::hash_combine(static_cast<std::uint64_t>(f.id()) + 1,
                                             0x9d2c5680u ^ static_cast<std::uint64_t>(f.spec.src));
  f.path = topo::pick_ecmp(candidates, h);
}

std::vector<FlowId>& BaseScheduler::active_flows() {
  std::erase_if(active_, [this](FlowId id) { return net_->flow(id).finished(); });
  return active_;
}

void BaseScheduler::progressive_fill(const std::vector<FlowId>& flows,
                                     std::vector<double>& residual) {
  // Water-filling: raise every unfrozen flow's share uniformly until a link
  // saturates; freeze the flows crossing it; repeat. At least one link
  // saturates per round, so rounds <= number of distinct used links.
  constexpr double kEps = 1e-9;

  std::vector<FlowId> alive;
  alive.reserve(flows.size());
  std::vector<topo::LinkId> used_links;
  used_links.reserve(link_flow_count_.size());
  for (const FlowId fid : flows) {
    const Flow& f = net_->flow(fid);
    if (f.finished() || f.remaining <= sim::kByteEpsilon) continue;
    alive.push_back(fid);
    for (const topo::LinkId lid : f.path.links) {
      if (link_flow_count_[static_cast<std::size_t>(lid)]++ == 0) used_links.push_back(lid);
    }
  }

  while (!alive.empty()) {
    // Bottleneck share: the smallest per-flow increment that saturates a link.
    double share = sim::kInfinity;
    for (const topo::LinkId lid : used_links) {
      const auto i = static_cast<std::size_t>(lid);
      if (link_flow_count_[i] > 0) {
        share = std::min(share, residual[i] / link_flow_count_[i]);
      }
    }
    if (share == sim::kInfinity) break;  // no alive flow crosses any link (impossible)
    share = std::max(share, 0.0);

    for (const FlowId fid : alive) {
      const Flow& f = net_->flow(fid);
      f.set_rate(f.rate + share);
      for (const topo::LinkId lid : f.path.links) {
        residual[static_cast<std::size_t>(lid)] -= share;
      }
    }
    // Freeze flows crossing any saturated link.
    std::vector<FlowId> still_alive;
    still_alive.reserve(alive.size());
    for (const FlowId fid : alive) {
      const Flow& f = net_->flow(fid);
      bool frozen = false;
      for (const topo::LinkId lid : f.path.links) {
        if (residual[static_cast<std::size_t>(lid)] <= kEps) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        for (const topo::LinkId lid : f.path.links) {
          --link_flow_count_[static_cast<std::size_t>(lid)];
        }
      } else {
        still_alive.push_back(fid);
      }
    }
    if (still_alive.size() == alive.size()) {
      // Numerical guard: no flow froze although a link reported saturation.
      break;
    }
    alive = std::move(still_alive);
  }
  // Reset the shared counter buffer for the next call.
  for (const FlowId fid : alive) {
    for (const topo::LinkId lid : net_->flow(fid).path.links) {
      --link_flow_count_[static_cast<std::size_t>(lid)];
    }
  }
  for (const topo::LinkId lid : used_links) {
    assert(link_flow_count_[static_cast<std::size_t>(lid)] >= 0);
    link_flow_count_[static_cast<std::size_t>(lid)] = 0;
  }
}

void BaseScheduler::progressive_fill_weighted(const std::vector<FlowId>& flows,
                                              std::vector<double>& residual,
                                              const std::vector<double>& weights) {
  constexpr double kEps = 1e-9;

  std::vector<FlowId> alive;
  alive.reserve(flows.size());
  std::vector<topo::LinkId> used_links;
  for (const FlowId fid : flows) {
    const Flow& f = net_->flow(fid);
    if (f.finished() || f.remaining <= sim::kByteEpsilon) continue;
    if (weights[static_cast<std::size_t>(fid)] <= 0.0) continue;
    alive.push_back(fid);
    for (const topo::LinkId lid : f.path.links) {
      const auto i = static_cast<std::size_t>(lid);
      if (link_weight_[i] == 0.0) used_links.push_back(lid);
      link_weight_[i] += weights[static_cast<std::size_t>(fid)];
    }
  }

  while (!alive.empty()) {
    // Smallest per-unit-weight increment that saturates some link.
    double unit = sim::kInfinity;
    for (const topo::LinkId lid : used_links) {
      const auto i = static_cast<std::size_t>(lid);
      if (link_weight_[i] > 0.0) unit = std::min(unit, residual[i] / link_weight_[i]);
    }
    if (unit == sim::kInfinity) break;
    unit = std::max(unit, 0.0);

    for (const FlowId fid : alive) {
      const double inc = unit * weights[static_cast<std::size_t>(fid)];
      const Flow& f = net_->flow(fid);
      f.set_rate(f.rate + inc);
      for (const topo::LinkId lid : f.path.links) {
        residual[static_cast<std::size_t>(lid)] -= inc;
      }
    }
    std::vector<FlowId> still_alive;
    still_alive.reserve(alive.size());
    for (const FlowId fid : alive) {
      const Flow& f = net_->flow(fid);
      bool frozen = false;
      for (const topo::LinkId lid : f.path.links) {
        if (residual[static_cast<std::size_t>(lid)] <= kEps) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        for (const topo::LinkId lid : f.path.links) {
          link_weight_[static_cast<std::size_t>(lid)] -=
              weights[static_cast<std::size_t>(fid)];
        }
      } else {
        still_alive.push_back(fid);
      }
    }
    if (still_alive.size() == alive.size()) break;  // numerical guard
    alive = std::move(still_alive);
  }
  for (const FlowId fid : alive) {
    for (const topo::LinkId lid : net_->flow(fid).path.links) {
      link_weight_[static_cast<std::size_t>(lid)] -= weights[static_cast<std::size_t>(fid)];
    }
  }
  for (const topo::LinkId lid : used_links) {
    link_weight_[static_cast<std::size_t>(lid)] = 0.0;
  }
}

}  // namespace taps::sched
