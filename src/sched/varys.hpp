// Varys baseline (Chowdhury et al., SIGCOMM'14), deadline-sensitive variant
// (paper Sec. V-A: "Varys of Pseudocode 1 and 2 adapted to deadline-sensitive
// simulations"): tasks are admitted strictly in arrival order; admission
// reserves rate r = size / relative-deadline for every flow of the task on
// its path; if any link lacks headroom the whole task is rejected — Varys
// never preempts an admitted task, which is the arrival-order sensitivity the
// TAPS paper criticizes. Rejected tasks never transmit (no wasted bytes).
//
// Admitted flows are guaranteed their reservation; spare capacity is
// redistributed max-min (MADD-style acceleration), so admitted tasks always
// finish at or before their deadlines.
#pragma once

#include "sched/scheduler.hpp"

namespace taps::sched {

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class Varys final : public BaseScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Varys"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  void on_flow_finished(net::FlowId id, double now) override;
  double assign_rates(double now) override;

 private:
  std::vector<double> reserved_;       // per-link reserved rate
  std::vector<double> flow_reserve_;   // per-flow reservation (bytes/second)
};

}  // namespace taps::sched
