#include "sched/pdq.hpp"

#include <algorithm>

namespace taps::sched {

using net::Flow;
using net::FlowId;

void Pdq::bind(net::Network& net) {
  BaseScheduler::bind(net);
  link_busy_.assign(net.graph().link_count(), 0);
  node_list_count_.assign(net.graph().node_count(), 0);
}

void Pdq::on_task_arrival(net::TaskId id, double now) { admit_all_ecmp(id, now); }

double Pdq::assign_rates(double now) {
  auto& flows = active_flows();

  if (config_.early_termination) {
    for (const FlowId fid : flows) {
      Flow& f = net_->flow(fid);
      if (f.finished()) continue;
      double full_rate = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        full_rate = std::min(full_rate, net_->link_capacity(lid));
      }
      if (f.remaining / full_rate > f.time_to_deadline(now) + sim::kTimeEpsilon) {
        net_->on_flow_missed(fid);  // cannot finish even alone at full rate
      }
    }
  }

  // Priority: EDF, then SJF on remaining size, then flow id (stable).
  std::vector<FlowId> order;
  order.reserve(flows.size());
  for (const FlowId fid : flows) {
    if (!net_->flow(fid).finished()) order.push_back(fid);
  }
  std::sort(order.begin(), order.end(), [this](FlowId a, FlowId b) {
    const Flow& fa = net_->flow(a);
    const Flow& fb = net_->flow(b);
    if (fa.spec.deadline != fb.spec.deadline) return fa.spec.deadline < fb.spec.deadline;
    if (fa.remaining != fb.remaining) return fa.remaining < fb.remaining;
    return a < b;
  });

  std::fill(link_busy_.begin(), link_busy_.end(), 0);
  if (config_.flow_list_limit > 0) {
    std::fill(node_list_count_.begin(), node_list_count_.end(), 0);
  }
  for (const FlowId fid : order) {
    Flow& f = net_->flow(fid);
    bool free = true;
    // Switch flow-list admission: every switch on the path tracks flows in
    // priority order; a flow ranked past the list limit at any switch is
    // paused there (switch nodes are the sources of links[1..]).
    if (config_.flow_list_limit > 0) {
      for (std::size_t i = 1; i < f.path.links.size(); ++i) {
        const auto node = static_cast<std::size_t>(net_->graph().link(f.path.links[i]).src);
        if (node_list_count_[node]++ >= config_.flow_list_limit) free = false;
      }
    }
    for (const topo::LinkId lid : f.path.links) {
      if (link_busy_[static_cast<std::size_t>(lid)] != 0) {
        free = false;
        break;
      }
    }
    if (free) {
      double rate = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        rate = std::min(rate, net_->link_capacity(lid));
        link_busy_[static_cast<std::size_t>(lid)] = 1;
      }
      f.set_rate(rate);
    } else {
      f.set_rate(0.0);  // paused
    }
  }
  return sim::kInfinity;
}

}  // namespace taps::sched
