// Observation points for scheduler *decisions* (as opposed to
// sim::TransmitObserver, which sees what the data plane actually did).
//
// A ScheduleObserver attached to a sched::BaseScheduler hears about task
// admission outcomes, preemptions, and — for slice-scheduling policies like
// TAPS — every committed plan, flow by flow. sim::TimelineRecorder implements
// both observer interfaces and folds the two streams into one versioned
// timeline (docs/TIMELINE.md). Observation is strictly pure: schedulers emit
// the same decisions, bit for bit, with or without an observer attached
// (pinned by tests/timeline/timeline_identity_test.cpp).
//
// This header lives at the sched layer (not core) so BaseScheduler can hold
// the pointer while anything linking taps_sched — the TAPS core, the svc
// shards, the experiment driver — can attach an implementation.
#pragma once

#include <span>

#include "net/flow.hpp"
#include "topo/paths.hpp"
#include "util/interval_set.hpp"

namespace taps::sched {

/// One flow of a committed plan, viewed in committed order. The pointed-to
/// path/slices live in the scheduler and are only valid for the duration of
/// the on_plan_committed call — copy what you need.
// taps-threading: thread-compatible
struct CommittedFlowView {
  net::FlowId flow = net::kInvalidFlow;
  net::TaskId task = net::kInvalidTask;
  /// True when this commit changed the flow's route or slices relative to
  /// the previous commit (a fresh grant / re-grant); false when the entry
  /// was carried over verbatim. Mode-independent: the incremental and
  /// full-replan paths flag the same entries on the same arrivals
  /// (TapsCounters::slice_grants counts exactly these).
  bool regranted = false;
  const topo::Path* path = nullptr;
  const util::IntervalSet* slices = nullptr;
};

/// All hooks default to no-ops so observers implement only what they need.
class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;

  /// A task arrival reached the scheduler at `now` (before any decision).
  /// Fires once per wave, including waves of already-dead tasks.
  virtual void on_task_seen(net::TaskId /*id*/, double /*now*/) {}

  /// The arriving task (wave) was admitted at `now`.
  virtual void on_task_admitted(net::TaskId /*id*/, double /*now*/) {}

  /// The arriving task was rejected at `now` (reject rule said no, or a
  /// preemption attempt would have stranded a survivor).
  virtual void on_task_rejected(net::TaskId /*id*/, double /*now*/) {}

  /// Previously admitted `victim` was revoked at `now` to admit `by`.
  virtual void on_task_preempted(net::TaskId /*victim*/, net::TaskId /*by*/,
                                 double /*now*/) {}

  /// A full plan was committed at `now`: `plan` lists every flow of the
  /// committed schedule in EDF+SJF commit order. Entries with `regranted`
  /// carry new slices; the rest are unchanged since the previous commit.
  virtual void on_plan_committed(double /*now*/,
                                 std::span<const CommittedFlowView> /*plan*/) {}
};

}  // namespace taps::sched
