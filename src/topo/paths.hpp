// Topology interface and generic path enumeration.
//
// A Topology owns a Graph plus its host list and knows how to enumerate the
// candidate routing paths between two hosts. Structured topologies (trees,
// fat-trees) construct paths analytically; GenericTopology falls back to
// all-shortest-paths enumeration over the BFS distance DAG.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topo/graph.hpp"
#include "topo/pods.hpp"

namespace taps::topo {

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Pod metadata for hierarchical admission, or nullptr when the topology
  /// has no pod structure (hierarchy-aware consumers then disable themselves).
  [[nodiscard]] virtual const PodMap* pods() const { return nullptr; }

  /// Candidate routing paths from host `src` to host `dst` (src != dst),
  /// at most `max_paths` of them, in a deterministic order.
  [[nodiscard]] virtual std::vector<Path> paths(NodeId src, NodeId dst,
                                                std::size_t max_paths) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Graph graph_;
  std::vector<NodeId> hosts_;
};

/// All shortest paths from src to dst in `g`, at most `max_paths`,
/// enumerated deterministically (lexicographic in link id order).
[[nodiscard]] std::vector<Path> all_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                                   std::size_t max_paths);

/// Pick one path from a non-empty candidate list by hash (flow-level ECMP).
[[nodiscard]] const Path& pick_ecmp(const std::vector<Path>& candidates, std::uint64_t hash);

/// Arbitrary-graph topology using BFS all-shortest-paths enumeration.
class GenericTopology final : public Topology {
 public:
  GenericTopology(Graph graph, std::vector<NodeId> hosts, std::string name = "generic");

  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst,
                                        std::size_t max_paths) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace taps::topo
