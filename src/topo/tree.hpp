// Single-rooted tree topology (paper Fig. 5).
//
// hosts -- ToR -- aggregation -- core (single root). The paper's full scale
// is 40 hosts/rack x 30 racks/pod x 30 pods = 36 000 hosts, all 1 Gbps links.
// Every host pair has exactly one path (up to the lowest common ancestor and
// back down), constructed analytically from parent pointers.
#pragma once

#include "topo/paths.hpp"

namespace taps::topo {

struct SingleRootedConfig {
  int hosts_per_rack = 40;
  int racks_per_pod = 30;
  int pods = 30;
  double link_capacity = kGigabitPerSecond;

  /// Paper-scale preset (36 000 hosts).
  [[nodiscard]] static SingleRootedConfig paper();
  /// Scaled-down preset for quick runs (240 hosts).
  [[nodiscard]] static SingleRootedConfig scaled();
};

class SingleRootedTree final : public Topology {
 public:
  explicit SingleRootedTree(const SingleRootedConfig& config);

  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst,
                                        std::size_t max_paths) const override;
  [[nodiscard]] std::string name() const override { return "single-rooted-tree"; }

  [[nodiscard]] const SingleRootedConfig& config() const { return config_; }
  [[nodiscard]] NodeId root() const { return root_; }
  /// Parent switch of any non-root node.
  [[nodiscard]] NodeId parent(NodeId node) const { return parent_[static_cast<std::size_t>(node)]; }

 private:
  SingleRootedConfig config_;
  NodeId root_ = kInvalidNode;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
};

}  // namespace taps::topo
