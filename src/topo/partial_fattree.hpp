// The paper's testbed topology (Fig. 13): a partial fat-tree with 8 hosts in
// 4 racks across 2 pods. Each pod has 2 edge switches (2 hosts each) and
// 2 aggregation switches; 2 core switches join the pods (aggregation switch
// j of each pod connects to core j). All links 1 Gbps.
//
// Small enough that candidate paths are enumerated by graph search.
#pragma once

#include "topo/paths.hpp"

namespace taps::topo {

class PartialFatTree final : public Topology {
 public:
  explicit PartialFatTree(double link_capacity = kGigabitPerSecond);

  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst,
                                        std::size_t max_paths) const override;
  [[nodiscard]] std::string name() const override { return "partial-fat-tree-testbed"; }
};

}  // namespace taps::topo
