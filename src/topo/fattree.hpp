// k-ary fat-tree topology (Al-Fares et al.), the paper's multi-rooted setup:
// a 32-pod fat-tree with 8192 hosts and 1 Gbps links.
//
// Layout for even k:
//   - k pods, each with k/2 edge (ToR) switches and k/2 aggregation switches;
//   - each edge switch serves k/2 hosts;
//   - (k/2)^2 core switches; aggregation switch j of every pod connects to
//     cores [j*k/2, (j+1)*k/2).
//
// Equal-cost path structure between hosts:
//   - same edge switch: 1 path (2 hops);
//   - same pod, different edge: k/2 paths (one per aggregation switch);
//   - different pods: (k/2)^2 paths (one per core switch).
// Paths are constructed analytically (no graph search).
#pragma once

#include <memory>

#include "topo/paths.hpp"

namespace taps::topo {

struct FatTreeConfig {
  int k = 8;  // must be even, >= 2
  double link_capacity = kGigabitPerSecond;

  /// Paper-scale preset: 32-pod fat-tree, 8192 hosts.
  [[nodiscard]] static FatTreeConfig paper() { return FatTreeConfig{32, kGigabitPerSecond}; }
  /// Scaled-down preset for quick runs: k=8, 128 hosts.
  [[nodiscard]] static FatTreeConfig scaled() { return FatTreeConfig{8, kGigabitPerSecond}; }
};

class FatTree final : public Topology {
 public:
  explicit FatTree(const FatTreeConfig& config);

  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst,
                                        std::size_t max_paths) const override;
  [[nodiscard]] std::string name() const override { return "fat-tree"; }
  [[nodiscard]] const PodMap* pods() const override { return pod_map_.get(); }

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int pod_of_host(NodeId host) const;
  [[nodiscard]] NodeId edge_of_host(NodeId host) const;

  // Node id accessors for tests.
  [[nodiscard]] NodeId host(int pod, int edge, int index) const;
  [[nodiscard]] NodeId edge_switch(int pod, int index) const;
  [[nodiscard]] NodeId agg_switch(int pod, int index) const;
  [[nodiscard]] NodeId core_switch(int index) const;

 private:
  int k_;
  int half_;  // k/2
  std::vector<NodeId> edges_;   // pod * half_ + e
  std::vector<NodeId> aggs_;    // pod * half_ + a
  std::vector<NodeId> cores_;   // a * half_ + c
  std::unique_ptr<PodMap> pod_map_;
};

}  // namespace taps::topo
