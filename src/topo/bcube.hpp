// BCube(n, k) server-centric topology (Guo et al., SIGCOMM'09) — one of the
// rich-connected architectures the paper names when claiming TAPS applies to
// general data-center topologies (Sec. III-B).
//
// BCube(n, k) has n^(k+1) servers and (k+1) levels of switches with n^k
// switches per level, each with n ports. Server s (written in base n as
// digits a_k..a_0) connects to switch <level l, index = digits of s without
// a_l> for every level l. Any two distinct servers have k+1 parallel paths
// (one "correcting" digit order per level) — here enumerated via the
// level-permutation construction for the digits that differ.
//
// BCube is server-centric: intermediate hops relay through *servers*. The
// path model already allows host nodes mid-path, so TAPS's slice allocation
// and the baselines run unchanged.
#pragma once

#include "topo/paths.hpp"

namespace taps::topo {

struct BCubeConfig {
  int n = 4;  // switch port count (servers per BCube(n,0))
  int k = 1;  // levels - 1; servers = n^(k+1)
  double link_capacity = kGigabitPerSecond;
};

class BCube final : public Topology {
 public:
  explicit BCube(const BCubeConfig& config);

  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst,
                                        std::size_t max_paths) const override;
  [[nodiscard]] std::string name() const override { return "bcube"; }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] NodeId server(int index) const { return hosts_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] NodeId switch_at(int level, int index) const {
    return switches_[static_cast<std::size_t>(level)][static_cast<std::size_t>(index)];
  }

 private:
  /// Digit a_l of server index s in base n.
  [[nodiscard]] int digit(int s, int level) const;
  /// Server index with digit a_l replaced by v.
  [[nodiscard]] int with_digit(int s, int level, int v) const;
  /// Switch index serving server s at level l (s's digits without a_l).
  [[nodiscard]] int switch_index(int s, int level) const;
  /// Append the two-hop traversal src -> level-l switch -> dst to `path`.
  void hop_via(Path& path, int from_server, int to_server, int level) const;

  int n_;
  int k_;
  std::vector<std::vector<NodeId>> switches_;  // [level][index]
  std::vector<int> pow_;                       // n^i
};

}  // namespace taps::topo
