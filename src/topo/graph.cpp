#include "topo/graph.hpp"

#include <cassert>

namespace taps::topo {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost:
      return "host";
    case NodeKind::kTor:
      return "tor";
    case NodeKind::kAggregation:
      return "agg";
    case NodeKind::kCore:
      return "core";
  }
  return "?";
}

NodeId Graph::add_node(NodeKind kind, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, std::move(name)});
  out_.emplace_back();
  return id;
}

LinkId Graph::add_link(NodeId src, NodeId dst, double capacity) {
  assert(src >= 0 && static_cast<std::size_t>(src) < nodes_.size());
  assert(dst >= 0 && static_cast<std::size_t>(dst) < nodes_.size());
  assert(src != dst);
  assert(capacity > 0.0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, src, dst, capacity});
  out_[static_cast<std::size_t>(src)].push_back(id);
  by_pair_.emplace(pair_key(src, dst), id);
  return id;
}

LinkId Graph::add_duplex_link(NodeId a, NodeId b, double capacity) {
  const LinkId forward = add_link(a, b, capacity);
  add_link(b, a, capacity);
  return forward;
}

LinkId Graph::link_between(NodeId src, NodeId dst) const {
  auto it = by_pair_.find(pair_key(src, dst));
  return it == by_pair_.end() ? kInvalidLink : it->second;
}

bool is_valid_path(const Graph& g, const Path& path, NodeId src, NodeId dst) {
  if (path.empty()) return false;
  NodeId at = src;
  for (LinkId lid : path.links) {
    if (lid < 0 || static_cast<std::size_t>(lid) >= g.link_count()) return false;
    const Link& l = g.link(lid);
    if (l.src != at) return false;
    at = l.dst;
  }
  return at == dst;
}

}  // namespace taps::topo
