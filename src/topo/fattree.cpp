#include "topo/fattree.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace taps::topo {

FatTree::FatTree(const FatTreeConfig& config) : k_(config.k), half_(config.k / 2) {
  if (k_ < 2 || k_ % 2 != 0) {
    throw std::invalid_argument("FatTree: k must be even and >= 2");
  }
  const double cap = config.link_capacity;

  cores_.reserve(static_cast<std::size_t>(half_) * half_);
  for (int c = 0; c < half_ * half_; ++c) {
    cores_.push_back(graph_.add_node(NodeKind::kCore, "core" + std::to_string(c)));
  }
  for (int p = 0; p < k_; ++p) {
    for (int a = 0; a < half_; ++a) {
      const NodeId agg = graph_.add_node(
          NodeKind::kAggregation, "agg" + std::to_string(p) + "." + std::to_string(a));
      aggs_.push_back(agg);
      for (int c = 0; c < half_; ++c) {
        graph_.add_duplex_link(agg, cores_[static_cast<std::size_t>(a * half_ + c)], cap);
      }
    }
    for (int e = 0; e < half_; ++e) {
      const NodeId edge = graph_.add_node(
          NodeKind::kTor, "edge" + std::to_string(p) + "." + std::to_string(e));
      edges_.push_back(edge);
      for (int a = 0; a < half_; ++a) {
        graph_.add_duplex_link(edge, aggs_[static_cast<std::size_t>(p * half_ + a)], cap);
      }
      for (int h = 0; h < half_; ++h) {
        const NodeId host = graph_.add_node(
            NodeKind::kHost, "h" + std::to_string(p) + "." + std::to_string(e) + "." +
                                 std::to_string(h));
        graph_.add_duplex_link(host, edge, cap);
        hosts_.push_back(host);
      }
    }
  }
  assert(hosts_.size() == static_cast<std::size_t>(k_) * half_ * half_);

  // Pod metadata for hierarchical admission: cores belong to no pod; every
  // agg/edge/host node carries its construction pod.
  std::vector<int> pod_of_node(graph_.node_count(), kNoPod);
  for (int p = 0; p < k_; ++p) {
    for (int i = 0; i < half_; ++i) {
      const auto slot = static_cast<std::size_t>(p) * half_ + static_cast<std::size_t>(i);
      pod_of_node[static_cast<std::size_t>(aggs_[slot])] = p;
      pod_of_node[static_cast<std::size_t>(edges_[slot])] = p;
    }
  }
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    pod_of_node[static_cast<std::size_t>(hosts_[h])] =
        static_cast<int>(h / (static_cast<std::size_t>(half_) * half_));
  }
  pod_map_ = std::make_unique<PodMap>(graph_, std::move(pod_of_node), k_);
}

int FatTree::pod_of_host(NodeId host) const {
  // hosts_ is ordered pod-major: pod * (half_*half_) hosts each.
  // Find index via arithmetic on the host ordering. Host node ids are not
  // contiguous, so search by name is avoided: recover the index from the
  // hosts_ vector layout using the node id ordering within construction.
  // Construction order guarantees hosts_ is sorted by (pod, edge, index).
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  assert(it != hosts_.end() && *it == host);
  const auto idx = static_cast<std::size_t>(it - hosts_.begin());
  return static_cast<int>(idx / (static_cast<std::size_t>(half_) * half_));
}

NodeId FatTree::edge_of_host(NodeId host) const {
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  assert(it != hosts_.end() && *it == host);
  const auto idx = static_cast<std::size_t>(it - hosts_.begin());
  const auto pod = idx / (static_cast<std::size_t>(half_) * half_);
  const auto edge = (idx / half_) % static_cast<std::size_t>(half_);
  return edges_[pod * static_cast<std::size_t>(half_) + edge];
}

NodeId FatTree::host(int pod, int edge, int index) const {
  return hosts_[(static_cast<std::size_t>(pod) * half_ + static_cast<std::size_t>(edge)) * half_ +
                static_cast<std::size_t>(index)];
}

NodeId FatTree::edge_switch(int pod, int index) const {
  return edges_[static_cast<std::size_t>(pod) * half_ + static_cast<std::size_t>(index)];
}

NodeId FatTree::agg_switch(int pod, int index) const {
  return aggs_[static_cast<std::size_t>(pod) * half_ + static_cast<std::size_t>(index)];
}

NodeId FatTree::core_switch(int index) const { return cores_[static_cast<std::size_t>(index)]; }

std::vector<Path> FatTree::paths(NodeId src, NodeId dst, std::size_t max_paths) const {
  assert(src != dst);
  if (max_paths == 0) return {};
  const NodeId src_edge = edge_of_host(src);
  const NodeId dst_edge = edge_of_host(dst);
  const int src_pod = pod_of_host(src);
  const int dst_pod = pod_of_host(dst);

  std::vector<Path> out;
  if (src_edge == dst_edge) {
    Path p;
    p.links = {graph_.link_between(src, src_edge), graph_.link_between(src_edge, dst)};
    out.push_back(std::move(p));
  } else if (src_pod == dst_pod) {
    // One path per aggregation switch in the pod.
    out.reserve(std::min<std::size_t>(max_paths, static_cast<std::size_t>(half_)));
    for (int a = 0; a < half_ && out.size() < max_paths; ++a) {
      const NodeId agg = agg_switch(src_pod, a);
      Path p;
      p.links = {graph_.link_between(src, src_edge), graph_.link_between(src_edge, agg),
                 graph_.link_between(agg, dst_edge), graph_.link_between(dst_edge, dst)};
      out.push_back(std::move(p));
    }
  } else {
    // One path per core switch: src -> edge -> agg(a) -> core(a,c) ->
    // agg(a) of dst pod -> dst edge -> dst.
    out.reserve(std::min<std::size_t>(max_paths, static_cast<std::size_t>(half_) * half_));
    for (int a = 0; a < half_ && out.size() < max_paths; ++a) {
      const NodeId src_agg = agg_switch(src_pod, a);
      const NodeId dst_agg = agg_switch(dst_pod, a);
      for (int c = 0; c < half_ && out.size() < max_paths; ++c) {
        const NodeId core = core_switch(a * half_ + c);
        Path p;
        p.links = {graph_.link_between(src, src_edge), graph_.link_between(src_edge, src_agg),
                   graph_.link_between(src_agg, core), graph_.link_between(core, dst_agg),
                   graph_.link_between(dst_agg, dst_edge), graph_.link_between(dst_edge, dst)};
        out.push_back(std::move(p));
      }
    }
  }
  for ([[maybe_unused]] const Path& p : out) assert(is_valid_path(graph_, p, src, dst));
  return out;
}

}  // namespace taps::topo
