#include "topo/bcube.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace taps::topo {

BCube::BCube(const BCubeConfig& config) : n_(config.n), k_(config.k) {
  if (n_ < 2 || k_ < 0 || k_ > 3) {
    throw std::invalid_argument("BCube: need n >= 2 and 0 <= k <= 3");
  }
  pow_.resize(static_cast<std::size_t>(k_) + 2);
  pow_[0] = 1;
  for (std::size_t i = 1; i < pow_.size(); ++i) pow_[i] = pow_[i - 1] * n_;
  const int servers = pow_[static_cast<std::size_t>(k_) + 1];
  const int switches_per_level = pow_[static_cast<std::size_t>(k_)];

  hosts_.reserve(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s) {
    hosts_.push_back(graph_.add_node(NodeKind::kHost, "srv" + std::to_string(s)));
  }
  switches_.resize(static_cast<std::size_t>(k_) + 1);
  for (int l = 0; l <= k_; ++l) {
    auto& level = switches_[static_cast<std::size_t>(l)];
    level.reserve(static_cast<std::size_t>(switches_per_level));
    for (int i = 0; i < switches_per_level; ++i) {
      level.push_back(graph_.add_node(
          NodeKind::kTor, "sw" + std::to_string(l) + "." + std::to_string(i)));
    }
    for (int s = 0; s < servers; ++s) {
      graph_.add_duplex_link(hosts_[static_cast<std::size_t>(s)],
                             level[static_cast<std::size_t>(switch_index(s, l))],
                             config.link_capacity);
    }
  }
}

int BCube::digit(int s, int level) const {
  return (s / pow_[static_cast<std::size_t>(level)]) % n_;
}

int BCube::with_digit(int s, int level, int v) const {
  const int p = pow_[static_cast<std::size_t>(level)];
  return s + (v - digit(s, level)) * p;
}

int BCube::switch_index(int s, int level) const {
  // Remove digit a_level: low digits stay, high digits shift down.
  const int p = pow_[static_cast<std::size_t>(level)];
  return (s % p) + (s / (p * n_)) * p;
}

void BCube::hop_via(Path& path, int from_server, int to_server, int level) const {
  assert(switch_index(from_server, level) == switch_index(to_server, level));
  const NodeId sw = switches_[static_cast<std::size_t>(level)]
                             [static_cast<std::size_t>(switch_index(from_server, level))];
  path.links.push_back(
      graph_.link_between(hosts_[static_cast<std::size_t>(from_server)], sw));
  path.links.push_back(
      graph_.link_between(sw, hosts_[static_cast<std::size_t>(to_server)]));
}

std::vector<Path> BCube::paths(NodeId src, NodeId dst, std::size_t max_paths) const {
  assert(src != dst);
  if (max_paths == 0) return {};
  // Recover server indices (hosts_ is sorted by construction order = index).
  const auto src_it = std::lower_bound(hosts_.begin(), hosts_.end(), src);
  const auto dst_it = std::lower_bound(hosts_.begin(), hosts_.end(), dst);
  assert(src_it != hosts_.end() && *src_it == src);
  assert(dst_it != hosts_.end() && *dst_it == dst);
  const int a = static_cast<int>(src_it - hosts_.begin());
  const int b = static_cast<int>(dst_it - hosts_.begin());

  // Digits where the two addresses differ; each correction is one two-hop
  // relay through the switch of that level.
  std::vector<int> levels;
  levels.reserve(static_cast<std::size_t>(k_) + 1);
  for (int l = 0; l <= k_; ++l) {
    if (digit(a, l) != digit(b, l)) levels.push_back(l);
  }
  assert(!levels.empty());

  // One path per rotation of the correction order (the classic BCube
  // construction: starting the corrections at each differing level yields
  // parallel paths; relays are distinct intermediate servers).
  std::vector<Path> out;
  for (std::size_t start = 0; start < levels.size() && out.size() < max_paths; ++start) {
    Path path;
    int at = a;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const int level = levels[(start + i) % levels.size()];
      const int next = with_digit(at, level, digit(b, level));
      hop_via(path, at, next, level);
      at = next;
    }
    assert(at == b);
    assert(is_valid_path(graph_, path, src, dst));
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace taps::topo
