#include "topo/partial_fattree.hpp"

namespace taps::topo {

PartialFatTree::PartialFatTree(double link_capacity) {
  const double cap = link_capacity;
  NodeId cores[2];
  for (int c = 0; c < 2; ++c) {
    cores[c] = graph_.add_node(NodeKind::kCore, "core" + std::to_string(c));
  }
  for (int p = 0; p < 2; ++p) {
    NodeId aggs[2];
    for (int a = 0; a < 2; ++a) {
      aggs[a] = graph_.add_node(NodeKind::kAggregation,
                                "agg" + std::to_string(p) + "." + std::to_string(a));
      graph_.add_duplex_link(aggs[a], cores[a], cap);
    }
    for (int e = 0; e < 2; ++e) {
      const NodeId edge = graph_.add_node(
          NodeKind::kTor, "edge" + std::to_string(p) + "." + std::to_string(e));
      for (int a = 0; a < 2; ++a) graph_.add_duplex_link(edge, aggs[a], cap);
      for (int h = 0; h < 2; ++h) {
        const NodeId host = graph_.add_node(
            NodeKind::kHost, "h" + std::to_string(p) + "." + std::to_string(e) + "." +
                                 std::to_string(h));
        graph_.add_duplex_link(host, edge, cap);
        hosts_.push_back(host);
      }
    }
  }
}

std::vector<Path> PartialFatTree::paths(NodeId src, NodeId dst, std::size_t max_paths) const {
  return all_shortest_paths(graph_, src, dst, max_paths);
}

}  // namespace taps::topo
