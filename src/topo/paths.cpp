#include "topo/paths.hpp"

#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

namespace taps::topo {

std::vector<Path> all_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                     std::size_t max_paths) {
  assert(src != dst);
  if (max_paths == 0) return {};

  constexpr int kUnreached = std::numeric_limits<int>::max();
  // BFS from dst over reversed edges gives dist-to-dst for every node.
  std::vector<int> dist(g.node_count(), kUnreached);
  {
    // Build reverse adjacency on the fly: for BFS from dst we need in-links,
    // so scan all links once into a reverse adjacency list.
    std::vector<std::vector<NodeId>> rev(g.node_count());
    for (const Link& l : g.links()) rev[static_cast<std::size_t>(l.dst)].push_back(l.src);
    std::deque<NodeId> queue;
    dist[static_cast<std::size_t>(dst)] = 0;
    queue.push_back(dst);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : rev[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] == kUnreached) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  if (dist[static_cast<std::size_t>(src)] == kUnreached) return {};

  // DFS over the distance-decreasing DAG, collecting up to max_paths paths.
  // Recursion depth is the shortest-path length (<= network diameter).
  std::vector<Path> out;
  Path current;
  auto dfs = [&](auto&& self, NodeId node) -> void {
    if (out.size() >= max_paths) return;
    if (node == dst) {
      out.push_back(current);
      return;
    }
    for (const LinkId lid : g.out_links(node)) {
      if (out.size() >= max_paths) return;
      const Link& l = g.link(lid);
      if (dist[static_cast<std::size_t>(l.dst)] == dist[static_cast<std::size_t>(node)] - 1) {
        current.links.push_back(lid);
        self(self, l.dst);
        current.links.pop_back();
      }
    }
  };
  dfs(dfs, src);
  return out;
}

const Path& pick_ecmp(const std::vector<Path>& candidates, std::uint64_t hash) {
  if (candidates.empty()) throw std::logic_error("pick_ecmp on empty candidate list");
  return candidates[hash % candidates.size()];
}

GenericTopology::GenericTopology(Graph graph, std::vector<NodeId> hosts, std::string name)
    : name_(std::move(name)) {
  graph_ = std::move(graph);
  hosts_ = std::move(hosts);
}

std::vector<Path> GenericTopology::paths(NodeId src, NodeId dst, std::size_t max_paths) const {
  return all_shortest_paths(graph_, src, dst, max_paths);
}

}  // namespace taps::topo
