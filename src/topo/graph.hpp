// Capacitated directed multigraph underlying every topology.
//
// Units convention across the library: flow sizes in *bytes*, link capacity
// in *bytes per second*, time in *seconds*.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace taps::topo {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

/// 1 Gbps expressed in bytes/second (the paper's uniform link speed).
inline constexpr double kGigabitPerSecond = 1e9 / 8.0;

enum class NodeKind : std::uint8_t { kHost, kTor, kAggregation, kCore };

[[nodiscard]] const char* to_string(NodeKind kind);

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  std::string name;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity = kGigabitPerSecond;  // bytes/second
};

class Graph {
 public:
  NodeId add_node(NodeKind kind, std::string name);

  /// Add a directed link src -> dst.
  LinkId add_link(NodeId src, NodeId dst, double capacity);

  /// Add both directions with equal capacity; returns the src -> dst id.
  LinkId add_duplex_link(NodeId a, NodeId b, double capacity);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Outgoing link ids from `node`.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId node) const {
    return out_[static_cast<std::size_t>(node)];
  }

  /// Directed link id from src to dst, or kInvalidLink.
  [[nodiscard]] LinkId link_between(NodeId src, NodeId dst) const;

 private:
  static std::uint64_t pair_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::unordered_map<std::uint64_t, LinkId> by_pair_;
};

/// A routing path: the ordered directed links from a source host to a
/// destination host.
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] bool empty() const { return links.empty(); }
  [[nodiscard]] std::size_t hops() const { return links.size(); }

  friend bool operator==(const Path&, const Path&) = default;
};

/// Validate that `path` is a connected chain from src to dst in `g`.
[[nodiscard]] bool is_valid_path(const Graph& g, const Path& path, NodeId src, NodeId dst);

}  // namespace taps::topo
