// Pod-level metadata derived from a topology at build time.
//
// A PodMap partitions the nodes of a hierarchical topology into pods
// (aggregation subtrees) and records, per pod, the directed uplinks leaving
// the pod toward the core layer, the downlinks entering it, and the summed
// uplink capacity that serves as the pod's bandwidth budget for hierarchical
// admission. Per-host mandatory links (the host's uplink into its ToR and the
// ToR's downlink back to the host) are indexed because every candidate path
// from/to that host traverses them, which makes them sound anchors for
// conservative per-flow feasibility prechecks (src/core/pod_admission.hpp).
//
// Topologies without a pod structure simply return nullptr from
// Topology::pods(); every consumer treats that as "hierarchy disabled".
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace taps::topo {

inline constexpr int kNoPod = -1;

struct PodInfo {
  std::vector<LinkId> uplinks;    // pod -> core links, deterministic order
  std::vector<LinkId> downlinks;  // core -> pod links, same order
  std::vector<NodeId> hosts;      // hosts inside the pod, id-sorted
  double uplink_capacity = 0.0;   // sum of uplink capacities (budget base)
};

class PodMap {
 public:
  /// Derive the map from `g` and a per-node pod assignment (kNoPod for core
  /// nodes that belong to no pod). `pod_count` must exceed every assignment.
  PodMap(const Graph& g, std::vector<int> pod_of_node, int pod_count);

  [[nodiscard]] int pod_count() const { return static_cast<int>(pods_.size()); }
  [[nodiscard]] int pod_of(NodeId node) const {
    return pod_of_node_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] bool same_pod(NodeId a, NodeId b) const {
    return pod_of(a) != kNoPod && pod_of(a) == pod_of(b);
  }
  [[nodiscard]] const PodInfo& pod(int p) const { return pods_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const std::vector<PodInfo>& pods() const { return pods_; }

  /// The host's single uplink into its ToR (kInvalidLink for non-hosts or
  /// hosts with several out-links, which the precheck then skips).
  [[nodiscard]] LinkId host_uplink(NodeId host) const {
    return host_uplink_[static_cast<std::size_t>(host)];
  }
  /// The ToR's downlink back to the host (kInvalidLink likewise).
  [[nodiscard]] LinkId host_downlink(NodeId host) const {
    return host_downlink_[static_cast<std::size_t>(host)];
  }

  /// Pod the link's source node belongs to (kNoPod when the source is core).
  [[nodiscard]] int pod_of_link_src(LinkId link) const {
    return link_src_pod_[static_cast<std::size_t>(link)];
  }

 private:
  std::vector<int> pod_of_node_;
  std::vector<int> link_src_pod_;
  std::vector<LinkId> host_uplink_;
  std::vector<LinkId> host_downlink_;
  std::vector<PodInfo> pods_;
};

}  // namespace taps::topo
