#include "topo/tree.hpp"

#include <cassert>
#include <stdexcept>

namespace taps::topo {

SingleRootedConfig SingleRootedConfig::paper() { return SingleRootedConfig{40, 30, 30, kGigabitPerSecond}; }

SingleRootedConfig SingleRootedConfig::scaled() { return SingleRootedConfig{8, 5, 6, kGigabitPerSecond}; }

SingleRootedTree::SingleRootedTree(const SingleRootedConfig& config) : config_(config) {
  if (config.hosts_per_rack <= 0 || config.racks_per_pod <= 0 || config.pods <= 0) {
    throw std::invalid_argument("SingleRootedTree: all dimensions must be positive");
  }
  const std::size_t total_nodes =
      1 + static_cast<std::size_t>(config.pods) * (1 + static_cast<std::size_t>(config.racks_per_pod) *
                                                           (1 + static_cast<std::size_t>(config.hosts_per_rack)));
  parent_.assign(total_nodes, kInvalidNode);
  depth_.assign(total_nodes, 0);

  root_ = graph_.add_node(NodeKind::kCore, "core");
  depth_[static_cast<std::size_t>(root_)] = 0;

  for (int p = 0; p < config.pods; ++p) {
    const NodeId agg = graph_.add_node(NodeKind::kAggregation, "agg" + std::to_string(p));
    graph_.add_duplex_link(agg, root_, config.link_capacity);
    parent_[static_cast<std::size_t>(agg)] = root_;
    depth_[static_cast<std::size_t>(agg)] = 1;
    for (int r = 0; r < config.racks_per_pod; ++r) {
      const NodeId tor = graph_.add_node(
          NodeKind::kTor, "tor" + std::to_string(p) + "." + std::to_string(r));
      graph_.add_duplex_link(tor, agg, config.link_capacity);
      parent_[static_cast<std::size_t>(tor)] = agg;
      depth_[static_cast<std::size_t>(tor)] = 2;
      for (int h = 0; h < config.hosts_per_rack; ++h) {
        const NodeId host = graph_.add_node(
            NodeKind::kHost, "h" + std::to_string(p) + "." + std::to_string(r) + "." +
                                 std::to_string(h));
        graph_.add_duplex_link(host, tor, config.link_capacity);
        parent_[static_cast<std::size_t>(host)] = tor;
        depth_[static_cast<std::size_t>(host)] = 3;
        hosts_.push_back(host);
      }
    }
  }
  assert(graph_.node_count() == total_nodes);
}

std::vector<Path> SingleRootedTree::paths(NodeId src, NodeId dst, std::size_t max_paths) const {
  assert(src != dst);
  if (max_paths == 0) return {};
  // Climb both endpoints to their lowest common ancestor; the unique path is
  // src..lca (upward) followed by lca..dst (downward).
  std::vector<NodeId> ua{src};  // src, parent(src), ..., lca
  std::vector<NodeId> ub{dst};  // dst, parent(dst), ..., lca
  NodeId a = src;
  NodeId b = dst;
  while (a != b) {
    if (depth_[static_cast<std::size_t>(a)] >= depth_[static_cast<std::size_t>(b)]) {
      a = parent_[static_cast<std::size_t>(a)];
      ua.push_back(a);
    } else {
      b = parent_[static_cast<std::size_t>(b)];
      ub.push_back(b);
    }
  }

  Path path;
  path.links.reserve(ua.size() + ub.size() - 2);
  for (std::size_t i = 0; i + 1 < ua.size(); ++i) {
    path.links.push_back(graph_.link_between(ua[i], ua[i + 1]));
  }
  for (std::size_t i = ub.size() - 1; i-- > 0;) {
    path.links.push_back(graph_.link_between(ub[i + 1], ub[i]));
  }
  assert(is_valid_path(graph_, path, src, dst));
  return {std::move(path)};
}

}  // namespace taps::topo
