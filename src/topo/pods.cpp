#include "topo/pods.hpp"

#include <algorithm>
#include <stdexcept>

namespace taps::topo {

PodMap::PodMap(const Graph& g, std::vector<int> pod_of_node, int pod_count)
    : pod_of_node_(std::move(pod_of_node)) {
  if (pod_of_node_.size() != g.node_count()) {
    throw std::invalid_argument("PodMap: pod assignment size != node count");
  }
  pods_.resize(static_cast<std::size_t>(pod_count));
  for (const int p : pod_of_node_) {
    if (p != kNoPod && (p < 0 || p >= pod_count)) {
      throw std::invalid_argument("PodMap: pod index out of range");
    }
  }

  host_uplink_.assign(g.node_count(), kInvalidLink);
  host_downlink_.assign(g.node_count(), kInvalidLink);
  for (const Node& n : g.nodes()) {
    if (n.kind != NodeKind::kHost) continue;
    const int p = pod_of(n.id);
    if (p != kNoPod) pods_[static_cast<std::size_t>(p)].hosts.push_back(n.id);
    // A host with exactly one out-link has a mandatory first hop; anything
    // else (multi-homed hosts in generic graphs) opts out of the precheck.
    const std::vector<LinkId>& out = g.out_links(n.id);
    if (out.size() != 1) continue;
    const Link& up = g.link(out[0]);
    const LinkId down = g.link_between(up.dst, n.id);
    if (down == kInvalidLink) continue;
    host_uplink_[static_cast<std::size_t>(n.id)] = up.id;
    host_downlink_[static_cast<std::size_t>(n.id)] = down;
  }
  for (PodInfo& pod : pods_) std::sort(pod.hosts.begin(), pod.hosts.end());

  link_src_pod_.resize(g.link_count());
  for (const Link& l : g.links()) {
    const int sp = pod_of(l.src);
    const int dp = pod_of(l.dst);
    link_src_pod_[static_cast<std::size_t>(l.id)] = sp;
    if (sp != kNoPod && dp == kNoPod) {
      PodInfo& pod = pods_[static_cast<std::size_t>(sp)];
      pod.uplinks.push_back(l.id);
      pod.uplink_capacity += l.capacity;
    } else if (sp == kNoPod && dp != kNoPod) {
      pods_[static_cast<std::size_t>(dp)].downlinks.push_back(l.id);
    }
  }
}

}  // namespace taps::topo
