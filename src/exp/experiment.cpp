#include "exp/experiment.hpp"

#include <chrono>
#include <stdexcept>

#include "core/taps_scheduler.hpp"
#include "sched/baraat.hpp"
#include "sched/d2tcp.hpp"
#include "sched/d3.hpp"
#include "sched/fair_sharing.hpp"
#include "sched/pdq.hpp"
#include "sched/varys.hpp"
#include "sim/timeline.hpp"
#include "workload/task_generator.hpp"

namespace taps::exp {

namespace {

/// Fans the simulator's single observer slot out to two observers, for runs
/// that want both a caller-supplied observer and a timeline recorder.
class TeeObserver final : public sim::TransmitObserver {
 public:
  TeeObserver(sim::TransmitObserver* a, sim::TransmitObserver* b) : a_(a), b_(b) {}
  void on_transmit(const net::Flow& f, double t0, double t1, double bytes) override {
    a_->on_transmit(f, t0, t1, bytes);
    b_->on_transmit(f, t0, t1, bytes);
  }
  void on_task_arrival(const net::Task& t, double now) override {
    a_->on_task_arrival(t, now);
    b_->on_task_arrival(t, now);
  }
  void on_event(double now) override {
    a_->on_event(now);
    b_->on_event(now);
  }
  void on_flow_finished(const net::Flow& f, double now) override {
    a_->on_flow_finished(f, now);
    b_->on_flow_finished(f, now);
  }
  void on_run_complete(const net::Network& net, double end_time) override {
    a_->on_run_complete(net, end_time);
    b_->on_run_complete(net, end_time);
  }

 private:
  sim::TransmitObserver* a_;
  sim::TransmitObserver* b_;
};

}  // namespace

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kFairSharing:
      return "FairSharing";
    case SchedulerKind::kD3:
      return "D3";
    case SchedulerKind::kPdq:
      return "PDQ";
    case SchedulerKind::kBaraat:
      return "Baraat";
    case SchedulerKind::kVarys:
      return "Varys";
    case SchedulerKind::kTaps:
      return "TAPS";
    case SchedulerKind::kD2Tcp:
      return "D2TCP";
  }
  return "?";
}

const std::vector<SchedulerKind>& all_schedulers() {
  static const std::vector<SchedulerKind> kAll = {
      SchedulerKind::kFairSharing, SchedulerKind::kD3,    SchedulerKind::kPdq,
      SchedulerKind::kBaraat,      SchedulerKind::kVarys, SchedulerKind::kTaps,
  };
  return kAll;
}

const std::vector<SchedulerKind>& extended_schedulers() {
  static const std::vector<SchedulerKind> kExtended = [] {
    std::vector<SchedulerKind> v = all_schedulers();
    v.push_back(SchedulerKind::kD2Tcp);
    return v;
  }();
  return kExtended;
}

SchedulerKind parse_scheduler(const std::string& name) {
  for (const SchedulerKind k : extended_schedulers()) {
    std::string s = to_string(k);
    for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    std::string n = name;
    for (auto& c : n) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == n) return k;
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::unique_ptr<sim::Scheduler> make_scheduler(SchedulerKind kind, std::size_t max_paths) {
  switch (kind) {
    case SchedulerKind::kFairSharing:
      return std::make_unique<sched::FairSharing>();
    case SchedulerKind::kD3:
      return std::make_unique<sched::D3>();
    case SchedulerKind::kPdq:
      return std::make_unique<sched::Pdq>();
    case SchedulerKind::kBaraat:
      return std::make_unique<sched::Baraat>();
    case SchedulerKind::kVarys:
      return std::make_unique<sched::Varys>();
    case SchedulerKind::kTaps: {
      core::TapsConfig config;
      config.max_paths = max_paths;
      return std::make_unique<core::TapsScheduler>(config);
    }
    case SchedulerKind::kD2Tcp:
      return std::make_unique<sched::D2Tcp>();
  }
  throw std::logic_error("unreachable scheduler kind");
}

ExperimentRun run_experiment_full(const workload::Scenario& scenario, SchedulerKind kind,
                                  sim::TransmitObserver* observer,
                                  sim::TimelineRecorder* timeline, sim::SimEngine engine) {
  ExperimentRun run;
  run.topology = workload::make_topology(scenario);
  run.network = std::make_unique<net::Network>(*run.topology);

  util::Rng rng(scenario.seed);
  util::Rng workload_rng = rng.fork("workload");
  (void)workload::generate(*run.network, scenario.workload, workload_rng);

  run.scheduler = make_scheduler(kind, scenario.max_paths);

  sim::FluidSimulator simulator(*run.network, *run.scheduler, engine);
  TeeObserver tee(observer, timeline);
  if (observer != nullptr && timeline != nullptr) {
    simulator.set_observer(&tee);
  } else if (timeline != nullptr) {
    simulator.set_observer(timeline);
  } else if (observer != nullptr) {
    simulator.set_observer(observer);
  }
  if (timeline != nullptr) {
    // Decision hooks (admits, rejects, preemptions, grants) exist only for
    // schedulers built on sched::BaseScheduler; others record data-plane
    // events alone.
    if (auto* base = dynamic_cast<sched::BaseScheduler*>(run.scheduler.get())) {
      base->set_schedule_observer(timeline);
    }
  }

  // taps-lint: allow(wall-clock) -- measures host wall time for reporting
  const auto start = std::chrono::steady_clock::now();
  run.result.stats = simulator.run();
  // taps-lint: allow(wall-clock) -- wall_seconds never feeds sim decisions
  const auto stop = std::chrono::steady_clock::now();
  run.result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  run.result.metrics = metrics::collect(*run.network);
  {
    const sim::SimStats& s = run.result.stats;
    metrics::RunMetrics& m = run.result.metrics;
    m.sim_events = s.events;
    m.sim_flows_touched = s.effort.flows_touched;
    m.sim_lazy_skips = s.effort.lazy_skips;
    m.sim_heap_invalidations = s.effort.heap_invalidations;
    m.sim_rate_dirty = s.effort.rate_dirty;
  }
  if (const auto* taps = dynamic_cast<const core::TapsScheduler*>(run.scheduler.get())) {
    const core::TapsCounters& c = taps->counters();
    metrics::RunMetrics& m = run.result.metrics;
    m.replans = c.replans;
    m.flows_planned = c.flows_planned;
    m.prefix_reuse_flows = c.cross_arrival_reuse_flows + c.checkpoint_reuse_flows;
    const double denom =
        static_cast<double>(m.prefix_reuse_flows) + static_cast<double>(m.flows_planned);
    m.prefix_reuse_ratio =
        denom > 0.0 ? static_cast<double>(m.prefix_reuse_flows) / denom : 0.0;
    m.plan_commits = c.plan_commits;
    m.preemptions = c.tasks_preempted;
    m.slice_grants = c.slice_grants;
    m.pod_fast_rejects = c.pod_fast_rejects;
    m.pod_local_plans = c.pod_local_plans;
    m.budget_reservations = c.budget_reservations;
    m.global_fallbacks = c.global_fallbacks;
  }
  return run;
}

ExperimentResult run_experiment(const workload::Scenario& scenario, SchedulerKind kind) {
  return run_experiment_full(scenario, kind).result;
}

}  // namespace taps::exp
