#include "exp/sweep.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "metrics/report.hpp"
#include "sim/timeline.hpp"
#include "util/annotations.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace taps::exp {

namespace {

// The only state sweep workers mutate in common: a progress counter feeding
// debug logging. The result cells themselves need no lock — each worker owns
// exactly one disjoint index (see run_sweep).
struct SweepProgress {
  util::Mutex mu;
  std::size_t done TAPS_GUARDED_BY(mu) = 0;
};

metrics::RunMetrics average(const std::vector<metrics::RunMetrics>& ms) {
  metrics::RunMetrics avg;
  if (ms.empty()) return avg;
  for (const auto& m : ms) {
    avg.tasks_total += m.tasks_total;
    avg.tasks_completed += m.tasks_completed;
    avg.tasks_rejected += m.tasks_rejected;
    avg.flows_total += m.flows_total;
    avg.flows_completed += m.flows_completed;
    avg.task_completion_ratio += m.task_completion_ratio;
    avg.flow_completion_ratio += m.flow_completion_ratio;
    avg.app_throughput += m.app_throughput;
    avg.task_size_ratio += m.task_size_ratio;
    avg.wasted_bandwidth_ratio += m.wasted_bandwidth_ratio;
    avg.total_bytes += m.total_bytes;
    avg.useful_bytes += m.useful_bytes;
    avg.wasted_bytes += m.wasted_bytes;
    avg.replans += m.replans;
    avg.flows_planned += m.flows_planned;
    avg.prefix_reuse_flows += m.prefix_reuse_flows;
    avg.prefix_reuse_ratio += m.prefix_reuse_ratio;
    avg.plan_commits += m.plan_commits;
    avg.preemptions += m.preemptions;
    avg.slice_grants += m.slice_grants;
    avg.pod_fast_rejects += m.pod_fast_rejects;
    avg.pod_local_plans += m.pod_local_plans;
    avg.budget_reservations += m.budget_reservations;
    avg.global_fallbacks += m.global_fallbacks;
    avg.sim_events += m.sim_events;
    avg.sim_flows_touched += m.sim_flows_touched;
    avg.sim_lazy_skips += m.sim_lazy_skips;
    avg.sim_heap_invalidations += m.sim_heap_invalidations;
    avg.sim_rate_dirty += m.sim_rate_dirty;
  }
  const auto n = static_cast<double>(ms.size());
  avg.task_completion_ratio /= n;
  avg.flow_completion_ratio /= n;
  avg.app_throughput /= n;
  avg.task_size_ratio /= n;
  avg.wasted_bandwidth_ratio /= n;
  avg.prefix_reuse_ratio /= n;
  return avg;
}

}  // namespace

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const std::vector<SchedulerKind>& schedulers, std::size_t threads,
                      std::size_t repeats, const std::string& timeline_dir) {
  SweepResult out;
  out.cells.resize(points.size() * schedulers.size());
  if (!timeline_dir.empty()) std::filesystem::create_directories(timeline_dir);

  util::ThreadPool pool(threads);
  SweepProgress progress;
  pool.parallel_for(out.cells.size(), [&](std::size_t idx) {
    const std::size_t pi = idx / schedulers.size();
    const std::size_t si = idx % schedulers.size();
    // Disjoint per-worker slot: no two workers share an idx, so writing the
    // cell is race-free without a lock (TSan-checked by the sweep suite).
    SweepCell& cell = out.cells[idx];
    cell.x = points[pi].x;
    cell.scheduler = schedulers[si];

    std::vector<metrics::RunMetrics> reps;
    reps.reserve(repeats);
    sim::SimStats stats{};
    double wall = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      workload::Scenario s = points[pi].scenario;
      s.seed = util::hash_combine(s.seed, r);
      ExperimentResult res;
      if (r == 0 && !timeline_dir.empty()) {
        // Record the first repeat's timeline. Pure observation — res (and
        // therefore the CSV) is byte-identical to the recorder-less run
        // (pinned by tests/timeline/timeline_identity_test.cpp).
        sim::TimelineRecorder recorder(sim::TimelineConfig{.record_transmissions = true});
        res = run_experiment_full(s, schedulers[si], nullptr, &recorder).result;
        recorder.save_binary(timeline_dir + "/timeline_p" + std::to_string(pi) + "_" +
                             to_string(schedulers[si]) + ".tlbin");
      } else {
        res = run_experiment(s, schedulers[si]);
      }
      reps.push_back(res.metrics);
      stats = res.stats;
      wall += res.wall_seconds;
    }
    cell.result.metrics = average(reps);
    cell.result.stats = stats;
    cell.result.wall_seconds = wall;

    {
      util::MutexLock lock(progress.mu);
      ++progress.done;
      util::log_debug() << "sweep cell " << progress.done << "/" << out.cells.size()
                        << " done (x=" << cell.x << ", scheduler=" << to_string(cell.scheduler)
                        << ")";
    }
  });
  return out;
}

void print_metric_table(std::ostream& os, const std::string& x_label,
                        const std::vector<SweepPoint>& points,
                        const std::vector<SchedulerKind>& schedulers, const SweepResult& result,
                        const std::function<double(const metrics::RunMetrics&)>& select) {
  std::vector<std::string> headers{x_label};
  for (const SchedulerKind k : schedulers) headers.emplace_back(to_string(k));
  metrics::Table table(std::move(headers));
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    std::vector<std::string> row{metrics::Table::format(points[pi].x)};
    for (std::size_t si = 0; si < schedulers.size(); ++si) {
      row.push_back(metrics::Table::format(
          select(result.cell(pi, si, schedulers.size()).result.metrics)));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_sweep_csv(const std::string& path, const std::string& x_label,
                     const std::vector<SweepPoint>& points,
                     const std::vector<SchedulerKind>& schedulers, const SweepResult& result,
                     bool include_timing) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output: " + path);
  util::CsvWriter csv(out);
  // The sim_* effort columns (and wall_seconds) trail all outcome columns:
  // they are engine-/host-dependent, so engine-equivalence comparisons can
  // strip trailing columns and compare the outcome prefix byte-for-byte.
  if (include_timing) {
    csv.row(x_label, "scheduler", "task_completion_ratio", "flow_completion_ratio",
            "app_throughput", "task_size_ratio", "wasted_bandwidth_ratio", "tasks_total",
            "tasks_completed", "flows_total", "flows_completed", "replans", "flows_planned",
            "prefix_reuse_flows", "prefix_reuse_ratio", "plan_commits", "preemptions",
            "slice_grants", "pod_fast_rejects", "pod_local_plans", "budget_reservations",
            "global_fallbacks", "sim_events", "sim_flows_touched", "sim_lazy_skips",
            "sim_heap_invalidations", "sim_rate_dirty", "wall_seconds");
  } else {
    csv.row(x_label, "scheduler", "task_completion_ratio", "flow_completion_ratio",
            "app_throughput", "task_size_ratio", "wasted_bandwidth_ratio", "tasks_total",
            "tasks_completed", "flows_total", "flows_completed", "replans", "flows_planned",
            "prefix_reuse_flows", "prefix_reuse_ratio", "plan_commits", "preemptions",
            "slice_grants", "pod_fast_rejects", "pod_local_plans", "budget_reservations",
            "global_fallbacks", "sim_events", "sim_flows_touched", "sim_lazy_skips",
            "sim_heap_invalidations", "sim_rate_dirty");
  }
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    for (std::size_t si = 0; si < schedulers.size(); ++si) {
      const SweepCell& cell = result.cell(pi, si, schedulers.size());
      const metrics::RunMetrics& m = cell.result.metrics;
      if (include_timing) {
        csv.row(cell.x, to_string(cell.scheduler), m.task_completion_ratio,
                m.flow_completion_ratio, m.app_throughput, m.task_size_ratio,
                m.wasted_bandwidth_ratio, m.tasks_total, m.tasks_completed, m.flows_total,
                m.flows_completed, m.replans, m.flows_planned, m.prefix_reuse_flows,
                m.prefix_reuse_ratio, m.plan_commits, m.preemptions, m.slice_grants,
                m.pod_fast_rejects, m.pod_local_plans, m.budget_reservations,
                m.global_fallbacks, m.sim_events, m.sim_flows_touched, m.sim_lazy_skips,
                m.sim_heap_invalidations, m.sim_rate_dirty, cell.result.wall_seconds);
      } else {
        csv.row(cell.x, to_string(cell.scheduler), m.task_completion_ratio,
                m.flow_completion_ratio, m.app_throughput, m.task_size_ratio,
                m.wasted_bandwidth_ratio, m.tasks_total, m.tasks_completed, m.flows_total,
                m.flows_completed, m.replans, m.flows_planned, m.prefix_reuse_flows,
                m.prefix_reuse_ratio, m.plan_commits, m.preemptions, m.slice_grants,
                m.pod_fast_rejects, m.pod_local_plans, m.budget_reservations,
                m.global_fallbacks, m.sim_events, m.sim_flows_touched, m.sim_lazy_skips,
                m.sim_heap_invalidations, m.sim_rate_dirty);
      }
    }
  }
}

}  // namespace taps::exp
