// Parallel parameter sweeps: every (point, scheduler) pair is an independent
// simulation, so the sweep fans out on a thread pool and collects rows in
// deterministic order.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace taps::exp {

struct SweepPoint {
  /// X-axis value as shown in the paper (e.g. deadline in ms).
  double x = 0.0;
  workload::Scenario scenario;
};

struct SweepCell {
  double x = 0.0;
  SchedulerKind scheduler = SchedulerKind::kTaps;
  ExperimentResult result;
};

struct SweepResult {
  std::vector<SweepCell> cells;  // ordered by (point index, scheduler index)

  [[nodiscard]] const SweepCell& cell(std::size_t point, std::size_t scheduler,
                                      std::size_t scheduler_count) const {
    return cells[point * scheduler_count + scheduler];
  }
};

/// Run all (point × scheduler) combinations; `threads == 0` uses all cores,
/// `repeats > 1` averages metrics over that many seeds per cell. When
/// `timeline_dir` is non-empty it is created and each cell's first repeat
/// runs with a sim::TimelineRecorder attached (transmissions included),
/// writing `timeline_p<point>_<scheduler>.tlbin` there — render with
/// scripts/render_gantt.py. Recording is pure, so results (and the CSV
/// below) are byte-identical with or without it.
[[nodiscard]] SweepResult run_sweep(const std::vector<SweepPoint>& points,
                                    const std::vector<SchedulerKind>& schedulers,
                                    std::size_t threads = 0, std::size_t repeats = 1,
                                    const std::string& timeline_dir = {});

/// Print one table: rows = points, one column per scheduler, values taken
/// from `select(metrics)` (e.g. task completion ratio).
void print_metric_table(std::ostream& os, const std::string& x_label,
                        const std::vector<SweepPoint>& points,
                        const std::vector<SchedulerKind>& schedulers, const SweepResult& result,
                        const std::function<double(const metrics::RunMetrics&)>& select);

/// Write the full sweep to CSV (one row per point x scheduler, all metric
/// columns) so figures can be re-plotted externally (scripts/plot_figures.py).
/// Throws std::runtime_error if the file cannot be opened.
/// `include_timing = false` drops the wall_seconds column, leaving only
/// deterministic values — the thread-count determinism test diffs two such
/// files byte for byte.
void write_sweep_csv(const std::string& path, const std::string& x_label,
                     const std::vector<SweepPoint>& points,
                     const std::vector<SchedulerKind>& schedulers, const SweepResult& result,
                     bool include_timing = true);

}  // namespace taps::exp
