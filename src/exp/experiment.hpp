// One-call experiment execution: scenario × scheduler -> metrics.
// Every bench binary is a thin sweep over this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

namespace taps::sim {
class TimelineRecorder;
}  // namespace taps::sim

namespace taps::exp {

enum class SchedulerKind { kFairSharing, kD3, kPdq, kBaraat, kVarys, kTaps, kD2Tcp };

[[nodiscard]] const char* to_string(SchedulerKind k);
/// The paper's six evaluated schedulers, in its plotting order.
[[nodiscard]] const std::vector<SchedulerKind>& all_schedulers();
/// The paper's six plus the D2TCP extension (discussed in the paper's
/// related work; implemented here as a fluid model — see sched/d2tcp.hpp).
[[nodiscard]] const std::vector<SchedulerKind>& extended_schedulers();
/// Parse a scheduler name ("taps", "pdq", ...); throws on unknown names.
[[nodiscard]] SchedulerKind parse_scheduler(const std::string& name);

[[nodiscard]] std::unique_ptr<sim::Scheduler> make_scheduler(SchedulerKind kind,
                                                             std::size_t max_paths);

struct ExperimentResult {
  metrics::RunMetrics metrics;
  sim::SimStats stats;
  double wall_seconds = 0.0;
};

/// A completed run with its state kept alive (Fig. 14 needs the network to
/// classify transmission segments after the fact).
struct ExperimentRun {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<sim::Scheduler> scheduler;
  ExperimentResult result;
};

/// Build the scenario's topology + workload (seeded from the scenario) and
/// run it under `kind`, optionally recording transmissions. A non-null
/// `timeline` recorder is attached to both the simulator (data-plane events;
/// tee'd with `observer` when both are given) and, for schedulers that emit
/// decision hooks, the scheduler (grants/preemptions) — recording is pure,
/// so results are bit-identical with or without it. `engine` selects the
/// simulator implementation; both produce identical results (the SimEffort
/// columns of the metrics differ — see sim/simulator.hpp).
[[nodiscard]] ExperimentRun run_experiment_full(const workload::Scenario& scenario,
                                                SchedulerKind kind,
                                                sim::TransmitObserver* observer = nullptr,
                                                sim::TimelineRecorder* timeline = nullptr,
                                                sim::SimEngine engine = sim::SimEngine::kIndexed);

/// Convenience wrapper returning just the result.
[[nodiscard]] ExperimentResult run_experiment(const workload::Scenario& scenario,
                                              SchedulerKind kind);

}  // namespace taps::exp
