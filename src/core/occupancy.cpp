#include "core/occupancy.hpp"

#include <algorithm>
#include <cassert>

namespace taps::core {

void OccupancyMap::clear() {
  for (auto& set : by_link_) set.clear();
  for (auto& h : hints_) h.valid = false;
  for (auto& p : prefix_) p.valid = false;
}

void OccupancyMap::reset(std::size_t link_count) {
  if (by_link_.size() != link_count) {
    by_link_.resize(link_count);
    hints_.resize(link_count);
    prefix_.resize(link_count);
  }
  clear();
}

std::size_t OccupancyMap::first_index_after(topo::LinkId id, double from) const {
  const auto i = static_cast<std::size_t>(id);
  const util::IntervalSet& set = by_link_[i];
  Hint& hint = hints_[i];
  if (hint.valid && hint.from <= from) {
    // The answer is monotone in `from`, so resume the scan at the cached
    // index instead of searching the whole set. Replans query every link
    // with the same `from = now`, making this O(1) after the first hit.
    std::size_t idx = hint.index;
    const auto& ivs = set.intervals();
    while (idx < ivs.size() && ivs[idx].hi <= from) ++idx;
    hint.from = from;
    hint.index = static_cast<std::uint32_t>(idx);
    return idx;
  }
  const std::size_t idx = set.first_index_after(from);
  hint = Hint{from, static_cast<std::uint32_t>(idx), true};
  return idx;
}

util::IntervalSet OccupancyMap::path_union(const topo::Path& path) const {
  util::IntervalSet out;
  for (const topo::LinkId lid : path.links) {
    const auto& set = by_link_[static_cast<std::size_t>(lid)];
    if (!set.empty()) out = out.unite(set);
  }
  return out;
}

util::IntervalSet OccupancyMap::path_union_from(const topo::Path& path, double from) const {
  util::IntervalSet out;
  for (const topo::LinkId lid : path.links) {
    const auto& set = by_link_[static_cast<std::size_t>(lid)];
    const std::size_t first = first_index_after(lid, from);
    if (first == set.size()) continue;
    util::IntervalSet suffix;
    for (std::size_t k = first; k < set.size(); ++k) {
      suffix.push_back_disjoint(set.intervals()[k].lo, set.intervals()[k].hi);
    }
    out = out.unite(suffix);
  }
  return out;
}

void OccupancyMap::occupy(const topo::Path& path, const util::IntervalSet& slices,
                          OccupancyJournal* journal) {
  assert(!collides(path, slices));
  for (const topo::LinkId lid : path.links) {
    const auto i = static_cast<std::size_t>(lid);
    auto& set = by_link_[i];
    if (journal == nullptr) {
      for (const util::Interval& iv : slices.intervals()) set.insert(iv);
    } else {
      for (const util::Interval& iv : slices.intervals()) {
        const auto arena_begin = static_cast<std::uint32_t>(journal->arena.size());
        auto undo = set.insert_logged(iv.lo, iv.hi, journal->arena);
        journal->records.push_back(OccupancyJournal::Record{lid, undo, arena_begin});
      }
    }
    hints_[i].valid = false;
    prefix_[i].valid = false;
  }
}

void OccupancyMap::vacate(const topo::Path& path, const util::IntervalSet& slices,
                          OccupancyJournal& journal) {
  for (const topo::LinkId lid : path.links) {
    const auto i = static_cast<std::size_t>(lid);
    auto& set = by_link_[i];
    for (const util::Interval& iv : slices.intervals()) {
      const auto arena_begin = static_cast<std::uint32_t>(journal.arena.size());
      auto undo = set.erase_logged(iv.lo, iv.hi, journal.arena);
      journal.records.push_back(OccupancyJournal::Record{lid, undo, arena_begin});
    }
    hints_[i].valid = false;
    prefix_[i].valid = false;
  }
}

void OccupancyMap::rollback(OccupancyJournal& journal, const OccupancyCheckpoint& cp) {
  assert(cp.records <= journal.records.size());
  assert(cp.arena <= journal.arena.size());
  for (std::size_t r = journal.records.size(); r > cp.records; --r) {
    const OccupancyJournal::Record& rec = journal.records[r - 1];
    const auto i = static_cast<std::size_t>(rec.link);
    by_link_[i].undo_splice(rec.undo, journal.arena.data() + rec.arena_begin,
                            rec.undo.replaced);
    hints_[i].valid = false;
    prefix_[i].valid = false;
  }
  journal.records.resize(cp.records);
  journal.arena.resize(cp.arena);
}

bool OccupancyMap::collides(const topo::Path& path, const util::IntervalSet& slices) const {
  for (const topo::LinkId lid : path.links) {
    const auto& set = by_link_[static_cast<std::size_t>(lid)];
    for (const util::Interval& iv : slices.intervals()) {
      if (set.intersects(iv.lo, iv.hi)) return true;
    }
  }
  return false;
}

void OccupancyMap::trim_before(double t) {
  for (auto& set : by_link_) set.trim_before(t);
  for (auto& h : hints_) h.valid = false;
  for (auto& p : prefix_) p.valid = false;
}

double OccupancyMap::single_link_completion(topo::LinkId id, double from, double need) const {
  const auto i = static_cast<std::size_t>(id);
  const auto& ivs = by_link_[i].intervals();
  const std::size_t f = first_index_after(id, from);
  if (f == ivs.size()) return from + need;  // nothing blocks at or after `from`

  BusyPrefix& pre = prefix_[i];
  if (!pre.valid) {
    pre.cum.assign(ivs.size() + 1, 0.0);
    for (std::size_t k = 0; k < ivs.size(); ++k) {
      pre.cum[k + 1] = pre.cum[k] + (ivs[k].hi - ivs[k].lo);
    }
    pre.valid = true;
  }

  // corr: the part of interval f's busy length that lies before `from` (it
  // must not count against [from, ...) idle time).
  const double corr = std::max(0.0, from - ivs[f].lo);
  // Cumulative idle time in [from, ivs[k].lo) — nondecreasing in k.
  const auto idle_before = [&](std::size_t k) {
    return (ivs[k].lo - from) - (pre.cum[k] - pre.cum[f] - corr);
  };

  // Smallest k in [f, n) whose preceding gaps already hold `need` seconds.
  std::size_t lo = f;
  std::size_t hi = ivs.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (idle_before(mid) >= need) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == ivs.size()) {  // demand completes in the open tail after the last interval
    const double idle_end = (ivs.back().hi - from) - (pre.cum[ivs.size()] - pre.cum[f] - corr);
    return ivs.back().hi + (need - idle_end);
  }
  // The demand completes in the idle gap ending at ivs[lo].lo.
  return ivs[lo].lo - (idle_before(lo) - need);
}

}  // namespace taps::core
