#include "core/occupancy.hpp"

#include <cassert>

namespace taps::core {

void OccupancyMap::clear() {
  for (auto& set : by_link_) set.clear();
}

util::IntervalSet OccupancyMap::path_union(const topo::Path& path) const {
  util::IntervalSet out;
  for (const topo::LinkId lid : path.links) {
    const auto& set = by_link_[static_cast<std::size_t>(lid)];
    if (!set.empty()) out = out.unite(set);
  }
  return out;
}

void OccupancyMap::occupy(const topo::Path& path, const util::IntervalSet& slices) {
  assert(!collides(path, slices));
  for (const topo::LinkId lid : path.links) {
    auto& set = by_link_[static_cast<std::size_t>(lid)];
    for (const util::Interval& iv : slices.intervals()) set.insert(iv);
  }
}

bool OccupancyMap::collides(const topo::Path& path, const util::IntervalSet& slices) const {
  for (const topo::LinkId lid : path.links) {
    const auto& set = by_link_[static_cast<std::size_t>(lid)];
    for (const util::Interval& iv : slices.intervals()) {
      if (set.intersects(iv.lo, iv.hi)) return true;
    }
  }
  return false;
}

void OccupancyMap::trim_before(double t) {
  for (auto& set : by_link_) set.trim_before(t);
}

}  // namespace taps::core
