#include "core/optimal.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace taps::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool edf_feasible(std::vector<SlFlow> flows) {
  if (flows.empty()) return true;
  std::vector<double> remaining(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    remaining[i] = flows[i].duration;
    if (flows[i].duration > flows[i].deadline - flows[i].release + kEps) return false;
  }
  // Sort releases for "next arrival" stepping.
  std::vector<double> releases;
  releases.reserve(flows.size());
  for (const auto& f : flows) releases.push_back(f.release);
  std::sort(releases.begin(), releases.end());
  std::size_t next_release = 0;

  double t = releases.front();
  std::size_t unfinished = flows.size();
  while (unfinished > 0) {
    while (next_release < releases.size() && releases[next_release] <= t + kEps) ++next_release;
    // Most urgent released job.
    std::size_t pick = flows.size();
    double best_deadline = kInf;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (remaining[i] > kEps && flows[i].release <= t + kEps &&
          flows[i].deadline < best_deadline) {
        best_deadline = flows[i].deadline;
        pick = i;
      }
    }
    if (pick == flows.size()) {
      // Idle until the next release.
      if (next_release >= releases.size()) return false;  // unreachable
      t = releases[next_release];
      continue;
    }
    const double until_release =
        next_release < releases.size() ? releases[next_release] : kInf;
    const double run_until = std::min(until_release, t + remaining[pick]);
    if (run_until > flows[pick].deadline + kEps) return false;  // EDF job overruns
    remaining[pick] -= run_until - t;
    if (remaining[pick] <= kEps) {
      remaining[pick] = 0.0;
      --unfinished;
    }
    t = run_until;
  }
  return true;
}

OptimalResult optimal_single_link(const std::vector<SlTask>& tasks) {
  if (tasks.size() > 20) {
    throw std::invalid_argument("optimal_single_link: too many tasks for exhaustive search");
  }
  OptimalResult best;
  const auto n = static_cast<unsigned>(tasks.size());
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    const auto count = static_cast<std::size_t>(std::popcount(mask));
    if (count <= best.tasks_completed) continue;
    std::vector<SlFlow> flows;
    for (unsigned i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        flows.insert(flows.end(), tasks[i].flows.begin(), tasks[i].flows.end());
      }
    }
    if (edf_feasible(std::move(flows))) {
      best.tasks_completed = count;
      best.accepted.clear();
      for (unsigned i = 0; i < n; ++i) {
        if (mask & (1u << i)) best.accepted.push_back(i);
      }
    }
  }
  return best;
}

}  // namespace taps::core
