#include "core/pod_admission.hpp"

#include <algorithm>
#include <limits>

#include "sim/simulator.hpp"

namespace taps::core {

using net::Flow;
using net::FlowId;
using topo::kInvalidLink;
using topo::kNoPod;
using topo::LinkId;

namespace {

/// Same liveness condition unfinished_admitted() applies to committed flows.
[[nodiscard]] bool live(const Flow& f) {
  return f.active() && f.remaining > sim::kByteEpsilon;
}

}  // namespace

void PodAdmissionIndex::bind(const topo::PodMap* pods, std::size_t flow_capacity) {
  pods_ = pods;
  for (const LinkId lid : dirty_links_) by_link_[static_cast<std::size_t>(lid)].clear();
  dirty_links_.clear();
  registered_.assign(flow_capacity, 0);
  summaries_.clear();
  if (pods_ != nullptr) {
    summaries_.resize(static_cast<std::size_t>(pods_->pod_count()));
  } else {
    by_link_.clear();
  }
  disarm();
}

void PodAdmissionIndex::begin_commit() {
  if (pods_ == nullptr) return;
  commit_front_ = std::numeric_limits<double>::infinity();
  commit_open_ = true;
}

void PodAdmissionIndex::register_anchor(LinkId link, FlowId fid) {
  const auto i = static_cast<std::size_t>(link);
  if (by_link_.size() <= i) by_link_.resize(i + 1);
  if (by_link_[i].empty()) dirty_links_.push_back(link);
  by_link_[i].push_back(fid);
}

void PodAdmissionIndex::observe_commit_entry(const net::Network& net, const Flow& f,
                                             const util::IntervalSet& slices,
                                             std::size_t& budget_reservations) {
  if (pods_ == nullptr || !commit_open_) return;
  // Gate accumulator: the precheck is only sound while no committed flow can
  // have transmitted, i.e. while now <= every committed slice start.
  if (slices.empty()) {
    commit_front_ = -std::numeric_limits<double>::infinity();
  } else {
    commit_front_ = std::min(commit_front_, slices.front_start());
  }

  const auto fi = static_cast<std::size_t>(f.id());
  if (registered_.size() <= fi) registered_.resize(fi + 1, 0);
  if (registered_[fi] != 0) return;
  registered_[fi] = 1;

  const LinkId up = pods_->host_uplink(f.spec.src);
  const LinkId down = pods_->host_downlink(f.spec.dst);
  const int ps = pods_->pod_of(f.spec.src);
  const int pd = pods_->pod_of(f.spec.dst);
  const std::int64_t w = window_of(f.spec.deadline);
  // Each valid anchor side contributes registry membership AND summary mass
  // together, so a zero summary reading certifies empty registries (the
  // precheck's early-out leans on that pairing).
  if (up != kInvalidLink && ps != kNoPod) {
    register_anchor(up, f.id());
    PodBusySummary& s = summaries_[static_cast<std::size_t>(ps)];
    const double mass = f.remaining / net.link_capacity(up);
    s.window_mass[w] += mass;
    s.total_mass += mass;
  }
  if (down != kInvalidLink && pd != kNoPod) {
    register_anchor(down, f.id());
    PodBusySummary& s = summaries_[static_cast<std::size_t>(pd)];
    const double mass = f.remaining / net.link_capacity(down);
    s.window_mass[w] += mass;
    s.total_mass += mass;
  }
  // Cross-pod flows additionally anchor on the pod uplink/downlink their
  // committed path takes — the budgeted reservation against the pod's
  // aggregate uplink capacity.
  if (ps != kNoPod && pd != kNoPod && ps != pd) {
    for (const LinkId lid : f.path.links) {
      const int lsp = pods_->pod_of_link_src(lid);
      const int ldp = pods_->pod_of(net.graph().link(lid).dst);
      if (lsp == ps && ldp == kNoPod && up != kInvalidLink) {
        register_anchor(lid, f.id());
        ++budget_reservations;
      } else if (lsp == kNoPod && ldp == pd && down != kInvalidLink) {
        register_anchor(lid, f.id());
      }
    }
  }
}

void PodAdmissionIndex::end_commit() {
  if (pods_ == nullptr || !commit_open_) return;
  commit_open_ = false;
  gate_front_ = commit_front_;
  // An empty commit leaves gate_front_ at +infinity: trivially armed (no
  // committed flow exists to drift), and registries correctly report zero.
  armed_ = gate_front_ >= 0.0;
}

void PodAdmissionIndex::on_trim(const net::Network& net, double now) {
  if (pods_ == nullptr) return;
  // Windows that ended before `now` can hold no live flow (a live committed
  // flow's deadline is ahead of its future slices, hence ahead of now).
  const std::int64_t first_live = window_of(now);
  for (PodBusySummary& s : summaries_) {
    auto it = s.window_mass.begin();
    while (it != s.window_mass.end() && it->first < first_live) {
      s.total_mass -= it->second;
      it = s.window_mass.erase(it);
    }
    if (s.window_mass.empty()) s.total_mass = 0.0;
  }
  // Order-preserving registry compaction: drop finished flows so registries
  // stay bounded by the live set on long runs.
  std::vector<LinkId> still_dirty;
  still_dirty.reserve(dirty_links_.size());
  for (const LinkId lid : dirty_links_) {
    std::vector<FlowId>& reg = by_link_[static_cast<std::size_t>(lid)];
    std::erase_if(reg, [&](FlowId fid) {
      const bool dead = !live(net.flow(fid));
      if (dead) registered_[static_cast<std::size_t>(fid)] = 0;
      return dead;
    });
    if (!reg.empty()) still_dirty.push_back(lid);
  }
  dirty_links_ = std::move(still_dirty);
}

double PodAdmissionIndex::mass_before(LinkId link, const Key& bound, const net::Network& net,
                                      const std::vector<double>& committed_remaining) const {
  const auto i = static_cast<std::size_t>(link);
  if (by_link_.size() <= i) return 0.0;
  const double cap = net.link_capacity(link);
  double mass = 0.0;
  for (const FlowId fid : by_link_[i]) {
    const Flow& f = net.flow(fid);
    if (!live(f)) continue;
    const double rem = committed_remaining[static_cast<std::size_t>(fid)];
    if (!Key{f.spec.deadline, rem, fid}.before(bound.deadline, bound.remaining, bound.fid)) {
      continue;
    }
    mass += rem / cap;
  }
  return mass;
}

bool PodAdmissionIndex::provably_infeasible(
    const net::Network& net, const std::vector<net::FlowId>& wave, double now, double guard_band,
    const std::vector<double>& committed_remaining) const {
  if (pods_ == nullptr || wave.empty()) return false;

  // The least EDF+SJF key across the wave: committed flows strictly before
  // it are planned (adopted verbatim) before *every* wave flow in the trial.
  Key min_wave{};
  bool first = true;
  for (const FlowId fid : wave) {
    const Flow& f = net.flow(fid);
    if (first || f.spec.deadline < min_wave.deadline ||
        (f.spec.deadline == min_wave.deadline &&
         (f.remaining < min_wave.remaining ||
          (f.remaining == min_wave.remaining && fid < min_wave.fid)))) {
      min_wave = Key{f.spec.deadline, f.remaining, fid};
      first = false;
    }
  }

  const auto summary_mass_upto = [&](int pod, std::int64_t w) {
    const PodBusySummary& s = summaries_[static_cast<std::size_t>(pod)];
    if (s.total_mass <= 0.0) return 0.0;
    double m = 0.0;
    for (auto it = s.window_mass.begin();
         it != s.window_mass.end() && it->first <= w; ++it) {
      m += it->second;
    }
    return m;
  };

  for (const FlowId fid : wave) {
    const Flow& f = net.flow(fid);
    const LinkId up = pods_->host_uplink(f.spec.src);
    const LinkId down = pods_->host_downlink(f.spec.dst);
    if (up == kInvalidLink || down == kInvalidLink) continue;
    const double window = (f.spec.deadline - guard_band) - now;
    const double need_up = f.remaining / net.link_capacity(up);
    const double need_down = f.remaining / net.link_capacity(down);
    // Deadline shorter than any feasible window: infeasible on an idle net.
    if (need_up > window + kSlack || need_down > window + kSlack) return true;

    const int ps = pods_->pod_of(f.spec.src);
    const int pd = pods_->pod_of(f.spec.dst);
    const std::int64_t w = window_of(f.spec.deadline);
    const bool src_side = ps != kNoPod && summary_mass_upto(ps, w) > 0.0;
    const bool dst_side = pd != kNoPod && summary_mass_upto(pd, w) > 0.0;
    if (!src_side && !dst_side) continue;

    // Mandatory-link tests: every candidate path crosses the source host's
    // uplink and the destination host's downlink.
    if (src_side &&
        need_up > window - mass_before(up, min_wave, net, committed_remaining) + kSlack) {
      return true;
    }
    if (dst_side &&
        need_down > window - mass_before(down, min_wave, net, committed_remaining) + kSlack) {
      return true;
    }

    // Cross-pod budget tests: a cross-pod path crosses exactly one uplink of
    // the source pod and one downlink of the destination pod, so the flow is
    // infeasible once *every* such link is provably full.
    if (ps != kNoPod && pd != kNoPod && ps != pd) {
      if (src_side) {
        const std::vector<LinkId>& ups = pods_->pod(ps).uplinks;
        bool all_full = !ups.empty();
        for (const LinkId lid : ups) {
          const double need = f.remaining / net.link_capacity(lid);
          if (!(need >
                window - mass_before(lid, min_wave, net, committed_remaining) + kSlack)) {
            all_full = false;
            break;
          }
        }
        if (all_full) return true;
      }
      if (dst_side) {
        const std::vector<LinkId>& downs = pods_->pod(pd).downlinks;
        bool all_full = !downs.empty();
        for (const LinkId lid : downs) {
          const double need = f.remaining / net.link_capacity(lid);
          if (!(need >
                window - mass_before(lid, min_wave, net, committed_remaining) + kSlack)) {
            all_full = false;
            break;
          }
        }
        if (all_full) return true;
      }
    }
  }
  return false;
}

}  // namespace taps::core
