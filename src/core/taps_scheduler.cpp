#include "core/taps_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "sched/schedule_observer.hpp"
#include "util/logging.hpp"

namespace taps::core {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;
using net::TaskState;

void TapsScheduler::bind(net::Network& net) {
  BaseScheduler::bind(net);
  occ_ = OccupancyMap(net.graph().link_count());
  slices_.assign(net.flows().size(), util::IntervalSet{});
  committed_order_.clear();
  plan_scratch_.clear();
  occ_pool_.clear();
  counters_ = TapsCounters{};
  journal_.clear();
  session_order_.clear();
  session_plans_.clear();
  session_marks_.clear();
  session_retired_.clear();
  session_adopted_ = 0;
  session_infeasible_ = 0;
  committed_remaining_.assign(net.flows().size(), 0.0);
  cross_arrival_valid_ = false;
  arrivals_since_trim_ = 0;
  rate_heap_ = RateHeap();
  slice_gen_.assign(net.flows().size(), 0);
  rate_touched_mark_.assign(net.flows().size(), 0);
  rate_touched_.clear();
  rate_fallback_ = false;
  // The index is maintained even with the precheck disabled (upkeep is
  // O(newly committed flows)), so the flag can be flipped mid-run.
  pod_index_.bind(net.topology().pods(), net.flows().size());
}

void TapsScheduler::migrate(net::Network& fresh, const std::vector<net::FlowId>& flow_map) {
  assert(journal_.empty());
  assert(flow_map.size() == slices_.size());
  assert(fresh.graph().link_count() == occ_.link_count());
  BaseScheduler::bind(fresh);
  for (const Flow& f : fresh.flows()) {
    if (f.active()) active_.push_back(f.id());
  }
  std::vector<util::IntervalSet> slices(fresh.flows().size());
  std::vector<double> remaining(fresh.flows().size(), 0.0);
  for (std::size_t old = 0; old < flow_map.size(); ++old) {
    const FlowId nid = flow_map[old];
    if (nid == net::kInvalidFlow) continue;
    slices[static_cast<std::size_t>(nid)] = std::move(slices_[old]);
    remaining[static_cast<std::size_t>(nid)] = committed_remaining_[old];
  }
  slices_ = std::move(slices);
  committed_remaining_ = std::move(remaining);
  std::vector<FlowId> order;
  order.reserve(committed_order_.size());
  for (const FlowId fid : committed_order_) {
    const FlowId nid = flow_map[static_cast<std::size_t>(fid)];
    if (nid != net::kInvalidFlow) order.push_back(nid);
  }
  committed_order_ = std::move(order);
  // Dropped committed entries were finished: their future-facing occupancy
  // is empty (completed flows transmitted exactly their slices; preempted
  // flows were vacated at preemption), so the committed map still matches
  // the surviving plan on [now, inf) and occ_ carries over untouched.
  plan_scratch_.clear();
  session_order_.clear();
  session_plans_.clear();
  session_marks_.clear();
  session_retired_.clear();
  session_adopted_ = 0;
  session_infeasible_ = 0;
  // Flow ids changed wholesale: rebuild the event-driven rate state from the
  // surviving committed plan (rate_fallback_ deliberately carries over).
  rate_heap_ = RateHeap();
  slice_gen_.assign(fresh.flows().size(), 0);
  rate_touched_mark_.assign(fresh.flows().size(), 0);
  rate_touched_.clear();
  for (const FlowId fid : committed_order_) touch_slices(fid);
  // Flow ids changed wholesale: drop the pod registries and let the next
  // commit re-register the surviving committed set (the gate stays closed —
  // hence no fast rejects — until then, which only costs speed, never
  // changes a decision).
  pod_index_.bind(fresh.topology().pods(), fresh.flows().size());
}

std::vector<FlowId> TapsScheduler::unfinished_admitted() const {
  // committed_order_ holds every flow of the last committed plan — a
  // superset of the currently active unfinished flows, because admission
  // always commits a plan covering all of them — already in EDF+SJF order.
  std::vector<FlowId> out;
  out.reserve(committed_order_.size());
  for (const FlowId fid : committed_order_) {
    const Flow& f = net_->flow(fid);
    if (f.active() && f.remaining > sim::kByteEpsilon) out.push_back(fid);
  }
#ifndef NDEBUG
  // The filtered committed order must be exactly the old active_-scan set.
  std::vector<FlowId> check;
  check.reserve(active_.size());
  for (const FlowId fid : active_) {
    const Flow& f = net_->flow(fid);
    if (!f.finished() && f.remaining > sim::kByteEpsilon) check.push_back(fid);
  }
  std::vector<FlowId> a = out, b = check;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  assert(a == b);
#endif
  return out;
}

OccupancyMap TapsScheduler::acquire_occupancy() {
  if (!occ_pool_.empty()) {
    OccupancyMap occ = std::move(occ_pool_.back());
    occ_pool_.pop_back();
    occ.reset(net_->graph().link_count());
    return occ;
  }
  return OccupancyMap(net_->graph().link_count());
}

void TapsScheduler::sort_order(std::vector<FlowId>& order, std::size_t sorted_prefix) {
  const net::Network& net = *net_;
  const auto cmp = [&net](FlowId a, FlowId b) {
    const Flow& fa = net.flow(a);
    const Flow& fb = net.flow(b);
    if (fa.spec.deadline != fb.spec.deadline) return fa.spec.deadline < fb.spec.deadline;
    if (fa.remaining != fb.remaining) return fa.remaining < fb.remaining;
    return a < b;
  };
  assert(sorted_prefix <= order.size());
  const auto prefix_end = order.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  if (std::is_sorted(order.begin(), prefix_end, cmp)) {
    std::sort(prefix_end, order.end(), cmp);
    std::inplace_merge(order.begin(), prefix_end, order.end(), cmp);
    ++counters_.incremental_sorts;
  } else {
    // Remaining-size drift reordered a deadline tie since the last commit.
    std::sort(order.begin(), order.end(), cmp);
    ++counters_.full_sorts;
  }
}

PlanConfig TapsScheduler::make_plan_config() const {
  return PlanConfig{.max_paths = config_.max_paths,
                    .ecmp_routing = config_.ecmp_routing,
                    .guard_band = config_.guard_band,
                    .reference_allocator = config_.reference_allocator,
                    .fault_skip_occupy = config_.fault_skip_occupy};
}

TapsScheduler::PlanAttempt TapsScheduler::try_plan(std::vector<FlowId> order, double now,
                                                   std::size_t sorted_prefix) {
  sort_order(order, sorted_prefix);
  PlanAttempt attempt{.plans = {}, .occ = acquire_occupancy(), .fully_feasible = true};
  attempt.plans = plan_flows(*net_, attempt.occ, order, now, make_plan_config(), &plan_scratch_);
  counters_.flows_planned += order.size();
  for (const auto& p : attempt.plans) {
    if (!p.feasible) {
      attempt.fully_feasible = false;
      break;
    }
  }
  return attempt;
}

void TapsScheduler::commit(PlanAttempt&& attempt, double now) {
  assert(attempt.fully_feasible);
  std::swap(occ_, attempt.occ);
  release_occupancy(std::move(attempt.occ));  // the retired committed map
  // Spent flows leave the plan here: drop their stale slices (the list was
  // snapshotted at arrival start, exactly when commit_session evaluates it,
  // so both modes clear the same sets on the same arrivals).
  for (const FlowId fid : session_retired_) {
    slices_[static_cast<std::size_t>(fid)].clear();
    touch_slices(fid);
  }
  session_retired_.clear();
  committed_order_.clear();
  committed_order_.reserve(attempt.plans.size());
  sched::ScheduleObserver* obs = schedule_observer();
  std::vector<sched::CommittedFlowView> view;
  if (obs != nullptr) view.reserve(attempt.plans.size());
  pod_index_.begin_commit();
  for (auto& plan : attempt.plans) {
    Flow& f = net_->flow(plan.flow);
    const auto i = static_cast<std::size_t>(plan.flow);
    // A full replan recomputes every entry; entries it reproduced verbatim
    // are not re-grants. The incremental path flags the identical set (its
    // adopted prefix is exactly the entries a full replan reproduces).
    const bool regranted = f.path.links != plan.path.links || slices_[i] != plan.slices;
    if (regranted) {
      ++counters_.slice_grants;
      touch_slices(plan.flow);
    }
    f.path = std::move(plan.path);
    slices_[i] = std::move(plan.slices);
    committed_order_.push_back(plan.flow);
    committed_remaining_[i] = f.remaining;
    pod_index_.observe_commit_entry(*net_, f, slices_[i], counters_.budget_reservations);
    if (obs != nullptr) {
      view.push_back({plan.flow, f.task(), regranted, &f.path, &slices_[i]});
    }
  }
  pod_index_.end_commit();
  ++counters_.plan_commits;
  cross_arrival_valid_ = true;
  if (obs != nullptr) obs->on_plan_committed(now, view);
}

void TapsScheduler::admit(TaskId id, const std::vector<FlowId>& wave, double now) {
  net::Task& t = net_->task(id);
  if (t.state == TaskState::kPending) t.state = TaskState::kAdmitted;
  ++counters_.tasks_accepted;
  for (const FlowId fid : wave) {
    Flow& f = net_->flow(fid);
    if (f.state != FlowState::kActive) {
      f.state = FlowState::kActive;
      active_.push_back(fid);
    }
  }
  sched::ScheduleObserver* obs = schedule_observer();
  if (obs != nullptr) obs->on_task_admitted(id, now);
}

void TapsScheduler::maybe_trim(double now) {
  if (config_.trim_interval == 0) return;
  if (++arrivals_since_trim_ < config_.trim_interval) return;
  arrivals_since_trim_ = 0;
  // Planning only ever reads occupancy at or after `now` and rate assignment
  // never looks backwards, so dropping the past changes nothing — it only
  // bounds memory on long arrival streams. Slices are trimmed together with
  // the map so an incremental vacate-by-slices stays exact.
  occ_.trim_before(now);
  for (auto& sl : slices_) sl.trim_before(now);
  pod_index_.on_trim(*net_, now);
  ++counters_.occupancy_trims;
}

void TapsScheduler::on_task_arrival(TaskId id, double now) {
  if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
    obs->on_task_seen(id, now);
  }
  // Flows may be registered after bind() (SDN usage registers tasks as
  // probes arrive; Network::extend_task adds waves): grow the slice table.
  if (slices_.size() < net_->flows().size()) slices_.resize(net_->flows().size());
  if (committed_remaining_.size() < net_->flows().size()) {
    committed_remaining_.resize(net_->flows().size(), 0.0);
  }
  if (slice_gen_.size() < net_->flows().size()) {
    slice_gen_.resize(net_->flows().size(), 0);
    rate_touched_mark_.resize(net_->flows().size(), 0);
  }

  net::Task& t = net_->task(id);
  const std::vector<FlowId> wave = pending_wave(id, now);
  if (t.state == TaskState::kRejected || t.state == TaskState::kFailed) {
    // Task is already dead: a later wave can never make it useful, so its
    // flows are declined outright (the paper's no-waste rule).
    for (const FlowId fid : wave) net_->flow(fid).state = FlowState::kRejected;
    return;
  }
  if (wave.empty()) return;

  maybe_trim(now);

  // Snapshot the spent committed flows whose stale slices will be dropped if
  // this arrival commits. Taken before any planning/rejection mutates flow
  // state so that the full-replan and incremental paths retire identical
  // sets — part of keeping the two modes bitwise in step.
  session_retired_.clear();
  for (const FlowId fid : committed_order_) {
    const Flow& f = net_->flow(fid);
    if (f.active() && f.remaining > sim::kByteEpsilon) continue;
    const auto& sl = slices_[static_cast<std::size_t>(fid)];
    if (!sl.empty() && sl.back_end() <= now) session_retired_.push_back(fid);
  }

  // Hierarchical pod-local precheck: prove the newcomer infeasible without a
  // trial replan when possible. Sound only while the no-transmission gate
  // holds and the cross-arrival validity tokens are fresh (same conditions
  // either replan mode sees, so decisions stay mode- and flag-independent).
  if (config_.hierarchical_precheck && pod_index_.enabled() &&
      config_.fault_skip_occupy == net::kInvalidFlow && cross_arrival_valid_ &&
      pod_index_.armed(now)) {
    if (pod_index_.provably_infeasible(*net_, wave, now, config_.guard_band,
                                       committed_remaining_)) {
      fast_reject(id, now);
      return;
    }
    ++counters_.global_fallbacks;
    const topo::PodMap* pods = net_->topology().pods();
    for (const FlowId fid : wave) {
      const Flow& f = net_->flow(fid);
      if (pods->same_pod(f.spec.src, f.spec.dst)) ++counters_.pod_local_plans;
    }
  }

  if (config_.incremental_replan && config_.fault_skip_occupy == net::kInvalidFlow &&
      cross_arrival_valid_) {
    on_task_arrival_incremental(id, now, wave);
    return;
  }

  // Trial: all unfinished admitted flows plus the newcomers, globally
  // re-planned from `now` (Algorithm 1's Ftmp = Ftrans U {arriving flows}).
  // The incumbents come out of unfinished_admitted() in last-committed
  // EDF+SJF order, so try_plan usually only has to sort the wave in.
  std::vector<FlowId> trial_order = unfinished_admitted();
  const std::size_t incumbent_count = trial_order.size();
  trial_order.insert(trial_order.end(), wave.begin(), wave.end());
  PlanAttempt trial = try_plan(std::move(trial_order), now, incumbent_count);
  ++counters_.replans;

  const RejectOutcome outcome =
      apply_reject_rule(*net_, id, trial.plans, config_.preempt_policy);
  switch (outcome.decision) {
    case Decision::kAccept:
      admit(id, wave, now);
      commit(std::move(trial), now);
      return;

    case Decision::kPreemptVictim: {
      assert(outcome.victim != net::kInvalidTask);
      // Validate the post-preemption plan BEFORE discarding the victim: the
      // greedy multi-path allocator is not monotone, so removing the victim
      // does not provably keep every survivor feasible.
      const std::vector<FlowId> candidates = unfinished_admitted();
      std::vector<FlowId> order;
      order.reserve(candidates.size() + wave.size());
      for (const FlowId fid : candidates) {
        if (net_->flow(fid).task() != outcome.victim) order.push_back(fid);
      }
      const std::size_t survivor_count = order.size();  // sorted subsequence
      order.insert(order.end(), wave.begin(), wave.end());
      PlanAttempt attempt = try_plan(std::move(order), now, survivor_count);
      ++counters_.replans;
      if (attempt.fully_feasible) {
        release_occupancy(std::move(trial.occ));
        net_->reject_task(outcome.victim);
        ++counters_.tasks_preempted;
        if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
          obs->on_task_preempted(outcome.victim, id, now);
        }
        admit(id, wave, now);
        commit(std::move(attempt), now);
        return;
      }
      // Preemption would strand a survivor: fall through to rejecting the
      // newcomer instead (the safe choice; the incumbent plan still holds).
      release_occupancy(std::move(attempt.occ));
      break;
    }

    case Decision::kRejectNew:
      break;
  }
  release_occupancy(std::move(trial.occ));

  // Reject the newcomer. Re-plan the incumbents opportunistically (EDF with
  // updated remaining sizes usually compacts the schedule and helps future
  // admissions), but only commit if every survivor stays feasible; otherwise
  // the previously committed plan — which transmission has followed exactly,
  // so its future part is still valid — remains in force.
  net_->reject_task(id);
  ++counters_.tasks_rejected;
  if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
    obs->on_task_rejected(id, now);
  }
  std::vector<FlowId> incumbents = unfinished_admitted();
  const std::size_t incumbents_sorted = incumbents.size();
  PlanAttempt compacted = try_plan(std::move(incumbents), now, incumbents_sorted);
  ++counters_.replans;
  if (compacted.fully_feasible) {
    commit(std::move(compacted), now);
  } else {
    release_occupancy(std::move(compacted.occ));
    ++counters_.replan_reverts;
    util::log_debug() << "TAPS: compacting re-plan at t=" << now
                      << " would strand a survivor; keeping the prior plan";
  }
}

void TapsScheduler::fast_reject(TaskId id, double now) {
  ++counters_.pod_fast_rejects;
  net_->reject_task(id);
  ++counters_.tasks_rejected;
  if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
    obs->on_task_rejected(id, now);
  }
  // Compacting replan of the incumbents, exactly as the normal reject tail
  // runs it in the active mode. Under the precheck's no-transmission gate
  // every incumbent entry is adoption-eligible, so the replan reproduces the
  // committed plan verbatim (zero re-grants) — but it still commits, keeping
  // plan_commits / validity tokens / timeline streams bit-identical to the
  // precheck-off pipeline.
  if (config_.incremental_replan && config_.fault_skip_occupy == net::kInvalidFlow &&
      cross_arrival_valid_) {
    std::vector<FlowId> incumbents = unfinished_admitted();
    const std::size_t incumbents_sorted = incumbents.size();
    sort_order(incumbents, incumbents_sorted);
    open_session(incumbents, now);
    plan_tail(incumbents, now);
    ++counters_.replans;
    if (session_infeasible_ == 0) {
      commit_session(now);
    } else {
      abandon_session();
      ++counters_.replan_reverts;
      util::log_debug() << "TAPS: compacting re-plan at t=" << now
                        << " would strand a survivor; keeping the prior plan";
    }
    return;
  }
  std::vector<FlowId> incumbents = unfinished_admitted();
  const std::size_t incumbents_sorted = incumbents.size();
  PlanAttempt compacted = try_plan(std::move(incumbents), now, incumbents_sorted);
  ++counters_.replans;
  if (compacted.fully_feasible) {
    commit(std::move(compacted), now);
  } else {
    release_occupancy(std::move(compacted.occ));
    ++counters_.replan_reverts;
    util::log_debug() << "TAPS: compacting re-plan at t=" << now
                      << " would strand a survivor; keeping the prior plan";
  }
}

void TapsScheduler::open_session(const std::vector<FlowId>& target, double now) {
  assert(journal_.empty());
  session_order_.clear();
  session_plans_.clear();
  session_marks_.clear();
  session_adopted_ = 0;
  session_infeasible_ = 0;

  // Walk the last committed plan in order. The leading run of entries that a
  // full replan would provably reproduce verbatim is adopted in place (their
  // occupancy is already in occ_ — zero work); everything else is vacated so
  // the tail replans against exactly the context the full replan would see.
  bool chain = true;
  std::size_t pos = 0;  // next unmatched position of `target`
  for (const FlowId fid : committed_order_) {
    const Flow& f = net_->flow(fid);
    const auto i = static_cast<std::size_t>(fid);
    util::IntervalSet& sl = slices_[i];
    const bool unfinished = f.active() && f.remaining > sim::kByteEpsilon;
    if (!unfinished) {
      if (sl.empty()) continue;
      // The flow left the order, so its occupancy must go. If any of it lies
      // in the future, a full replan would not have reproduced the prefix
      // planned around it — the reusable run ends here.
      if (sl.back_end() > now) chain = false;
      occ_.vacate(f.path, sl, journal_);
      continue;
    }
    if (chain && pos < target.size() && target[pos] == fid && !sl.empty() &&
        sl.front_start() >= now && f.remaining == committed_remaining_[i]) {
      // Reusable: same flow at the same position, remaining bitwise
      // untouched since the commit (no transmission — its slices start at or
      // after `now`), and every earlier position matched too. A full replan
      // recomputes exactly the committed path and slices here (DESIGN.md,
      // "Incremental replanning"), so adopt them without replanning. The
      // plan entry carries just what apply_reject_rule reads.
      session_marks_.push_back(OccupancyMap::checkpoint(journal_));
      session_order_.push_back(fid);
      FlowPlan light;
      light.flow = fid;
      light.completion = sl.back_end();
      light.feasible = true;
      session_plans_.push_back(std::move(light));
      ++pos;
      continue;
    }
    chain = false;
    occ_.vacate(f.path, sl, journal_);
  }
  session_adopted_ = session_order_.size();
  counters_.cross_arrival_reuse_flows += session_adopted_;
}

void TapsScheduler::plan_tail(const std::vector<FlowId>& target, double now) {
  const PlanConfig plan_config = make_plan_config();
  for (std::size_t k = session_order_.size(); k < target.size(); ++k) {
    const FlowId fid = target[k];
    session_marks_.push_back(OccupancyMap::checkpoint(journal_));
    FlowPlan plan = plan_one_flow(*net_, occ_, fid, now, plan_config, &plan_scratch_);
    ++counters_.flows_planned;
    if (plan.feasible && fid != plan_config.fault_skip_occupy) {
      occ_.occupy(plan.path, plan.slices, &journal_);
    }
    if (!plan.feasible) ++session_infeasible_;
    session_order_.push_back(fid);
    session_plans_.push_back(std::move(plan));
  }
}

void TapsScheduler::resume_session(const std::vector<FlowId>& target, double now) {
  std::size_t p = 0;
  while (p < session_order_.size() && p < target.size() && session_order_[p] == target[p]) {
    ++p;
  }
  if (p < session_adopted_) {
    // The new target diverges inside the adopted prefix (e.g. the preemption
    // victim owns one of those flows). Rolling the journal back cannot
    // un-adopt an entry — adopted occupancy predates the session — so
    // restore the committed state wholesale and re-open against the new
    // target; the open walk naturally stops adopting at the first removed
    // flow.
    ++counters_.session_restarts;
    abandon_session();
    open_session(target, now);
  } else {
    if (p < session_order_.size()) {
      occ_.rollback(journal_, session_marks_[p]);
      for (std::size_t k = p; k < session_plans_.size(); ++k) {
        if (!session_plans_[k].feasible) --session_infeasible_;
      }
      session_order_.resize(p);
      session_marks_.resize(p);
      session_plans_.resize(p);
    }
    counters_.checkpoint_reuse_flows += p;
  }
  plan_tail(target, now);
}

void TapsScheduler::commit_session(double now) {
  assert(session_infeasible_ == 0);
  for (const FlowId fid : session_retired_) {
    slices_[static_cast<std::size_t>(fid)].clear();
    touch_slices(fid);
  }
  session_retired_.clear();
  committed_order_.clear();
  committed_order_.reserve(session_order_.size());
  sched::ScheduleObserver* obs = schedule_observer();
  std::vector<sched::CommittedFlowView> view;
  if (obs != nullptr) view.reserve(session_order_.size());
  pod_index_.begin_commit();
  for (std::size_t k = 0; k < session_order_.size(); ++k) {
    const FlowId fid = session_order_[k];
    const auto i = static_cast<std::size_t>(fid);
    Flow& f = net_->flow(fid);
    bool regranted = false;
    if (k >= session_adopted_) {
      FlowPlan& plan = session_plans_[k];
      // Adopted entries are, by construction, exactly what a full replan
      // would have reproduced verbatim — so comparing only the replanned
      // tail flags the same re-grant set as the full-replan commit().
      regranted = f.path.links != plan.path.links || slices_[i] != plan.slices;
      if (regranted) {
        ++counters_.slice_grants;
        touch_slices(fid);
      }
      f.path = std::move(plan.path);
      slices_[i] = std::move(plan.slices);
    }
    committed_order_.push_back(fid);
    committed_remaining_[i] = f.remaining;
    pod_index_.observe_commit_entry(*net_, f, slices_[i], counters_.budget_reservations);
    if (obs != nullptr) view.push_back({fid, f.task(), regranted, &f.path, &slices_[i]});
  }
  pod_index_.end_commit();
  ++counters_.plan_commits;
  // occ_ already holds exactly the committed occupancy; the journal's undo
  // history is no longer needed.
  journal_.clear();
  cross_arrival_valid_ = true;
  if (obs != nullptr) obs->on_plan_committed(now, view);
}

void TapsScheduler::abandon_session() {
  occ_.rollback(journal_, OccupancyCheckpoint{});
  journal_.clear();
}

void TapsScheduler::on_task_arrival_incremental(TaskId id, double now,
                                                const std::vector<FlowId>& wave) {
  // Mirrors on_task_arrival's decision cascade exactly, but runs it as one
  // journaled session over the live committed map instead of three
  // from-scratch trial maps. Every committed decision and committed byte of
  // state is bitwise identical to the full-replan path (pinned by
  // tests/core/taps_incremental_prop_test.cpp).
  assert(journal_.empty());
  std::vector<FlowId> trial_order = unfinished_admitted();
  const std::size_t incumbent_count = trial_order.size();
  trial_order.insert(trial_order.end(), wave.begin(), wave.end());
  sort_order(trial_order, incumbent_count);
  open_session(trial_order, now);
  plan_tail(trial_order, now);
  ++counters_.replans;

  const RejectOutcome outcome =
      apply_reject_rule(*net_, id, session_plans_, config_.preempt_policy);
  switch (outcome.decision) {
    case Decision::kAccept:
      admit(id, wave, now);
      commit_session(now);
      return;

    case Decision::kPreemptVictim: {
      assert(outcome.victim != net::kInvalidTask);
      // Validation replan without the victim's flows: resume from the
      // longest prefix of the trial plan that survives the removal.
      std::vector<FlowId> order;
      order.reserve(trial_order.size());
      for (const FlowId fid : trial_order) {
        if (net_->flow(fid).task() != outcome.victim) order.push_back(fid);
      }
      resume_session(order, now);
      ++counters_.replans;
      if (session_infeasible_ == 0) {
        net_->reject_task(outcome.victim);
        ++counters_.tasks_preempted;
        if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
          obs->on_task_preempted(outcome.victim, id, now);
        }
        admit(id, wave, now);
        commit_session(now);
        return;
      }
      break;
    }

    case Decision::kRejectNew:
      break;
  }

  // Reject the newcomer; compact the incumbents (see the full-replan path
  // for the rationale), resuming from whatever trial/validation prefix
  // survives dropping the newcomer's flows.
  net_->reject_task(id);
  ++counters_.tasks_rejected;
  if (sched::ScheduleObserver* obs = schedule_observer(); obs != nullptr) {
    obs->on_task_rejected(id, now);
  }
  std::vector<FlowId> incumbents;
  incumbents.reserve(trial_order.size());
  for (const FlowId fid : trial_order) {
    if (net_->flow(fid).task() != id) incumbents.push_back(fid);
  }
  resume_session(incumbents, now);
  ++counters_.replans;
  if (session_infeasible_ == 0) {
    commit_session(now);
  } else {
    abandon_session();
    ++counters_.replan_reverts;
    util::log_debug() << "TAPS: compacting re-plan at t=" << now
                      << " would strand a survivor; keeping the prior plan";
  }
}

void TapsScheduler::on_flow_finished(FlowId id, double now) {
  BaseScheduler::on_flow_finished(id, now);
  const Flow& f = net_->flow(id);
  if (f.state == FlowState::kMissed) {
    // TAPS never transmits a flow it cannot finish, so under the fluid
    // model an admitted flow missing its deadline would indicate a planner
    // bug. Under packet-quantized execution (pkt::PacketSimulator) a small
    // number of exact-fit admissions land one store-and-forward pipeline
    // late — expected there (see bench_packet_validation). Either way, stop
    // the rest of the task: it has already failed, further bytes would be
    // wasted (the paper's no-waste rule).
    util::log_warn() << "TAPS: admitted flow " << id << " missed its deadline at t=" << now
                     << " (a bug under the fluid engine; expected occasionally under"
                        " packet-quantized execution)";
    const net::Task& t = net_->task(f.task());
    for (const FlowId sibling : t.spec.flows) {
      Flow& s = net_->flow(sibling);
      if (!s.finished()) {
        s.state = FlowState::kRejected;
        s.set_rate(0.0);
        slices_[static_cast<std::size_t>(sibling)].clear();
      }
    }
    // The siblings' committed occupancy is now orphaned from their cleared
    // slices, so it can no longer be vacated incrementally: route the next
    // arrival through the full replan (whose commit swaps in a fresh map and
    // re-establishes validity).
    cross_arrival_valid_ = false;
  }
}

void TapsScheduler::touch_slices(FlowId fid) {
  const auto i = static_cast<std::size_t>(fid);
  if (i >= slice_gen_.size()) {
    slice_gen_.resize(slices_.size(), 0);
    rate_touched_mark_.resize(slices_.size(), 0);
  }
  ++slice_gen_[i];
  if (rate_touched_mark_[i] == 0) {
    rate_touched_mark_[i] = 1;
    rate_touched_.push_back(fid);
  }
}

bool TapsScheduler::refresh_rate(FlowId fid, double now) {
  const Flow& f = net_->flow(fid);
  const auto i = static_cast<std::size_t>(fid);
  const auto& sl = slices_[i];
  if (sl.contains(now)) {
    double rate = sim::kInfinity;
    for (const topo::LinkId lid : f.path.links) {
      rate = std::min(rate, net_->link_capacity(lid));
    }
    f.set_rate(rate);
    // In-slice flows always have a boundary after now: the slice's end.
    rate_heap_.push(RateBoundary{sl.next_boundary(now), fid, slice_gen_[i]});
    return true;
  }
  f.set_rate(0.0);
  const double boundary = sl.next_boundary(now);
  if (boundary == sim::kInfinity) return false;  // out of slices, bytes left: makeup
  rate_heap_.push(RateBoundary{boundary, fid, slice_gen_[i]});
  return true;
}

double TapsScheduler::assign_rates(double now) {
  if (!config_.event_driven_rates || rate_fallback_) return assign_rates_reference(now);

  // 1. Flows whose committed slices changed since the last call.
  for (const FlowId fid : rate_touched_) {
    rate_touched_mark_[static_cast<std::size_t>(fid)] = 0;
    if (!net_->flow(fid).active()) continue;  // invalidated entries drop lazily
    if (!refresh_rate(fid, now)) rate_fallback_ = true;
  }
  rate_touched_.clear();

  // 2. Flows whose boundary arrived: their rate steps at `now`.
  while (!rate_fallback_ && !rate_heap_.empty() && rate_heap_.top().time <= now) {
    const RateBoundary top = rate_heap_.top();
    rate_heap_.pop();
    if (top.gen != slice_gen_[static_cast<std::size_t>(top.fid)]) continue;  // superseded
    if (!net_->flow(top.fid).active()) continue;
    if (!refresh_rate(top.fid, now)) rate_fallback_ = true;
  }
  if (rate_fallback_) {
    // Makeup transmission needed. Every event-driven refresh so far wrote
    // the same pure per-flow values a rescan computes, so switching to the
    // full rescan now (and for the rest of the run — makeup grants depend on
    // cross-flow iteration state) is exact.
    return assign_rates_reference(now);
  }

  // 3. Earliest live boundary = the reference loop's return value: every
  // active flow holds exactly one fresh entry (makeup-less flows always have
  // a future boundary), and surviving entries were computed at some t <= now
  // with slices unchanged since, so entry.time == next_boundary(now).
  while (!rate_heap_.empty()) {
    const RateBoundary& top = rate_heap_.top();
    if (top.gen != slice_gen_[static_cast<std::size_t>(top.fid)] ||
        !net_->flow(top.fid).active()) {
      rate_heap_.pop();
      continue;
    }
    return top.time;
  }
  return sim::kInfinity;
}

double TapsScheduler::assign_rates_reference(double now) {
  if (makeup_busy_.size() < net_->graph().link_count()) {
    makeup_busy_.assign(net_->graph().link_count(), 0);
  } else {
    std::fill(makeup_busy_.begin(), makeup_busy_.end(), 0);
  }

  double next_boundary = sim::kInfinity;
  for (const FlowId fid : active_flows()) {
    Flow& f = net_->flow(fid);
    const auto& sl = slices_[static_cast<std::size_t>(fid)];
    if (sl.contains(now)) {
      double rate = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        rate = std::min(rate, net_->link_capacity(lid));
        makeup_busy_[static_cast<std::size_t>(lid)] = 1;
      }
      f.set_rate(rate);
      next_boundary = std::min(next_boundary, sl.next_boundary(now));
      continue;
    }
    f.set_rate(0.0);
    const double flow_boundary = sl.next_boundary(now);
    if (flow_boundary != sim::kInfinity) {
      // A future slice exists: wait for it.
      next_boundary = std::min(next_boundary, flow_boundary);
      continue;
    }
    // Makeup transmission: the flow ran out of granted slices with bytes
    // still unsent. Under the fluid model this cannot happen (slices are
    // exact); under packet execution a pacing chain can drift a few
    // microseconds past an exact-fit slice end and strand a sub-MTU tail.
    // Let such a stray finish on links that are idle in the committed plan
    // (and not claimed by another flow this round) — exclusivity preserved.
    bool idle = true;
    for (const topo::LinkId lid : f.path.links) {
      const auto i = static_cast<std::size_t>(lid);
      if (makeup_busy_[i] != 0 || occ_.link(lid).contains(now)) {
        idle = false;
        // Retry when this link's planned occupancy next changes.
        next_boundary = std::min(next_boundary, occ_.link(lid).next_boundary(now));
      }
    }
    if (idle) {
      double rate = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        rate = std::min(rate, net_->link_capacity(lid));
        makeup_busy_[static_cast<std::size_t>(lid)] = 1;
        // The grant lasts only until someone's planned slice begins here.
        next_boundary = std::min(next_boundary, occ_.link(lid).next_boundary(now));
      }
      f.set_rate(rate);
    }
  }
  return next_boundary;
}

}  // namespace taps::core
