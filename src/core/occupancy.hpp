// Per-link occupied-time bookkeeping for the TAPS controller (the paper's
// O_x sets). A link is "occupied" during every time slice pre-allocated to
// some flow crossing it; TAPS maintains at most one flow per link at any
// instant, so occupancy intervals never overlap.
#pragma once

#include <vector>

#include "topo/graph.hpp"
#include "util/interval_set.hpp"

namespace taps::core {

class OccupancyMap {
 public:
  explicit OccupancyMap(std::size_t link_count) : by_link_(link_count) {}

  void clear();

  [[nodiscard]] std::size_t link_count() const { return by_link_.size(); }

  [[nodiscard]] const util::IntervalSet& link(topo::LinkId id) const {
    return by_link_[static_cast<std::size_t>(id)];
  }

  /// Union of the occupied sets of all links on `path` (the paper's T_ocp):
  /// its complement is the time when the whole path is idle end-to-end.
  [[nodiscard]] util::IntervalSet path_union(const topo::Path& path) const;

  /// Mark every link of `path` occupied during `slices`. In debug builds,
  /// asserts the slices do not overlap existing occupancy (the exclusive-use
  /// invariant).
  void occupy(const topo::Path& path, const util::IntervalSet& slices);

  /// True if `slices` would collide with existing occupancy on any link of
  /// the path (property tests use this).
  [[nodiscard]] bool collides(const topo::Path& path, const util::IntervalSet& slices) const;

  /// Drop occupancy before `t` on all links (bounded memory on long runs).
  void trim_before(double t);

 private:
  std::vector<util::IntervalSet> by_link_;
};

}  // namespace taps::core
