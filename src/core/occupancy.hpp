// Per-link occupied-time bookkeeping for the TAPS controller (the paper's
// O_x sets). A link is "occupied" during every time slice pre-allocated to
// some flow crossing it; TAPS maintains at most one flow per link at any
// instant, so occupancy intervals never overlap.
//
// Queries that scan forward from a time t (the replan hot path always asks
// "first occupancy at or after now") go through a per-link earliest-free
// hint: the last (from, index) answer is cached and reused when the next
// query's `from` is not earlier, instead of rescanning from t=0. The cache
// is invalidated per link on every mutation. Hints make the map NOT safe for
// concurrent const access from multiple threads (each exp::Sweep worker owns
// its scheduler and map, so this never arises in-tree).
#pragma once

#include <vector>

#include "topo/graph.hpp"
#include "util/interval_set.hpp"

namespace taps::core {

/// Undo log for OccupancyMap mutations. Logged occupy()/vacate() calls
/// append one record per per-link splice; rollback() replays them in LIFO
/// order, restoring every touched IntervalSet bitwise. A checkpoint is just
/// the journal's (records, arena) watermark, so taking one is O(1) and
/// rolling back costs O(mutations since the checkpoint) — the mechanism
/// behind TapsScheduler's incremental replanning (see DESIGN.md).
// taps-threading: single-domain -- owned by its OccupancyMap's domain
struct OccupancyJournal {
  struct Record {
    topo::LinkId link = 0;
    util::IntervalSet::SpliceUndo undo;
    std::uint32_t arena_begin = 0;  // slice of `arena` holding the replaced intervals
  };
  std::vector<Record> records;
  std::vector<util::Interval> arena;

  [[nodiscard]] bool empty() const { return records.empty(); }
  void clear() {
    records.clear();
    arena.clear();
  }
};

/// Watermark into an OccupancyJournal: everything logged after it can be
/// rolled back. Checkpoints taken on the same journal are totally ordered;
/// rollback to an older checkpoint implicitly discards newer ones.
// taps-threading: single-domain -- snapshot taken and restored by one domain
struct OccupancyCheckpoint {
  std::size_t records = 0;
  std::size_t arena = 0;
};

// taps-threading: single-domain -- mutable hint/prefix caches make even const reads unsafe to share
class OccupancyMap {
 public:
  explicit OccupancyMap(std::size_t link_count)
      : by_link_(link_count), hints_(link_count), prefix_(link_count) {}

  void clear();

  /// Re-target the map to `link_count` links, all idle, KEEPING the per-link
  /// interval storage capacity (the replan hot path rebuilds a trial map on
  /// every arrival; recycling avoids re-growing every vector each time).
  void reset(std::size_t link_count);

  [[nodiscard]] std::size_t link_count() const { return by_link_.size(); }

  [[nodiscard]] const util::IntervalSet& link(topo::LinkId id) const {
    return by_link_[static_cast<std::size_t>(id)];
  }

  /// Union of the occupied sets of all links on `path` (the paper's T_ocp):
  /// its complement is the time when the whole path is idle end-to-end.
  [[nodiscard]] util::IntervalSet path_union(const topo::Path& path) const;

  /// Like path_union but dropping, per link, every interval that ends at or
  /// before `from` — exactly the part of T_ocp that can matter when
  /// allocating from time `from`. Agrees with path_union on [from, inf) (the
  /// property test checks this); below `from` a surviving merged interval
  /// may start later than path_union's, because per-link intervals that end
  /// at or before `from` are not merged in. Uses the per-link hints instead
  /// of full scans.
  [[nodiscard]] util::IntervalSet path_union_from(const topo::Path& path, double from) const;

  /// Index of the first interval of `link(id)` with hi > from, answered via
  /// the per-link hint cache (falls back to binary search on miss).
  [[nodiscard]] std::size_t first_index_after(topo::LinkId id, double from) const;

  /// Earliest completion of a `need`-second allocation considering ONLY link
  /// `id` (single-link Algorithm 3, no horizon). A path's idle time is the
  /// intersection of its links' idle time, so this lower-bounds the
  /// completion on ANY path through the link; plan_one_flow takes the max
  /// over a candidate's links to skip candidates that provably cannot beat
  /// the incumbent. O(log n) per query via a lazily rebuilt per-link
  /// prefix-busy cache (invalidated on mutation, like the hints). The value
  /// carries prefix-summation rounding of at most ~n*ulp — callers must
  /// compare against bounds with a slack exceeding that (see kLbSlack).
  [[nodiscard]] double single_link_completion(topo::LinkId id, double from, double need) const;

  /// Mark every link of `path` occupied during `slices`. In debug builds,
  /// asserts the slices do not overlap existing occupancy (the exclusive-use
  /// invariant). With `journal` non-null every mutation is logged so
  /// rollback() can undo it.
  void occupy(const topo::Path& path, const util::IntervalSet& slices,
              OccupancyJournal* journal = nullptr);

  /// Remove `slices` from every link of `path` (logged). The inverse of
  /// occupy() for a committed flow whose slices are known exactly: because
  /// granted slices never overlap across flows, erasing them leaves
  /// precisely the other flows' occupancy, in canonical (hence bitwise-
  /// reproducible) form.
  void vacate(const topo::Path& path, const util::IntervalSet& slices,
              OccupancyJournal& journal);

  /// Current watermark of `journal` (O(1)).
  [[nodiscard]] static OccupancyCheckpoint checkpoint(const OccupancyJournal& journal) {
    return OccupancyCheckpoint{journal.records.size(), journal.arena.size()};
  }

  /// Undo every mutation logged after `cp`, restoring the touched links'
  /// interval sets bitwise, and truncate the journal back to `cp`.
  void rollback(OccupancyJournal& journal, const OccupancyCheckpoint& cp);

  /// True if `slices` would collide with existing occupancy on any link of
  /// the path (property tests use this).
  [[nodiscard]] bool collides(const topo::Path& path, const util::IntervalSet& slices) const;

  /// Drop occupancy before `t` on all links (bounded memory on long runs).
  void trim_before(double t);

 private:
  struct Hint {
    double from = 0.0;
    std::uint32_t index = 0;
    bool valid = false;
  };

  /// cum[k] = total busy seconds in intervals [0, k) of the link — rebuilt
  /// lazily on first single_link_completion after a mutation.
  struct BusyPrefix {
    std::vector<double> cum;
    bool valid = false;
  };

  std::vector<util::IntervalSet> by_link_;
  mutable std::vector<Hint> hints_;  // lazily-updated query cache, see above
  mutable std::vector<BusyPrefix> prefix_;
};

}  // namespace taps::core
