#include "core/time_allocation.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace taps::core {

TimeAllocation allocate_time_reference(const OccupancyMap& occupancy, const topo::Path& path,
                                       double now, double duration, double horizon) {
  TimeAllocation out;
  if (duration <= 0.0 || horizon <= now) return out;
  const util::IntervalSet t_ocp = occupancy.path_union(path);
  out.slices = t_ocp.allocate_earliest(now, duration, horizon);
  if (!out.slices.empty()) out.completion = out.slices.back_end();
  return out;
}

namespace {

using Range = TimeAllocScratch::Range;

/// Two-pointer union merge with IntervalSet::unite's exact coalescing rule
/// (iv.lo <= back.hi extends the back interval), writing into a reused
/// buffer. Sequential and branch-predictable — this is why the restricted
/// merge beats a k-way cursor sweep, whose short unpredictable advance loops
/// stall on mispredicts.
void merge_union(const util::Interval* a, const util::Interval* ae, const util::Interval* b,
                 const util::Interval* be, std::vector<util::Interval>& out) {
  out.clear();
  const auto push = [&out](util::Interval iv) {
    if (!out.empty() && iv.lo <= out.back().hi) {
      if (iv.hi > out.back().hi) out.back().hi = iv.hi;
    } else {
      out.push_back(iv);
    }
  };
  while (a != ae || b != be) {
    if (b == be || (a != ae && a->lo <= b->lo)) {
      push(*a++);
    } else {
      push(*b++);
    }
  }
}

}  // namespace

// Fused TimeAllocation: materialize T_ocp restricted to the only window
// that can matter — [now, min(completion_bound, horizon)) — into reused
// scratch, then run IntervalSet::allocate_earliest's exact scan over it with
// a branch-and-bound abort. Identical output to the reference:
//
//  - Each link's range starts at its earliest-free hint (first interval
//    with hi > now); a dropped earlier interval can only retreat a merged
//    interval's lo, and allocate_earliest never reads structure at or below
//    `now` (the first surviving interval's lo is always <= now when it was
//    merged with a dropped one).
//  - Intervals with lo >= stop are dropped: before the scan can consult
//    them its cursor satisfies cursor + need >= lo >= stop, which is either
//    a bound abort (stop == completion_bound) or horizon infeasibility
//    (stop == horizon) — decided identically without them.
//  - Union order is irrelevant (canonical interval-set form is unique), so
//    folding smallest-range-first matches path_union's link-order fold.
//
// The restriction skips the far tail a deep occupancy accumulates past the
// incumbent completion, the scratch buffers kill the per-call allocations
// path_union pays, and the abort stops losing candidates early.
bool allocate_time_into(const OccupancyMap& occupancy, const topo::Path& path, double now,
                        double duration, double horizon, double completion_bound,
                        util::IntervalSet& slices, double& completion,
                        TimeAllocScratch* scratch) {
  slices.clear();
  if (duration <= 0.0 || horizon <= now) return false;
  const double stop = std::min(completion_bound, horizon);

  // Hot callers (the planner) pass persistent scratch so the buffers are
  // allocation-free in steady state; scratch-less calls pay a local one.
  TimeAllocScratch local_scratch;
  TimeAllocScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  std::vector<Range>& ranges = sc.ranges;
  ranges.clear();
  for (const topo::LinkId lid : path.links) {
    const auto& ivs = occupancy.link(lid).intervals();
    const std::size_t first = occupancy.first_index_after(lid, now);
    if (first == ivs.size()) continue;
    const util::Interval* base = ivs.data() + first;
    const util::Interval* last =
        std::lower_bound(base, ivs.data() + ivs.size(), stop,
                         [](const util::Interval& iv, double v) { return iv.lo < v; });
    if (base != last) ranges.push_back(Range{base, last});
  }

  // Fold the restricted ranges into one union, smallest first so the
  // intermediate results stay as short as possible.
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.size() < b.size(); });
  std::vector<util::Interval>(&bufs)[2] = sc.bufs;
  const util::Interval* u = nullptr;
  const util::Interval* ue = nullptr;
  if (ranges.size() == 1) {
    u = ranges[0].first;
    ue = ranges[0].last;
  } else if (ranges.size() >= 2) {
    int cur = 0;
    merge_union(ranges[0].first, ranges[0].last, ranges[1].first, ranges[1].last, bufs[cur]);
    for (std::size_t r = 2; r < ranges.size(); ++r) {
      merge_union(bufs[cur].data(), bufs[cur].data() + bufs[cur].size(), ranges[r].first,
                  ranges[r].last, bufs[1 - cur]);
      cur = 1 - cur;
    }
    u = bufs[cur].data();
    ue = u + bufs[cur].size();
  }

  // allocate_earliest's scan, verbatim arithmetic, plus the bound abort: a
  // take only happens after cursor + need < completion_bound held, so any
  // returned completion is strictly under the bound.
  double need = duration;
  double cursor = now;
  for (; u != ue; ++u) {
    if (cursor + need >= completion_bound) {
      slices.clear();
      return false;
    }
    const double idle_hi = std::min(u->lo, horizon);
    if (idle_hi > cursor) {
      const double take = std::min(need, idle_hi - cursor);
      slices.push_back_disjoint(cursor, cursor + take);
      need -= take;
      if (need <= 0.0) {
        completion = slices.back_end();
        return true;
      }
    }
    cursor = std::max(cursor, u->hi);
    if (cursor >= horizon) break;
  }
  if (cursor + need >= completion_bound) {
    slices.clear();
    return false;
  }
  if (need > 0.0 && cursor < horizon) {
    const double take = std::min(need, horizon - cursor);
    slices.push_back_disjoint(cursor, cursor + take);
    need -= take;
  }
  if (need > 1e-12) {  // insufficient idle time before horizon
    slices.clear();
    return false;
  }
  completion = slices.back_end();
  return true;
}

TimeAllocation allocate_time(const OccupancyMap& occupancy, const topo::Path& path,
                             double now, double duration, double horizon,
                             double completion_bound) {
  TimeAllocation out;
  double completion = 0.0;
  if (allocate_time_into(occupancy, path, now, duration, horizon, completion_bound,
                         out.slices, completion)) {
    out.completion = completion;
  }
  return out;
}

}  // namespace taps::core
