#include "core/time_allocation.hpp"

namespace taps::core {

TimeAllocation allocate_time(const OccupancyMap& occupancy, const topo::Path& path,
                             double now, double duration, double horizon) {
  TimeAllocation out;
  if (duration <= 0.0 || horizon <= now) return out;
  const util::IntervalSet t_ocp = occupancy.path_union(path);
  out.slices = t_ocp.allocate_earliest(now, duration, horizon);
  if (!out.slices.empty()) out.completion = out.slices.back_end();
  return out;
}

}  // namespace taps::core
