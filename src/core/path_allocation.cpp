#include "core/path_allocation.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace taps::core {

using net::Flow;
using net::FlowId;

FlowPlan plan_one_flow(const net::Network& net, const OccupancyMap& occupancy, FlowId fid,
                       double now, const PlanConfig& config) {
  const Flow& f = net.flow(fid);
  FlowPlan plan;
  plan.flow = fid;

  auto candidates = net.topology().paths(f.spec.src, f.spec.dst, config.max_paths);
  if (config.ecmp_routing && candidates.size() > 1) {
    const std::uint64_t h = util::hash_combine(static_cast<std::uint64_t>(fid) + 1,
                                               static_cast<std::uint64_t>(f.spec.src));
    topo::Path chosen = topo::pick_ecmp(candidates, h);
    candidates.assign(1, std::move(chosen));
  }
  double best_completion = sim::kInfinity;
  for (const topo::Path& p : candidates) {
    // The paper assumes uniform link bandwidth; transfer time is computed at
    // the path's bottleneck capacity to stay correct on non-uniform graphs.
    double capacity = sim::kInfinity;
    for (const topo::LinkId lid : p.links) {
      capacity = std::min(capacity, net.link_capacity(lid));
    }
    const double duration = f.remaining / capacity;
    const TimeAllocation alloc =
        allocate_time(occupancy, p, now, duration, f.spec.deadline - config.guard_band);
    if (alloc.feasible() && alloc.completion < best_completion) {
      best_completion = alloc.completion;
      plan.path = p;
      plan.slices = alloc.slices;
      plan.completion = alloc.completion;
      plan.feasible = true;
    }
  }
  return plan;
}

std::vector<FlowPlan> plan_flows(const net::Network& net, OccupancyMap& occupancy,
                                 std::span<const FlowId> order, double now,
                                 const PlanConfig& config) {
  std::vector<FlowPlan> plans;
  plans.reserve(order.size());
  for (const FlowId fid : order) {
    FlowPlan plan = plan_one_flow(net, occupancy, fid, now, config);
    if (plan.feasible && fid != config.fault_skip_occupy) {
      occupancy.occupy(plan.path, plan.slices);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

void sort_edf_sjf(const net::Network& net, std::vector<FlowId>& flows) {
  std::sort(flows.begin(), flows.end(), [&net](FlowId a, FlowId b) {
    const Flow& fa = net.flow(a);
    const Flow& fb = net.flow(b);
    if (fa.spec.deadline != fb.spec.deadline) return fa.spec.deadline < fb.spec.deadline;
    if (fa.remaining != fb.remaining) return fa.remaining < fb.remaining;
    return a < b;
  });
}

}  // namespace taps::core
