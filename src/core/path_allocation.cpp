#include "core/path_allocation.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace taps::core {

using net::Flow;
using net::FlowId;

namespace {

/// Compute (or fetch from `scratch`) the flow's candidate paths, with the
/// ECMP reduction already applied — both depend only on immutable flow data
/// and the fixed config, so caching them is observationally transparent.
std::vector<topo::Path> compute_candidates(const net::Network& net, const Flow& f,
                                           const PlanConfig& config) {
  auto candidates = net.topology().paths(f.spec.src, f.spec.dst, config.max_paths);
  if (config.ecmp_routing && candidates.size() > 1) {
    const std::uint64_t h = util::hash_combine(static_cast<std::uint64_t>(f.id()) + 1,
                                               static_cast<std::uint64_t>(f.spec.src));
    topo::Path chosen = topo::pick_ecmp(candidates, h);
    candidates.assign(1, std::move(chosen));
  }
  return candidates;
}

const std::vector<topo::Path>& candidate_paths(const net::Network& net, const Flow& f,
                                               const PlanConfig& config, PlanScratch* scratch,
                                               std::vector<topo::Path>& fallback) {
  if (scratch == nullptr) {
    // Scratch-less callers (tests, one-off plans) pay a per-call compute
    // into their stack-owned buffer; the scheduler always passes scratch.
    fallback = compute_candidates(net, f, config);
    return fallback;
  }
  const auto idx = static_cast<std::size_t>(f.id());
  if (scratch->candidates.size() <= idx) scratch->candidates.resize(net.flows().size());
  auto& cached = scratch->candidates[idx];
  if (cached.empty()) cached = compute_candidates(net, f, config);
  return cached;
}

}  // namespace

FlowPlan plan_one_flow(const net::Network& net, const OccupancyMap& occupancy, FlowId fid,
                       double now, const PlanConfig& config, PlanScratch* scratch) {
  const Flow& f = net.flow(fid);
  FlowPlan plan;
  plan.flow = fid;

  std::vector<topo::Path> fallback_candidates;
  const std::vector<topo::Path>& candidates =
      candidate_paths(net, f, config, scratch, fallback_candidates);
  PlanScratch local_scratch;
  PlanScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  double best_completion = sim::kInfinity;
  for (const topo::Path& p : candidates) {
    // The paper assumes uniform link bandwidth; transfer time is computed at
    // the path's bottleneck capacity to stay correct on non-uniform graphs.
    double capacity = sim::kInfinity;
    for (const topo::LinkId lid : p.links) {
      capacity = std::min(capacity, net.link_capacity(lid));
    }
    const double duration = f.remaining / capacity;
    const double horizon = f.spec.deadline - config.guard_band;
    if (config.reference_allocator) {
      TimeAllocation alloc = allocate_time_reference(occupancy, p, now, duration, horizon);
      if (alloc.feasible() && alloc.completion < best_completion) {
        best_completion = alloc.completion;
        plan.path = p;
        plan.slices = std::move(alloc.slices);
        plan.completion = alloc.completion;
        plan.feasible = true;
      }
      continue;
    }
    // Candidate pruning, cheapest test first: the completion on any path is
    // at least the max of its links' single-link completions (union idle is
    // a subset of each link's idle), so a candidate whose lower bound cannot
    // beat the incumbent — or fit the deadline — is skipped without a sweep.
    // kLbSlack absorbs the bound's prefix-summation rounding: skips trigger
    // only past the slack, so they never cut a candidate the full evaluation
    // could still pick, and the chosen plan stays bit-identical to
    // evaluating every candidate (the reference_allocator branch above).
    constexpr double kLbSlack = 1e-6;
    double lower_bound = now;
    bool hopeless = false;
    for (const topo::LinkId lid : p.links) {
      lower_bound = std::max(lower_bound, occupancy.single_link_completion(lid, now, duration));
      if (lower_bound > horizon + kLbSlack || lower_bound > best_completion + kLbSlack) {
        hopeless = true;
        break;
      }
    }
    if (hopeless) continue;
    // best_completion doubles as the fused allocator's branch-and-bound
    // cutoff: a candidate that provably cannot beat the best so far aborts
    // its scan early, and any feasible result is a strict improvement — so
    // the plan is identical to evaluating every candidate in full. The trial
    // set is swapped in on improvement and recycled otherwise, keeping the
    // candidate race free of steady-state allocations.
    util::IntervalSet& trial = sc.trial;
    double completion = 0.0;
    if (allocate_time_into(occupancy, p, now, duration, horizon, best_completion, trial,
                           completion, &sc.time_alloc)) {
      best_completion = completion;
      plan.path = p;
      std::swap(plan.slices, trial);
      plan.completion = completion;
      plan.feasible = true;
    }
  }
  return plan;
}

std::vector<FlowPlan> plan_flows(const net::Network& net, OccupancyMap& occupancy,
                                 std::span<const FlowId> order, double now,
                                 const PlanConfig& config, PlanScratch* scratch) {
  std::vector<FlowPlan> plans;
  plans.reserve(order.size());
  for (const FlowId fid : order) {
    FlowPlan plan = plan_one_flow(net, occupancy, fid, now, config, scratch);
    if (plan.feasible && fid != config.fault_skip_occupy) {
      occupancy.occupy(plan.path, plan.slices);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

void sort_edf_sjf(const net::Network& net, std::vector<FlowId>& flows) {
  std::sort(flows.begin(), flows.end(), [&net](FlowId a, FlowId b) {
    const Flow& fa = net.flow(a);
    const Flow& fb = net.flow(b);
    if (fa.spec.deadline != fb.spec.deadline) return fa.spec.deadline < fb.spec.deadline;
    if (fa.remaining != fb.remaining) return fa.remaining < fb.remaining;
    return a < b;
  });
}

}  // namespace taps::core
