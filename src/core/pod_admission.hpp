// Hierarchical two-level admission: pod-local conservative feasibility
// prechecks for the TAPS planner.
//
// The index maintains, alongside the committed plan, (a) per-anchor-link
// registries of committed flows — a flow's anchors are its mandatory links
// (the source host's uplink and the destination host's downlink, which every
// candidate path traverses) plus, for cross-pod flows, the pod uplink and
// downlink of its committed path — and (b) a coarse per-pod occupancy
// summary: committed busy mass bucketed by deadline window.
//
// The precheck proves a *new* task's wave flow infeasible without planning
// it: under the no-transmission gate (now <= min committed slice start, so
// nothing has drifted since the last commit), every committed flow whose
// EDF+SJF key precedes all wave keys is adopted verbatim by the trial replan
// (see open_session), so its remaining/capacity is a certain lower bound of
// busy mass on each of its anchor links within the newcomer's deadline
// window. If the newcomer's own mandatory-link demand provably exceeds the
// window minus that mass (or, for cross-pod flows, every uplink of its
// source pod / every downlink of its destination pod is provably full), the
// flow cannot be planned feasibly — and reject-rule Rule 2 then rejects the
// task unconditionally. The fast path therefore commits exactly the decision
// the full pipeline would, which keeps hierarchical mode bit-identical
// (pinned by tests/core/taps_hierarchy_prop_test.cpp and the golden
// timelines). All comparisons carry a conservative slack so float rounding
// can only ever fail toward "not provable" (never toward a spurious reject).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "topo/pods.hpp"
#include "util/interval_set.hpp"

namespace taps::core {

/// Per-pod coarse busy mass: seconds of mandatory-link transmission time
/// committed against the pod, bucketed by absolute deadline window. Monotone
/// within a window (mass is added at first commit of a flow and released
/// only when the window falls entirely into the past), so a zero reading is
/// a certain "nothing relevant committed here" — the precheck's early-out.
// taps-threading: thread-compatible
struct PodBusySummary {
  double total_mass = 0.0;                      // live (unpruned) seconds
  std::map<std::int64_t, double> window_mass;   // window index -> seconds
};

// taps-threading: single-domain -- reserve/commit mutate per-pod state owned by the admission domain
class PodAdmissionIndex {
 public:
  /// Width of a deadline window in the per-pod summary, seconds.
  static constexpr double kWindowSeconds = 0.0625;
  /// Conservative slack (seconds) by which demand must exceed provable free
  /// time before a reject fires; absorbs float rounding between the index's
  /// mass sums and the planner's interval arithmetic. An exactly-exhausted
  /// budget (demand == free) therefore never fast-rejects.
  static constexpr double kSlack = 1e-6;

  /// (Re)binds to a topology's pod metadata; nullptr disables the index.
  /// Clears all registries; the gate stays closed until the next commit
  /// re-registers the committed set.
  void bind(const topo::PodMap* pods, std::size_t flow_capacity);

  [[nodiscard]] bool enabled() const { return pods_ != nullptr; }

  // ---- commit-time maintenance (cheap: O(newly committed flows)) ----
  void begin_commit();
  /// Folds one committed entry into the running gate minimum and registers
  /// its anchors on first sight. Must be called for every entry of the
  /// commit, in committed order (registry order is float-summation order).
  void observe_commit_entry(const net::Network& net, const net::Flow& f,
                            const util::IntervalSet& slices, std::size_t& budget_reservations);
  /// Publishes the gate: the precheck stays armed while now <= the minimum
  /// committed slice start (no transmission can have happened since).
  void end_commit();

  /// Deterministic housekeeping on the scheduler's trim cadence: prunes
  /// summary windows entirely before `now` and compacts dead registry
  /// entries (order-preserving, so mass sums stay bitwise reproducible).
  void on_trim(const net::Network& net, double now);

  /// Closes the gate until the next commit (bind/migrate/invalidation).
  void disarm() { gate_front_ = -1.0; armed_ = false; }

  /// True when the no-transmission gate holds at `now` and prechecks are
  /// meaningful. Callers must also ensure cross-arrival validity.
  [[nodiscard]] bool armed(double now) const { return armed_ && now <= gate_front_; }

  /// Conservative precheck over a task's wave: returns true only when some
  /// wave flow is *provably* infeasible in the trial replan (which Rule 2
  /// turns into an unconditional task reject). `committed_remaining` is the
  /// scheduler's per-flow remaining-at-last-commit table (bitwise equal to
  /// live remaining while the gate holds).
  [[nodiscard]] bool provably_infeasible(const net::Network& net,
                                         const std::vector<net::FlowId>& wave, double now,
                                         double guard_band,
                                         const std::vector<double>& committed_remaining) const;

  [[nodiscard]] const PodBusySummary& pod_summary(int pod) const {
    return summaries_[static_cast<std::size_t>(pod)];
  }
  [[nodiscard]] static std::int64_t window_of(double deadline) {
    return static_cast<std::int64_t>(deadline / kWindowSeconds);
  }

 private:
  struct Key {
    double deadline = 0.0;
    double remaining = 0.0;
    net::FlowId fid = net::kInvalidFlow;
    [[nodiscard]] bool before(double d, double r, net::FlowId f) const {
      if (deadline != d) return deadline < d;
      if (remaining != r) return remaining < r;
      return fid < f;
    }
  };

  /// Busy mass (seconds) on `link` from registered committed flows whose
  /// EDF+SJF key precedes `bound` — all provably planned (adopted) before
  /// any wave flow while the gate holds.
  [[nodiscard]] double mass_before(topo::LinkId link, const Key& bound, const net::Network& net,
                                   const std::vector<double>& committed_remaining) const;

  void register_anchor(topo::LinkId link, net::FlowId fid);

  const topo::PodMap* pods_ = nullptr;
  std::vector<std::vector<net::FlowId>> by_link_;  // anchor link -> flows, commit order
  std::vector<topo::LinkId> dirty_links_;          // links with registry entries
  std::vector<char> registered_;                   // per flow: anchors recorded
  std::vector<PodBusySummary> summaries_;          // per pod
  double gate_front_ = -1.0;  // min committed slice start at last commit
  double commit_front_ = 0.0; // accumulator during a commit
  bool commit_open_ = false;
  bool armed_ = false;
};

}  // namespace taps::core
