// Algorithm 2 of the paper: PathCalculation(F).
//
// For each flow (in the caller-supplied EDF+SJF order), enumerate candidate
// paths, run TimeAllocation on each, keep the path with the earliest
// completion, and commit its slices into the shared occupancy map. Flows
// that cannot finish before their deadline on any candidate path get an
// infeasible plan and occupy nothing (TAPS never spends bandwidth on a flow
// it cannot finish).
#pragma once

#include <span>

#include "core/time_allocation.hpp"
#include "net/network.hpp"

namespace taps::core {

// taps-threading: thread-compatible
struct PlanConfig {
  /// Cap on candidate paths per flow (see DESIGN.md on fat-tree path counts).
  std::size_t max_paths = 16;
  /// Ablation knob: hash each flow onto ONE of its candidate paths (ECMP)
  /// instead of letting Algorithm 2 choose the earliest-completion path.
  /// Isolates how much of TAPS's advantage comes from centralized routing.
  bool ecmp_routing = false;
  /// Slack subtracted from every deadline when planning (seconds). The
  /// fluid model needs none; on a packet network the last packet arrives
  /// one store-and-forward pipeline after its slice ends, so exact-fit
  /// plans miss by microseconds unless the controller budgets for it.
  double guard_band = 0.0;
  /// Use core::allocate_time_reference instead of the fused allocator.
  /// Output is identical either way; bench_micro_replan flips this to
  /// measure the optimization, and the equivalence property test cross-
  /// checks both on random instances.
  bool reference_allocator = false;
  /// Fault injection for the invariant oracle's negative tests: planning
  /// skips OccupancyMap::occupy for this flow, so later flows can be granted
  /// overlapping slices. Never set outside tests.
  net::FlowId fault_skip_occupy = net::kInvalidFlow;
};

/// Caller-owned reusable planning state. Candidate paths depend only on a
/// flow's immutable (src, dst) and the fixed PlanConfig, yet Topology::paths
/// re-enumerates them on every call — which the old replan loop did for
/// every flow on every arrival. Keeping the scratch alive across replans
/// caches each flow's candidate list after its first planning. Also carries
/// the candidate race's trial slice set and the allocator merge buffers, so
/// a planning domain's entire scratch travels in one object (no hidden
/// `thread_local` state — the concurrency linter bans it).
// taps-threading: single-domain -- one instance per planning domain.
struct PlanScratch {
  /// Indexed by FlowId; an empty inner vector means "not yet computed"
  /// (paths() never legitimately returns zero candidates).
  std::vector<std::vector<topo::Path>> candidates;
  /// Trial slice set for the candidate-path race (swapped into the winning
  /// plan and recycled otherwise).
  util::IntervalSet trial;
  /// allocate_time_into's restricted-range and union-merge buffers.
  TimeAllocScratch time_alloc;

  void clear() { candidates.clear(); }
};

// taps-threading: thread-compatible
struct FlowPlan {
  net::FlowId flow = net::kInvalidFlow;
  topo::Path path;
  util::IntervalSet slices;
  double completion = 0.0;
  bool feasible = false;
};

/// Plan a single flow against the current occupancy (does not commit).
/// `scratch` (optional) caches the flow's candidate paths across calls.
[[nodiscard]] FlowPlan plan_one_flow(const net::Network& net, const OccupancyMap& occupancy,
                                     net::FlowId fid, double now, const PlanConfig& config,
                                     PlanScratch* scratch = nullptr);

/// Plan every flow in `order` (the caller sorts by EDF+SJF), committing each
/// feasible flow's slices into `occupancy` before planning the next.
[[nodiscard]] std::vector<FlowPlan> plan_flows(const net::Network& net, OccupancyMap& occupancy,
                                               std::span<const net::FlowId> order, double now,
                                               const PlanConfig& config,
                                               PlanScratch* scratch = nullptr);

/// Sort flow ids by the paper's scheduling discipline: EDF first (earlier
/// deadline), SJF tie-break (smaller remaining size), then flow id.
void sort_edf_sjf(const net::Network& net, std::vector<net::FlowId>& flows);

}  // namespace taps::core
