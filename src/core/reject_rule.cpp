#include "core/reject_rule.hpp"

namespace taps::core {

const char* to_string(Decision d) {
  switch (d) {
    case Decision::kAccept:
      return "accept";
    case Decision::kRejectNew:
      return "reject-new";
    case Decision::kPreemptVictim:
      return "preempt-victim";
  }
  return "?";
}

namespace {

/// Fraction of `task`'s flows that are completed or trial-feasible.
double schedulable_ratio(const net::Network& net, net::TaskId task,
                         std::span<const FlowPlan> trial) {
  const net::Task& t = net.task(task);
  if (t.spec.flows.empty()) return 0.0;
  std::size_t good = t.completed_flows;
  for (const FlowPlan& plan : trial) {
    if (plan.feasible && net.flow(plan.flow).task() == task) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(t.flow_count());
}

}  // namespace

RejectOutcome apply_reject_rule(const net::Network& net, net::TaskId new_task,
                                std::span<const FlowPlan> trial, PreemptPolicy policy) {
  net::TaskId missing_task = net::kInvalidTask;
  bool multiple_missing_tasks = false;
  bool new_task_missing = false;

  for (const FlowPlan& plan : trial) {
    if (plan.feasible) continue;
    const net::TaskId t = net.flow(plan.flow).task();
    if (t == new_task) new_task_missing = true;
    if (missing_task == net::kInvalidTask) {
      missing_task = t;
    } else if (missing_task != t) {
      multiple_missing_tasks = true;
    }
  }

  if (missing_task == net::kInvalidTask) return {Decision::kAccept, net::kInvalidTask};
  // Rule 1: more than one task would miss deadlines -> reject the newcomer.
  if (multiple_missing_tasks) return {Decision::kRejectNew, net::kInvalidTask};
  // Rule 2: the new task itself cannot be fully scheduled -> reject it.
  if (new_task_missing) return {Decision::kRejectNew, net::kInvalidTask};
  // Rule 3: exactly one other task misses. Preempt it only if its completion
  // ratio is strictly below the new task's (see PreemptPolicy).
  double victim_ratio = 0.0;
  double new_ratio = 0.0;
  switch (policy) {
    case PreemptPolicy::kProgress:
      victim_ratio = net.task(missing_task).completion_ratio();
      new_ratio = net.task(new_task).completion_ratio();
      break;
    case PreemptPolicy::kSchedulable:
      victim_ratio = schedulable_ratio(net, missing_task, trial);
      new_ratio = schedulable_ratio(net, new_task, trial);
      break;
  }
  if (victim_ratio < new_ratio) return {Decision::kPreemptVictim, missing_task};
  return {Decision::kRejectNew, net::kInvalidTask};
}

}  // namespace taps::core
