// Exact (exponential-time) reference solver for the task-admission problem
// on a *single bottleneck link*. Used by tests and the ablation bench to
// measure how close the TAPS heuristic gets to optimal on small instances.
//
// On one link, a set of flows is schedulable iff preemptive EDF schedules it
// (EDF is optimal for single-machine preemptive deadline scheduling), so the
// exact answer is the largest task subset whose union of flows is
// EDF-feasible. The general multi-link problem is NP-hard (paper Sec. IV-B),
// which is why this reference is restricted to the single-link case.
#pragma once

#include <cstddef>
#include <vector>

namespace taps::core {

/// One flow on the shared link, in transfer-time units.
// taps-threading: thread-compatible
struct SlFlow {
  double release = 0.0;   // earliest start time
  double deadline = 0.0;  // absolute
  double duration = 0.0;  // seconds of exclusive link time needed
};

// taps-threading: thread-compatible
struct SlTask {
  std::vector<SlFlow> flows;
};

// taps-threading: thread-compatible
struct OptimalResult {
  std::size_t tasks_completed = 0;
  std::vector<std::size_t> accepted;  // indices of accepted tasks
};

/// Preemptive EDF feasibility of a flow set on one unit-rate link.
[[nodiscard]] bool edf_feasible(std::vector<SlFlow> flows);

/// Largest feasible task subset by exhaustive search. Requires
/// tasks.size() <= 20 (throws otherwise).
[[nodiscard]] OptimalResult optimal_single_link(const std::vector<SlTask>& tasks);

}  // namespace taps::core
