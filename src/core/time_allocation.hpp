// Algorithm 3 of the paper: TimeAllocation(p, f).
//
// Given a candidate path p and a flow needing E seconds of transmission, the
// controller computes the union T_ocp of the occupied-time sets of p's links
// and allocates the first E seconds of idle time in its complement, starting
// from `now`. The flow's completion time on p is the end of the last
// allocated slice.
//
// Two implementations, identical output (the equivalence property test
// drives both on random instances):
//   - allocate_time: materializes T_ocp restricted to the window that can
//     matter — each link's range starts at its earliest-free hint and stops
//     at min(completion_bound, horizon) — into reused scratch buffers, then
//     scans it with a branch-and-bound abort.
//   - allocate_time_reference: the textbook two-step (path_union, then
//     IntervalSet::allocate_earliest), kept as the oracle and selectable at
//     run time via PlanConfig::reference_allocator for A/B benchmarking.
#pragma once

#include <limits>

#include "core/occupancy.hpp"

namespace taps::core {

// taps-threading: thread-compatible -- value result, owned by its caller.
struct TimeAllocation {
  util::IntervalSet slices;  // empty when infeasible before `horizon`
  double completion = 0.0;   // end of last slice; meaningless when infeasible

  [[nodiscard]] bool feasible() const { return !slices.empty(); }
};

/// Caller-owned reusable buffers for allocate_time_into (the restricted
/// per-link ranges and the two union-merge ping-pong buffers). Explicitly
/// threaded through instead of hidden `thread_local` state so concurrent
/// planners — the parallel per-pod advancement plan runs one per domain —
/// each bring their own, with no cross-domain scratch in sight of the
/// concurrency linter.
// taps-threading: single-domain -- scratch owned by one planning domain.
struct TimeAllocScratch {
  struct Range {
    const util::Interval* first = nullptr;
    const util::Interval* last = nullptr;

    [[nodiscard]] std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };

  std::vector<Range> ranges;
  std::vector<util::Interval> bufs[2];
};

/// Allocate `duration` seconds on `path` starting at `now`, finishing no
/// later than `horizon` (the flow's deadline). Returns an infeasible result
/// when the path lacks enough idle time before the horizon.
///
/// `completion_bound` is a branch-and-bound cutoff for candidate-path races
/// (Algorithm 2 keeps only strictly-earlier completions): the scan aborts —
/// returning infeasible — as soon as the completion provably cannot be
/// < `completion_bound` (the remaining demand must land at or after the
/// sweep cursor, so completion >= cursor + remaining). A returned feasible
/// allocation is always the true earliest one and has
/// completion < completion_bound.
[[nodiscard]] TimeAllocation allocate_time(
    const OccupancyMap& occupancy, const topo::Path& path, double now, double duration,
    double horizon, double completion_bound = std::numeric_limits<double>::infinity());

/// Allocation core writing into a caller-owned `slices` set (cleared first,
/// so its capacity is reused across calls — the candidate-path race calls
/// this 16x per flow and discards most results). Returns feasibility;
/// `completion` is set only when feasible, and `slices` is left empty on
/// infeasibility/abort. Same semantics as allocate_time otherwise.
/// `scratch` (optional) reuses the merge buffers across calls; passing none
/// costs a fresh allocation per call, which only the oracle/test paths do.
[[nodiscard]] bool allocate_time_into(const OccupancyMap& occupancy, const topo::Path& path,
                                      double now, double duration, double horizon,
                                      double completion_bound, util::IntervalSet& slices,
                                      double& completion, TimeAllocScratch* scratch = nullptr);

/// Reference implementation (materialize T_ocp, then allocate_earliest).
/// Bit-identical results to allocate_time; slower on fragmented occupancy.
[[nodiscard]] TimeAllocation allocate_time_reference(const OccupancyMap& occupancy,
                                                     const topo::Path& path, double now,
                                                     double duration, double horizon);

}  // namespace taps::core
