// Algorithm 3 of the paper: TimeAllocation(p, f).
//
// Given a candidate path p and a flow needing E seconds of transmission, the
// controller computes the union T_ocp of the occupied-time sets of p's links
// and allocates the first E seconds of idle time in its complement, starting
// from `now`. The flow's completion time on p is the end of the last
// allocated slice.
#pragma once

#include "core/occupancy.hpp"

namespace taps::core {

struct TimeAllocation {
  util::IntervalSet slices;  // empty when infeasible before `horizon`
  double completion = 0.0;   // end of last slice; meaningless when infeasible

  [[nodiscard]] bool feasible() const { return !slices.empty(); }
};

/// Allocate `duration` seconds on `path` starting at `now`, finishing no
/// later than `horizon` (the flow's deadline). Returns an infeasible result
/// when the path lacks enough idle time before the horizon.
[[nodiscard]] TimeAllocation allocate_time(const OccupancyMap& occupancy,
                                           const topo::Path& path, double now,
                                           double duration, double horizon);

}  // namespace taps::core
