// The TAPS reject rule (Algorithm 1, step 11).
//
// After the trial plan (all admitted unfinished flows plus the new task's
// flows, globally re-planned), the controller decides:
//   - accept the new task if every flow in the trial is feasible;
//   - reject the new task if (1) infeasible flows span more than one task,
//     or (2) any of the new task's own flows is infeasible, or (3) the one
//     infeasible task's completion ratio is not less than the new task's;
//   - otherwise preempt: discard the single infeasible task (its completion
//     ratio — fraction of its flows already completed — is lower than the
//     new task's) and accept the new task.
#pragma once

#include <span>

#include "core/path_allocation.hpp"

namespace taps::core {

enum class Decision { kAccept, kRejectNew, kPreemptVictim };

/// How "the completion ratio of the task" is read when exactly one incumbent
/// task would miss deadlines under the trial:
///   kProgress    — the paper's literal reading: fraction of the task's
///                  flows already *completed*. A brand-new task has ratio 0
///                  and therefore never preempts an incumbent; preemption
///                  only fires for later waves of partially-completed tasks.
///   kSchedulable — forward-looking variant: fraction of the task's flows
///                  that are completed OR feasible under the trial. A fully
///                  feasible newcomer (ratio 1) then always displaces a
///                  doomed incumbent — the aggressive reading of "TAPS
///                  supports task preemption". Compared in bench_ablation.
enum class PreemptPolicy { kProgress, kSchedulable };

// taps-threading: thread-compatible
struct RejectOutcome {
  Decision decision = Decision::kAccept;
  net::TaskId victim = net::kInvalidTask;  // set when decision == kPreemptVictim
};

[[nodiscard]] const char* to_string(Decision d);

[[nodiscard]] RejectOutcome apply_reject_rule(const net::Network& net, net::TaskId new_task,
                                              std::span<const FlowPlan> trial,
                                              PreemptPolicy policy = PreemptPolicy::kProgress);

}  // namespace taps::core
