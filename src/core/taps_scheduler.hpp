// The TAPS scheduler (Algorithm 1): task-level, deadline-aware, preemptive.
//
// On every task arrival the controller re-plans globally: it takes all
// unfinished flows of admitted tasks plus the new task's flows, sorts them
// EDF+SJF, runs PathCalculation/TimeAllocation (Algorithms 2/3) to produce a
// trial schedule, and applies the reject rule. Accepted flows receive
// pre-allocated transmission time slices; each link carries at most one flow
// at any instant and flows transmit at full link rate inside their slices.
//
// In this simulation model all flows of a task arrive together (as in the
// paper's evaluation), which corresponds to Algorithm 1's gather window T
// collapsing to the task batch.
#pragma once

#include <cstdint>
#include <queue>

#include "core/pod_admission.hpp"
#include "core/reject_rule.hpp"
#include "sched/scheduler.hpp"

namespace taps::core {

// taps-threading: thread-compatible
struct TapsConfig {
  /// Candidate-path budget per flow for Algorithm 2.
  std::size_t max_paths = 16;
  /// Reject-rule preemption reading (see PreemptPolicy). Default is the
  /// paper's literal progress-based comparison.
  PreemptPolicy preempt_policy = PreemptPolicy::kProgress;
  /// Ablation: pin each flow to an ECMP-hashed path instead of centralized
  /// earliest-completion path selection (see PlanConfig::ecmp_routing).
  bool ecmp_routing = false;
  /// Deadline slack budgeted for data-plane pipeline latency (see
  /// PlanConfig::guard_band). Keep 0 for the paper's fluid evaluation; set
  /// to ~a few packet times x path length on packet networks.
  double guard_band = 0.0;
  /// A/B switch for bench_micro_replan: plan with the reference TimeAllocation
  /// instead of the fused one (see PlanConfig::reference_allocator).
  bool reference_allocator = false;
  /// Test-only seeded mutation (see PlanConfig::fault_skip_occupy): the
  /// invariant oracle's negative test proves it catches the resulting
  /// exclusivity breach. Never set outside tests.
  net::FlowId fault_skip_occupy = net::kInvalidFlow;
  /// Incremental replanning: keep the committed occupancy live under an undo
  /// journal, reuse the committed plan's still-valid leading prefix across
  /// arrivals, and resume the preemption-validation / compacting replans
  /// from checkpoints of the trial plan instead of replanning from flow 0.
  /// Schedules are bit-identical either way (pinned by
  /// tests/core/taps_incremental_prop_test.cpp); `false` keeps the original
  /// full-replan path as the oracle.
  bool incremental_replan = true;
  /// Trim committed occupancy and per-flow slices below `now` every this
  /// many task arrivals (0 disables). Bounds memory on long runs; planning
  /// only reads occupancy at or after `now`, so trimming never changes a
  /// schedule.
  std::size_t trim_interval = 64;
  /// Event-driven rate maintenance: assign_rates refreshes only the flows
  /// whose slice-boundary heap entry expired plus the flows whose committed
  /// slices changed since the last call, instead of rescanning every active
  /// flow. A flow's rate is a pure step function of its committed slices, so
  /// rates and the returned next-boundary are bit-identical to the rescan
  /// (pinned by tests/sim/sim_engine_equiv_prop_test.cpp). If a flow ever
  /// needs makeup transmission (impossible under the fluid engine, common in
  /// hand-built unit tests), the scheduler permanently falls back to the
  /// rescan path, which implements it. `false` keeps the rescan
  /// (assign_rates_reference) as the oracle.
  bool event_driven_rates = true;
  /// Hierarchical two-level admission: on pod topologies (Topology::pods()),
  /// run a conservative pod-local feasibility precheck per arrival and
  /// fast-reject tasks that are provably infeasible within their pod
  /// budget/deadline window, skipping the trial replan entirely. The check
  /// only fires when the reject is certain (reject-rule Rule 2 applies), so
  /// committed decisions/schedules are bit-identical either way (pinned by
  /// tests/core/taps_hierarchy_prop_test.cpp and the golden timelines);
  /// `false` keeps the always-global pipeline as the oracle. Inert on
  /// topologies without pod metadata.
  bool hierarchical_precheck = true;
};

// taps-threading: thread-compatible
struct TapsCounters {
  std::size_t tasks_accepted = 0;
  std::size_t tasks_rejected = 0;
  std::size_t tasks_preempted = 0;
  std::size_t replans = 0;
  /// Compacting re-plans abandoned because the greedy allocator would have
  /// stranded an already-admitted flow (the prior plan was kept instead).
  std::size_t replan_reverts = 0;
  /// Replans where the incumbents were still in EDF+SJF order from the last
  /// commit, so only the arriving wave was sorted and merged in (vs
  /// full_sorts, where remaining-size drift forced a full re-sort).
  std::size_t incremental_sorts = 0;
  std::size_t full_sorts = 0;
  /// Flow positions actually planned by running Algorithms 2/3
  /// (plan_one_flow calls), in either mode. The planner-effort denominator
  /// for the two reuse counters below.
  std::size_t flows_planned = 0;
  /// Flow positions satisfied by adopting the committed plan's still-valid
  /// leading prefix at session open instead of replanning them
  /// (cross-arrival prefix reuse; incremental mode only).
  std::size_t cross_arrival_reuse_flows = 0;
  /// Flow positions kept from an earlier try_plan of the same arrival when
  /// the preemption-validation or compacting replan resumed from a prefix
  /// checkpoint (within-arrival reuse; incremental mode only).
  std::size_t checkpoint_reuse_flows = 0;
  /// Incremental sessions abandoned mid-arrival because a later replan of
  /// the same arrival diverged inside the adopted prefix (e.g. the
  /// preemption victim owned one of the adopted flows), forcing a rollback
  /// to the committed state and a fresh session open.
  std::size_t session_restarts = 0;
  /// Periodic occupancy/slice trims (TapsConfig::trim_interval).
  std::size_t occupancy_trims = 0;
  /// Plans committed (arrivals that changed the schedule: admissions plus
  /// successful compacting replans). Mode-independent: both replan paths
  /// commit at the same decision points.
  std::size_t plan_commits = 0;
  /// Per-flow (re)grants: committed entries whose path or slices changed
  /// relative to the previous commit. Exactly the grant events a
  /// sim::TimelineRecorder would record (docs/TIMELINE.md), counted whether
  /// or not one is attached — so sweep CSVs stay byte-identical either way.
  std::size_t slice_grants = 0;
  /// Hierarchical admission (TapsConfig::hierarchical_precheck): tasks
  /// rejected by the pod-local precheck without touching the global planner.
  std::size_t pod_fast_rejects = 0;
  /// Wave flows that passed the precheck with both endpoints in one pod —
  /// their candidate paths (and hence plan_one_flow's occupancy probes) are
  /// confined to that pod's link subset.
  std::size_t pod_local_plans = 0;
  /// Cross-pod committed flows registered against a pod-uplink budget.
  std::size_t budget_reservations = 0;
  /// Arrivals that passed (or skipped) the pod-local precheck and fell
  /// through to the global planning path while the precheck was armed.
  std::size_t global_fallbacks = 0;
};

// taps-threading: single-domain -- scheduler state advances under one simulation domain
class TapsScheduler : public sched::BaseScheduler {
 public:
  explicit TapsScheduler(const TapsConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "TAPS"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  void on_flow_finished(net::FlowId id, double now) override;
  double assign_rates(double now) override;

  /// Pre-allocated slices of a flow (for tests / the SDN controller).
  [[nodiscard]] const util::IntervalSet& slices(net::FlowId id) const {
    return slices_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const OccupancyMap& occupancy() const { return occ_; }
  [[nodiscard]] const TapsCounters& counters() const { return counters_; }

  /// Bench/test hook: flip incremental replanning on a live scheduler. The
  /// committed state is mode-independent (schedules are bit-identical), so
  /// A/B measurements can warm up one instance and time both modes on it.
  void set_incremental_replan(bool on) { config_.incremental_replan = on; }

  /// Bench/test hook: flip the hierarchical precheck on a live scheduler.
  /// The pod index is maintained regardless of the flag (commit-time upkeep
  /// is O(newly committed flows)), so toggling mid-run behaves exactly like
  /// having run with that setting from the start.
  void set_hierarchical_precheck(bool on) { config_.hierarchical_precheck = on; }

  /// Pod-admission index (hierarchical precheck state), for tests.
  [[nodiscard]] const PodAdmissionIndex& pod_index() const { return pod_index_; }

  /// Move the committed scheduler state onto `fresh`, a re-registration of
  /// the current network's unfinished tasks (same flow states/remaining
  /// bitwise, same relative order). `flow_map[old_id]` gives each old flow's
  /// id in `fresh`, or net::kInvalidFlow for flows that were dropped
  /// (finished tasks). Counters, the committed occupancy and the
  /// cross-arrival validity token carry over, so subsequent decisions are
  /// bit-identical to never having migrated: kept ids preserve relative
  /// order (every EDF+SJF tie-break compares the same way), dropped flows
  /// can only own past occupancy, which planning (always querying at or
  /// after `now`) never reads and trimming eventually drops, and the
  /// candidate-path cache is rebuilt lazily from immutable (src, dst) pairs.
  /// This is how the long-lived controller service (svc::Shard) bounds the
  /// task/flow registry on unbounded arrival streams. Must be called
  /// between arrivals (no open session); active_ is rebuilt in flow-id
  /// order, so assign_rates() makeup tie-breaks may differ afterwards — the
  /// service never calls assign_rates.
  void migrate(net::Network& fresh, const std::vector<net::FlowId>& flow_map);

 private:
  /// A candidate plan: committed only when every flow in it is feasible, so
  /// an admitted task can never be stranded by a re-plan (the previously
  /// committed plan stays valid otherwise — transmission followed it
  /// exactly, so its future portion still fits every deadline).
  struct PlanAttempt {
    std::vector<FlowPlan> plans;
    OccupancyMap occ;
    bool fully_feasible = true;
  };

  /// Plan `order`'s flows from scratch at `now`. The first `sorted_prefix`
  /// entries are known to be in committed EDF+SJF order (modulo remaining-
  /// size drift on deadline ties, which is re-checked): when the check
  /// holds, only the tail is sorted and merged in instead of re-sorting the
  /// whole admitted set. The comparator is a strict total order, so either
  /// route yields the identical unique ordering.
  [[nodiscard]] PlanAttempt try_plan(std::vector<net::FlowId> order, double now,
                                     std::size_t sorted_prefix);
  void commit(PlanAttempt&& attempt, double now);
  void admit(net::TaskId id, const std::vector<net::FlowId>& wave, double now);

  /// Hierarchical fast-reject: reject `id` without a trial replan (its
  /// infeasibility was proven pod-locally), then run the same compacting
  /// replan of the incumbents the normal reject tail runs, in the active
  /// mode — committed state stays bit-identical to the full pipeline.
  void fast_reject(net::TaskId id, double now);

  /// Sort `order` EDF+SJF. The first `sorted_prefix` entries are known to be
  /// in committed order (modulo remaining-size drift on deadline ties, which
  /// is re-checked): when the check holds, only the tail is sorted and
  /// merged in. The comparator is a strict total order, so either route
  /// yields the identical unique ordering.
  void sort_order(std::vector<net::FlowId>& order, std::size_t sorted_prefix);

  [[nodiscard]] PlanConfig make_plan_config() const;

  // ---- incremental replanning (config_.incremental_replan) ----
  //
  // Instead of rebuilding a trial OccupancyMap from scratch per try_plan,
  // one arrival runs as a *session* that mutates the committed map occ_ in
  // place under journal_: the committed plan's still-valid leading prefix is
  // adopted untouched (zero cost), everything after it is vacated, and the
  // tail is replanned with every mutation logged. Later replans of the same
  // arrival (preemption validation, compacting) roll back to the checkpoint
  // of the longest shared prefix and replan only from there. Reverting the
  // whole arrival is a rollback to the session start. See DESIGN.md
  // ("Incremental replanning") for the argument that schedules stay
  // bit-identical to the full-replan oracle.
  void on_task_arrival_incremental(net::TaskId id, double now,
                                   const std::vector<net::FlowId>& wave);
  /// Start a session against `target` (requires an empty journal): walk the
  /// committed order, vacating spent/broken entries and adopting the leading
  /// prefix that provably matches what a full replan would produce, then
  /// plan the remaining tail.
  void open_session(const std::vector<net::FlowId>& target, double now);
  /// Re-aim the current session at a new target order: roll back to the
  /// checkpoint of the longest shared prefix (or restart the session when
  /// the divergence lies inside the adopted prefix) and replan the tail.
  void resume_session(const std::vector<net::FlowId>& target, double now);
  void plan_tail(const std::vector<net::FlowId>& target, double now);
  /// Install the session as the committed plan: move planned paths/slices
  /// into the network, refresh the cross-arrival validity tokens, drop the
  /// journal (occ_ already holds the planned occupancy).
  void commit_session(double now);
  /// Roll occ_ back to the session start, restoring the committed state
  /// bitwise.
  void abandon_session();
  /// Deterministic trim cadence (identical in both modes).
  void maybe_trim(double now);

  // ---- event-driven rate maintenance (config_.event_driven_rates) ----
  //
  // assign_rates keeps a min-heap of per-flow next-boundary times. A heap
  // entry stays valid while the flow's committed slices are untouched
  // (per-flow generation counter, bumped by touch_slices at every commit
  // that re-granted the flow); expired or superseded entries are refreshed
  // or dropped lazily. Trimming needs no touch: it only removes boundaries
  // at or before `now`, which next_boundary/contains queries never return.
  /// Record that `fid`'s committed slices changed: invalidates its heap
  /// entry and queues a refresh at the next assign_rates call.
  void touch_slices(net::FlowId fid);
  /// Recompute `fid`'s rate from its slices at `now` (the reference loop's
  /// per-flow block verbatim) and push its next boundary. Returns false when
  /// the flow needs makeup transmission — the caller then falls back to
  /// assign_rates_reference permanently.
  bool refresh_rate(net::FlowId fid, double now);
  /// The original full rescan (and the only implementation of makeup
  /// transmission), kept as the oracle.
  double assign_rates_reference(double now);

  /// Unfinished flows of all currently admitted tasks, in last-committed
  /// EDF+SJF order (the usually-still-sorted prefix try_plan exploits).
  [[nodiscard]] std::vector<net::FlowId> unfinished_admitted() const;

  /// Trial-occupancy recycling: maps retired by commit() or from discarded
  /// attempts keep their per-link storage for the next replan.
  [[nodiscard]] OccupancyMap acquire_occupancy();
  void release_occupancy(OccupancyMap&& occ) { occ_pool_.push_back(std::move(occ)); }

  TapsConfig config_;
  OccupancyMap occ_{0};
  std::vector<util::IntervalSet> slices_;  // indexed by FlowId
  std::vector<char> makeup_busy_;          // per-link claims within one assign_rates
  std::vector<net::FlowId> committed_order_;  // EDF+SJF order of the last commit
  PlanScratch plan_scratch_;               // per-flow candidate-path cache
  std::vector<OccupancyMap> occ_pool_;     // retired trial maps, capacity kept
  TapsCounters counters_;
  PodAdmissionIndex pod_index_;            // hierarchical-admission registries

  // Incremental-session state (meaningful only within one arrival, except
  // committed_remaining_ / cross_arrival_valid_ which persist across
  // arrivals as the reuse-validity tokens).
  OccupancyJournal journal_;
  std::vector<net::FlowId> session_order_;     // plan order built so far
  std::vector<FlowPlan> session_plans_;        // adopted entries hold light plans
  std::vector<OccupancyCheckpoint> session_marks_;  // journal state BEFORE each entry
  std::vector<net::FlowId> session_retired_;   // spent flows whose slices clear on commit
  std::size_t session_adopted_ = 0;            // leading adopted-entry count
  std::size_t session_infeasible_ = 0;
  /// Per-flow remaining bytes at last commit: a committed prefix entry is
  /// reusable only while its remaining is bitwise unchanged (no transmission
  /// since the plan was computed) — one of the cheap validity tokens.
  std::vector<double> committed_remaining_;
  /// False until the first commit and after any event that edits scheduler
  /// state outside a commit (missed-deadline sibling invalidation): the next
  /// arrival then takes the full-replan path, which re-establishes validity.
  bool cross_arrival_valid_ = false;
  std::size_t arrivals_since_trim_ = 0;

  // Event-driven rate state (see touch_slices/refresh_rate above).
  struct RateBoundary {
    double time = 0.0;
    net::FlowId fid = net::kInvalidFlow;
    std::uint64_t gen = 0;
  };
  struct RateBoundaryAfter {
    bool operator()(const RateBoundary& a, const RateBoundary& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.fid != b.fid) return a.fid > b.fid;
      return a.gen > b.gen;
    }
  };
  using RateHeap = std::priority_queue<RateBoundary, std::vector<RateBoundary>, RateBoundaryAfter>;
  RateHeap rate_heap_;
  std::vector<std::uint64_t> slice_gen_;  // per flow; bumped by touch_slices
  std::vector<char> rate_touched_mark_;   // per flow: pending refresh queued
  std::vector<net::FlowId> rate_touched_;
  bool rate_fallback_ = false;  // makeup transmission seen: rescan from now on
};

}  // namespace taps::core
