// The TAPS scheduler (Algorithm 1): task-level, deadline-aware, preemptive.
//
// On every task arrival the controller re-plans globally: it takes all
// unfinished flows of admitted tasks plus the new task's flows, sorts them
// EDF+SJF, runs PathCalculation/TimeAllocation (Algorithms 2/3) to produce a
// trial schedule, and applies the reject rule. Accepted flows receive
// pre-allocated transmission time slices; each link carries at most one flow
// at any instant and flows transmit at full link rate inside their slices.
//
// In this simulation model all flows of a task arrive together (as in the
// paper's evaluation), which corresponds to Algorithm 1's gather window T
// collapsing to the task batch.
#pragma once

#include "core/reject_rule.hpp"
#include "sched/scheduler.hpp"

namespace taps::core {

struct TapsConfig {
  /// Candidate-path budget per flow for Algorithm 2.
  std::size_t max_paths = 16;
  /// Reject-rule preemption reading (see PreemptPolicy). Default is the
  /// paper's literal progress-based comparison.
  PreemptPolicy preempt_policy = PreemptPolicy::kProgress;
  /// Ablation: pin each flow to an ECMP-hashed path instead of centralized
  /// earliest-completion path selection (see PlanConfig::ecmp_routing).
  bool ecmp_routing = false;
  /// Deadline slack budgeted for data-plane pipeline latency (see
  /// PlanConfig::guard_band). Keep 0 for the paper's fluid evaluation; set
  /// to ~a few packet times x path length on packet networks.
  double guard_band = 0.0;
  /// A/B switch for bench_micro_replan: plan with the reference TimeAllocation
  /// instead of the fused one (see PlanConfig::reference_allocator).
  bool reference_allocator = false;
  /// Test-only seeded mutation (see PlanConfig::fault_skip_occupy): the
  /// invariant oracle's negative test proves it catches the resulting
  /// exclusivity breach. Never set outside tests.
  net::FlowId fault_skip_occupy = net::kInvalidFlow;
};

struct TapsCounters {
  std::size_t tasks_accepted = 0;
  std::size_t tasks_rejected = 0;
  std::size_t tasks_preempted = 0;
  std::size_t replans = 0;
  /// Compacting re-plans abandoned because the greedy allocator would have
  /// stranded an already-admitted flow (the prior plan was kept instead).
  std::size_t replan_reverts = 0;
  /// Replans where the incumbents were still in EDF+SJF order from the last
  /// commit, so only the arriving wave was sorted and merged in (vs
  /// full_sorts, where remaining-size drift forced a full re-sort).
  std::size_t incremental_sorts = 0;
  std::size_t full_sorts = 0;
};

class TapsScheduler : public sched::BaseScheduler {
 public:
  explicit TapsScheduler(const TapsConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "TAPS"; }

  void bind(net::Network& net) override;
  void on_task_arrival(net::TaskId id, double now) override;
  void on_flow_finished(net::FlowId id, double now) override;
  double assign_rates(double now) override;

  /// Pre-allocated slices of a flow (for tests / the SDN controller).
  [[nodiscard]] const util::IntervalSet& slices(net::FlowId id) const {
    return slices_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const OccupancyMap& occupancy() const { return occ_; }
  [[nodiscard]] const TapsCounters& counters() const { return counters_; }

 private:
  /// A candidate plan: committed only when every flow in it is feasible, so
  /// an admitted task can never be stranded by a re-plan (the previously
  /// committed plan stays valid otherwise — transmission followed it
  /// exactly, so its future portion still fits every deadline).
  struct PlanAttempt {
    std::vector<FlowPlan> plans;
    OccupancyMap occ;
    bool fully_feasible = true;
  };

  /// Plan `order`'s flows from scratch at `now`. The first `sorted_prefix`
  /// entries are known to be in committed EDF+SJF order (modulo remaining-
  /// size drift on deadline ties, which is re-checked): when the check
  /// holds, only the tail is sorted and merged in instead of re-sorting the
  /// whole admitted set. The comparator is a strict total order, so either
  /// route yields the identical unique ordering.
  [[nodiscard]] PlanAttempt try_plan(std::vector<net::FlowId> order, double now,
                                     std::size_t sorted_prefix);
  void commit(PlanAttempt&& attempt);
  void admit(net::TaskId id, const std::vector<net::FlowId>& wave);

  /// Unfinished flows of all currently admitted tasks, in last-committed
  /// EDF+SJF order (the usually-still-sorted prefix try_plan exploits).
  [[nodiscard]] std::vector<net::FlowId> unfinished_admitted() const;

  /// Trial-occupancy recycling: maps retired by commit() or from discarded
  /// attempts keep their per-link storage for the next replan.
  [[nodiscard]] OccupancyMap acquire_occupancy();
  void release_occupancy(OccupancyMap&& occ) { occ_pool_.push_back(std::move(occ)); }

  TapsConfig config_;
  OccupancyMap occ_{0};
  std::vector<util::IntervalSet> slices_;  // indexed by FlowId
  std::vector<char> makeup_busy_;          // per-link claims within one assign_rates
  std::vector<net::FlowId> committed_order_;  // EDF+SJF order of the last commit
  PlanScratch plan_scratch_;               // per-flow candidate-path cache
  std::vector<OccupancyMap> occ_pool_;     // retired trial maps, capacity kept
  TapsCounters counters_;
};

}  // namespace taps::core
