#include "pkt/packet_sim.hpp"

#include <algorithm>
#include <cassert>

namespace taps::pkt {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;

namespace {
// A refresh chain event is pointless more often than this.
constexpr double kMinRefreshGap = 1e-6;
}  // namespace

PacketSimulator::PacketSimulator(net::Network& net, sim::Scheduler& scheduler,
                                 const PacketSimConfig& config)
    : net_(&net), scheduler_(&scheduler), config_(config) {}

PacketSimStats PacketSimulator::run() {
  scheduler_->bind(*net_);
  links_.assign(net_->graph().link_count(), LinkState{});
  flows_.assign(net_->flows().size(), Emitter{});
  stats_ = PacketSimStats{};

  // Wave arrivals, exactly as the fluid simulator delivers them.
  struct Wave {
    double time = 0.0;
    TaskId task = 0;
  };
  std::vector<Wave> waves;
  waves.reserve(net_->tasks().size());
  for (const auto& t : net_->tasks()) {
    double last = -1.0;
    for (const FlowId fid : t.spec.flows) {
      const double at = net_->flow(fid).spec.arrival;
      if (at != last) {
        waves.push_back(Wave{at, t.id()});
        last = at;
      }
    }
  }
  std::sort(waves.begin(), waves.end(), [](const Wave& a, const Wave& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.task < b.task;
  });

  for (const Wave& w : waves) {
    queue_.schedule(w.time, [this, task = w.task](double now) {
      scheduler_->on_task_arrival(task, now);
      for (const FlowId fid : net_->task(task).spec.flows) {
        Flow& f = net_->flow(fid);
        if (f.state != FlowState::kActive) continue;
        // One deadline watchdog per activated flow.
        queue_.schedule(f.spec.deadline,
                        [this, fid](double at) { on_deadline(fid, at); });
      }
      refresh_rates(now);
    });
  }

  while (!queue_.empty()) queue_.run_next();

  stats_.end_time = queue_.now();
  for (const auto& f : net_->flows()) {
    if (f.state == FlowState::kCompleted) ++stats_.completions;
    if (f.state == FlowState::kMissed) ++stats_.misses;
  }
  return stats_;
}

void PacketSimulator::refresh_rates(double now) {
  next_rate_change_ = scheduler_->assign_rates(now);

  bool any_active = false;
  for (const auto& f : net_->flows()) {
    if (!f.active()) continue;
    any_active = true;
    const auto& fs = flows_[static_cast<std::size_t>(f.id())];
    if (f.rate > 0.0 && !fs.emit_scheduled && fs.emitted < f.spec.size - sim::kByteEpsilon) {
      arm_emitter(f.id(), now);
    }
  }
  if (!any_active) return;

  // Periodic refresh chain, advanced to the scheduler's own next boundary
  // when that comes sooner (TAPS slice edges). At most one pending refresh:
  // every trigger (arrival, completion, deadline, tick) replaces the chain.
  double next = now + config_.rate_update_interval;
  if (next_rate_change_ > now + kMinRefreshGap) next = std::min(next, next_rate_change_);
  if (refresh_event_ != 0) queue_.cancel(refresh_event_);
  refresh_event_ = queue_.schedule(next, [this](double at) {
    refresh_event_ = 0;
    refresh_rates(at);
  });
}

void PacketSimulator::arm_emitter(FlowId flow, double now) {
  Emitter& fs = flows_[static_cast<std::size_t>(flow)];
  fs.emit_scheduled = true;
  queue_.schedule(now, [this, flow](double at) { emit_packet(flow, at); });
}

void PacketSimulator::emit_packet(FlowId flow, double now) {
  Emitter& fs = flows_[static_cast<std::size_t>(flow)];
  fs.emit_scheduled = false;
  Flow& f = net_->flow(flow);
  if (f.finished() || f.rate <= 0.0) return;  // re-armed by a later refresh
  const double credit = f.spec.size - fs.emitted;
  if (credit <= sim::kByteEpsilon) return;  // everything is on the wire

  Packet p;
  p.flow = flow;
  p.bytes = std::min(config_.mtu, credit);
  p.hop = 0;
  fs.emitted += p.bytes;
  f.bytes_sent += p.bytes;
  f.remaining = f.spec.size - fs.emitted;  // sender-side view for schedulers
  enqueue(p, now);

  if (fs.emitted < f.spec.size - sim::kByteEpsilon) {
    // Paced: the next packet leaves one serialization interval later.
    fs.emit_scheduled = true;
    queue_.schedule(now + p.bytes / f.rate,
                    [this, flow](double at) { emit_packet(flow, at); });
  }
}

void PacketSimulator::enqueue(const Packet& p, double now) {
  const Flow& f = net_->flow(p.flow);
  const topo::LinkId lid = f.path.links[p.hop];
  LinkState& link = links_[static_cast<std::size_t>(lid)];
  link.queue.push_back(p);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, link.queue.size());
  if (!link.busy) start_service(lid, now);
}

void PacketSimulator::start_service(topo::LinkId lid, double now) {
  LinkState& link = links_[static_cast<std::size_t>(lid)];
  assert(!link.queue.empty());
  link.busy = true;
  const double duration = link.queue.front().bytes / net_->link_capacity(lid);
  queue_.schedule(now + duration, [this, lid](double at) { on_departure(lid, at); });
}

void PacketSimulator::on_departure(topo::LinkId lid, double now) {
  LinkState& link = links_[static_cast<std::size_t>(lid)];
  assert(link.busy && !link.queue.empty());
  Packet p = link.queue.front();
  link.queue.erase(link.queue.begin());
  link.busy = false;
  if (!link.queue.empty()) start_service(lid, now);

  const Flow& f = net_->flow(p.flow);
  ++p.hop;
  if (p.hop < f.path.links.size()) {
    enqueue(p, now);  // store-and-forward to the next hop
    return;
  }
  // Delivered at the destination.
  ++stats_.packets_delivered;
  Emitter& fs = flows_[static_cast<std::size_t>(p.flow)];
  fs.delivered += p.bytes;
  if (!f.finished() && fs.delivered >= f.spec.size - sim::kByteEpsilon) {
    finish_flow(p.flow, now);
  }
}

void PacketSimulator::on_deadline(FlowId flow, double now) {
  Flow& f = net_->flow(flow);
  if (f.finished()) return;
  net_->on_flow_missed(flow);
  scheduler_->on_flow_finished(flow, now);
  refresh_rates(now);
}

void PacketSimulator::finish_flow(FlowId flow, double now) {
  Flow& f = net_->flow(flow);
  // Delivery after the watchdog has fired cannot happen (the watchdog marks
  // the flow missed and finished), so this is a genuine completion.
  f.remaining = 0.0;
  net_->on_flow_completed(flow, now);
  scheduler_->on_flow_finished(flow, now);
  refresh_rates(now);
}

}  // namespace taps::pkt
