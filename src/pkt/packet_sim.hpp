// Packet-level network simulator: a finer-grained substrate used to validate
// the fluid-flow abstraction the paper (and our benches) evaluate with.
//
// Model: store-and-forward with one FIFO output queue per directed link.
// Hosts pace each flow at its scheduler-assigned rate, emitting MTU-sized
// packets; every link serializes a packet in bytes/capacity seconds; a
// packet is handed to the next link's queue when fully received; the flow
// completes when its last packet is delivered at the destination.
//
// The same `sim::Scheduler` implementations drive this engine: rates are
// refreshed on flow arrivals/finishes, at scheduler-reported rate-change
// boundaries (TAPS slice edges), and on a periodic update tick (the packet
// analogue of RTT-clocked adaptation). Agreement between this engine and
// sim::FluidSimulator on completion ratios is checked in tests and
// bench_packet_validation.
#pragma once

#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace taps::pkt {

struct PacketSimConfig {
  double mtu = 1500.0;                  // bytes per packet
  double rate_update_interval = 5e-4;   // periodic rate refresh (seconds)
};

struct PacketSimStats {
  double end_time = 0.0;
  std::size_t packets_delivered = 0;
  std::size_t completions = 0;
  std::size_t misses = 0;
  std::size_t max_queue_depth = 0;  // worst per-link backlog observed
};

class PacketSimulator {
 public:
  PacketSimulator(net::Network& net, sim::Scheduler& scheduler,
                  const PacketSimConfig& config = {});

  /// Run to quiescence (all tasks arrived, no packets in flight, all flows
  /// terminal).
  PacketSimStats run();

 private:
  struct Packet {
    net::FlowId flow = net::kInvalidFlow;
    double bytes = 0.0;
    std::size_t hop = 0;  // index into the flow's path
  };

  struct LinkState {
    std::vector<Packet> queue;  // FIFO (front = index 0)
    bool busy = false;
  };

  struct Emitter {
    double emitted = 0.0;    // bytes handed to the NIC
    double delivered = 0.0;  // bytes that reached the destination
    bool emit_scheduled = false;
  };

  void refresh_rates(double now);
  /// Schedule the next paced emission for `flow` if it has credit and rate.
  void arm_emitter(net::FlowId flow, double now);
  void emit_packet(net::FlowId flow, double now);
  /// Enqueue `p` on the link it is about to traverse; start service if idle.
  void enqueue(const Packet& p, double now);
  void start_service(topo::LinkId link, double now);
  void on_departure(topo::LinkId link, double now);
  void on_deadline(net::FlowId flow, double now);
  void finish_flow(net::FlowId flow, double now);

  net::Network* net_;
  sim::Scheduler* scheduler_;
  PacketSimConfig config_;
  sim::EventQueue queue_;
  std::vector<LinkState> links_;
  std::vector<Emitter> flows_;
  PacketSimStats stats_;
  double next_rate_change_ = sim::kInfinity;
  sim::EventId refresh_event_ = 0;  // at most one pending refresh
};

}  // namespace taps::pkt
