// Testbed emulation for the paper's Sec. VI experiment (Fig. 14): 100
// iperf-style flows (mean 100 KB, mean deadline 40 ms, random endpoints) on
// the 8-host partial fat-tree, TAPS vs Fair Sharing, reporting effective
// application throughput (fraction of transmitted bytes that belong to flows
// which eventually complete) in 1 ms bins.
//
// The TAPS side runs the full SDN message path — probe -> controller
// (centralized algorithm) -> slice grants -> server agents transmitting in
// packet quanta through switch flow tables -> TERM. The Fair Sharing side
// runs the fluid simulator with a segment recorder, since Fair Sharing has
// no control plane.
#pragma once

#include <cstdint>

#include "metrics/collector.hpp"
#include "metrics/timeseries.hpp"
#include "workload/scenario.hpp"

namespace taps::sdn {

// taps-threading: thread-compatible
struct TestbedConfig {
  std::uint64_t seed = 42;
  int flow_count = 100;
  double mean_flow_size = 100e3;   // bytes
  double mean_deadline = 0.040;    // seconds
  double bin_width = 1e-3;         // series resolution
  double quantum = 12500.0;        // bytes per emulated packet burst
  std::size_t table_capacity = 1000;
  /// Probe -> decision delay (controller RTT + computation). The controller
  /// plans slices from the decision instant, so latency eats deadline
  /// budget exactly as it would on a real deployment.
  double control_latency = 0.0;
};

// taps-threading: thread-compatible
struct TestbedResult {
  std::vector<metrics::ThroughputBin> taps_bins;
  std::vector<metrics::ThroughputBin> fair_bins;
  metrics::RunMetrics taps_metrics;
  metrics::RunMetrics fair_metrics;
  // Control/data-plane accounting from the TAPS emulation:
  std::size_t probes = 0;
  std::size_t grants = 0;
  std::size_t entries_installed = 0;
  std::size_t entries_withdrawn = 0;
  std::size_t switch_drops = 0;
  std::size_t quanta_sent = 0;
};

[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config);

/// The workload::Scenario equivalent of `config` (used to run the Fair
/// Sharing side through the standard experiment path).
[[nodiscard]] workload::Scenario testbed_scenario(const TestbedConfig& config);

}  // namespace taps::sdn
