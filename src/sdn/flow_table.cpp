#include "sdn/flow_table.hpp"

#include <algorithm>

namespace taps::sdn {

bool FlowTable::install(net::FlowId flow, topo::LinkId out_link) {
  auto it = entries_.find(flow);
  if (it != entries_.end()) {
    it->second = out_link;
    return true;
  }
  if (entries_.size() >= capacity_) {
    ++refused_;
    return false;
  }
  entries_.emplace(flow, out_link);
  peak_ = std::max(peak_, entries_.size());
  return true;
}

bool FlowTable::remove(net::FlowId flow) { return entries_.erase(flow) > 0; }

std::optional<topo::LinkId> FlowTable::lookup(net::FlowId flow) const {
  auto it = entries_.find(flow);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace taps::sdn
