#include "sdn/switch.hpp"

namespace taps::sdn {

std::optional<topo::LinkId> Switch::forward(net::FlowId flow) {
  const auto out = table_.lookup(flow);
  if (out.has_value()) {
    ++forwarded_;
  } else {
    ++dropped_;
  }
  return out;
}

}  // namespace taps::sdn
