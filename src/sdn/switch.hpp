// TAPS switch model: pure forwarding against controller-installed entries —
// the paper's point is that switches need *no* modification (no rate
// computation, unlike D3/PDQ switches).
#pragma once

#include "sdn/flow_table.hpp"

namespace taps::sdn {

// taps-threading: single-domain -- port/queue state owned by the testbed domain
class Switch {
 public:
  Switch(topo::NodeId node, std::size_t table_capacity)
      : node_(node), table_(table_capacity) {}

  [[nodiscard]] topo::NodeId node() const { return node_; }
  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }

  /// Data-plane forwarding: look up the output link for a packet of `flow`.
  /// Returns the link, or nullopt (a drop) when no entry is installed.
  [[nodiscard]] std::optional<topo::LinkId> forward(net::FlowId flow);

  [[nodiscard]] std::size_t packets_forwarded() const { return forwarded_; }
  [[nodiscard]] std::size_t packets_dropped() const { return dropped_; }

 private:
  topo::NodeId node_;
  FlowTable table_;
  std::size_t forwarded_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace taps::sdn
