// The TAPS SDN controller (paper Sec. IV-C): receives probe packets, runs
// the centralized algorithm (admission + slice pre-allocation + routing),
// installs/withdraws flow-table entries on the switches along each accepted
// flow's path, and answers senders with slice grants.
//
// Re-planning on each arrival can move already-granted flows' slices or
// paths, so every reply also carries refreshed grants ("updates") for the
// previously admitted flows the senders must apply.
#pragma once

#include <unordered_map>

#include "core/taps_scheduler.hpp"
#include "sdn/messages.hpp"
#include "sdn/switch.hpp"

namespace taps::sdn {

// taps-threading: thread-compatible
struct ControllerConfig {
  core::TapsConfig taps;
  std::size_t table_capacity = 1000;  // entries installed per switch (paper)
  /// Algorithm 1's wait time T: after the first flow of a task is probed,
  /// the controller buffers further probes of the same task for this long
  /// before running one admission decision over the whole batch. 0 disables
  /// buffering (each probe is decided immediately).
  double gather_window = 0.0;
};

// taps-threading: single-domain -- control-plane state mutates under the controller domain
class Controller {
 public:
  /// Binds to the network for the run; builds one Switch per non-host node.
  Controller(net::Network& net, const ControllerConfig& config);

  /// Steps 3-5 of Fig. 4. Runs the centralized algorithm for the probed task
  /// and returns the decision plus all grants/updates/withdrawals implied.
  [[nodiscard]] ScheduleReply on_probe(const ProbePacket& probe, double now);

  /// A sender reported flow completion: withdraw its route entries.
  void on_term(const TermPacket& term);

  /// Buffer one flow announcement (per-flow probing with a gather window).
  /// The decision is made when the batch's window expires — poll
  /// next_flush_time() and call flush(now) at/after it.
  void on_flow_probe(const SchedulingHeader& header, double now);

  /// Earliest instant at which a buffered batch is due (infinity if none).
  [[nodiscard]] double next_flush_time() const;

  /// Decide every batch whose gather window has expired.
  [[nodiscard]] std::vector<ScheduleReply> flush(double now);

  [[nodiscard]] Switch* switch_at(topo::NodeId node);
  [[nodiscard]] const core::TapsScheduler& scheduler() const { return taps_; }

  [[nodiscard]] std::size_t entries_installed() const { return installs_; }
  [[nodiscard]] std::size_t entries_withdrawn() const { return withdrawals_; }

 private:
  void install_route(net::FlowId flow, const topo::Path& path);
  void withdraw_route(net::FlowId flow);
  [[nodiscard]] SliceGrant make_grant(net::FlowId flow) const;
  /// Run the centralized algorithm for `task` at `now` and build the reply.
  [[nodiscard]] ScheduleReply decide(net::TaskId task, double now);

  struct PendingBatch {
    double first_probe = 0.0;
    std::size_t probes = 0;
  };

  net::Network* net_;
  ControllerConfig config_;
  core::TapsScheduler taps_;
  std::unordered_map<topo::NodeId, Switch> switches_;
  std::unordered_map<net::FlowId, topo::Path> installed_;
  std::unordered_map<net::TaskId, PendingBatch> pending_;
  std::size_t installs_ = 0;
  std::size_t withdrawals_ = 0;
};

}  // namespace taps::sdn
