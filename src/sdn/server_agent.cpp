#include "sdn/server_agent.hpp"

#include <algorithm>
#include <cassert>

namespace taps::sdn {

using net::FlowId;

void ServerAgent::on_grant(const SliceGrant& grant) {
  assert(env_.net->flow(grant.flow).spec.src == host_);
  LocalFlow& lf = local_[grant.flow];
  if (lf.pending != 0) {
    env_.queue->cancel(lf.pending);
    lf.pending = 0;
  }
  lf.grant = grant;
  arm(grant.flow, env_.queue->now());
}

void ServerAgent::cancel(FlowId flow) {
  auto it = local_.find(flow);
  if (it == local_.end()) return;
  if (it->second.pending != 0) env_.queue->cancel(it->second.pending);
  local_.erase(it);
}

void ServerAgent::arm(FlowId flow, double from) {
  auto it = local_.find(flow);
  if (it == local_.end()) return;
  LocalFlow& lf = it->second;
  const net::Flow& f = env_.net->flow(flow);
  if (f.finished() || f.remaining <= sim::kByteEpsilon) return;

  // Next instant inside a granted slice at/after `from`.
  double start = sim::kInfinity;
  for (const util::Interval& iv : lf.grant.slices.intervals()) {
    if (iv.hi <= from + sim::kTimeEpsilon) continue;
    start = std::max(from, iv.lo);
    break;
  }
  if (start == sim::kInfinity) return;  // no slice left (stale grant)
  lf.pending = env_.queue->schedule(start, [this, flow](double now) { transmit(flow, now); });
}

void ServerAgent::transmit(FlowId flow, double now) {
  auto it = local_.find(flow);
  if (it == local_.end()) return;
  LocalFlow& lf = it->second;
  lf.pending = 0;
  net::Flow& f = env_.net->flow(flow);
  if (f.finished()) return;

  // Locate the slice containing `now`.
  const util::Interval* slice = nullptr;
  for (const util::Interval& iv : lf.grant.slices.intervals()) {
    if (now >= iv.lo - sim::kTimeEpsilon && now < iv.hi) {
      slice = &iv;
      break;
    }
  }
  if (slice == nullptr) {
    arm(flow, now);
    return;
  }

  const double rate = lf.grant.rate;
  double bytes = std::min({env_.quantum, f.remaining, (slice->hi - now) * rate});
  bytes = std::max(bytes, 0.0);
  const double t_end = now + bytes / rate;

  // Data plane: the burst traverses every switch on the path. With the
  // controller operating normally every entry exists; if a flow table was
  // full when the route was installed (the paper's 1k-entry constraint),
  // the burst is dropped at that switch and makes no progress — the wire
  // time is spent either way.
  bool delivered = true;
  for (std::size_t i = 1; i < lf.grant.path.links.size(); ++i) {
    const auto& link = env_.net->graph().link(lf.grant.path.links[i]);
    if (Switch* sw = env_.controller->switch_at(link.src)) {
      if (!sw->forward(flow).has_value()) delivered = false;
    }
  }
  ++quanta_;

  if (delivered) {
    f.remaining -= bytes;
    f.bytes_sent += bytes;
    if (env_.recorder != nullptr && bytes > 0.0) {
      env_.recorder->on_transmit(f, now, t_end, bytes);
    }
  }

  if (f.remaining <= sim::kByteEpsilon) {
    env_.net->on_flow_completed(flow, t_end);
    ++completed_;
    env_.controller->on_term(TermPacket{flow, t_end});
    local_.erase(flow);
    return;
  }
  arm(flow, t_end);
}

}  // namespace taps::sdn
