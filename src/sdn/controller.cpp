#include "sdn/controller.hpp"

#include <algorithm>
#include <limits>

namespace taps::sdn {

using net::FlowId;
using net::FlowState;
using net::TaskId;
using net::TaskState;

Controller::Controller(net::Network& net, const ControllerConfig& config)
    : net_(&net), config_(config), taps_(config.taps) {
  taps_.bind(net);
  for (const auto& node : net.graph().nodes()) {
    if (node.kind != topo::NodeKind::kHost) {
      switches_.emplace(node.id, Switch(node.id, config.table_capacity));
    }
  }
}

Switch* Controller::switch_at(topo::NodeId node) {
  auto it = switches_.find(node);
  return it == switches_.end() ? nullptr : &it->second;
}

SliceGrant Controller::make_grant(FlowId flow) const {
  const net::Flow& f = net_->flow(flow);
  SliceGrant g;
  g.flow = flow;
  g.path = f.path;
  g.slices = taps_.slices(flow);
  double rate = std::numeric_limits<double>::infinity();
  for (const topo::LinkId lid : f.path.links) {
    rate = std::min(rate, net_->link_capacity(lid));
  }
  g.rate = rate;
  return g;
}

void Controller::install_route(FlowId flow, const topo::Path& path) {
  // Entry at every switch on the path: node links[i].src forwards the flow
  // onto links[i] (links[0] leaves the source host itself — no switch).
  for (std::size_t i = 1; i < path.links.size(); ++i) {
    const auto& link = net_->graph().link(path.links[i]);
    if (Switch* sw = switch_at(link.src)) {
      sw->table().install(flow, link.id);
      ++installs_;
    }
  }
  installed_[flow] = path;
}

void Controller::withdraw_route(FlowId flow) {
  auto it = installed_.find(flow);
  if (it == installed_.end()) return;
  for (std::size_t i = 1; i < it->second.links.size(); ++i) {
    const auto& link = net_->graph().link(it->second.links[i]);
    if (Switch* sw = switch_at(link.src)) {
      if (sw->table().remove(flow)) ++withdrawals_;
    }
  }
  installed_.erase(it);
}

ScheduleReply Controller::on_probe(const ProbePacket& probe, double now) {
  return decide(probe.task, now);
}

void Controller::on_flow_probe(const SchedulingHeader& header, double now) {
  PendingBatch& batch = pending_[header.task];
  if (batch.probes == 0) batch.first_probe = now;
  ++batch.probes;
}

double Controller::next_flush_time() const {
  double earliest = std::numeric_limits<double>::infinity();
  // taps-lint: allow(unordered-iteration) -- pure min-reduction, order-free
  for (const auto& [task, batch] : pending_) {
    earliest = std::min(earliest, batch.first_probe + config_.gather_window);
  }
  return earliest;
}

std::vector<ScheduleReply> Controller::flush(double now) {
  std::vector<TaskId> due;
  // taps-lint: allow(unordered-iteration) -- `due` is sorted before use
  for (const auto& [task, batch] : pending_) {
    if (batch.first_probe + config_.gather_window <= now + 1e-12) due.push_back(task);
  }
  std::sort(due.begin(), due.end());
  std::vector<ScheduleReply> replies;
  replies.reserve(due.size());
  for (const TaskId task : due) {
    pending_.erase(task);
    replies.push_back(decide(task, now));
  }
  return replies;
}

ScheduleReply Controller::decide(TaskId task, double now) {
  // Snapshot admitted tasks to detect preemption.
  std::vector<TaskId> admitted_before;
  admitted_before.reserve(net_->tasks().size());
  for (const auto& t : net_->tasks()) {
    if (t.state == TaskState::kAdmitted) admitted_before.push_back(t.id());
  }

  taps_.on_task_arrival(task, now);

  ScheduleReply reply;
  reply.task = task;
  reply.accepted = net_->task(task).state == TaskState::kAdmitted;

  for (const TaskId tid : admitted_before) {
    if (net_->task(tid).state == TaskState::kRejected) {
      reply.preempted.push_back(tid);
      for (const FlowId fid : net_->task(tid).spec.flows) withdraw_route(fid);
    }
  }

  if (reply.accepted) {
    for (const FlowId fid : net_->task(task).spec.flows) {
      const net::Flow& f = net_->flow(fid);
      // Waves of this task that have not arrived yet (and flows already
      // completed) get no grant.
      if (f.state != FlowState::kActive || f.remaining <= sim::kByteEpsilon) continue;
      reply.grants.push_back(make_grant(fid));
      install_route(fid, f.path);
    }
    // Refresh routes/slices of all other still-admitted flows: the global
    // re-plan may have moved them.
    for (const auto& f : net_->flows()) {
      if (f.task() == task || f.state != FlowState::kActive) continue;
      if (f.remaining <= sim::kByteEpsilon) continue;
      reply.grants.push_back(make_grant(f.id()));
      withdraw_route(f.id());
      install_route(f.id(), f.path);
    }
  }
  return reply;
}

void Controller::on_term(const TermPacket& term) {
  withdraw_route(term.flow);
  taps_.on_flow_finished(term.flow, term.at);
}

}  // namespace taps::sdn
