// TAPS server module (paper Sec. IV-D): keeps per-flow state (deadline,
// expected transmission time, granted time slices), monitors the clock, and
// puts the flow's bytes on the wire only inside its granted slices — in
// packet-sized quanta so the emulation exercises switch forwarding — then
// reports TERM to the controller.
#pragma once

#include <unordered_map>

#include "metrics/timeseries.hpp"
#include "sdn/controller.hpp"
#include "sim/event_queue.hpp"

namespace taps::sdn {

// taps-threading: single-domain -- per-server agent state owned by the testbed domain
class ServerAgent {
 public:
  struct Env {
    sim::EventQueue* queue = nullptr;
    net::Network* net = nullptr;
    Controller* controller = nullptr;
    metrics::SegmentRecorder* recorder = nullptr;  // optional
    double quantum = 12500.0;                      // bytes per emulated packet burst
  };

  ServerAgent(topo::NodeId host, Env env) : host_(host), env_(env) {}

  [[nodiscard]] topo::NodeId host() const { return host_; }

  /// Apply a (possibly refreshed) grant for a flow originating at this host.
  void on_grant(const SliceGrant& grant);

  /// The flow's task was preempted: stop sending and drop local state.
  void cancel(net::FlowId flow);

  [[nodiscard]] std::size_t flows_completed() const { return completed_; }
  [[nodiscard]] std::size_t quanta_sent() const { return quanta_; }

 private:
  struct LocalFlow {
    SliceGrant grant;
    sim::EventId pending = 0;  // scheduled transmit event (0 = none)
  };

  /// Schedule the next transmission step for `flow` at/after `from`.
  void arm(net::FlowId flow, double from);
  /// One transmission quantum at time `now`.
  void transmit(net::FlowId flow, double now);

  topo::NodeId host_;
  Env env_;
  std::unordered_map<net::FlowId, LocalFlow> local_;
  std::size_t completed_ = 0;
  std::size_t quanta_ = 0;
};

}  // namespace taps::sdn
