#include "sdn/testbed.hpp"

#include <algorithm>

#include "sched/fair_sharing.hpp"
#include "sdn/server_agent.hpp"
#include "topo/partial_fattree.hpp"
#include "workload/task_generator.hpp"

namespace taps::sdn {

workload::Scenario testbed_scenario(const TestbedConfig& config) {
  workload::Scenario s = workload::Scenario::testbed();
  s.seed = config.seed;
  s.workload.task_count = config.flow_count;
  s.workload.mean_flow_size = config.mean_flow_size;
  s.workload.flow_size_stddev = config.mean_flow_size / 4.0;
  s.workload.mean_deadline = config.mean_deadline;
  return s;
}

namespace {

/// The TAPS half: full SDN message-path emulation over an event queue.
void run_taps_side(const TestbedConfig& config, const workload::Scenario& scenario,
                   TestbedResult& out) {
  topo::PartialFatTree topology;
  net::Network network(topology);
  util::Rng rng(scenario.seed);
  util::Rng workload_rng = rng.fork("workload");
  (void)workload::generate(network, scenario.workload, workload_rng);

  ControllerConfig cc;
  cc.table_capacity = config.table_capacity;
  cc.taps.max_paths = scenario.max_paths;
  Controller controller(network, cc);

  metrics::SegmentRecorder recorder;
  sim::EventQueue queue;

  // One agent per host.
  std::unordered_map<topo::NodeId, ServerAgent> agents;
  ServerAgent::Env env;
  env.queue = &queue;
  env.net = &network;
  env.controller = &controller;
  env.recorder = &recorder;
  env.quantum = config.quantum;
  for (const topo::NodeId host : topology.hosts()) {
    agents.emplace(host, ServerAgent(host, env));
  }

  auto deliver = [&](const ScheduleReply& reply) {
    for (const net::TaskId victim : reply.preempted) {
      for (const net::FlowId fid : network.task(victim).spec.flows) {
        agents.at(network.flow(fid).spec.src).cancel(fid);
      }
    }
    for (const SliceGrant& g : reply.grants) {
      ++out.grants;
      agents.at(network.flow(g.flow).spec.src).on_grant(g);
    }
  };

  // Schedule one probe per task; the controller's decision lands one
  // control-plane latency after the probe is sent.
  for (const auto& task : network.tasks()) {
    queue.schedule(task.spec.arrival + config.control_latency, [&, tid = task.id()](double now) {
      ProbePacket probe;
      probe.task = tid;
      probe.sent_at = now - config.control_latency;
      for (const net::FlowId fid : network.task(tid).spec.flows) {
        const auto& f = network.flow(fid);
        probe.flows.push_back(SchedulingHeader{fid, tid, f.spec.src, f.spec.dst, f.spec.size,
                                               f.spec.deadline});
      }
      ++out.probes;
      deliver(controller.on_probe(probe, now));
    });
  }

  while (!queue.empty()) queue.run_next();

  // Anything still unfinished at the end of the run missed its deadline.
  for (auto& f : network.flows()) {
    if (!f.finished()) network.on_flow_missed(f.id());
  }

  out.taps_bins = recorder.bins(network, config.bin_width);
  out.taps_metrics = metrics::collect(network);
  out.entries_installed = controller.entries_installed();
  out.entries_withdrawn = controller.entries_withdrawn();
  for (const topo::NodeId host : topology.hosts()) {
    out.quanta_sent += agents.at(host).quanta_sent();
  }
  for (const auto& node : topology.graph().nodes()) {
    if (const Switch* sw = controller.switch_at(node.id)) {
      out.switch_drops += sw->packets_dropped();
    }
  }
}

}  // namespace

TestbedResult run_testbed(const TestbedConfig& config) {
  TestbedResult out;
  const workload::Scenario scenario = testbed_scenario(config);

  run_taps_side(config, scenario, out);

  // Fair Sharing half: same workload (same seed) through the fluid simulator.
  topo::PartialFatTree topology;
  net::Network network(topology);
  util::Rng rng(scenario.seed);
  util::Rng workload_rng = rng.fork("workload");
  (void)workload::generate(network, scenario.workload, workload_rng);

  sched::FairSharing fair;
  sim::FluidSimulator simulator(network, fair);
  metrics::SegmentRecorder fair_recorder;
  simulator.set_observer(&fair_recorder);
  (void)simulator.run();

  out.fair_bins = fair_recorder.bins(network, config.bin_width);
  out.fair_metrics = metrics::collect(network);
  return out;
}

}  // namespace taps::sdn
