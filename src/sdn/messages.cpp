#include "sdn/messages.hpp"

// Message types are plain data; this translation unit exists so the target
// has a home for future serialization helpers.
