// Control-plane messages exchanged between TAPS senders, the SDN controller
// and switches (paper Fig. 4): the probe packet carrying a task's scheduling
// headers (steps 1-2), the controller's reply with pre-allocated time slices
// (steps 4B/5), and the TERM packet a sender emits when a flow completes.
#pragma once

#include <vector>

#include "net/flow.hpp"
#include "topo/graph.hpp"
#include "util/interval_set.hpp"

namespace taps::sdn {

/// Scheduling header for one flow: Src, Dst, s (size), d (deadline) — the
/// tuple the paper's senders encapsulate into the probe packet.
// taps-threading: thread-compatible
struct SchedulingHeader {
  net::FlowId flow = net::kInvalidFlow;
  net::TaskId task = net::kInvalidTask;
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  double size = 0.0;      // bytes
  double deadline = 0.0;  // absolute seconds
};

/// Step 2: one probe per task (all flows of a task are announced together).
// taps-threading: thread-compatible
struct ProbePacket {
  net::TaskId task = net::kInvalidTask;
  double sent_at = 0.0;
  std::vector<SchedulingHeader> flows;
};

/// Step 4B: per-flow grant — the route and the pre-allocated time slices.
// taps-threading: thread-compatible
struct SliceGrant {
  net::FlowId flow = net::kInvalidFlow;
  topo::Path path;
  util::IntervalSet slices;
  double rate = 0.0;  // bytes/second while inside a slice
};

/// Controller reply: acceptance with grants, or a discard notice (step 5).
// taps-threading: thread-compatible
struct ScheduleReply {
  net::TaskId task = net::kInvalidTask;
  bool accepted = false;
  std::vector<SliceGrant> grants;
  std::vector<net::TaskId> preempted;  // tasks discarded to admit this one
};

/// Sender -> controller when a flow finishes (route entries are withdrawn).
// taps-threading: thread-compatible
struct TermPacket {
  net::FlowId flow = net::kInvalidFlow;
  double at = 0.0;
};

}  // namespace taps::sdn
