// SDN switch flow table with a bounded entry count. The paper notes that
// commodity SDN switches hold fewer than ~2000 entries and that the
// controller therefore installs at most 1k entries per switch; installs
// beyond capacity are refused and counted.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "net/flow.hpp"
#include "topo/graph.hpp"

namespace taps::sdn {

// taps-threading: single-domain -- rule table mutates under the controller domain
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 1000) : capacity_(capacity) {}

  /// Install "flow -> output link". Returns false (and counts the refusal)
  /// when the table is full; re-installing an existing flow updates it.
  bool install(net::FlowId flow, topo::LinkId out_link);

  /// Withdraw an entry; returns false if it was not present.
  bool remove(net::FlowId flow);

  [[nodiscard]] std::optional<topo::LinkId> lookup(net::FlowId flow) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_; }
  [[nodiscard]] std::size_t refused_installs() const { return refused_; }

 private:
  std::size_t capacity_;
  std::unordered_map<net::FlowId, topo::LinkId> entries_;
  std::size_t peak_ = 0;
  std::size_t refused_ = 0;
};

}  // namespace taps::sdn
