// Named-benchmark runner for the perf-regression harness.
//
// Every bench binary registers closures under stable names, runs each with
// warmup + repeated timed samples, and emits a machine-readable
// `BENCH_<name>.json` document: per-benchmark median/p10/p90/mean/stddev
// (via util::stats), plus hardware and configuration capture so two runs can
// be compared meaningfully. scripts/bench_compare.py diffs two documents and
// fails on median regressions; docs/BENCHMARKING.md describes the workflow.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"

namespace taps::bench {

/// Summary of one named benchmark: raw per-repeat samples (seconds per
/// operation) and the order statistics the regression gate compares.
struct BenchResult {
  std::string name;
  std::string unit = "s/op";
  /// Inner iterations per timed sample (auto-calibrated for fast ops).
  std::size_t iters_per_sample = 1;
  std::vector<double> samples;  // seconds per single operation, one per repeat

  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Fill the order statistics from `samples`.
  void finalize();
};

struct RunnerOptions {
  /// Timed samples recorded per benchmark (the gate compares their median).
  std::size_t repeats = 9;
  /// Untimed runs before sampling starts (cache/allocator warmup).
  std::size_t warmup = 1;
  /// Target wall time per sample; fast closures are looped until one sample
  /// takes at least this long and the per-op time is total/iterations.
  double min_sample_seconds = 0.01;
  /// Print a human-readable line per benchmark as it completes.
  bool verbose = true;
};

class BenchRunner {
 public:
  explicit BenchRunner(RunnerOptions options = {}) : options_(options) {}

  /// Time `fn` (warmup, calibrate inner iterations, record repeats) and
  /// append the result. Returns the stored result for ad-hoc inspection.
  const BenchResult& run(const std::string& name, const std::function<void()>& fn);

  /// Record a benchmark from externally measured per-op samples (used when
  /// the timed region needs bespoke setup per repeat).
  const BenchResult& add_samples(const std::string& name, std::vector<double> samples,
                                 std::size_t iters_per_sample = 1);

  /// Attach a non-timed scalar (completion ratios, counters, ...). Metrics
  /// are recorded in the JSON document but never gated on.
  void add_metric(const std::string& name, double value);

  [[nodiscard]] const std::vector<BenchResult>& results() const { return results_; }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] RunnerOptions& options() { return options_; }

  /// Full document: schema/name/context/benchmarks/metrics.
  [[nodiscard]] Json to_json(const std::string& bench_name,
                             const std::vector<std::pair<std::string, std::string>>& config = {}) const;

  /// Write `to_json` to `path` ("" -> "BENCH_<bench_name>.json" in the
  /// current directory). Returns the path written. Throws on I/O failure.
  std::string write_json(const std::string& bench_name, const std::string& path = "",
                         const std::vector<std::pair<std::string, std::string>>& config = {}) const;

 private:
  RunnerOptions options_;
  std::vector<BenchResult> results_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Compiler barrier: keep `value` (and everything reachable from it) live.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");  // NOLINT(hicpp-no-assembler)
}

/// Hardware/build capture shared by every document ("context" object).
[[nodiscard]] Json capture_context();

}  // namespace taps::bench
