#include "bench/bench_runner.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/sync.hpp"

namespace taps::bench {

namespace {

// taps-lint: allow(wall-clock) -- the bench harness exists to time things
using Clock = std::chrono::steady_clock;

double time_once(const std::function<void()>& fn, std::size_t iters) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto stop = Clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

void BenchResult::finalize() {
  median = util::percentile(samples, 50.0);
  p10 = util::percentile(samples, 10.0);
  p90 = util::percentile(samples, 90.0);
  util::Summary s;
  for (const double x : samples) s.add(x);
  mean = s.mean();
  stddev = s.stddev();
  min = s.min();
  max = s.max();
}

const BenchResult& BenchRunner::run(const std::string& name, const std::function<void()>& fn) {
  for (std::size_t i = 0; i < options_.warmup; ++i) fn();

  // Calibrate: double the inner iteration count until one sample is long
  // enough to time reliably, then keep that count for every recorded sample
  // so they are comparable.
  std::size_t iters = 1;
  double elapsed = time_once(fn, iters);
  while (elapsed < options_.min_sample_seconds && iters < (std::size_t{1} << 30)) {
    const double target = options_.min_sample_seconds;
    std::size_t next = iters * 2;
    if (elapsed > 0.0) {
      const auto projected = static_cast<std::size_t>(static_cast<double>(iters) * target / elapsed * 1.2);
      next = std::max(next, projected);
    }
    iters = next;
    elapsed = time_once(fn, iters);
  }

  BenchResult r;
  r.name = name;
  r.iters_per_sample = iters;
  r.samples.reserve(options_.repeats);
  r.samples.push_back(elapsed / static_cast<double>(iters));  // calibration run counts
  while (r.samples.size() < options_.repeats) {
    r.samples.push_back(time_once(fn, iters) / static_cast<double>(iters));
  }
  r.finalize();
  results_.push_back(std::move(r));
  const BenchResult& stored = results_.back();
  if (options_.verbose) {
    std::printf("%-40s median %12.3f us  p10 %12.3f  p90 %12.3f  (%zu samples x %zu iters)\n",
                stored.name.c_str(), stored.median * 1e6, stored.p10 * 1e6, stored.p90 * 1e6,
                stored.samples.size(), stored.iters_per_sample);
    std::fflush(stdout);
  }
  return stored;
}

const BenchResult& BenchRunner::add_samples(const std::string& name, std::vector<double> samples,
                                            std::size_t iters_per_sample) {
  BenchResult r;
  r.name = name;
  r.iters_per_sample = iters_per_sample;
  r.samples = std::move(samples);
  r.finalize();
  results_.push_back(std::move(r));
  const BenchResult& stored = results_.back();
  if (options_.verbose) {
    std::printf("%-40s median %12.3f us  p10 %12.3f  p90 %12.3f  (%zu samples)\n",
                stored.name.c_str(), stored.median * 1e6, stored.p10 * 1e6, stored.p90 * 1e6,
                stored.samples.size());
    std::fflush(stdout);
  }
  return stored;
}

void BenchRunner::add_metric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

Json capture_context() {
  Json ctx = Json::object();
  ctx.set("hardware_concurrency", util::hardware_concurrency());
#if defined(__VERSION__)
  ctx.set("compiler", std::string(__VERSION__));
#else
  ctx.set("compiler", "unknown");
#endif
#if defined(NDEBUG)
  ctx.set("assertions", false);
#else
  ctx.set("assertions", true);
#endif
#if defined(__SANITIZE_ADDRESS__)
  ctx.set("asan", true);
#else
  ctx.set("asan", false);
#endif
  ctx.set("pointer_bits", static_cast<std::size_t>(sizeof(void*) * 8));
#if defined(__linux__)
  ctx.set("os", "linux");
#elif defined(__APPLE__)
  ctx.set("os", "darwin");
#else
  ctx.set("os", "other");
#endif
  return ctx;
}

Json BenchRunner::to_json(const std::string& bench_name,
                          const std::vector<std::pair<std::string, std::string>>& config) const {
  Json doc = Json::object();
  doc.set("schema", "taps-bench-v1");
  doc.set("name", bench_name);
  doc.set("context", capture_context());

  Json cfg = Json::object();
  for (const auto& [k, v] : config) cfg.set(k, v);
  doc.set("config", std::move(cfg));

  Json benches = Json::array();
  for (const BenchResult& r : results_) {
    Json b = Json::object();
    b.set("name", r.name);
    b.set("unit", r.unit);
    b.set("iters_per_sample", r.iters_per_sample);
    b.set("median", r.median);
    b.set("p10", r.p10);
    b.set("p90", r.p90);
    b.set("mean", r.mean);
    b.set("stddev", r.stddev);
    b.set("min", r.min);
    b.set("max", r.max);
    Json samples = Json::array();
    for (const double s : r.samples) samples.push(s);
    b.set("samples", std::move(samples));
    benches.push(std::move(b));
  }
  doc.set("benchmarks", std::move(benches));

  Json metrics = Json::array();
  for (const auto& [name, value] : metrics_) {
    Json m = Json::object();
    m.set("name", name);
    m.set("value", value);
    metrics.push(std::move(m));
  }
  doc.set("metrics", std::move(metrics));
  return doc;
}

std::string BenchRunner::write_json(const std::string& bench_name, const std::string& path,
                                    const std::vector<std::pair<std::string, std::string>>& config) const {
  const std::string out_path = path.empty() ? "BENCH_" + bench_name + ".json" : path;
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open bench JSON output: " + out_path);
  out << to_json(bench_name, config).dump(2) << "\n";
  if (!out) throw std::runtime_error("failed writing bench JSON output: " + out_path);
  return out_path;
}

}  // namespace taps::bench
