#include "bench/bench_json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace taps::bench {

Json& Json::push(Json v) {
  assert(kind_ == Kind::kArray);
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber:
      if (is_int_) {
        out += std::to_string(int_);
      } else {
        out += json_number(num_);
      }
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].write(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(obj_[i].first);
        out += "\": ";
        obj_[i].second.write(out, indent, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace taps::bench
