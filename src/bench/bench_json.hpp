// Minimal JSON emission for the perf-regression harness.
//
// The bench runner writes one machine-readable document per binary
// (`BENCH_<name>.json`); scripts/bench_compare.py diffs two such documents
// and gates on median regressions. We only ever *write* JSON from C++ (the
// comparison side is Python), so this is a writer, not a parser: a small
// value tree plus a serializer with deterministic key order (insertion
// order), full string escaping, and round-trippable doubles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace taps::bench {

/// A JSON value: null, bool, number, string, array, or object. Keys keep
/// insertion order so emitted documents are stable and diff well.
class Json {
 public:
  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                        // NOLINT(google-explicit-constructor)
  Json(double d) : kind_(Kind::kNumber), num_(d) {}                     // NOLINT(google-explicit-constructor)
  Json(int i) : kind_(Kind::kNumber), num_(i) {}                        // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(i), is_int_(true) {}  // NOLINT
  Json(std::uint64_t u) : Json(static_cast<std::int64_t>(u)) {}         // NOLINT(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::kString), str_(s) {}                // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}     // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Append to an array (value must be an array).
  Json& push(Json v);
  /// Set a key on an object (value must be an object). Returns *this.
  Json& set(const std::string& key, Json v);

  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Escape `s` into a JSON string literal body (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest representation of `d` that parses back to the same double
/// ("1.5", "1e-09", ...; infinities/NaN become null per JSON rules).
[[nodiscard]] std::string json_number(double d);

}  // namespace taps::bench
