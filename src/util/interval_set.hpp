// Ordered set of disjoint half-open intervals [lo, hi) over continuous time.
//
// This is the core data structure behind TAPS Algorithm 3 ("TimeAllocation"):
// each link keeps the set of time intervals during which it is occupied, and
// allocating a flow on a path means taking the earliest idle sub-intervals of
// the *union* of the path's link occupancies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

namespace taps::util {

/// A half-open interval [lo, hi). Empty when hi <= lo.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] constexpr double length() const { return hi > lo ? hi - lo : 0.0; }
  [[nodiscard]] constexpr bool empty() const { return hi <= lo; }
  [[nodiscard]] constexpr bool contains(double t) const { return t >= lo && t < hi; }
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const {
    return lo < o.hi && o.lo < hi;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// Ordered collection of disjoint, non-adjacent half-open intervals.
///
/// All mutating operations keep the canonical form: sorted by `lo`,
/// pairwise-disjoint, adjacent intervals (hi == next.lo) merged. Operations
/// are linear in the number of stored intervals unless noted otherwise.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::initializer_list<Interval> ivs);

  /// Insert [lo, hi), merging with any overlapping/adjacent intervals.
  void insert(double lo, double hi);
  void insert(const Interval& iv) { insert(iv.lo, iv.hi); }

  /// Remove [lo, hi) from the set (splitting intervals as needed).
  void erase(double lo, double hi);

  /// Undo record for one logged mutation: `inserted` new intervals were
  /// placed at `index`, replacing `replaced` consecutive original intervals
  /// (saved by the caller, e.g. in an OccupancyJournal arena).
  struct SpliceUndo {
    std::uint32_t index = 0;
    std::uint32_t inserted = 0;
    std::uint32_t replaced = 0;
  };

  /// insert() that appends the intervals it replaces to `arena` and returns
  /// an undo record. undo_splice() with the record and the corresponding
  /// arena slice restores the prior state bitwise. O(changed) rollback is
  /// what makes plan checkpointing cheap (see core::OccupancyJournal).
  SpliceUndo insert_logged(double lo, double hi, std::vector<Interval>& arena);

  /// erase() with the same logging contract as insert_logged. Unlike the
  /// plain erase() it splices only the affected range instead of rebuilding
  /// the whole vector, so it is O(overlapping + tail move).
  SpliceUndo erase_logged(double lo, double hi, std::vector<Interval>& arena);

  /// Reverse one logged mutation: remove the `undo.inserted` intervals at
  /// `undo.index` and put back the `n == undo.replaced` saved ones. Records
  /// must be undone in LIFO order.
  void undo_splice(const SpliceUndo& undo, const Interval* replaced, std::size_t n);

  /// Remove everything before `t` (useful to garbage-collect past occupancy).
  void trim_before(double t);

  void clear() { ivs_.clear(); }

  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  [[nodiscard]] std::size_t size() const { return ivs_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }

  /// Total measure (sum of lengths) of all intervals.
  [[nodiscard]] double measure() const;

  /// Does any stored interval contain `t`?
  [[nodiscard]] bool contains(double t) const;

  /// Does [lo, hi) intersect any stored interval?
  [[nodiscard]] bool intersects(double lo, double hi) const;

  /// Measure of the intersection between this set and [lo, hi).
  [[nodiscard]] double overlap_measure(double lo, double hi) const;

  /// Set union / intersection / difference (linear-time merges).
  [[nodiscard]] IntervalSet unite(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet subtract(const IntervalSet& other) const;

  /// Complement of this set within [lo, hi): the idle time.
  [[nodiscard]] IntervalSet complement(double lo, double hi) const;

  /// Earliest sub-intervals of the *complement* of this set, starting at
  /// `from`, with total length `duration`. This is exactly Algorithm 3's
  /// "first E_i time slices in the complementary set of T_ocp".
  ///
  /// `horizon` bounds the search; returns an empty set if the idle time in
  /// [from, horizon) is insufficient.
  [[nodiscard]] IntervalSet allocate_earliest(double from, double duration,
                                              double horizon = std::numeric_limits<double>::infinity()) const;

  /// Smallest interval endpoint (lo or hi) strictly greater than `t`, or
  /// +infinity if none. Used to find the next rate-change instant of a
  /// slice-scheduled flow.
  [[nodiscard]] double next_boundary(double t) const;

  /// Index of the first interval with hi > t (== size() when none): the
  /// first interval still relevant when allocating from time t. O(log n).
  [[nodiscard]] std::size_t first_index_after(double t) const;

  /// Append [lo, hi) known to start strictly after the current last interval
  /// ends (asserted in debug builds). O(1); lets allocators build their
  /// result without the general insert()'s merge scan.
  void push_back_disjoint(double lo, double hi);

  /// End of the last interval (requires !empty()).
  [[nodiscard]] double back_end() const { return ivs_.back().hi; }
  /// Start of the first interval (requires !empty()).
  [[nodiscard]] double front_start() const { return ivs_.front().lo; }

  /// True when the canonical-form invariants hold (used by property tests).
  [[nodiscard]] bool check_invariants() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> ivs_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace taps::util
