// Minimal CSV writing/reading used for experiment output and workload traces.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace taps::util {

/// Streams one CSV row at a time; quotes fields when necessary.
class CsvWriter {
 public:
  /// Writes to the given stream (not owned).
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format arbitrary streamable values into a row.
  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(to_field(vals)), ...);
    write_row(fields);
  }

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return format_number(v);
    }
  }
  static std::string format_number(double v);
  static std::string format_number(long long v);
  static std::string format_number(unsigned long long v);
  static std::string format_number(int v) { return format_number(static_cast<long long>(v)); }
  static std::string format_number(long v) { return format_number(static_cast<long long>(v)); }
  static std::string format_number(unsigned v) {
    return format_number(static_cast<unsigned long long>(v));
  }
  static std::string format_number(std::size_t v) {
    return format_number(static_cast<unsigned long long>(v));
  }

  std::ostream* os_;
};

/// Parse one CSV line into fields (handles quoted fields with embedded
/// commas/quotes). Suitable for the traces this library writes.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Read an entire CSV file; returns rows of fields. Throws std::runtime_error
/// if the file cannot be opened.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace taps::util
