#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace taps::util {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace taps::util
