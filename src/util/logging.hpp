// Lightweight leveled logging. Off by default above WARN so simulations stay
// quiet; benches/examples can raise verbosity with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace taps::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Thread-safe emit to stderr with a level prefix.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return {LogLevel::kDebug, log_level() <= LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogLine log_info() {
  return {LogLevel::kInfo, log_level() <= LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return {LogLevel::kWarn, log_level() <= LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogLine log_error() {
  return {LogLevel::kError, log_level() <= LogLevel::kError};
}

}  // namespace taps::util
