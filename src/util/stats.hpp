// Summary statistics helpers used by metrics collectors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace taps::util {

/// Online accumulator: count / mean / variance (Welford) / min / max / sum.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation, p in [0,100]).
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Arithmetic mean of a sample (0 for empty).
[[nodiscard]] double mean_of(const std::vector<double>& xs);

}  // namespace taps::util
