// Fixed-size thread pool used to run independent experiment points in
// parallel (each point is a full simulation; they share nothing mutable).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace taps::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future delivers its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<Thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ TAPS_GUARDED_BY(mutex_);
  bool stopping_ TAPS_GUARDED_BY(mutex_) = false;
};

}  // namespace taps::util
