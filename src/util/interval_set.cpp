#include "util/interval_set.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace taps::util {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ", " << iv.hi << ')';
}

IntervalSet::IntervalSet(std::initializer_list<Interval> ivs) {
  for (const auto& iv : ivs) insert(iv);
}

void IntervalSet::insert(double lo, double hi) {
  if (hi <= lo) return;
  // Find the first interval whose end reaches lo (merge candidates start here).
  auto first = std::lower_bound(ivs_.begin(), ivs_.end(), lo,
                                [](const Interval& iv, double v) { return iv.hi < v; });
  // Find one-past the last interval whose start is <= hi.
  auto last = std::upper_bound(first, ivs_.end(), hi,
                               [](double v, const Interval& iv) { return v < iv.lo; });
  if (first != last) {
    lo = std::min(lo, first->lo);
    hi = std::max(hi, std::prev(last)->hi);
  }
  auto it = ivs_.erase(first, last);
  ivs_.insert(it, Interval{lo, hi});
}

void IntervalSet::erase(double lo, double hi) {
  if (hi <= lo || ivs_.empty()) return;
  std::vector<Interval> out;
  out.reserve(ivs_.size() + 1);
  for (const auto& iv : ivs_) {
    if (iv.hi <= lo || iv.lo >= hi) {
      out.push_back(iv);
      continue;
    }
    if (iv.lo < lo) out.push_back(Interval{iv.lo, lo});
    if (iv.hi > hi) out.push_back(Interval{hi, iv.hi});
  }
  ivs_ = std::move(out);
}

void IntervalSet::trim_before(double t) { erase(-std::numeric_limits<double>::infinity(), t); }

IntervalSet::SpliceUndo IntervalSet::insert_logged(double lo, double hi,
                                                   std::vector<Interval>& arena) {
  SpliceUndo undo;
  if (hi <= lo) return undo;
  // Same merge-range search as insert().
  auto first = std::lower_bound(ivs_.begin(), ivs_.end(), lo,
                                [](const Interval& iv, double v) { return iv.hi < v; });
  auto last = std::upper_bound(first, ivs_.end(), hi,
                               [](double v, const Interval& iv) { return v < iv.lo; });
  undo.index = static_cast<std::uint32_t>(first - ivs_.begin());
  undo.inserted = 1;
  undo.replaced = static_cast<std::uint32_t>(last - first);
  arena.insert(arena.end(), first, last);
  if (first != last) {
    lo = std::min(lo, first->lo);
    hi = std::max(hi, std::prev(last)->hi);
  }
  auto it = ivs_.erase(first, last);
  ivs_.insert(it, Interval{lo, hi});
  return undo;
}

IntervalSet::SpliceUndo IntervalSet::erase_logged(double lo, double hi,
                                                  std::vector<Interval>& arena) {
  SpliceUndo undo;
  if (hi <= lo || ivs_.empty()) return undo;
  // First interval with iv.hi > lo, then one-past the last with iv.lo < hi:
  // exactly the intervals overlapping [lo, hi).
  auto first = std::lower_bound(ivs_.begin(), ivs_.end(), lo,
                                [](const Interval& iv, double v) { return iv.hi <= v; });
  auto last = std::lower_bound(first, ivs_.end(), hi,
                               [](const Interval& iv, double v) { return iv.lo < v; });
  if (first == last) return undo;
  undo.index = static_cast<std::uint32_t>(first - ivs_.begin());
  undo.replaced = static_cast<std::uint32_t>(last - first);
  arena.insert(arena.end(), first, last);
  Interval frags[2];
  std::size_t nf = 0;
  if (first->lo < lo) frags[nf++] = Interval{first->lo, lo};
  if (std::prev(last)->hi > hi) frags[nf++] = Interval{hi, std::prev(last)->hi};
  undo.inserted = static_cast<std::uint32_t>(nf);
  auto it = ivs_.erase(first, last);
  ivs_.insert(it, frags, frags + nf);
  return undo;
}

void IntervalSet::undo_splice(const SpliceUndo& undo, const Interval* replaced, std::size_t n) {
  assert(n == undo.replaced);
  assert(undo.index + undo.inserted <= ivs_.size());
  const auto at = ivs_.begin() + static_cast<std::ptrdiff_t>(undo.index);
  auto it = ivs_.erase(at, at + static_cast<std::ptrdiff_t>(undo.inserted));
  ivs_.insert(it, replaced, replaced + n);
}

double IntervalSet::measure() const {
  double m = 0.0;
  for (const auto& iv : ivs_) m += iv.length();
  return m;
}

bool IntervalSet::contains(double t) const {
  auto it = std::upper_bound(ivs_.begin(), ivs_.end(), t,
                             [](double v, const Interval& iv) { return v < iv.lo; });
  return it != ivs_.begin() && std::prev(it)->contains(t);
}

bool IntervalSet::intersects(double lo, double hi) const {
  if (hi <= lo) return false;
  auto it = std::lower_bound(ivs_.begin(), ivs_.end(), lo,
                             [](const Interval& iv, double v) { return iv.hi <= v; });
  return it != ivs_.end() && it->lo < hi;
}

double IntervalSet::overlap_measure(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  double m = 0.0;
  for (const auto& iv : ivs_) {
    if (iv.hi <= lo) continue;
    if (iv.lo >= hi) break;
    m += std::min(hi, iv.hi) - std::max(lo, iv.lo);
  }
  return m;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out;
  out.ivs_.reserve(ivs_.size() + other.ivs_.size());
  std::size_t i = 0, j = 0;
  auto push = [&out](Interval iv) {
    if (!out.ivs_.empty() && iv.lo <= out.ivs_.back().hi) {
      out.ivs_.back().hi = std::max(out.ivs_.back().hi, iv.hi);
    } else {
      out.ivs_.push_back(iv);
    }
  };
  while (i < ivs_.size() || j < other.ivs_.size()) {
    if (j == other.ivs_.size() || (i < ivs_.size() && ivs_[i].lo <= other.ivs_[j].lo)) {
      push(ivs_[i++]);
    } else {
      push(other.ivs_[j++]);
    }
  }
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < other.ivs_.size()) {
    const double lo = std::max(ivs_[i].lo, other.ivs_[j].lo);
    const double hi = std::min(ivs_[i].hi, other.ivs_[j].hi);
    if (hi > lo) out.ivs_.push_back(Interval{lo, hi});
    if (ivs_[i].hi < other.ivs_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const auto& iv : other.ivs_) out.erase(iv.lo, iv.hi);
  return out;
}

IntervalSet IntervalSet::complement(double lo, double hi) const {
  IntervalSet out;
  if (hi <= lo) return out;
  double cursor = lo;
  for (const auto& iv : ivs_) {
    if (iv.hi <= lo) continue;
    if (iv.lo >= hi) break;
    if (iv.lo > cursor) out.ivs_.push_back(Interval{cursor, std::min(iv.lo, hi)});
    cursor = std::max(cursor, iv.hi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) out.ivs_.push_back(Interval{cursor, hi});
  return out;
}

IntervalSet IntervalSet::allocate_earliest(double from, double duration, double horizon) const {
  IntervalSet out;
  if (duration <= 0.0) return out;
  double need = duration;
  double cursor = from;
  for (const auto& iv : ivs_) {
    if (iv.hi <= from) continue;
    const double idle_lo = cursor;
    const double idle_hi = std::min(iv.lo, horizon);
    if (idle_hi > idle_lo) {
      const double take = std::min(need, idle_hi - idle_lo);
      out.ivs_.push_back(Interval{idle_lo, idle_lo + take});
      need -= take;
      if (need <= 0.0) return out;
    }
    cursor = std::max(cursor, iv.hi);
    if (cursor >= horizon) break;
  }
  if (need > 0.0 && cursor < horizon) {
    const double take = std::min(need, horizon - cursor);
    out.ivs_.push_back(Interval{cursor, cursor + take});
    need -= take;
  }
  if (need > 1e-12) return IntervalSet{};  // insufficient idle time before horizon
  return out;
}

std::size_t IntervalSet::first_index_after(double t) const {
  const auto it = std::lower_bound(ivs_.begin(), ivs_.end(), t,
                                   [](const Interval& iv, double v) { return iv.hi <= v; });
  return static_cast<std::size_t>(it - ivs_.begin());
}

void IntervalSet::push_back_disjoint(double lo, double hi) {
  assert(hi > lo);
  assert(ivs_.empty() || lo > ivs_.back().hi);
  ivs_.push_back(Interval{lo, hi});
}

double IntervalSet::next_boundary(double t) const {
  // Intervals are sorted; find the first interval whose end is > t.
  auto it = std::upper_bound(ivs_.begin(), ivs_.end(), t,
                             [](double v, const Interval& iv) { return v < iv.hi; });
  if (it == ivs_.end()) return std::numeric_limits<double>::infinity();
  return it->lo > t ? it->lo : it->hi;
}

bool IntervalSet::check_invariants() const {
  for (std::size_t k = 0; k < ivs_.size(); ++k) {
    if (ivs_[k].empty()) return false;
    if (k > 0 && ivs_[k - 1].hi >= ivs_[k].lo) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << '{';
  bool first = true;
  for (const auto& iv : set.intervals()) {
    if (!first) os << ", ";
    os << iv;
    first = false;
  }
  return os << '}';
}

}  // namespace taps::util
