// Annotated synchronization primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no `capability` attributes,
// so code locking through them cannot be checked by -Wthread-safety. These
// thin wrappers restore that: Mutex / SharedMutex are lockable capabilities,
// MutexLock / WriterMutexLock / ReaderMutexLock are the scoped guards, and
// CondVar is a condition variable that waits on a Mutex directly (via
// std::condition_variable_any, which accepts any BasicLockable). All wrappers
// are zero-cost abstractions over the std types apart from
// condition_variable_any's internal reference bookkeeping, which is off
// every hot path (the pool's wait loop parks idle workers).
//
// This header is the ONLY sanctioned gateway to raw concurrency primitives:
// scripts/lint_concurrency.py bans `std::mutex`, `std::thread`,
// `std::atomic`, `std::condition_variable` (and friends) everywhere outside
// src/util, so every thread, lock, and atomic in the tree either lives here
// or goes through the annotated aliases below. That is what lets the linter
// and -Wthread-safety together account for all sharing in the tree.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/annotations.hpp"

namespace taps::util {

/// std::mutex annotated as a thread-safety capability.
class TAPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TAPS_ACQUIRE() { m_.lock(); }
  void unlock() TAPS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TAPS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock (std::lock_guard analogue) that the analysis can see.
class TAPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TAPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TAPS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::shared_mutex annotated as a reader/writer capability. Intended for
/// read-mostly shared structures on the parallel-advancement path (e.g. a
/// registry rebuilt at replan points and read by every advancing domain).
class TAPS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TAPS_ACQUIRE() { m_.lock(); }
  void unlock() TAPS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TAPS_TRY_ACQUIRE(true) { return m_.try_lock(); }

  void lock_shared() TAPS_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() TAPS_RELEASE_SHARED() { m_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() TAPS_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class TAPS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TAPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() TAPS_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class TAPS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TAPS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // release_generic: a scoped_lockable destructor must release whatever its
  // constructor acquired; clang models shared releases through the generic
  // form on scoped guards.
  ~ReaderMutexLock() TAPS_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable waiting directly on an annotated Mutex. Waits require
/// the mutex held; the temporary release inside wait() happens within
/// std::condition_variable_any (a system header, outside the analysis).
///
/// Deliberately predicate-less: a predicate lambda reading guarded state
/// cannot carry a TAPS_REQUIRES annotation portably, so callers write the
/// classic `while (!ready) cv.wait(mu);` loop, which the analysis can check.
class CondVar {
 public:
  void wait(Mutex& mu) TAPS_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// The sanctioned atomic: identical to std::atomic, but going through this
/// alias keeps the raw-primitive ban (scripts/lint_concurrency.py) honest —
/// every atomic outside util/ is visible as a deliberate concurrency
/// decision, not an incidental `#include <atomic>`. Single-threaded
/// semantics are unchanged, so determinism oracles are unaffected.
template <typename T>
using Atomic = std::atomic<T>;

/// The sanctioned thread handle (ownership only; no annotation semantics —
/// what the spawned function may touch is governed by the capability
/// annotations on the state it uses).
using Thread = std::thread;

/// std::thread::hardware_concurrency through the sync layer, clamped to at
/// least 1 (the std call may return 0 when the count is unknowable).
[[nodiscard]] inline std::size_t hardware_concurrency() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace taps::util
