// Annotated synchronization primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no `capability` attributes,
// so code locking through them cannot be checked by -Wthread-safety. These
// thin wrappers restore that: Mutex is a lockable capability, MutexLock is
// the scoped guard, and CondVar is a condition variable that waits on a
// Mutex directly (via std::condition_variable_any, which accepts any
// BasicLockable). All wrappers are zero-cost abstractions over the std
// types apart from condition_variable_any's internal reference bookkeeping,
// which is off every hot path (the pool's wait loop parks idle workers).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace taps::util {

/// std::mutex annotated as a thread-safety capability.
class TAPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TAPS_ACQUIRE() { m_.lock(); }
  void unlock() TAPS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TAPS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock (std::lock_guard analogue) that the analysis can see.
class TAPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TAPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TAPS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on an annotated Mutex. Waits require
/// the mutex held; the temporary release inside wait() happens within
/// std::condition_variable_any (a system header, outside the analysis).
///
/// Deliberately predicate-less: a predicate lambda reading guarded state
/// cannot carry a TAPS_REQUIRES annotation portably, so callers write the
/// classic `while (!ready) cv.wait(mu);` loop, which the analysis can check.
class CondVar {
 public:
  void wait(Mutex& mu) TAPS_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace taps::util
