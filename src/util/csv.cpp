#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace taps::util {

namespace {

bool needs_quoting(const std::string& f) {
  return f.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& f) {
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *os_ << ',';
    *os_ << (needs_quoting(f) ? quote(f) : f);
    first = false;
  }
  *os_ << '\n';
}

std::string CsvWriter::format_number(double v) {
  // %.17g guarantees exact double round-trips (traces must reload bit-equal).
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CsvWriter::format_number(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string CsvWriter::format_number(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", v);
  return buf;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace taps::util
