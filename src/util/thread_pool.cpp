#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace taps::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_concurrency();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace taps::util
