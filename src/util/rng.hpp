// Deterministic random number generation for reproducible experiments.
//
// Every bench/example derives all randomness from a single user-visible seed.
// Rng::fork(tag) splits an independent, stable stream per component so that
// adding a consumer does not perturb the draws seen by the others.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace taps::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent stream identified by `tag`.
  [[nodiscard]] Rng fork(std::string_view tag) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);
  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);
  /// Normal with the given mean/stddev, truncated below at `min` by resampling.
  [[nodiscard]] double normal_truncated(double mean, double stddev, double min);
  /// Poisson draw with the given mean.
  [[nodiscard]] std::int64_t poisson(double mean);
  /// Bernoulli with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Access to the raw engine for std distributions / std::shuffle.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// Stable 64-bit FNV-1a hash (used for stream splitting and ECMP hashing).
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace taps::util
