#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/sync.hpp"

namespace taps::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole lines onto stderr so concurrent sweep workers never
// interleave partial messages. stderr itself is the guarded resource.
Mutex g_emit_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace taps::util
