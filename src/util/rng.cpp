#include "util/rng.hpp"

#include <cassert>

#include "util/sync.hpp"

namespace taps::util {

namespace {
// glibc's lgamma() writes the process-global `signgam` (POSIX), and
// libstdc++'s poisson_distribution calls lgamma both at construction and in
// its large-mean rejection sampler. Rng::poisson is the only lgamma caller
// in the codebase, so one lock keeps concurrent sweep workers race-free.
Mutex g_lgamma_mutex;
}  // namespace

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // splitmix64-style finalizer over the xor of the inputs.
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

Rng Rng::fork(std::string_view tag) const {
  return Rng(hash_combine(seed_, fnv1a(tag)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal_truncated(double mean, double stddev, double min) {
  std::normal_distribution<double> dist(mean, stddev);
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const double v = dist(engine_);
    if (v >= min) return v;
  }
  return min;  // pathological parameters: clamp rather than loop forever
}

std::int64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  MutexLock lock(g_lgamma_mutex);
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool Rng::bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

}  // namespace taps::util
