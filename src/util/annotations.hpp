// Clang thread-safety analysis annotations (-Wthread-safety).
//
// Under clang every macro expands to the corresponding `capability` attribute
// so the static analysis can prove lock discipline at compile time; under gcc
// (which has no such analysis) they expand to nothing. Use together with the
// annotated primitives in util/sync.hpp — the std:: lock types carry no
// annotations on libstdc++, so locking through them is invisible to the
// analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TAPS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef TAPS_THREAD_ANNOTATION_
#define TAPS_THREAD_ANNOTATION_(x)  // not clang (or too old): no-op
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define TAPS_CAPABILITY(name) TAPS_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose lifetime holds a capability.
#define TAPS_SCOPED_CAPABILITY TAPS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `mu`.
#define TAPS_GUARDED_BY(mu) TAPS_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member whose *pointee* is protected by `mu`.
#define TAPS_PT_GUARDED_BY(mu) TAPS_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// Function requires the given capabilities to be held on entry (and keeps
/// them held on exit).
#define TAPS_REQUIRES(...) \
  TAPS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the capabilities held at least in shared (reader) mode.
#define TAPS_REQUIRES_SHARED(...) \
  TAPS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the given capabilities (held on exit, not on entry).
#define TAPS_ACQUIRE(...) \
  TAPS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the given capabilities in shared (reader) mode.
#define TAPS_ACQUIRE_SHARED(...) \
  TAPS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the given capabilities (held on entry, not on exit).
#define TAPS_RELEASE(...) \
  TAPS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases capabilities held in shared (reader) mode.
#define TAPS_RELEASE_SHARED(...) \
  TAPS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases capabilities held in either mode (scoped guards that
/// may wrap an exclusive or a shared acquisition).
#define TAPS_RELEASE_GENERIC(...) \
  TAPS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define TAPS_TRY_ACQUIRE(ret, ...) \
  TAPS_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Function acquires the capability in shared mode iff it returns `ret`.
#define TAPS_TRY_ACQUIRE_SHARED(ret, ...) \
  TAPS_THREAD_ANNOTATION_(try_acquire_shared_capability(ret, __VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability
/// (tells the analysis so without performing an acquisition).
#define TAPS_ASSERT_CAPABILITY(...) \
  TAPS_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))
#define TAPS_ASSERT_SHARED_CAPABILITY(...) \
  TAPS_THREAD_ANNOTATION_(assert_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the given capabilities
/// (deadlock / recursive-lock prevention).
#define TAPS_EXCLUDES(...) TAPS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares a lock-ordering edge for deadlock detection.
#define TAPS_ACQUIRED_BEFORE(...) \
  TAPS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define TAPS_ACQUIRED_AFTER(...) \
  TAPS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define TAPS_RETURN_CAPABILITY(mu) TAPS_THREAD_ANNOTATION_(lock_returned(mu))

/// Escape hatch: body is deliberately not analyzed. Every use must carry a
/// comment explaining why the analysis cannot see the invariant.
#define TAPS_NO_THREAD_SAFETY_ANALYSIS \
  TAPS_THREAD_ANNOTATION_(no_thread_safety_analysis)
