// Tiny command-line option parser shared by examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms, prints
// a generated --help, and rejects unknown options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace taps::util {

class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false (after printing help/error) if the program
  /// should exit; `exit_code()` then says with which status.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] int exit_code() const { return exit_code_; }

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] double num(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };

  Opt* find(const std::string& name);
  const Opt* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Opt>> opts_;
  int exit_code_ = 0;
};

}  // namespace taps::util
