#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace taps::util {

void Cli::add_flag(const std::string& name, const std::string& help) {
  opts_.emplace_back(name, Opt{help, "false", /*is_flag=*/true, /*set=*/false});
}

void Cli::add_option(const std::string& name, const std::string& help,
                     const std::string& default_value) {
  opts_.emplace_back(name, Opt{help, default_value, /*is_flag=*/false, /*set=*/false});
}

Cli::Opt* Cli::find(const std::string& name) {
  for (auto& [n, o] : opts_) {
    if (n == name) return &o;
  }
  return nullptr;
}

const Cli::Opt* Cli::find(const std::string& name) const {
  for (const auto& [n, o] : opts_) {
    if (n == name) return &o;
  }
  return nullptr;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n", program_.c_str(),
                   arg.c_str());
      exit_code_ = 2;
      return false;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    Opt* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option '--%s' (try --help)\n", program_.c_str(),
                   name.c_str());
      exit_code_ = 2;
      return false;
    }
    if (opt->is_flag) {
      if (inline_value) {
        opt->value = *inline_value;
      } else {
        opt->value = "true";
      }
    } else if (inline_value) {
      opt->value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' requires a value\n", program_.c_str(),
                     name.c_str());
        exit_code_ = 2;
        return false;
      }
      opt->value = argv[++i];
    }
    opt->set = true;
  }
  return true;
}

bool Cli::flag(const std::string& name) const {
  const Opt* o = find(name);
  if (o == nullptr) throw std::logic_error("unknown flag queried: " + name);
  return o->value == "true" || o->value == "1" || o->value == "yes";
}

std::string Cli::str(const std::string& name) const {
  const Opt* o = find(name);
  if (o == nullptr) throw std::logic_error("unknown option queried: " + name);
  return o->value;
}

double Cli::num(const std::string& name) const {
  const std::string v = str(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects a number, got '" + v + "'");
  }
}

std::int64_t Cli::integer(const std::string& name) const {
  const std::string v = str(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects an integer, got '" + v + "'");
  }
}

std::string Cli::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, o] : opts_) {
    os << "  --" << name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help;
    if (!o.is_flag) os << " (default: " << o.value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace taps::util
