#include "metrics/collector.hpp"

namespace taps::metrics {

RunMetrics collect(const net::Network& net) {
  RunMetrics m;
  m.tasks_total = net.tasks().size();
  m.flows_total = net.flows().size();

  for (const auto& t : net.tasks()) {
    if (t.state == net::TaskState::kCompleted) ++m.tasks_completed;
    if (t.state == net::TaskState::kRejected) ++m.tasks_rejected;
  }

  double completed_task_bytes = 0.0;
  for (const auto& f : net.flows()) {
    m.total_bytes += f.spec.size;
    const bool flow_ok = f.state == net::FlowState::kCompleted;
    if (flow_ok) {
      ++m.flows_completed;
      m.useful_bytes += f.spec.size;
    } else {
      // Bytes already on the wire when the flow failed/was abandoned are the
      // paper's wasted bandwidth. (Completed flows inside failed tasks are
      // wasted at *task* level; Fig. 8 counts flow-level waste only.)
      m.wasted_bytes += f.bytes_sent;
    }
    if (net.task(f.task()).state == net::TaskState::kCompleted) {
      completed_task_bytes += f.spec.size;
    }
  }

  if (m.tasks_total > 0) {
    m.task_completion_ratio =
        static_cast<double>(m.tasks_completed) / static_cast<double>(m.tasks_total);
  }
  if (m.flows_total > 0) {
    m.flow_completion_ratio =
        static_cast<double>(m.flows_completed) / static_cast<double>(m.flows_total);
  }
  if (m.total_bytes > 0.0) {
    m.app_throughput = m.useful_bytes / m.total_bytes;
    m.task_size_ratio = completed_task_bytes / m.total_bytes;
    m.wasted_bandwidth_ratio = m.wasted_bytes / m.total_bytes;
  }
  return m;
}

}  // namespace taps::metrics
