// Effective-application-throughput time series (paper Fig. 14).
//
// Records every transmission segment during a run; after the run, bytes in
// each time bin are classified by the final state of the flow that sent
// them: bytes of flows that eventually completed are "useful". Effective
// application throughput per bin = useful bytes / a normalization chosen by
// the caller (the paper normalizes to the bandwidth actually in use).
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace taps::metrics {

struct ThroughputBin {
  double t0 = 0.0;
  double t1 = 0.0;
  double useful_bytes = 0.0;
  double wasted_bytes = 0.0;

  /// Useful fraction of the bytes transmitted in this bin (0 when idle).
  [[nodiscard]] double effective_fraction() const {
    const double total = useful_bytes + wasted_bytes;
    return total > 0.0 ? useful_bytes / total : 0.0;
  }
};

class SegmentRecorder final : public sim::TransmitObserver {
 public:
  void on_transmit(const net::Flow& f, double t0, double t1, double bytes) override;

  /// Bin all recorded segments into bins of `bin_width` seconds, classifying
  /// bytes by each flow's final state in `net`. Segments spanning bin edges
  /// are split pro rata (transmission is uniform inside a segment).
  [[nodiscard]] std::vector<ThroughputBin> bins(const net::Network& net,
                                                double bin_width) const;

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

 private:
  struct Segment {
    net::FlowId flow;
    double t0, t1, bytes;
  };
  std::vector<Segment> segments_;
};

}  // namespace taps::metrics
