// End-of-run metrics matching the paper's evaluation (Sec. V-A):
//   - task completion ratio: tasks whose flows ALL met the deadline / tasks;
//   - flow completion ratio: flows completed before deadline / flows,
//     regardless of their task's fate;
//   - application flow throughput: bytes of flows completed before deadline
//     / total workload bytes (the size-weighted counterpart);
//   - wasted bandwidth ratio: bytes actually transmitted by flows that did
//     NOT complete / total workload bytes (Fig. 8's definition).
#pragma once

#include <cstddef>

#include "net/network.hpp"

namespace taps::metrics {

struct RunMetrics {
  std::size_t tasks_total = 0;
  std::size_t tasks_completed = 0;
  std::size_t tasks_rejected = 0;
  std::size_t flows_total = 0;
  std::size_t flows_completed = 0;

  double task_completion_ratio = 0.0;
  double flow_completion_ratio = 0.0;
  double app_throughput = 0.0;        // size-weighted flow completion
  double task_size_ratio = 0.0;       // bytes in fully-completed tasks / total
  double wasted_bandwidth_ratio = 0.0;

  double total_bytes = 0.0;
  double useful_bytes = 0.0;  // bytes of flows completed before deadline
  double wasted_bytes = 0.0;  // bytes sent by flows that did not complete

  // Planner effort, copied from TapsCounters by the experiment driver (all
  // zero for schedulers without a global replan; collect() never fills them).
  std::size_t replans = 0;
  std::size_t flows_planned = 0;      // plan_one_flow calls actually paid for
  std::size_t prefix_reuse_flows = 0; // cross-arrival adoptions + checkpoint resumes
  double prefix_reuse_ratio = 0.0;    // reused / (reused + planned)

  // Decision/timeline counters, also copied from TapsCounters by the
  // experiment driver. Observer- and mode-independent: the values are
  // identical with or without a sim::TimelineRecorder attached and under
  // full or incremental replanning (docs/TIMELINE.md).
  std::size_t plan_commits = 0;  // arrivals that changed the committed schedule
  std::size_t preemptions = 0;   // admitted tasks revoked to admit a newcomer
  std::size_t slice_grants = 0;  // per-flow (re)grants across all commits

  // Hierarchical pod admission (docs/DESIGN.md): effort saved/spent by the
  // pod-local precheck layer. Zero when the topology has no pod structure or
  // the precheck is disabled.
  std::size_t pod_fast_rejects = 0;     // arrivals rejected without a trial replan
  std::size_t pod_local_plans = 0;      // intra-pod wave flows past the precheck
  std::size_t budget_reservations = 0;  // cross-pod uplink anchors registered
  std::size_t global_fallbacks = 0;     // armed prechecks that fell through to global

  // Simulation-engine effort, copied from sim::SimStats by the experiment
  // driver (collect() never fills them). Unlike everything above, these are
  // engine-dependent by design — sim_events is the shared event count, the
  // rest mirror sim::SimEffort — so engine-equivalence checks must ignore
  // them (sweep CSVs place them in trailing columns for exactly that reason).
  std::size_t sim_events = 0;              // event-loop iterations
  std::size_t sim_flows_touched = 0;       // per-flow visits in the hot loops
  std::size_t sim_lazy_skips = 0;          // active-flow visits avoided vs a rescan
  std::size_t sim_heap_invalidations = 0;  // stale deadline-heap entries dropped
  std::size_t sim_rate_dirty = 0;          // rate-dirty entries drained from the arena
};

[[nodiscard]] RunMetrics collect(const net::Network& net);

}  // namespace taps::metrics
