#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace taps::metrics {

void SegmentRecorder::on_transmit(const net::Flow& f, double t0, double t1, double bytes) {
  if (bytes <= 0.0 || t1 <= t0) return;
  segments_.push_back(Segment{f.id(), t0, t1, bytes});
}

std::vector<ThroughputBin> SegmentRecorder::bins(const net::Network& net,
                                                 double bin_width) const {
  std::vector<ThroughputBin> out;
  if (segments_.empty() || bin_width <= 0.0) return out;

  double end = 0.0;
  for (const auto& s : segments_) end = std::max(end, s.t1);
  const auto bin_count = static_cast<std::size_t>(std::ceil(end / bin_width));
  out.resize(bin_count);
  for (std::size_t i = 0; i < bin_count; ++i) {
    out[i].t0 = static_cast<double>(i) * bin_width;
    out[i].t1 = out[i].t0 + bin_width;
  }

  for (const auto& s : segments_) {
    const bool useful = net.flow(s.flow).state == net::FlowState::kCompleted;
    const double rate = s.bytes / (s.t1 - s.t0);
    auto bin = static_cast<std::size_t>(s.t0 / bin_width);
    double t = s.t0;
    while (t < s.t1 && bin < bin_count) {
      const double upto = std::min(s.t1, out[bin].t1);
      const double b = rate * (upto - t);
      if (useful) {
        out[bin].useful_bytes += b;
      } else {
        out[bin].wasted_bytes += b;
      }
      t = upto;
      ++bin;
    }
  }
  return out;
}

}  // namespace taps::metrics
