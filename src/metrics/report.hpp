// Fixed-width table printing for bench/example output: the rows the paper's
// figures plot, readable in a terminal and trivially machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace taps::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row);

  /// Convenience: format arbitrary values (numbers get fixed precision).
  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> r;
    r.reserve(sizeof...(vals));
    (r.push_back(format(vals)), ...);
    add_row(std::move(r));
  }

  void print(std::ostream& os) const;

  /// The same rows as CSV (header first), for the bench binaries' --csv
  /// option on table-shaped (non-sweep) output.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  [[nodiscard]] static std::string format(double v);
  [[nodiscard]] static std::string format(const std::string& s) { return s; }
  [[nodiscard]] static std::string format(const char* s) { return s; }
  [[nodiscard]] static std::string format(int v) { return std::to_string(v); }
  [[nodiscard]] static std::string format(long v) { return std::to_string(v); }
  [[nodiscard]] static std::string format(long long v) { return std::to_string(v); }
  [[nodiscard]] static std::string format(std::size_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace taps::metrics
