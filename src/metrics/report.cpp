#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/csv.hpp"

namespace taps::metrics {

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::format(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  util::CsvWriter csv(os);
  csv.write_row(headers_);
  for (const auto& row : rows_) csv.write_row(row);
}

}  // namespace taps::metrics
