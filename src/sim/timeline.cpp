#include "sim/timeline.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "net/task.hpp"

namespace taps::sim {

namespace {

constexpr std::string_view kTextHeader = "taps-timeline-v1";
constexpr char kBinaryMagic[8] = {'T', 'A', 'P', 'S', 'T', 'L', '0', '1'};
constexpr std::uint32_t kBinaryVersion = 1;
/// Sanity bound on per-grant link/slice counts when deserializing: far above
/// any real path length or slice list, small enough to reject garbage counts
/// before they turn into multi-gigabyte allocations.
constexpr std::uint32_t kMaxGrantPayload = 1u << 20;

// ---- text helpers ---------------------------------------------------------

/// Shortest round-trip decimal form (std::to_chars general): byte-stable for
/// a given bit pattern on every platform, and parseable by Python's float().
void append_double(std::string& out, double v) {
  char buf[32];
  const std::to_chars_result r =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general);
  out.append(buf, r.ptr);
}

void append_int(std::string& out, std::int64_t v) { out += std::to_string(v); }

// ---- binary helpers (explicit little-endian, host-endianness agnostic) ----

void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  os.write(b, 8);
}

void put_i32(std::ostream& os, std::int32_t v) { put_u32(os, static_cast<std::uint32_t>(v)); }

void put_f64(std::ostream& os, double v) { put_u64(os, std::bit_cast<std::uint64_t>(v)); }

[[noreturn]] void truncated() { throw std::runtime_error("taps-timeline: truncated binary input"); }

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c < 0) truncated();
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& is) {
  char b[4];
  if (!is.read(b, 4)) truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char b[8];
  if (!is.read(b, 8)) truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::int32_t get_i32(std::istream& is) { return static_cast<std::int32_t>(get_u32(is)); }

double get_f64(std::istream& is) { return std::bit_cast<double>(get_u64(is)); }

std::vector<std::string_view> split_lines(const std::string& s) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) nl = s.size();
    lines.push_back(std::string_view(s).substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

const char* to_string(TimelineEventKind k) {
  switch (k) {
    case TimelineEventKind::kArrive:
      return "arrive";
    case TimelineEventKind::kAdmit:
      return "admit";
    case TimelineEventKind::kReject:
      return "reject";
    case TimelineEventKind::kPreempt:
      return "preempt";
    case TimelineEventKind::kGrant:
      return "grant";
    case TimelineEventKind::kComplete:
      return "complete";
    case TimelineEventKind::kMiss:
      return "miss";
    case TimelineEventKind::kTransmit:
      return "transmit";
    case TimelineEventKind::kRunEnd:
      return "end";
  }
  return "?";
}

// ---- TimelineRecorder -----------------------------------------------------

TimelineEvent& TimelineRecorder::push(TimelineEventKind kind, double time, std::int32_t a,
                                      std::int32_t b) {
  TimelineEvent e;
  e.kind = kind;
  e.time = time;
  e.a = a;
  e.b = b;
  timeline_.events.push_back(e);
  return timeline_.events.back();
}

void TimelineRecorder::record_arrival(net::TaskId id, double now) {
  push(TimelineEventKind::kArrive, now, id, -1);
  last_arrival_task_ = id;
  last_arrival_time_ = now;
  has_last_arrival_ = true;
}

void TimelineRecorder::on_task_arrival(const net::Task& t, double now) {
  record_arrival(t.id(), now);
}

void TimelineRecorder::on_task_seen(net::TaskId id, double now) {
  // The simulator announces the arrival just before handing it to the
  // scheduler, which announces it again through this hook — keep one event.
  // Under a scheduler-only attachment (svc shards) this is the only arrival
  // signal, so it records.
  if (has_last_arrival_ && last_arrival_task_ == id && last_arrival_time_ == now) return;
  record_arrival(id, now);
}

void TimelineRecorder::on_transmit(const net::Flow& f, double t0, double t1, double bytes) {
  if (!config_.record_transmissions) return;
  TimelineEvent& e = push(TimelineEventKind::kTransmit, t0, f.id(), f.task());
  e.x0 = t1;
  e.x1 = bytes;
}

void TimelineRecorder::on_flow_finished(const net::Flow& f, double now) {
  const TimelineEventKind kind = f.state == net::FlowState::kCompleted
                                     ? TimelineEventKind::kComplete
                                     : TimelineEventKind::kMiss;
  push(kind, now, f.id(), f.task());
}

void TimelineRecorder::on_run_complete(const net::Network& /*net*/, double end_time) {
  push(TimelineEventKind::kRunEnd, end_time, -1, -1);
}

void TimelineRecorder::on_task_admitted(net::TaskId id, double now) {
  push(TimelineEventKind::kAdmit, now, id, -1);
}

void TimelineRecorder::on_task_rejected(net::TaskId id, double now) {
  push(TimelineEventKind::kReject, now, id, -1);
}

void TimelineRecorder::on_task_preempted(net::TaskId victim, net::TaskId by, double now) {
  push(TimelineEventKind::kPreempt, now, victim, by);
}

void TimelineRecorder::on_plan_committed(double now,
                                         std::span<const sched::CommittedFlowView> plan) {
  for (const sched::CommittedFlowView& v : plan) {
    if (!v.regranted) continue;  // carried over verbatim — no new grant
    TimelineEvent& e = push(TimelineEventKind::kGrant, now, v.flow, v.task);
    e.links_offset = static_cast<std::uint32_t>(timeline_.links.size());
    e.links_count = static_cast<std::uint32_t>(v.path->links.size());
    timeline_.links.insert(timeline_.links.end(), v.path->links.begin(), v.path->links.end());
    const std::vector<util::Interval>& slices = v.slices->intervals();
    e.slices_offset = static_cast<std::uint32_t>(timeline_.slices.size());
    e.slices_count = static_cast<std::uint32_t>(slices.size());
    timeline_.slices.insert(timeline_.slices.end(), slices.begin(), slices.end());
  }
}

std::size_t TimelineRecorder::count(TimelineEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(timeline_.events.begin(), timeline_.events.end(),
                    [kind](const TimelineEvent& e) { return e.kind == kind; }));
}

void TimelineRecorder::clear() {
  timeline_ = Timeline{};
  last_arrival_task_ = net::kInvalidTask;
  last_arrival_time_ = 0.0;
  has_last_arrival_ = false;
}

std::string TimelineRecorder::text() const {
  std::ostringstream os;
  write_timeline_text(os, timeline_);
  return std::move(os).str();
}

void TimelineRecorder::save_text(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);  // binary: no newline translation
  if (!os) throw std::runtime_error("taps-timeline: cannot open " + path);
  write_timeline_text(os, timeline_);
  if (!os) throw std::runtime_error("taps-timeline: write failed: " + path);
}

void TimelineRecorder::save_binary(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("taps-timeline: cannot open " + path);
  write_timeline_binary(os, timeline_);
  if (!os) throw std::runtime_error("taps-timeline: write failed: " + path);
}

// ---- text serialization ---------------------------------------------------

void write_timeline_text(std::ostream& os, const Timeline& timeline) {
  std::string out;
  out.reserve(timeline.events.size() * 40 + 32);
  out += kTextHeader;
  out += '\n';
  for (const TimelineEvent& e : timeline.events) {
    out += to_string(e.kind);
    out += " t=";
    append_double(out, e.time);
    switch (e.kind) {
      case TimelineEventKind::kArrive:
      case TimelineEventKind::kAdmit:
      case TimelineEventKind::kReject:
        out += " task=";
        append_int(out, e.a);
        break;
      case TimelineEventKind::kPreempt:
        out += " victim=";
        append_int(out, e.a);
        out += " by=";
        append_int(out, e.b);
        break;
      case TimelineEventKind::kGrant: {
        out += " flow=";
        append_int(out, e.a);
        out += " task=";
        append_int(out, e.b);
        out += " links=";
        if (e.links_count == 0) out += '-';
        for (std::uint32_t i = 0; i < e.links_count; ++i) {
          if (i != 0) out += ',';
          append_int(out, timeline.links[e.links_offset + i]);
        }
        out += " slices=";
        if (e.slices_count == 0) out += '-';
        for (std::uint32_t i = 0; i < e.slices_count; ++i) {
          const util::Interval& iv = timeline.slices[e.slices_offset + i];
          if (i != 0) out += ',';
          append_double(out, iv.lo);
          out += ':';
          append_double(out, iv.hi);
        }
        break;
      }
      case TimelineEventKind::kComplete:
      case TimelineEventKind::kMiss:
        out += " flow=";
        append_int(out, e.a);
        out += " task=";
        append_int(out, e.b);
        break;
      case TimelineEventKind::kTransmit:
        out += " flow=";
        append_int(out, e.a);
        out += " task=";
        append_int(out, e.b);
        out += " until=";
        append_double(out, e.x0);
        out += " bytes=";
        append_double(out, e.x1);
        break;
      case TimelineEventKind::kRunEnd:
        out += " events=";
        append_int(out, static_cast<std::int64_t>(timeline.events.size()));
        break;
    }
    out += '\n';
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

// ---- binary serialization -------------------------------------------------

void write_timeline_binary(std::ostream& os, const Timeline& timeline) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  put_u32(os, kBinaryVersion);
  put_u64(os, timeline.events.size());
  for (const TimelineEvent& e : timeline.events) {
    put_u8(os, static_cast<std::uint8_t>(e.kind));
    put_f64(os, e.time);
    put_i32(os, e.a);
    put_i32(os, e.b);
    if (e.kind == TimelineEventKind::kGrant) {
      put_u32(os, e.links_count);
      put_u32(os, e.slices_count);
      for (std::uint32_t i = 0; i < e.links_count; ++i) {
        put_i32(os, timeline.links[e.links_offset + i]);
      }
      for (std::uint32_t i = 0; i < e.slices_count; ++i) {
        const util::Interval& iv = timeline.slices[e.slices_offset + i];
        put_f64(os, iv.lo);
        put_f64(os, iv.hi);
      }
    } else if (e.kind == TimelineEventKind::kTransmit) {
      put_f64(os, e.x0);
      put_f64(os, e.x1);
    }
  }
}

Timeline read_timeline_binary(std::istream& is) {
  char magic[8];
  if (!is.read(magic, sizeof(magic))) truncated();
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("taps-timeline: bad magic (not a taps-timeline binary)");
  }
  const std::uint32_t version = get_u32(is);
  if (version != kBinaryVersion) {
    throw std::runtime_error("taps-timeline: unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = get_u64(is);
  Timeline tl;
  // Reserve lazily-bounded: a hostile/corrupt count must not allocate first.
  tl.events.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 16)));
  for (std::uint64_t n = 0; n < count; ++n) {
    const std::uint8_t kind_raw = get_u8(is);
    if (kind_raw > static_cast<std::uint8_t>(TimelineEventKind::kRunEnd)) {
      throw std::runtime_error("taps-timeline: unknown event kind " + std::to_string(kind_raw));
    }
    TimelineEvent e;
    e.kind = static_cast<TimelineEventKind>(kind_raw);
    e.time = get_f64(is);
    e.a = get_i32(is);
    e.b = get_i32(is);
    if (e.kind == TimelineEventKind::kGrant) {
      const std::uint32_t nlinks = get_u32(is);
      const std::uint32_t nslices = get_u32(is);
      if (nlinks > kMaxGrantPayload || nslices > kMaxGrantPayload) {
        throw std::runtime_error("taps-timeline: implausible grant payload size");
      }
      e.links_offset = static_cast<std::uint32_t>(tl.links.size());
      e.links_count = nlinks;
      for (std::uint32_t i = 0; i < nlinks; ++i) tl.links.push_back(get_i32(is));
      e.slices_offset = static_cast<std::uint32_t>(tl.slices.size());
      e.slices_count = nslices;
      for (std::uint32_t i = 0; i < nslices; ++i) {
        const double lo = get_f64(is);
        const double hi = get_f64(is);
        tl.slices.push_back(util::Interval{lo, hi});
      }
    } else if (e.kind == TimelineEventKind::kTransmit) {
      e.x0 = get_f64(is);
      e.x1 = get_f64(is);
    }
    tl.events.push_back(e);
  }
  return tl;
}

// ---- diff -----------------------------------------------------------------

std::string diff_timeline_text(const std::string& expected, const std::string& actual,
                               std::size_t context) {
  const std::vector<std::string_view> el = split_lines(expected);
  const std::vector<std::string_view> al = split_lines(actual);
  const std::size_t common = std::min(el.size(), al.size());
  std::size_t i = 0;
  while (i < common && el[i] == al[i]) ++i;
  if (i == common && el.size() == al.size()) return {};

  std::string out = "timeline mismatch at line " + std::to_string(i + 1) + " (expected " +
                    std::to_string(el.size()) + " lines, actual " + std::to_string(al.size()) +
                    "):\n";
  const std::size_t begin = i > context ? i - context : 0;
  for (std::size_t k = begin; k < i; ++k) {
    out += "      ";
    out += el[k];
    out += '\n';
  }
  out += "  - expected: ";
  out += i < el.size() ? el[i] : std::string_view("<end of stream>");
  out += '\n';
  out += "  + actual:   ";
  out += i < al.size() ? al[i] : std::string_view("<end of stream>");
  out += '\n';
  for (std::size_t k = i + 1; k < al.size() && k <= i + context; ++k) {
    out += "      ";
    out += al[k];
    out += '\n';
  }
  return out;
}

}  // namespace taps::sim
