// Runtime invariant oracle: audits a FluidSimulator run event by event and
// throws InvariantViolation (with a trace of the most recent events) the
// moment the simulation contradicts a property the paper asserts:
//
//   1. Exclusive link occupancy (TAPS only, paper Sec. IV): at most one flow
//      transmits on any link at any instant — tracked with the same
//      core::OccupancyMap::collides the planner uses, but fed with *actual*
//      transmission segments rather than planned slices.
//   2. Link capacity: the summed transmit rate on each link never exceeds its
//      capacity (any scheduler; the fluid analogue of "no queue growth").
//   3. Byte conservation: the sum of a flow's transmitted segments equals its
//      size when it completes, and always equals its bytes_sent accounting.
//   4. Monotone event time: the event loop never travels backwards.
//   5. Deadline discipline: no flow of an accepted task transmits or remains
//      active past its (absolute) deadline, and every flow is in a terminal
//      state at quiescence.
//
// Attach with FluidSimulator::set_observer. Every scheduler test suite runs
// under this oracle (see tests/sched/scheduler_oracle_test.cpp), so a
// regression in the scheduler core fails mechanically rather than by eyeball.
#pragma once

#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/occupancy.hpp"
#include "sim/simulator.hpp"

namespace taps::sim {

/// Thrown on the first violated invariant; what() carries the violation
/// description followed by the recent-event trace.
class InvariantViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// taps-threading: thread-compatible
struct InvariantConfig {
  /// Check invariant 1 (exclusive occupancy). Only TAPS promises it; the
  /// other schedulers legitimately multiplex links.
  bool exclusive_links = false;
  /// Relative tolerance on the per-link capacity sum (water-filling
  /// accumulates ~1e-9-relative float error; see tests/sched/capacity_test).
  double capacity_tolerance = 1e-6;
  /// Absolute tolerance on byte totals (the simulator finishes flows with up
  /// to kByteEpsilon bytes outstanding).
  double byte_tolerance = 1e-3;
  /// Absolute tolerance on time comparisons (seconds).
  double time_tolerance = 1e-6;
  /// Interior slack when testing segment overlap: adjacent slices of
  /// consecutive flows legitimately touch at endpoints.
  double exclusivity_slack = 1e-9;
  /// Number of recent events kept for the failure trace.
  std::size_t trace_limit = 40;
};

// taps-threading: single-domain -- oracle state tracks one simulation domain
class InvariantChecker final : public TransmitObserver {
 public:
  /// `net` must be the network the simulation runs on and must outlive the
  /// checker. The topology's link count and capacities are read at
  /// construction.
  explicit InvariantChecker(const net::Network& net, InvariantConfig config = {});

  void on_transmit(const net::Flow& f, double t0, double t1, double bytes) override;
  void on_event(double now) override;
  void on_flow_finished(const net::Flow& f, double now) override;
  void on_run_complete(const net::Network& net, double end_time) override;

  /// Counters so tests can assert the oracle actually observed work.
  [[nodiscard]] std::size_t events() const { return events_; }
  [[nodiscard]] std::size_t segments() const { return segments_; }
  [[nodiscard]] std::size_t finished_flows() const { return finished_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void record(std::string line);
  /// Close the current capacity window [window_lo_, window_hi_): verify the
  /// per-link rate sums, then reset the touched links.
  void flush_window();

  const net::Network* net_;
  InvariantConfig config_;

  core::OccupancyMap transmitted_;   // invariant 1: actual per-link segments
  std::vector<double> window_rate_;  // invariant 2: per-link rate in window
  std::vector<topo::LinkId> window_touched_;
  double window_lo_ = 0.0;
  double window_hi_ = 0.0;
  bool window_open_ = false;

  std::vector<double> observed_bytes_;  // invariant 3, indexed by FlowId
  double last_event_time_ = 0.0;        // invariant 4

  std::deque<std::string> trace_;
  std::size_t events_ = 0;
  std::size_t segments_ = 0;
  std::size_t finished_ = 0;
};

}  // namespace taps::sim
