#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace taps::sim {

EventId EventQueue::schedule(double at, Callback cb) {
  if (at < now_) throw std::invalid_argument("EventQueue::schedule in the past");
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(id);
  if (erased == 0) return false;
  --live_count_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  const std::size_t stale = heap_.size() - live_count_;
  if (stale <= 2 * live_count_) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  assert(heap_.size() == live_count_);
}

void EventQueue::drop_stale() const {
  while (!heap_.empty() && callbacks_.find(heap_.front().id) == callbacks_.end()) {
    // heap_ is mutable for exactly this lazily-cleaning read.
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

double EventQueue::peek_time() const {
  drop_stale();
  assert(!heap_.empty());
  return heap_.front().time;
}

void EventQueue::run_next() {
  drop_stale();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Entry e = heap_.back();
  heap_.pop_back();
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_count_;
  maybe_compact();  // popping live entries can also tip the stale ratio
  now_ = e.time;
  cb(now_);
}

void EventQueue::run_until(double until) {
  while (!empty() && peek_time() <= until) run_next();
  now_ = std::max(now_, until);
}

}  // namespace taps::sim
