#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace taps::sim {

EventId EventQueue::schedule(double at, Callback cb) {
  if (at < now_) throw std::invalid_argument("EventQueue::schedule in the past");
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(id);
  if (erased > 0) {
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::drop_stale() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    // const_cast-free: heap_ is mutable for exactly this lazily-cleaning read.
    heap_.pop();
  }
}

double EventQueue::peek_time() const {
  drop_stale();
  assert(!heap_.empty());
  return heap_.top().time;
}

void EventQueue::run_next() {
  drop_stale();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_count_;
  now_ = e.time;
  cb(now_);
}

void EventQueue::run_until(double until) {
  while (!empty() && peek_time() <= until) run_next();
  now_ = std::max(now_, until);
}

}  // namespace taps::sim
