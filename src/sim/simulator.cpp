#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace taps::sim {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;

const char* to_string(SimEngine e) {
  switch (e) {
    case SimEngine::kIndexed:
      return "indexed";
    case SimEngine::kReference:
      return "reference";
  }
  return "?";
}

// Arrival events: one per (task, wave arrival time). A plain task is one
// wave; tasks extended with later flows (Network::extend_task) produce one
// event per distinct flow arrival, re-announcing the task to the scheduler
// each time new flows become available.
std::vector<FluidSimulator::Wave> FluidSimulator::build_waves() const {
  std::vector<Wave> waves;
  waves.reserve(net_->tasks().size());
  for (const auto& t : net_->tasks()) {
    double last = -1.0;
    for (const FlowId fid : t.spec.flows) {
      const double at = net_->flow(fid).spec.arrival;
      if (at != last) {
        waves.push_back(Wave{at, t.id()});
        last = at;
      }
    }
    if (t.spec.flows.empty()) waves.push_back(Wave{t.spec.arrival, t.id()});
  }
  std::sort(waves.begin(), waves.end(), [](const Wave& a, const Wave& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.task < b.task;
  });
  return waves;
}

SimStats FluidSimulator::finish_run() {
  stats_.end_time = now_;
  for (const auto& f : net_->flows()) {
    if (f.state == FlowState::kCompleted) ++stats_.completions;
    if (f.state == FlowState::kMissed) ++stats_.misses;
  }
  if (observer_ != nullptr) observer_->on_run_complete(*net_, now_);
  return stats_;
}

SimStats FluidSimulator::run() {
  return engine_ == SimEngine::kReference ? run_reference() : run_indexed();
}

constexpr std::size_t kMaxIterations = 200'000'000;

SimStats FluidSimulator::run_reference() {
  scheduler_->bind(*net_);
  stats_ = SimStats{};
  now_ = 0.0;
  active_.clear();

  const std::vector<Wave> waves = build_waves();
  std::size_t next_arrival = 0;
  double next_rate_change = kInfinity;
  std::vector<char> enlisted(net_->flows().size(), 0);

  while (true) {
    if (++stats_.events > kMaxIterations) {
      throw std::runtime_error("FluidSimulator: event budget exceeded (livelock?)");
    }
    // Drop flows that left the active set (completed/missed/rejected).
    std::erase_if(active_, [this](FlowId id) { return net_->flow(id).finished(); });

    // Next event time: arrival, completion, deadline, or scheduler-internal
    // rate change.
    double t_next = next_arrival < waves.size() ? waves[next_arrival].time : kInfinity;
    for (const FlowId fid : active_) {
      const Flow& f = net_->flow(fid);
      ++stats_.effort.flows_touched;
      if (f.rate > 0.0 && f.remaining > kByteEpsilon) {
        t_next = std::min(t_next, now_ + f.remaining / f.rate);
      }
      if (f.spec.deadline >= now_) t_next = std::min(t_next, f.spec.deadline);
    }
    // A rate-change boundary only a hair after now_ must still be taken:
    // discarding it would also discard every boundary behind it until the
    // next arrival/completion event (a paused flow could then sleep through
    // its whole transmission window). Strictly-greater guarantees progress.
    if (next_rate_change > now_) t_next = std::min(t_next, next_rate_change);

    if (t_next == kInfinity) break;
    t_next = std::max(t_next, now_);

    if (observer_ != nullptr) observer_->on_event(t_next);
    advance_to(t_next);
    settle(t_next);

    while (next_arrival < waves.size() && waves[next_arrival].time <= now_ + kTimeEpsilon) {
      const TaskId tid = waves[next_arrival++].task;
      if (observer_ != nullptr) observer_->on_task_arrival(net_->task(tid), now_);
      scheduler_->on_task_arrival(tid, now_);
      // The observer or scheduler may have registered new flows mid-run
      // (Network::extend_task): grow the flag array before indexing it.
      if (enlisted.size() < net_->flows().size()) enlisted.resize(net_->flows().size(), 0);
      for (const FlowId fid : net_->task(tid).spec.flows) {
        auto& flag = enlisted[static_cast<std::size_t>(fid)];
        if (flag == 0 && net_->flow(fid).state == FlowState::kActive) {
          active_.push_back(fid);
          flag = 1;
        }
      }
    }

    next_rate_change = scheduler_->assign_rates(now_);
    // assign_rates may have terminated flows (Early Termination) — their
    // task/flow states are already final; the active list is pruned lazily.
  }

  return finish_run();
}

void FluidSimulator::advance_to(double t) {
  assert(t >= now_ - kTimeEpsilon);
  const double dt = t - now_;
  if (dt > 0.0) {
    for (const FlowId fid : active_) {
      Flow& f = net_->flow(fid);
      if (f.finished() || f.rate <= 0.0 || f.remaining <= 0.0) continue;
      double bytes = f.rate * dt;
      if (bytes > f.remaining) bytes = f.remaining;  // absorb rounding
      f.remaining -= bytes;
      f.bytes_sent += bytes;
      if (observer_ != nullptr) observer_->on_transmit(f, now_, t, bytes);
    }
  }
  now_ = t;
}

void FluidSimulator::settle(double now) {
  // Completions first: finishing exactly at the deadline counts as meeting it.
  for (const FlowId fid : active_) {
    Flow& f = net_->flow(fid);
    if (f.finished()) continue;
    if (f.remaining <= kByteEpsilon) {
      net_->on_flow_completed(fid, now);
      scheduler_->on_flow_finished(fid, now);
      if (observer_ != nullptr) observer_->on_flow_finished(f, now);
    }
  }
  for (const FlowId fid : active_) {
    Flow& f = net_->flow(fid);
    if (f.finished()) continue;
    if (now >= f.spec.deadline - kTimeEpsilon) {
      net_->on_flow_missed(fid);
      scheduler_->on_flow_finished(fid, now);
      if (observer_ != nullptr) observer_->on_flow_finished(f, now);
    }
  }
}

// The indexed engine replays the reference loop with sub-O(active) data
// structures. Every floating-point expression that feeds a decision or an
// observer is kept literally identical to the reference engine's, and all
// per-flow processing runs in enlist-sequence order (== the reference
// active_-list order), so runs are bit-identical — pinned by
// tests/sim/sim_engine_equiv_prop_test.cpp and the golden timelines.
//
// Correctness of the completion-candidate set (drained_ + finish_watch_)
// rests on the settle induction documented in DESIGN.md: after every settle,
// all unfinished enlisted flows have remaining > kByteEpsilon, so the next
// settle's completions can only come from flows advance just drained or
// flows enlisted at/below the epsilon since.
SimStats FluidSimulator::run_indexed() {
  scheduler_->bind(*net_);
  stats_ = SimStats{};
  now_ = 0.0;

  const std::vector<Wave> waves = build_waves();
  std::size_t next_arrival = 0;
  double next_rate_change = kInfinity;

  seq_of_.assign(net_->flows().size(), -1);
  in_running_.assign(net_->flows().size(), 0);
  retired_.assign(net_->flows().size(), 0);
  running_.clear();
  deadline_heap_ = DeadlineHeap();
  overdue_.clear();
  finish_watch_.clear();
  active_count_ = 0;
  next_seq_ = 0;
  bool running_unsorted = false;
  // Discard rate writes from before the run: flows only matter once
  // enlisted, and enlistment classifies by the rate it observes directly.
  net_->flow_state().drain_dirty(dirty_scratch_);

  // Decrement active_count_ exactly once per flow observed finished,
  // wherever the engine first notices (settle, compaction, stale heap pop).
  const auto retire = [this](FlowId fid) {
    auto& mark = retired_[static_cast<std::size_t>(fid)];
    if (mark == 0) {
      mark = 1;
      --active_count_;
    }
  };
  const auto by_seq = [](const SeqFlow& a, const SeqFlow& b) { return a.seq < b.seq; };

  while (true) {
    if (++stats_.events > kMaxIterations) {
      throw std::runtime_error("FluidSimulator: event budget exceeded (livelock?)");
    }
    if (running_unsorted) {
      std::sort(running_.begin(), running_.end(), by_seq);
      running_unsorted = false;
    }

    // Next event time: arrival, completion (projected over the running set
    // only — paused flows cannot complete), deadline (heap top), or
    // scheduler-internal rate change. The same pass compacts entries whose
    // flow finished or was paused since the last event.
    double t_next = next_arrival < waves.size() ? waves[next_arrival].time : kInfinity;
    std::size_t kept = 0;
    for (const SeqFlow e : running_) {
      const Flow& f = net_->flow(e.fid);
      if (f.finished() || f.rate <= 0.0) {
        in_running_[static_cast<std::size_t>(e.fid)] = 0;
        if (f.finished()) retire(e.fid);
        continue;
      }
      running_[kept++] = e;
      ++stats_.effort.flows_touched;
      if (f.remaining > kByteEpsilon) {
        t_next = std::min(t_next, now_ + f.remaining / f.rate);
      }
    }
    running_.resize(kept);
    stats_.effort.lazy_skips += active_count_ - std::min(active_count_, kept);

    // Deadline candidate: the heap top, skipping entries whose flow finished
    // and parking entries already behind now_ (they contribute no candidate
    // — same as the reference's `deadline >= now_` filter — but must still
    // be miss-settled later; see overdue_ in the settle below).
    while (!deadline_heap_.empty()) {
      const DeadlineEntry top = deadline_heap_.top();
      if (net_->flow(top.fid).finished()) {
        retire(top.fid);
        ++stats_.effort.heap_invalidations;
        deadline_heap_.pop();
        continue;
      }
      if (top.deadline < now_) {
        overdue_.push_back(SeqFlow{top.seq, top.fid});
        deadline_heap_.pop();
        continue;
      }
      t_next = std::min(t_next, top.deadline);
      break;
    }

    if (next_rate_change > now_) t_next = std::min(t_next, next_rate_change);

    if (t_next == kInfinity) break;
    t_next = std::max(t_next, now_);

    if (observer_ != nullptr) observer_->on_event(t_next);

    // advance_to(t_next), restricted to the running set: every skipped flow
    // would have been a no-op visit in the reference loop (rate <= 0).
    assert(t_next >= now_ - kTimeEpsilon);
    drained_.clear();
    const double dt = t_next - now_;
    if (dt > 0.0) {
      for (const SeqFlow e : running_) {
        Flow& f = net_->flow(e.fid);
        if (f.finished() || f.rate <= 0.0 || f.remaining <= 0.0) continue;
        double bytes = f.rate * dt;
        if (bytes > f.remaining) bytes = f.remaining;  // absorb rounding
        f.remaining -= bytes;
        f.bytes_sent += bytes;
        ++stats_.effort.flows_touched;
        if (observer_ != nullptr) observer_->on_transmit(f, now_, t_next, bytes);
        if (f.remaining <= kByteEpsilon) drained_.push_back(e);
      }
    }
    now_ = t_next;

    // settle(t_next), completions first. drained_ is already in seq order;
    // merging the finish-watch requires a (rare, tiny) re-sort.
    if (!finish_watch_.empty()) {
      drained_.insert(drained_.end(), finish_watch_.begin(), finish_watch_.end());
      finish_watch_.clear();
      std::sort(drained_.begin(), drained_.end(), by_seq);
    }
    for (const SeqFlow e : drained_) {
      Flow& f = net_->flow(e.fid);
      if (f.finished()) continue;
      if (f.remaining <= kByteEpsilon) {
        net_->on_flow_completed(e.fid, now_);
        scheduler_->on_flow_finished(e.fid, now_);
        if (observer_ != nullptr) observer_->on_flow_finished(f, now_);
        retire(e.fid);
      }
    }

    // Misses: pop every deadline at/before now_ (the pop predicate is the
    // reference's miss condition verbatim), add the parked overdue entries,
    // and process in enlist order so scheduler/observer callbacks fire in
    // the reference sequence, not heap order.
    miss_scratch_.clear();
    miss_scratch_.swap(overdue_);
    while (!deadline_heap_.empty() && now_ >= deadline_heap_.top().deadline - kTimeEpsilon) {
      const DeadlineEntry top = deadline_heap_.top();
      deadline_heap_.pop();
      if (net_->flow(top.fid).finished()) {
        retire(top.fid);
        ++stats_.effort.heap_invalidations;
        continue;
      }
      miss_scratch_.push_back(SeqFlow{top.seq, top.fid});
    }
    std::sort(miss_scratch_.begin(), miss_scratch_.end(), by_seq);
    for (const SeqFlow e : miss_scratch_) {
      Flow& f = net_->flow(e.fid);
      if (f.finished()) continue;  // e.g. rejected as a sibling just above
      if (now_ >= f.spec.deadline - kTimeEpsilon) {
        net_->on_flow_missed(e.fid);
        scheduler_->on_flow_finished(e.fid, now_);
        if (observer_ != nullptr) observer_->on_flow_finished(f, now_);
        retire(e.fid);
      }
    }

    while (next_arrival < waves.size() && waves[next_arrival].time <= now_ + kTimeEpsilon) {
      const TaskId tid = waves[next_arrival++].task;
      if (observer_ != nullptr) observer_->on_task_arrival(net_->task(tid), now_);
      scheduler_->on_task_arrival(tid, now_);
      // The observer or scheduler may have registered new flows mid-run
      // (Network::extend_task): grow the per-flow indexes before use.
      if (seq_of_.size() < net_->flows().size()) {
        seq_of_.resize(net_->flows().size(), -1);
        in_running_.resize(net_->flows().size(), 0);
        retired_.resize(net_->flows().size(), 0);
      }
      for (const FlowId fid : net_->task(tid).spec.flows) {
        const auto i = static_cast<std::size_t>(fid);
        if (seq_of_[i] >= 0) continue;
        const Flow& f = net_->flow(fid);
        if (f.state != FlowState::kActive) continue;
        seq_of_[i] = next_seq_++;
        ++active_count_;
        deadline_heap_.push(DeadlineEntry{f.spec.deadline, seq_of_[i], fid});
        if (f.rate > 0.0) {
          running_.push_back(SeqFlow{seq_of_[i], fid});
          in_running_[i] = 1;
          running_unsorted = true;
        }
        // Zero-size admissions complete without ever transmitting; watch
        // them so the next settle picks them up.
        if (f.remaining <= kByteEpsilon) finish_watch_.push_back(SeqFlow{seq_of_[i], fid});
      }
    }

    next_rate_change = scheduler_->assign_rates(now_);
    // Reclassify only the flows whose rate actually moved (the arena's
    // dirty set) instead of rescanning every active flow.
    net_->flow_state().drain_dirty(dirty_scratch_);
    stats_.effort.rate_dirty += dirty_scratch_.size();
    for (const FlowId fid : dirty_scratch_) {
      const auto i = static_cast<std::size_t>(fid);
      if (i >= seq_of_.size() || seq_of_[i] < 0 || in_running_[i] != 0) continue;
      const Flow& f = net_->flow(fid);
      if (f.finished() || f.rate <= 0.0) continue;
      running_.push_back(SeqFlow{seq_of_[i], fid});
      in_running_[i] = 1;
      running_unsorted = true;
    }
  }

  return finish_run();
}

}  // namespace taps::sim
