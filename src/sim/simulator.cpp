#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace taps::sim {

using net::Flow;
using net::FlowId;
using net::FlowState;
using net::TaskId;

SimStats FluidSimulator::run() {
  scheduler_->bind(*net_);
  stats_ = SimStats{};
  now_ = 0.0;
  active_.clear();

  // Arrival events: one per (task, wave arrival time). A plain task is one
  // wave; tasks extended with later flows (Network::extend_task) produce one
  // event per distinct flow arrival, re-announcing the task to the scheduler
  // each time new flows become available.
  struct Wave {
    double time = 0.0;
    TaskId task = 0;
  };
  std::vector<Wave> waves;
  waves.reserve(net_->tasks().size());
  for (const auto& t : net_->tasks()) {
    double last = -1.0;
    for (const FlowId fid : t.spec.flows) {
      const double at = net_->flow(fid).spec.arrival;
      if (at != last) {
        waves.push_back(Wave{at, t.id()});
        last = at;
      }
    }
    if (t.spec.flows.empty()) waves.push_back(Wave{t.spec.arrival, t.id()});
  }
  std::sort(waves.begin(), waves.end(), [](const Wave& a, const Wave& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.task < b.task;
  });
  std::size_t next_arrival = 0;
  double next_rate_change = kInfinity;
  std::vector<char> enlisted(net_->flows().size(), 0);

  constexpr std::size_t kMaxIterations = 200'000'000;
  while (true) {
    if (++stats_.events > kMaxIterations) {
      throw std::runtime_error("FluidSimulator: event budget exceeded (livelock?)");
    }
    // Drop flows that left the active set (completed/missed/rejected).
    std::erase_if(active_, [this](FlowId id) { return net_->flow(id).finished(); });

    // Next event time: arrival, completion, deadline, or scheduler-internal
    // rate change.
    double t_next = next_arrival < waves.size() ? waves[next_arrival].time : kInfinity;
    for (const FlowId fid : active_) {
      const Flow& f = net_->flow(fid);
      if (f.rate > 0.0 && f.remaining > kByteEpsilon) {
        t_next = std::min(t_next, now_ + f.remaining / f.rate);
      }
      if (f.spec.deadline >= now_) t_next = std::min(t_next, f.spec.deadline);
    }
    // A rate-change boundary only a hair after now_ must still be taken:
    // discarding it would also discard every boundary behind it until the
    // next arrival/completion event (a paused flow could then sleep through
    // its whole transmission window). Strictly-greater guarantees progress.
    if (next_rate_change > now_) t_next = std::min(t_next, next_rate_change);

    if (t_next == kInfinity) break;
    t_next = std::max(t_next, now_);

    if (observer_ != nullptr) observer_->on_event(t_next);
    advance_to(t_next);
    settle(t_next);

    while (next_arrival < waves.size() && waves[next_arrival].time <= now_ + kTimeEpsilon) {
      const TaskId tid = waves[next_arrival++].task;
      if (observer_ != nullptr) observer_->on_task_arrival(net_->task(tid), now_);
      scheduler_->on_task_arrival(tid, now_);
      for (const FlowId fid : net_->task(tid).spec.flows) {
        auto& flag = enlisted[static_cast<std::size_t>(fid)];
        if (flag == 0 && net_->flow(fid).state == FlowState::kActive) {
          active_.push_back(fid);
          flag = 1;
        }
      }
    }

    next_rate_change = scheduler_->assign_rates(now_);
    // assign_rates may have terminated flows (Early Termination) — their
    // task/flow states are already final; the active list is pruned lazily.
  }

  stats_.end_time = now_;
  for (const auto& f : net_->flows()) {
    if (f.state == FlowState::kCompleted) ++stats_.completions;
    if (f.state == FlowState::kMissed) ++stats_.misses;
  }
  if (observer_ != nullptr) observer_->on_run_complete(*net_, now_);
  return stats_;
}

void FluidSimulator::advance_to(double t) {
  assert(t >= now_ - kTimeEpsilon);
  const double dt = t - now_;
  if (dt > 0.0) {
    for (const FlowId fid : active_) {
      Flow& f = net_->flow(fid);
      if (f.finished() || f.rate <= 0.0 || f.remaining <= 0.0) continue;
      double bytes = f.rate * dt;
      if (bytes > f.remaining) bytes = f.remaining;  // absorb rounding
      f.remaining -= bytes;
      f.bytes_sent += bytes;
      if (observer_ != nullptr) observer_->on_transmit(f, now_, t, bytes);
    }
  }
  now_ = t;
}

void FluidSimulator::settle(double now) {
  // Completions first: finishing exactly at the deadline counts as meeting it.
  for (const FlowId fid : active_) {
    Flow& f = net_->flow(fid);
    if (f.finished()) continue;
    if (f.remaining <= kByteEpsilon) {
      net_->on_flow_completed(fid, now);
      scheduler_->on_flow_finished(fid, now);
      if (observer_ != nullptr) observer_->on_flow_finished(f, now);
    }
  }
  for (const FlowId fid : active_) {
    Flow& f = net_->flow(fid);
    if (f.finished()) continue;
    if (now >= f.spec.deadline - kTimeEpsilon) {
      net_->on_flow_missed(fid);
      scheduler_->on_flow_finished(fid, now);
      if (observer_ != nullptr) observer_->on_flow_finished(f, now);
    }
  }
}

}  // namespace taps::sim
