#include "sim/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace taps::sim {

using net::Flow;
using net::FlowState;
using net::Task;
using net::TaskState;

namespace {

std::string describe_flow(const Flow& f) {
  std::ostringstream os;
  os << "flow " << f.id() << " (task " << f.task() << ", " << net::to_string(f.state)
     << ", size=" << f.spec.size << ", deadline=" << f.spec.deadline << ")";
  return os.str();
}

}  // namespace

InvariantChecker::InvariantChecker(const net::Network& net, InvariantConfig config)
    : net_(&net),
      config_(config),
      transmitted_(net.graph().link_count()),
      window_rate_(net.graph().link_count(), 0.0),
      observed_bytes_(net.flows().size(), 0.0) {}

void InvariantChecker::fail(const std::string& what) const {
  std::ostringstream os;
  os << "invariant violation: " << what << "\n--- last " << trace_.size()
     << " events (oldest first) ---";
  for (const std::string& line : trace_) os << '\n' << "  " << line;
  throw InvariantViolation(os.str());
}

void InvariantChecker::record(std::string line) {
  if (trace_.size() >= config_.trace_limit) trace_.pop_front();
  trace_.push_back(std::move(line));
}

void InvariantChecker::flush_window() {
  if (!window_open_) return;
  for (const topo::LinkId lid : window_touched_) {
    const auto i = static_cast<std::size_t>(lid);
    const double capacity = net_->link_capacity(lid);
    if (window_rate_[i] > capacity * (1.0 + config_.capacity_tolerance)) {
      std::ostringstream os;
      os << "link " << lid << " oversubscribed during [" << window_lo_ << ", " << window_hi_
         << "): aggregate rate " << window_rate_[i] << " > capacity " << capacity;
      fail(os.str());
    }
    window_rate_[i] = 0.0;
  }
  window_touched_.clear();
  window_open_ = false;
}

void InvariantChecker::on_transmit(const Flow& f, double t0, double t1, double bytes) {
  if (bytes <= 0.0) return;
  ++segments_;
  {
    std::ostringstream os;
    os << "xmit  " << describe_flow(f) << " [" << t0 << ", " << t1 << ") bytes=" << bytes;
    record(os.str());
  }

  // Invariant 4: segments never travel backwards in time.
  if (t1 < t0) fail("transmit segment ends before it starts: " + describe_flow(f));
  if (window_open_ && (t0 != window_lo_ || t1 != window_hi_)) flush_window();
  if (!window_open_) {
    if (t0 < window_hi_ - config_.time_tolerance) {
      std::ostringstream os;
      os << "transmit window [" << t0 << ", " << t1 << ") starts before the previous "
         << "window ended (" << window_hi_ << "): " << describe_flow(f);
      fail(os.str());
    }
    window_lo_ = t0;
    window_hi_ = t1;
    window_open_ = true;
  }

  // Invariant 5: no transmission past the flow's (absolute) deadline.
  if (t1 > f.spec.deadline + config_.time_tolerance) {
    std::ostringstream os;
    os << describe_flow(f) << " transmitted until " << t1 << ", past its deadline";
    fail(os.str());
  }

  // Invariant 3: accumulate the flow's observed bytes.
  const auto fid = static_cast<std::size_t>(f.id());
  if (fid >= observed_bytes_.size()) observed_bytes_.resize(net_->flows().size(), 0.0);
  observed_bytes_[fid] += bytes;

  // Invariant 2: per-link rate sums, checked when the window closes.
  const double dt = t1 - t0;
  if (dt <= 0.0) {
    if (bytes > config_.byte_tolerance) {
      fail("bytes transmitted over an empty interval: " + describe_flow(f));
    }
    return;
  }
  const double rate = bytes / dt;
  for (const topo::LinkId lid : f.path.links) {
    const auto i = static_cast<std::size_t>(lid);
    if (window_rate_[i] == 0.0) window_touched_.push_back(lid);
    window_rate_[i] += rate;
  }

  // Invariant 1 (TAPS): exclusive occupancy of every link on the path,
  // verified with the planner's own collision primitive on actual segments.
  if (config_.exclusive_links) {
    const double lo = t0 + config_.exclusivity_slack;
    const double hi = t1 - config_.exclusivity_slack;
    if (hi > lo) {
      util::IntervalSet segment;
      segment.insert(lo, hi);
      if (transmitted_.collides(f.path, segment)) {
        std::ostringstream os;
        os << "exclusive-use violated: " << describe_flow(f) << " transmitted on [" << t0
           << ", " << t1 << ") while another flow occupied a link of its path";
        fail(os.str());
      }
      transmitted_.occupy(f.path, segment);
    }
  }
}

void InvariantChecker::on_event(double now) {
  ++events_;
  {
    std::ostringstream os;
    os << "event t=" << now;
    record(os.str());
  }
  flush_window();

  // Invariant 4: the event clock is monotone.
  if (now < last_event_time_ - config_.time_tolerance) {
    std::ostringstream os;
    os << "event time went backwards: " << now << " after " << last_event_time_;
    fail(os.str());
  }
  last_event_time_ = std::max(last_event_time_, now);

  // Invariant 5: an accepted task never has a flow still active past its
  // deadline (the simulator must have settled it at the deadline event).
  for (const Flow& f : net_->flows()) {
    if (f.active() && now > f.spec.deadline + config_.time_tolerance) {
      fail(describe_flow(f) + " still active past its deadline at t=" +
           std::to_string(now));
    }
  }
}

void InvariantChecker::on_flow_finished(const Flow& f, double now) {
  ++finished_;
  {
    std::ostringstream os;
    os << "done  " << describe_flow(f) << " t=" << now;
    record(os.str());
  }
  const auto fid = static_cast<std::size_t>(f.id());
  const double observed = fid < observed_bytes_.size() ? observed_bytes_[fid] : 0.0;

  // Invariant 3: the simulator's accounting matches the observed segments.
  if (std::abs(observed - f.bytes_sent) > config_.byte_tolerance) {
    std::ostringstream os;
    os << describe_flow(f) << " bytes_sent=" << f.bytes_sent << " but observed segments sum to "
       << observed;
    fail(os.str());
  }
  if (f.state == FlowState::kCompleted) {
    if (std::abs(observed - f.spec.size) > config_.byte_tolerance) {
      std::ostringstream os;
      os << describe_flow(f) << " completed but transmitted " << observed << " of "
         << f.spec.size << " bytes";
      fail(os.str());
    }
    if (f.completion_time > f.spec.deadline + config_.time_tolerance) {
      std::ostringstream os;
      os << describe_flow(f) << " completed at " << f.completion_time
         << ", past its deadline";
      fail(os.str());
    }
  }
}

void InvariantChecker::on_run_complete(const net::Network& net, double end_time) {
  flush_window();
  for (const Flow& f : net.flows()) {
    // Every registered flow must have reached a terminal state at quiescence.
    if (!f.finished()) {
      fail(describe_flow(f) + " not terminal at quiescence (t=" +
           std::to_string(end_time) + ")");
    }
  }
  for (const Task& t : net.tasks()) {
    if (t.spec.flows.empty()) continue;
    if (t.state == TaskState::kAdmitted || t.state == TaskState::kPending) {
      fail("task " + std::to_string(t.id()) + " still open at quiescence");
    }
    if (t.state != TaskState::kCompleted) continue;
    // Invariant 5, task level: a completed (accepted) task finished every
    // flow before the shared deadline.
    if (t.completed_flows != t.flow_count()) {
      fail("task " + std::to_string(t.id()) + " marked completed with " +
           std::to_string(t.completed_flows) + "/" + std::to_string(t.flow_count()) +
           " flows done");
    }
    for (const net::FlowId fid : t.spec.flows) {
      const Flow& f = net.flow(fid);
      if (f.state != FlowState::kCompleted ||
          f.completion_time > f.spec.deadline + config_.time_tolerance) {
        fail("completed task " + std::to_string(t.id()) + " has unfinished or late " +
             describe_flow(f));
      }
    }
  }
}

}  // namespace taps::sim
