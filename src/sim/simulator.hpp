// Fluid-flow discrete-event simulator.
//
// The paper evaluates every protocol with a *flow-level* simulator: between
// events, each flow transmits at a scheduler-assigned rate; events are task
// arrivals, flow completions, flow deadlines, and scheduler-internal rate
// changes (TAPS time-slice boundaries). This engine drives any Scheduler
// over a Network and keeps byte accounting exact.
//
// Two engines produce bit-identical runs (pinned by
// tests/sim/sim_engine_equiv_prop_test.cpp and the golden timelines):
//
//  - SimEngine::kIndexed (default): per-event work scales with the flows
//    that are actually transmitting or changing, not with every active flow.
//    A compacting "running" list (flows with rate > 0, ordered by enlist
//    sequence) feeds the completion projection; a deadline min-heap is
//    populated once per admission; the rate-dirty set drained from the
//    Network's FlowStateArena reclassifies only flows whose rate moved in
//    assign_rates. See DESIGN.md "Simulation engine".
//  - SimEngine::kReference: the original O(active)-per-event rescan loop,
//    kept as the oracle.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace taps::sim {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();
/// Sub-byte tolerance when deciding that a flow has finished.
inline constexpr double kByteEpsilon = 1e-6;
/// Tolerance when comparing simulation times.
inline constexpr double kTimeEpsilon = 1e-9;

/// Scheduling policy driven by the simulator. Implementations mutate flow
/// state in the Network: admit/reject tasks, assign paths, set rates.
// taps-threading: single-domain -- scheduler state advances under one simulation domain
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Bind to the network for one run. Called once before the first event.
  virtual void bind(net::Network& net) { net_ = &net; }

  /// A task (and all of its flows) arrived at `now`. The scheduler must
  /// leave each of the task's flows either kActive (admitted) or kRejected.
  /// It may also preempt previously admitted tasks (mark them rejected).
  virtual void on_task_arrival(net::TaskId id, double now) = 0;

  /// A flow left the active set (completed or missed its deadline) at `now`.
  /// The flow's final state is already recorded in the Network.
  virtual void on_flow_finished(net::FlowId id, double now) = 0;

  /// Recompute rates of all active flows at `now` (via Flow::set_rate).
  /// May proactively terminate doomed flows (PDQ Early Termination) via
  /// Network::on_flow_missed. Returns the earliest future time at which
  /// rates will change even without an arrival/completion/deadline
  /// (kInfinity if none) — TAPS returns its next time-slice boundary.
  virtual double assign_rates(double now) = 0;

 protected:
  net::Network* net_ = nullptr;
};

/// Observes actual transmission segments (used for throughput-vs-time
/// series, e.g. the testbed experiment) plus the simulator's scheduler
/// boundaries. Only on_transmit is mandatory; the boundary hooks default to
/// no-ops so existing observers are unaffected. InvariantChecker implements
/// all of them to audit every run end-to-end.
class TransmitObserver {
 public:
  virtual ~TransmitObserver() = default;
  /// Flow `f` transmitted `bytes` uniformly over [t0, t1).
  virtual void on_transmit(const net::Flow& f, double t0, double t1, double bytes) = 0;
  /// Task `t` (one wave of it) is about to be announced to the scheduler at
  /// `now`. Fires for every scheduler kind — the scheduler-side
  /// sched::ScheduleObserver::on_task_seen only fires for schedulers that
  /// implement decision hooks (sim::TimelineRecorder dedupes the pair).
  virtual void on_task_arrival(const net::Task& /*t*/, double /*now*/) {}
  /// The event loop is about to process the event at time `now` (called once
  /// per iteration, with non-decreasing `now`).
  virtual void on_event(double /*now*/) {}
  /// Flow `f` just left the active set (its final state — kCompleted or
  /// kMissed — is already recorded and the scheduler has been notified).
  virtual void on_flow_finished(const net::Flow& /*f*/, double /*now*/) {}
  /// The run reached quiescence at `end_time`; `net` holds the final state.
  virtual void on_run_complete(const net::Network& /*net*/, double /*end_time*/) {}
};

/// Which event-loop implementation FluidSimulator::run uses. Both produce
/// bit-identical schedules, timelines, and SimStats outcome fields; only the
/// SimEffort work counters differ.
enum class SimEngine : std::uint8_t {
  kIndexed,    // indexed next-event structures (default)
  kReference,  // original per-event O(active) rescan, kept as the oracle
};

[[nodiscard]] const char* to_string(SimEngine e);

/// How much work the engine did, as opposed to what it computed. These are
/// engine-dependent by design (the indexed engine exists to shrink them) and
/// are excluded from engine-equivalence comparisons — the same convention as
/// TapsCounters, which Shard::fingerprint excludes. Deterministic for a
/// given engine and workload.
// taps-threading: thread-compatible
struct SimEffort {
  std::size_t flows_touched = 0;       // per-flow visits in the hot loops
  std::size_t lazy_skips = 0;          // active-flow visits avoided vs a full rescan
  std::size_t heap_invalidations = 0;  // stale deadline-heap entries dropped
  std::size_t rate_dirty = 0;          // rate-dirty entries drained from the arena
};

// taps-threading: thread-compatible
struct SimStats {
  double end_time = 0.0;        // time of the last event processed
  std::size_t events = 0;       // event-loop iterations
  std::size_t completions = 0;  // flows completed
  std::size_t misses = 0;       // flows that missed their deadline
  SimEffort effort;             // engine work counters (engine-dependent)
};

// taps-threading: single-domain -- event loop state owned by one simulation domain
class FluidSimulator {
 public:
  FluidSimulator(net::Network& net, Scheduler& scheduler,
                 SimEngine engine = SimEngine::kIndexed)
      : net_(&net), scheduler_(&scheduler), engine_(engine) {}

  void set_observer(TransmitObserver* observer) { observer_ = observer; }
  void set_engine(SimEngine engine) { engine_ = engine; }
  [[nodiscard]] SimEngine engine() const { return engine_; }

  /// Run to quiescence: all tasks arrived and no active flow remains.
  SimStats run();

  [[nodiscard]] double now() const { return now_; }

 private:
  struct Wave {
    double time = 0.0;
    net::TaskId task = 0;
  };
  /// (enlist sequence, flow): the indexed engine keys all processing order
  /// on the sequence a flow entered the active set, which is exactly the
  /// reference engine's active_-list order.
  struct SeqFlow {
    std::int64_t seq = 0;
    net::FlowId fid = net::kInvalidFlow;
  };
  struct DeadlineEntry {
    double deadline = 0.0;
    std::int64_t seq = 0;
    net::FlowId fid = net::kInvalidFlow;
  };
  struct DeadlineAfter {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };
  using DeadlineHeap =
      std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>, DeadlineAfter>;

  [[nodiscard]] std::vector<Wave> build_waves() const;
  SimStats run_reference();
  SimStats run_indexed();
  /// Shared tail: final state census, on_run_complete.
  SimStats finish_run();

  // Reference-engine helpers.
  /// Advance all active flows from now_ to `t` at their current rates.
  void advance_to(double t);
  /// Mark finished flows (completed / missed) and notify the scheduler.
  void settle(double now);

  net::Network* net_;
  Scheduler* scheduler_;
  TransmitObserver* observer_ = nullptr;
  SimEngine engine_ = SimEngine::kIndexed;
  double now_ = 0.0;
  SimStats stats_;

  // Reference engine: the flat active list.
  std::vector<net::FlowId> active_;

  // Indexed engine state (reset per run).
  std::vector<std::int64_t> seq_of_;      // per flow; -1 = never enlisted
  std::vector<std::uint8_t> in_running_;  // per flow: has a running_ entry
  std::vector<std::uint8_t> retired_;     // per flow: active_count_ already decremented
  std::vector<SeqFlow> running_;          // flows with rate > 0, sorted by seq
  DeadlineHeap deadline_heap_;
  std::vector<SeqFlow> overdue_;       // enlisted past their deadline; settled, never a candidate
  std::vector<SeqFlow> finish_watch_;  // enlisted at/below kByteEpsilon remaining
  std::size_t active_count_ = 0;       // unfinished enlisted flows (drives lazy_skips)
  std::int64_t next_seq_ = 0;
  // Scratch buffers (reused across events to avoid per-event allocation).
  std::vector<SeqFlow> drained_;
  std::vector<SeqFlow> miss_scratch_;
  std::vector<net::FlowId> dirty_scratch_;
};

}  // namespace taps::sim
