// Fluid-flow discrete-event simulator.
//
// The paper evaluates every protocol with a *flow-level* simulator: between
// events, each flow transmits at a scheduler-assigned rate; events are task
// arrivals, flow completions, flow deadlines, and scheduler-internal rate
// changes (TAPS time-slice boundaries). This engine drives any Scheduler
// over a Network and keeps byte accounting exact.
#pragma once

#include <limits>
#include <string>

#include "net/network.hpp"

namespace taps::sim {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();
/// Sub-byte tolerance when deciding that a flow has finished.
inline constexpr double kByteEpsilon = 1e-6;
/// Tolerance when comparing simulation times.
inline constexpr double kTimeEpsilon = 1e-9;

/// Scheduling policy driven by the simulator. Implementations mutate flow
/// state in the Network: admit/reject tasks, assign paths, set rates.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Bind to the network for one run. Called once before the first event.
  virtual void bind(net::Network& net) { net_ = &net; }

  /// A task (and all of its flows) arrived at `now`. The scheduler must
  /// leave each of the task's flows either kActive (admitted) or kRejected.
  /// It may also preempt previously admitted tasks (mark them rejected).
  virtual void on_task_arrival(net::TaskId id, double now) = 0;

  /// A flow left the active set (completed or missed its deadline) at `now`.
  /// The flow's final state is already recorded in the Network.
  virtual void on_flow_finished(net::FlowId id, double now) = 0;

  /// Recompute rates of all active flows at `now` (writes Flow::rate).
  /// May proactively terminate doomed flows (PDQ Early Termination) via
  /// Network::on_flow_missed. Returns the earliest future time at which
  /// rates will change even without an arrival/completion/deadline
  /// (kInfinity if none) — TAPS returns its next time-slice boundary.
  virtual double assign_rates(double now) = 0;

 protected:
  net::Network* net_ = nullptr;
};

/// Observes actual transmission segments (used for throughput-vs-time
/// series, e.g. the testbed experiment) plus the simulator's scheduler
/// boundaries. Only on_transmit is mandatory; the boundary hooks default to
/// no-ops so existing observers are unaffected. InvariantChecker implements
/// all of them to audit every run end-to-end.
class TransmitObserver {
 public:
  virtual ~TransmitObserver() = default;
  /// Flow `f` transmitted `bytes` uniformly over [t0, t1).
  virtual void on_transmit(const net::Flow& f, double t0, double t1, double bytes) = 0;
  /// Task `t` (one wave of it) is about to be announced to the scheduler at
  /// `now`. Fires for every scheduler kind — the scheduler-side
  /// sched::ScheduleObserver::on_task_seen only fires for schedulers that
  /// implement decision hooks (sim::TimelineRecorder dedupes the pair).
  virtual void on_task_arrival(const net::Task& /*t*/, double /*now*/) {}
  /// The event loop is about to process the event at time `now` (called once
  /// per iteration, with non-decreasing `now`).
  virtual void on_event(double /*now*/) {}
  /// Flow `f` just left the active set (its final state — kCompleted or
  /// kMissed — is already recorded and the scheduler has been notified).
  virtual void on_flow_finished(const net::Flow& /*f*/, double /*now*/) {}
  /// The run reached quiescence at `end_time`; `net` holds the final state.
  virtual void on_run_complete(const net::Network& /*net*/, double /*end_time*/) {}
};

struct SimStats {
  double end_time = 0.0;        // time of the last event processed
  std::size_t events = 0;       // event-loop iterations
  std::size_t completions = 0;  // flows completed
  std::size_t misses = 0;       // flows that missed their deadline
};

class FluidSimulator {
 public:
  FluidSimulator(net::Network& net, Scheduler& scheduler)
      : net_(&net), scheduler_(&scheduler) {}

  void set_observer(TransmitObserver* observer) { observer_ = observer; }

  /// Run to quiescence: all tasks arrived and no active flow remains.
  SimStats run();

  [[nodiscard]] double now() const { return now_; }

 private:
  /// Advance all active flows from now_ to `t` at their current rates.
  void advance_to(double t);
  /// Mark finished flows (completed / missed) and notify the scheduler.
  void settle(double now);

  net::Network* net_;
  Scheduler* scheduler_;
  TransmitObserver* observer_ = nullptr;
  std::vector<net::FlowId> active_;
  double now_ = 0.0;
  SimStats stats_;
};

}  // namespace taps::sim
