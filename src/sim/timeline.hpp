// Timeline capture: the `taps-timeline-v1` event stream.
//
// A TimelineRecorder folds both observation channels of a run — the data
// plane (sim::TransmitObserver: arrivals, transmissions, completions,
// misses) and the control plane (sched::ScheduleObserver: admits, rejects,
// preemptions with victim ids, per-link time-slice grants) — into one
// compact, deterministic, versioned event stream. The stream serializes to
// a byte-stable text dump (golden-timeline regression tests diff it
// verbatim) and a compact binary form (what sweeps/benches write per cell;
// scripts/render_gantt.py reads both and renders per-link Gantt SVGs).
//
// Determinism: event payload doubles are emitted via std::to_chars shortest
// round-trip formatting (text) or raw IEEE-754 bits little-endian (binary),
// so two bit-identical runs produce byte-identical streams on any platform.
// Recording is strictly pure — attaching a recorder never changes a
// schedule, fingerprint, or metric (tests/timeline/timeline_identity_test).
//
// See docs/TIMELINE.md for the full format specification.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/schedule_observer.hpp"
#include "sim/simulator.hpp"

namespace taps::sim {

enum class TimelineEventKind : std::uint8_t {
  kArrive = 0,    // a task wave reached the scheduler       (a = task)
  kAdmit = 1,     // the arriving task was admitted          (a = task)
  kReject = 2,    // the arriving task was rejected          (a = task)
  kPreempt = 3,   // an incumbent was revoked                (a = victim, b = by)
  kGrant = 4,     // a flow's committed route/slices changed (a = flow, b = task)
  kComplete = 5,  // a flow delivered all bytes              (a = flow, b = task)
  kMiss = 6,      // a flow missed its deadline              (a = flow, b = task)
  kTransmit = 7,  // bytes moved over [time, x0)             (a = flow, b = task)
  kRunEnd = 8,    // the run reached quiescence
};

[[nodiscard]] const char* to_string(TimelineEventKind k);

/// One timeline event. Grant events reference `links_count` link ids and
/// `slices_count` intervals in the owning Timeline's arenas (offset/count
/// into Timeline::links / Timeline::slices); all other kinds carry counts of
/// zero. `x0`/`x1` are only meaningful for kTransmit (end time and bytes).
// taps-threading: thread-compatible
struct TimelineEvent {
  TimelineEventKind kind = TimelineEventKind::kRunEnd;
  double time = 0.0;
  std::int32_t a = -1;
  std::int32_t b = -1;
  double x0 = 0.0;
  double x1 = 0.0;
  std::uint32_t links_offset = 0;
  std::uint32_t links_count = 0;
  std::uint32_t slices_offset = 0;
  std::uint32_t slices_count = 0;

  friend bool operator==(const TimelineEvent&, const TimelineEvent&) = default;
};

/// A recorded (or deserialized) event stream plus the shared arenas its
/// grant events index into.
// taps-threading: thread-compatible
struct Timeline {
  std::vector<TimelineEvent> events;
  std::vector<topo::LinkId> links;     // grant link-id arena
  std::vector<util::Interval> slices;  // grant slice arena

  friend bool operator==(const Timeline&, const Timeline&) = default;
};

// taps-threading: thread-compatible
struct TimelineConfig {
  /// Also record one kTransmit event per contiguous transmission segment.
  /// Off by default (grants already describe TAPS schedules exactly); turn
  /// on to capture per-flow activity of schedulers that do not pre-allocate
  /// slices (fair sharing, PDQ, ...) or to cross-check grants against what
  /// the data plane actually did.
  bool record_transmissions = false;
};

/// Records a run's timeline. Attach to the simulator with set_observer()
/// AND to the scheduler with sched::BaseScheduler::set_schedule_observer()
/// (or svc::Shard::set_schedule_observer for service shards; scheduler-only
/// attachment works too and simply lacks arrival/completion/transmit
/// events, as does simulator-only attachment for grant/decision events).
// taps-threading: single-domain -- capture state tracks one simulation domain
class TimelineRecorder final : public TransmitObserver, public sched::ScheduleObserver {
 public:
  TimelineRecorder() = default;
  explicit TimelineRecorder(const TimelineConfig& config) : config_(config) {}

  // ---- TransmitObserver (data plane) ----
  void on_task_arrival(const net::Task& t, double now) override;
  void on_transmit(const net::Flow& f, double t0, double t1, double bytes) override;
  void on_flow_finished(const net::Flow& f, double now) override;
  void on_run_complete(const net::Network& net, double end_time) override;

  // ---- sched::ScheduleObserver (control plane) ----
  void on_task_seen(net::TaskId id, double now) override;
  void on_task_admitted(net::TaskId id, double now) override;
  void on_task_rejected(net::TaskId id, double now) override;
  void on_task_preempted(net::TaskId victim, net::TaskId by, double now) override;
  void on_plan_committed(double now, std::span<const sched::CommittedFlowView> plan) override;

  [[nodiscard]] const Timeline& timeline() const { return timeline_; }
  [[nodiscard]] const std::vector<TimelineEvent>& events() const { return timeline_.events; }
  [[nodiscard]] std::size_t count(TimelineEventKind kind) const;

  /// Reset to an empty stream (config and attachments unchanged).
  void clear();

  /// Serialization conveniences over the free functions below.
  [[nodiscard]] std::string text() const;
  void save_text(const std::string& path) const;
  void save_binary(const std::string& path) const;

 private:
  void record_arrival(net::TaskId id, double now);
  TimelineEvent& push(TimelineEventKind kind, double time, std::int32_t a, std::int32_t b);

  TimelineConfig config_;
  Timeline timeline_;
  // Arrival dedupe: the simulator-side and scheduler-side hooks both
  // announce the same (task, time) back to back; record it once.
  net::TaskId last_arrival_task_ = net::kInvalidTask;
  double last_arrival_time_ = 0.0;
  bool has_last_arrival_ = false;
};

/// Text form: a `taps-timeline-v1` header line, one line per event, a
/// trailing `end` line. Byte-stable across platforms (shortest round-trip
/// double formatting); this is what golden files commit.
void write_timeline_text(std::ostream& os, const Timeline& timeline);

/// Binary form: "TAPSTL01" magic, little-endian fixed-width fields. Compact
/// enough to emit per sweep cell; scripts/render_gantt.py parses it.
void write_timeline_binary(std::ostream& os, const Timeline& timeline);

/// Parse the binary form back (round-trip pinned by the recorder tests).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Timeline read_timeline_binary(std::istream& is);

/// Event-level diff of two text dumps (expected vs actual): reports the
/// first divergent event line with `context` lines around it, plus any
/// length mismatch — what the golden-timeline harness prints on failure.
/// Returns an empty string when the dumps are identical.
[[nodiscard]] std::string diff_timeline_text(const std::string& expected,
                                             const std::string& actual,
                                             std::size_t context = 3);

}  // namespace taps::sim
