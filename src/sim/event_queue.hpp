// Generic discrete-event queue: time-ordered callbacks with stable FIFO
// tie-breaking and O(log n) cancellation. Used by the SDN testbed emulator;
// the fluid simulator computes its next-event times directly.
//
// Cancellation is lazy: cancel() only erases the callback, leaving a stale
// entry in the heap to be dropped when it surfaces. To bound memory under
// cancel-heavy workloads (timer wheels that re-arm, preemption storms), the
// heap is compacted in place whenever stale entries outnumber live ones by
// more than 2x — so heap_size() <= 3 * size() always holds between calls,
// and the rebuild amortises to O(1) per cancel.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace taps::sim {

using EventId = std::uint64_t;

// taps-threading: single-domain -- heap mutates under the owning simulation domain
class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule(double at, Callback cb);

  /// Cancel a pending event; returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }
  /// Heap entries including stale (cancelled) ones; bounded by 3 * size().
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  [[nodiscard]] double now() const { return now_; }

  /// Time of the next pending event (requires !empty()).
  [[nodiscard]] double peek_time() const;

  /// Pop and run the next event; advances now(). Requires !empty().
  void run_next();

  /// Run events until the queue drains or now() would exceed `until`.
  void run_until(double until);

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventId id = 0;
    /// Min-heap order: earliest time first, FIFO within a time.
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Pop heap entries whose id is no longer in callbacks_ (cancelled).
  void drop_stale() const;
  /// Rebuild the heap without stale entries once they exceed 2x the live
  /// count. O(heap) but amortised O(1) per cancel.
  void maybe_compact();

  // heap_ is mutable so the lazily-cleaning reads (peek_time) stay const.
  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  double now_ = 0.0;
};

}  // namespace taps::sim
