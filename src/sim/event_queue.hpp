// Generic discrete-event queue: time-ordered callbacks with stable FIFO
// tie-breaking and O(log n) cancellation. Used by the SDN testbed emulator;
// the fluid simulator computes its next-event times directly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace taps::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule(double at, Callback cb);

  /// Cancel a pending event; returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }
  [[nodiscard]] double now() const { return now_; }

  /// Time of the next pending event (requires !empty()).
  [[nodiscard]] double peek_time() const;

  /// Pop and run the next event; advances now(). Requires !empty().
  void run_next();

  /// Run events until the queue drains or now() would exceed `until`.
  void run_until(double until);

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventId id = 0;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Pop heap entries whose id is no longer in callbacks_ (cancelled).
  void drop_stale() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  double now_ = 0.0;
};

}  // namespace taps::sim
