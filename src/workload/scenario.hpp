// Named experiment scenarios: topology choice + workload parameters.
//
// Every figure's bench builds its sweep from one of these presets. The
// paper-scale topologies (36 000-host tree, 32-pod fat-tree) are available
// behind `full_scale`; the scaled presets keep the same oversubscription
// structure at wall-clock-friendly size (see DESIGN.md).
#pragma once

#include <memory>
#include <string>

#include "topo/fattree.hpp"
#include "topo/partial_fattree.hpp"
#include "topo/tree.hpp"
#include "workload/task_generator.hpp"

namespace taps::workload {

enum class TopoKind { kSingleRooted, kFatTree, kTestbed };

[[nodiscard]] const char* to_string(TopoKind k);

struct Scenario {
  std::string name = "default";
  TopoKind topo = TopoKind::kSingleRooted;
  bool full_scale = false;
  WorkloadConfig workload;
  std::size_t max_paths = 16;  // candidate-path budget (TAPS) / ECMP fan-out
  std::uint64_t seed = 42;

  /// Paper Sec. V-A defaults on the single-rooted tree.
  [[nodiscard]] static Scenario single_rooted(bool full_scale = false);
  /// Paper Sec. V-A defaults on the fat-tree (multi-rooted).
  [[nodiscard]] static Scenario fat_tree(bool full_scale = false);
  /// Paper Sec. VI testbed: 8-host partial fat-tree, 100 flows of ~100 KB.
  [[nodiscard]] static Scenario testbed();
};

/// Instantiate the scenario's topology.
[[nodiscard]] std::unique_ptr<topo::Topology> make_topology(const Scenario& s);

}  // namespace taps::workload
