#include "workload/task_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <span>
#include <stdexcept>

namespace taps::workload {

const char* to_string(SizeDistribution d) {
  switch (d) {
    case SizeDistribution::kNormal:
      return "normal";
    case SizeDistribution::kLognormal:
      return "lognormal";
    case SizeDistribution::kPareto:
      return "pareto";
  }
  return "?";
}

namespace {

double draw_size(const WorkloadConfig& config, util::Rng& rng) {
  switch (config.size_distribution) {
    case SizeDistribution::kNormal:
      return rng.normal_truncated(config.mean_flow_size, config.flow_size_stddev,
                                  config.min_flow_size);
    case SizeDistribution::kLognormal: {
      // Match mean and the configured stddev: for LN(mu, s),
      // mean = exp(mu + s^2/2) and var = (exp(s^2)-1) mean^2.
      const double cv2 = (config.flow_size_stddev * config.flow_size_stddev) /
                         (config.mean_flow_size * config.mean_flow_size);
      const double s2 = std::log1p(cv2);
      const double mu = std::log(config.mean_flow_size) - 0.5 * s2;
      std::lognormal_distribution<double> dist(mu, std::sqrt(s2));
      return std::max(config.min_flow_size, dist(rng.engine()));
    }
    case SizeDistribution::kPareto: {
      // Bounded Pareto, shape a = 1.5; scale chosen so E[X] = mean:
      // for unbounded Pareto, E = a*xm/(a-1) -> xm = mean*(a-1)/a.
      constexpr double kShape = 1.5;
      const double xm = config.mean_flow_size * (kShape - 1.0) / kShape;
      const double u = std::max(1e-12, rng.uniform_real(0.0, 1.0));
      const double x = xm / std::pow(u, 1.0 / kShape);
      return std::clamp(x, config.min_flow_size, 50.0 * config.mean_flow_size);
    }
  }
  return config.mean_flow_size;
}

}  // namespace

std::vector<net::TaskId> generate(net::Network& net, const WorkloadConfig& config,
                                  util::Rng& rng) {
  if (!net.tasks().empty()) {
    throw std::invalid_argument("workload::generate expects an empty network");
  }
  const auto& hosts = net.topology().hosts();
  if (hosts.size() < 2) throw std::invalid_argument("topology needs at least 2 hosts");

  std::vector<net::TaskId> out;
  out.reserve(static_cast<std::size_t>(config.task_count));

  double arrival = 0.0;
  for (int i = 0; i < config.task_count; ++i) {
    // Poisson arrivals: exponential inter-arrival gaps.
    if (i > 0) arrival += rng.exponential(1.0 / config.arrival_rate);

    const double rel_deadline =
        std::max(config.min_deadline, rng.exponential(config.mean_deadline));
    const double deadline = arrival + rel_deadline;

    std::int64_t flow_count = 1;
    if (!config.single_flow_tasks) {
      flow_count = std::max<std::int64_t>(1, rng.poisson(config.flows_per_task_mean));
    }

    std::vector<net::FlowSpec> flows;
    flows.reserve(static_cast<std::size_t>(flow_count));
    for (std::int64_t j = 0; j < flow_count; ++j) {
      net::FlowSpec fs;
      const auto src_idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
      auto dst_idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
      if (dst_idx >= src_idx) ++dst_idx;  // uniform over hosts != src
      fs.src = hosts[src_idx];
      fs.dst = hosts[dst_idx];
      fs.size = draw_size(config, rng);
      flows.push_back(fs);
    }

    const int waves = std::max(1, config.waves_per_task);
    if (waves == 1 || flows.size() < 2) {
      out.push_back(net.add_task(arrival, deadline, flows));
      continue;
    }
    // Split the flow list uniformly across waves; later waves arrive after
    // exponential gaps but inherit the task's deadline.
    const std::size_t per_wave = (flows.size() + static_cast<std::size_t>(waves) - 1) /
                                 static_cast<std::size_t>(waves);
    const std::span<const net::FlowSpec> all(flows);
    const net::TaskId tid =
        net.add_task(arrival, deadline, all.subspan(0, std::min(per_wave, flows.size())));
    out.push_back(tid);
    // Keep every wave inside the first 80% of the deadline window: a wave
    // arriving at/after the deadline could never complete and would just
    // fail the task unconditionally.
    const double latest_wave = arrival + 0.8 * (deadline - arrival);
    double wave_at = arrival;
    for (std::size_t start = per_wave; start < flows.size(); start += per_wave) {
      wave_at = std::min(wave_at + rng.exponential(config.wave_gap_mean), latest_wave);
      net.extend_task(tid, wave_at, all.subspan(start, std::min(per_wave, flows.size() - start)));
    }
  }
  return out;
}

}  // namespace taps::workload
