// Workload traces: persist a generated workload to CSV and reload it, so a
// run can be reproduced or inspected independently of the generator.
//
// Format (one row per flow, header included):
//   task,arrival,deadline,flow,src,dst,size
#pragma once

#include <string>

#include "net/network.hpp"

namespace taps::workload {

/// Write the tasks/flows registered in `net` to `path`.
void save_trace(const net::Network& net, const std::string& path);

/// Load a trace into `net` (which must be empty). Hosts are referenced by
/// node id and must exist in the bound topology. Returns the task count.
std::size_t load_trace(net::Network& net, const std::string& path);

}  // namespace taps::workload
