#include "workload/scenario.hpp"

namespace taps::workload {

const char* to_string(TopoKind k) {
  switch (k) {
    case TopoKind::kSingleRooted:
      return "single-rooted";
    case TopoKind::kFatTree:
      return "fat-tree";
    case TopoKind::kTestbed:
      return "testbed";
  }
  return "?";
}

Scenario Scenario::single_rooted(bool full_scale) {
  Scenario s;
  s.name = full_scale ? "single-rooted-paper" : "single-rooted-scaled";
  s.topo = TopoKind::kSingleRooted;
  s.full_scale = full_scale;
  s.workload.task_count = 30;
  // Paper: mean 1200 flows/task on 36 000 hosts; the scaled preset keeps the
  // flows-per-host density (1200/36000 = 1/30) on the 240-host tree.
  s.workload.flows_per_task_mean = full_scale ? 1200.0 : 24.0;
  s.workload.arrival_rate = 300.0;
  return s;
}

Scenario Scenario::fat_tree(bool full_scale) {
  Scenario s;
  s.name = full_scale ? "fat-tree-paper" : "fat-tree-scaled";
  s.topo = TopoKind::kFatTree;
  s.full_scale = full_scale;
  s.workload.task_count = 30;
  // Paper: mean 1024 flows/task on 8192 hosts. The k=8 fat-tree has full
  // bisection bandwidth, so matching the paper's flows-per-host density
  // leaves it uncontended; the scaled preset raises density and arrival
  // rate until the 40 ms operating point sits mid-range (see DESIGN.md).
  s.workload.flows_per_task_mean = full_scale ? 1024.0 : 96.0;
  s.workload.arrival_rate = full_scale ? 300.0 : 1500.0;
  return s;
}

Scenario Scenario::testbed() {
  Scenario s;
  s.name = "testbed";
  s.topo = TopoKind::kTestbed;
  s.workload.task_count = 100;          // 100 iperf flows...
  s.workload.single_flow_tasks = true;  // ...each its own task
  s.workload.mean_flow_size = 100e3;    // 100 KB
  s.workload.flow_size_stddev = 25e3;
  s.workload.mean_deadline = 0.040;
  s.workload.arrival_rate = 5000.0;     // all within the first ~20 ms
  return s;
}

std::unique_ptr<topo::Topology> make_topology(const Scenario& s) {
  switch (s.topo) {
    case TopoKind::kSingleRooted:
      return std::make_unique<topo::SingleRootedTree>(
          s.full_scale ? topo::SingleRootedConfig::paper() : topo::SingleRootedConfig::scaled());
    case TopoKind::kFatTree:
      return std::make_unique<topo::FatTree>(s.full_scale ? topo::FatTreeConfig::paper()
                                                          : topo::FatTreeConfig::scaled());
    case TopoKind::kTestbed:
      return std::make_unique<topo::PartialFatTree>();
  }
  return nullptr;
}

}  // namespace taps::workload
