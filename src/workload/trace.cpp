#include "workload/trace.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

#include "util/csv.hpp"

namespace taps::workload {

void save_trace(const net::Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace for writing: " + path);
  util::CsvWriter csv(out);
  csv.row("task", "arrival", "deadline", "flow", "src", "dst", "size");
  for (const auto& t : net.tasks()) {
    for (const net::FlowId fid : t.spec.flows) {
      const auto& f = net.flow(fid);
      csv.row(static_cast<long long>(t.id()), t.spec.arrival, t.spec.deadline,
              static_cast<long long>(fid), static_cast<long long>(f.spec.src),
              static_cast<long long>(f.spec.dst), f.spec.size);
    }
  }
}

std::size_t load_trace(net::Network& net, const std::string& path) {
  if (!net.tasks().empty()) {
    throw std::invalid_argument("load_trace expects an empty network");
  }
  const auto rows = util::read_csv(path);
  if (rows.empty()) throw std::runtime_error("empty trace: " + path);

  struct PendingTask {
    double arrival = 0.0;
    double deadline = 0.0;
    std::vector<net::FlowSpec> flows;
  };
  std::map<long long, PendingTask> tasks;  // ordered by original task id

  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != 7) throw std::runtime_error("malformed trace row in " + path);
    PendingTask& t = tasks[std::stoll(r[0])];
    t.arrival = std::stod(r[1]);
    t.deadline = std::stod(r[2]);
    net::FlowSpec fs;
    fs.src = static_cast<topo::NodeId>(std::stol(r[4]));
    fs.dst = static_cast<topo::NodeId>(std::stol(r[5]));
    fs.size = std::stod(r[6]);
    t.flows.push_back(fs);
  }
  for (const auto& [id, t] : tasks) {
    net.add_task(t.arrival, t.deadline, t.flows);
  }
  return tasks.size();
}

}  // namespace taps::workload
