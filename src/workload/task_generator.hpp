// Workload generation following the paper's evaluation setup (Sec. V-A):
// Poisson task arrivals at rate lambda; each task has a Poisson-distributed
// number of flows (mean mu, at least 1) that all arrive with the task and
// share one deadline; deadlines are exponential (default mean 40 ms); flow
// sizes are normal (default mean 200 KB); endpoints are uniform random
// distinct hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace taps::workload {

/// Flow-size distribution family. The paper generates sizes from a normal
/// distribution; production data-center traffic is famously heavy-tailed,
/// so log-normal and (bounded) Pareto options let the benches test whether
/// the schedulers' ordering is robust to the shape assumption.
enum class SizeDistribution { kNormal, kLognormal, kPareto };

[[nodiscard]] const char* to_string(SizeDistribution d);

struct WorkloadConfig {
  int task_count = 30;
  double flows_per_task_mean = 24.0;
  double arrival_rate = 300.0;     // lambda, tasks per second
  double mean_deadline = 0.040;    // seconds (relative), exponential
  double min_deadline = 0.002;     // floor: below this a flow cannot even start
  double mean_flow_size = 200e3;   // bytes
  double flow_size_stddev = 50e3;  // bytes (paper gives only the mean)
  double min_flow_size = 10e3;     // bytes, truncation floor
  /// Shape of the size distribution; every family is parameterized to hit
  /// `mean_flow_size` on average (Pareto uses shape 1.5, truncated at
  /// 50x the mean so task sizes stay finite-variance in practice).
  SizeDistribution size_distribution = SizeDistribution::kNormal;
  bool single_flow_tasks = false;  // Fig. 10 mode: task == flow

  /// Multi-wave tasks (the paper's dynamic Algorithm-1 setting): each task's
  /// flows are split uniformly across this many arrival waves; waves after
  /// the first arrive `wave_gap_mean` (exponential) apart and share the
  /// task's deadline. 1 = every flow arrives with the task (paper default).
  int waves_per_task = 1;
  double wave_gap_mean = 0.005;  // seconds
};

/// Generate `config.task_count` tasks into `net` (which must be empty).
/// Returns the created task ids. All randomness comes from `rng`.
std::vector<net::TaskId> generate(net::Network& net, const WorkloadConfig& config,
                                  util::Rng& rng);

}  // namespace taps::workload
