#include "svc/shard.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>
#include <utility>

#include "sim/simulator.hpp"

namespace taps::svc {

using net::Flow;
using net::FlowId;
using net::Task;
using net::TaskId;

Shard::Shard(const topo::Topology& topology, const ShardConfig& config)
    : topo_(&topology), config_(config), net_(std::make_unique<net::Network>(topology)),
      sched_(config.taps) {
  sched_.bind(*net_);
}

void Shard::advance_to(double t) {
  assert(t + sim::kTimeEpsilon >= clock_);
  if (t < clock_) return;
  // Completions: under the fluid contract an admitted TAPS flow transmits
  // exactly inside its pre-allocated slices, so it completes when its last
  // slice ends. Deliver completions in (time, id) order — the same order a
  // discrete-event simulator would — so scheduler bookkeeping stays
  // deterministic.
  std::vector<std::pair<double, FlowId>> done;
  std::size_t keep = 0;
  for (const FlowId fid : live_flows_) {
    const Flow& f = net_->flow(fid);
    if (f.finished()) continue;  // preempted since the last advance
    const auto& sl = sched_.slices(fid);
    if (!sl.empty() && sl.back_end() <= t) {
      done.emplace_back(sl.back_end(), fid);
      continue;
    }
    live_flows_[keep++] = fid;
  }
  live_flows_.resize(keep);
  std::sort(done.begin(), done.end());
  for (const auto& [at, fid] : done) {
    net_->on_flow_completed(fid, at);
    sched_.on_flow_finished(fid, at);
    ++completed_;
  }
  // Partial progress: `remaining` is the untransmitted slice mass. Flows
  // with no elapsed mass are left untouched so their remaining stays
  // bitwise equal to the committed value — the scheduler's cross-arrival
  // prefix reuse is gated on exactly that comparison.
  const double capacity = net_->capacity();
  for (const FlowId fid : live_flows_) {
    Flow& f = net_->flow(fid);
    const auto& sl = sched_.slices(fid);
    if (sl.empty() || sl.front_start() >= t) continue;
    f.remaining = capacity * sl.overlap_measure(t, sim::kInfinity);
    f.bytes_sent = f.spec.size - f.remaining;
  }
  if (!done.empty()) {
    std::erase_if(live_tasks_, [&](TaskId id) { return net_->task(id).finished(); });
  }
  clock_ = t;
}

TaskResponse Shard::process(Seq seq, const TaskRequest& request) {
  advance_to(request.arrival);
  maybe_compact();

  std::vector<net::FlowSpec> specs;
  specs.reserve(request.flows.size());
  for (const FlowRequest& fr : request.flows) {
    net::FlowSpec s;
    s.src = fr.src;
    s.dst = fr.dst;
    s.size = fr.size;
    s.arrival = request.arrival;
    s.deadline = request.deadline;
    specs.push_back(s);
  }
  const TaskId local = net_->add_task(request.arrival, request.deadline, specs);
  assert(static_cast<std::size_t>(local) == task_seq_.size());
  task_seq_.push_back(seq);

  const std::size_t preempted_before = sched_.counters().tasks_preempted;
  sched_.on_task_arrival(local, request.arrival);
  ++processed_;

  TaskResponse resp;
  resp.seq = seq;
  resp.client_tag = request.client_tag;

  // A preemption revokes exactly one previously-admitted task (the reject
  // rule's single victim): find it among the live tasks by its new
  // kRejected state and report its submission seq.
  if (sched_.counters().tasks_preempted != preempted_before) {
    for (const TaskId tid : live_tasks_) {
      if (net_->task(tid).state == net::TaskState::kRejected) {
        resp.preempted.push_back(task_seq_[static_cast<std::size_t>(tid)]);
        ++preempted_;
      }
    }
    std::erase_if(live_tasks_, [&](TaskId id) { return net_->task(id).finished(); });
    std::erase_if(live_flows_, [&](FlowId id) { return net_->flow(id).finished(); });
  }

  const Task& t = net_->task(local);
  if (t.state == net::TaskState::kAdmitted) {
    resp.reason = Reason::kAccepted;
    ++accepted_;
    live_tasks_.push_back(local);
    resp.grants.reserve(t.spec.flows.size());
    for (const FlowId fid : t.spec.flows) {
      live_flows_.push_back(fid);
      resp.grants.push_back(FlowGrant{net_->flow(fid).path, sched_.slices(fid)});
    }
  } else {
    resp.reason = Reason::kPlannerReject;
    ++rejected_;
  }
  return resp;
}

void Shard::maybe_compact() {
  if (config_.compact_interval == 0) return;
  if (++arrivals_since_compact_ < config_.compact_interval) return;
  arrivals_since_compact_ = 0;
  // Rebuild the registry keeping only unfinished tasks, in their original
  // relative order. The old->new flow-id map is order-isomorphic on the
  // kept flows, so every EDF+SJF tie-break in the migrated scheduler
  // compares identically and decisions are bit-for-bit unchanged (see
  // TapsScheduler::migrate).
  auto fresh = std::make_unique<net::Network>(*topo_);
  std::vector<FlowId> flow_map(net_->flows().size(), net::kInvalidFlow);
  std::vector<Seq> task_seq;
  std::vector<TaskId> live_tasks;
  std::vector<net::FlowSpec> specs;
  for (const Task& t : net_->tasks()) {
    if (t.finished()) continue;
    specs.clear();
    specs.reserve(t.spec.flows.size());
    for (const FlowId fid : t.spec.flows) specs.push_back(net_->flow(fid).spec);
    const TaskId nid = fresh->add_task(t.spec.arrival, t.spec.deadline, specs);
    Task& nt = fresh->task(nid);
    nt.state = t.state;
    nt.completed_flows = t.completed_flows;
    for (std::size_t k = 0; k < t.spec.flows.size(); ++k) {
      const Flow& of = net_->flow(t.spec.flows[k]);
      Flow& nf = fresh->flow(nt.spec.flows[k]);
      nf.state = of.state;
      nf.remaining = of.remaining;
      nf.set_rate(of.rate);
      nf.bytes_sent = of.bytes_sent;
      nf.completion_time = of.completion_time;
      nf.path = of.path;
      flow_map[static_cast<std::size_t>(of.id())] = nf.id();
    }
    task_seq.push_back(task_seq_[static_cast<std::size_t>(t.id())]);
    live_tasks.push_back(nid);
  }
  std::vector<FlowId> live_flows;
  live_flows.reserve(live_flows_.size());
  for (const FlowId fid : live_flows_) {
    if (net_->flow(fid).finished()) continue;
    assert(flow_map[static_cast<std::size_t>(fid)] != net::kInvalidFlow);
    live_flows.push_back(flow_map[static_cast<std::size_t>(fid)]);
  }
  sched_.migrate(*fresh, flow_map);
  net_ = std::move(fresh);
  task_seq_ = std::move(task_seq);
  live_tasks_ = std::move(live_tasks);
  live_flows_ = std::move(live_flows);
  ++compactions_;
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.processed = processed_;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.preempted = preempted_;
  s.completed = completed_;
  s.compactions = compactions_;
  s.live_tasks = live_tasks_.size();
  s.live_flows = live_flows_.size();
  s.registered_tasks = net_->tasks().size();
  s.registered_flows = net_->flows().size();
  s.clock = clock_;
  s.taps = sched_.counters();
  return s;
}

std::string Shard::fingerprint() const {
  std::ostringstream os;
  os << std::hexfloat;
  os << "clock " << clock_ << "\n";
  os << "counts " << processed_ << " " << accepted_ << " " << rejected_ << " " << preempted_
     << " " << completed_ << "\n";
  // Planner-effort counters (TapsCounters) are deliberately absent: they
  // measure work done, not state reached, and legitimately differ between
  // the incremental service and the full-replan oracle while the committed
  // schedule below stays bit-identical.
  for (const Task& t : net_->tasks()) {
    os << "task " << task_seq_[static_cast<std::size_t>(t.id())] << " "
       << static_cast<int>(t.state) << " " << t.completed_flows << "\n";
  }
  for (const FlowId fid : live_flows_) {
    const Flow& f = net_->flow(fid);
    os << "flow " << task_seq_[static_cast<std::size_t>(f.task())] << " " << f.remaining << " p";
    for (const topo::LinkId l : f.path.links) os << " " << l;
    os << " s";
    for (const util::Interval& iv : sched_.slices(fid).intervals()) {
      os << " [" << iv.lo << "," << iv.hi << ")";
    }
    os << "\n";
  }
  const core::OccupancyMap& occ = sched_.occupancy();
  for (std::size_t l = 0; l < occ.link_count(); ++l) {
    const util::IntervalSet& busy = occ.link(static_cast<topo::LinkId>(l));
    if (busy.empty()) continue;
    os << "link " << l;
    for (const util::Interval& iv : busy.intervals()) os << " [" << iv.lo << "," << iv.hi << ")";
    os << "\n";
  }
  return os.str();
}

std::optional<std::string> Shard::audit() const {
  // Absolute slack for double sums over slice endpoints scaled by link
  // capacity (~1e9): generous against ulp accumulation, far below any real
  // misaccounting (flow sizes are megabytes).
  constexpr double kByteSlack = 1e-3;
  std::ostringstream err;
  if (processed_ != accepted_ + rejected_) {
    err << "counter drift: processed " << processed_ << " != accepted " << accepted_
        << " + rejected " << rejected_;
    return err.str();
  }
  const core::OccupancyMap& occ = sched_.occupancy();
  std::vector<std::vector<util::Interval>> per_link(net_->graph().link_count());
  const double capacity = net_->capacity();
  for (const TaskId tid : live_tasks_) {
    if (net_->task(tid).state != net::TaskState::kAdmitted) {
      err << "live task seq " << task_seq_[static_cast<std::size_t>(tid)] << " not admitted";
      return err.str();
    }
  }
  for (const FlowId fid : live_flows_) {
    const Flow& f = net_->flow(fid);
    const Seq seq = task_seq_[static_cast<std::size_t>(f.task())];
    const util::IntervalSet& sl = sched_.slices(fid);
    if (!f.active()) {
      err << "live flow of task seq " << seq << " not active";
      return err.str();
    }
    if (sl.empty() || !sl.check_invariants()) {
      err << "task seq " << seq << ": empty or non-canonical slices";
      return err.str();
    }
    if (sl.back_end() > f.spec.deadline + sim::kTimeEpsilon) {
      err << "task seq " << seq << ": slices end " << sl.back_end() << " after deadline "
          << f.spec.deadline;
      return err.str();
    }
    if (sl.front_start() < f.spec.arrival - sim::kTimeEpsilon) {
      err << "task seq " << seq << ": slices start before arrival";
      return err.str();
    }
    const double planned = capacity * sl.overlap_measure(clock_, sim::kInfinity);
    if (planned < f.remaining - kByteSlack || planned > f.remaining + kByteSlack) {
      err << "task seq " << seq << ": future slices carry " << planned << " bytes, remaining "
          << f.remaining;
      return err.str();
    }
    for (const topo::LinkId l : f.path.links) {
      for (const util::Interval& iv : sl.intervals()) {
        if (occ.link(l).overlap_measure(iv.lo, iv.hi) < iv.length() - sim::kTimeEpsilon) {
          err << "task seq " << seq << ": slice not backed by occupancy on link " << l;
          return err.str();
        }
        per_link[static_cast<std::size_t>(l)].push_back(iv);
      }
    }
  }
  // Exclusive use: at most one live flow per link at any instant.
  for (std::size_t l = 0; l < per_link.size(); ++l) {
    auto& ivs = per_link[l];
    std::sort(ivs.begin(), ivs.end(),
              [](const util::Interval& a, const util::Interval& b) { return a.lo < b.lo; });
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i].lo < ivs[i - 1].hi - sim::kTimeEpsilon) {
        err << "exclusive-use violation on link " << l << ": [" << ivs[i - 1].lo << ","
            << ivs[i - 1].hi << ") overlaps [" << ivs[i].lo << "," << ivs[i].hi << ")";
        return err.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace taps::svc
