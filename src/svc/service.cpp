#include "svc/service.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "topo/fattree.hpp"

namespace taps::svc {

namespace {

std::size_t hist_bucket(std::size_t batch_size) {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(batch_size)) - 1;
  return std::min(b, kBatchHistBuckets - 1);
}

}  // namespace

AdmissionService::AdmissionService(const topo::Topology& topology, const ServiceConfig& config)
    : topo_(&topology), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  const auto* fat_tree = dynamic_cast<const topo::FatTree*>(topo_);
  if (config_.shards > 1 && fat_tree == nullptr) {
    throw std::invalid_argument("AdmissionService: sharding requires a fat-tree topology");
  }
  node_shard_.assign(topo_->graph().node_count(), -1);
  for (const topo::NodeId host : topo_->hosts()) {
    const std::size_t shard =
        config_.shards > 1
            ? static_cast<std::size_t>(fat_tree->pod_of_host(host)) % config_.shards
            : 0;
    node_shard_[static_cast<std::size_t>(host)] = static_cast<int>(shard);
  }
  const topo::PodMap* pods = topo_->pods();
  const bool global_domain = config_.shards > 1 && config_.cross_pod && pods != nullptr;
  shards_.reserve(config_.shards + (global_domain ? 1 : 0));
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(topology, config_.shard));
  }
  if (global_domain) {
    // The global cross-pod domain: a full-topology shard that commits the
    // spanning tasks the pod shards cannot plan. Budgeted reservations
    // (reserve_cross_pod) bound how much pod-uplink time it may promise.
    global_shard_ = static_cast<int>(shards_.size());
    shards_.push_back(std::make_unique<Shard>(topology, config_.shard));
    pod_reserved_.resize(static_cast<std::size_t>(pods->pod_count()));
  }
}

AdmissionService::~AdmissionService() { stop(); }

bool AdmissionService::reserve_cross_pod(const TaskRequest& request) {
  const topo::PodMap& pods = *topo_->pods();
  const double window = config_.cross_pod_window;
  const auto bucket = static_cast<std::int64_t>(request.deadline / window);
  // Expire windows that ended before this arrival. Arrivals at this point
  // are non-decreasing (kOutOfOrder already filtered), so expiry — like the
  // reservations themselves — is a pure function of the submission order.
  for (auto& reserved : pod_reserved_) {
    auto it = reserved.begin();
    while (it != reserved.end() &&
           static_cast<double>(it->first + 1) * window <= request.arrival) {
      it = reserved.erase(it);
    }
  }
  // Seconds of aggregate pod uplink time each endpoint pod must promise.
  std::map<int, double> need;
  for (const FlowRequest& f : request.flows) {
    const int ps = pods.pod_of(f.src);
    const int pd = pods.pod_of(f.dst);
    if (ps == pd) continue;  // intra-pod flow of a spanning task
    need[ps] += f.size / pods.pod(ps).uplink_capacity;
    need[pd] += f.size / pods.pod(pd).uplink_capacity;
  }
  const double budget = config_.cross_pod_budget * window;
  for (const auto& [pod, n] : need) {
    const auto& reserved = pod_reserved_[static_cast<std::size_t>(pod)];
    const auto it = reserved.find(bucket);
    const double used = it == reserved.end() ? 0.0 : it->second;
    if (used + n > budget) return false;
  }
  for (const auto& [pod, n] : need) {
    pod_reserved_[static_cast<std::size_t>(pod)][bucket] += n;
  }
  return true;
}

std::size_t AdmissionService::classify(const TaskRequest& request,
                                       std::optional<Reason>& reject) {
  if (stopping_) {
    reject = Reason::kShutdown;
    return 0;
  }
  const auto bad_node = [&](topo::NodeId n) {
    return n < 0 || static_cast<std::size_t>(n) >= node_shard_.size() ||
           node_shard_[static_cast<std::size_t>(n)] < 0;
  };
  bool malformed = request.flows.empty() || !(request.arrival >= 0.0) ||
                   !std::isfinite(request.arrival) || !(request.deadline > request.arrival) ||
                   !std::isfinite(request.deadline);
  for (const FlowRequest& f : request.flows) {
    if (malformed) break;
    malformed = bad_node(f.src) || bad_node(f.dst) || f.src == f.dst || !(f.size > 0.0) ||
                !std::isfinite(f.size);
  }
  if (malformed) {
    reject = Reason::kMalformed;
    return 0;
  }
  const int shard = node_shard_[static_cast<std::size_t>(request.flows.front().src)];
  bool spanning = false;
  for (const FlowRequest& f : request.flows) {
    if (node_shard_[static_cast<std::size_t>(f.src)] != shard ||
        node_shard_[static_cast<std::size_t>(f.dst)] != shard) {
      spanning = true;
      break;
    }
  }
  if (spanning && global_shard_ < 0) {
    reject = Reason::kCrossShard;
    return 0;
  }
  if (request.arrival < last_arrival_) {
    reject = Reason::kOutOfOrder;
    return 0;
  }
  if (request.client_tag != 0 && inflight_tags_.count(request.client_tag) != 0) {
    reject = Reason::kDuplicate;
    return 0;
  }
  if (queue_.size() >= config_.queue_capacity) {
    reject = Reason::kQueueFull;
    return 0;
  }
  if (spanning) {
    // Last check, so only requests that will actually enqueue can consume
    // budget (a queue-full or duplicate reject must not burn reservations).
    if (!reserve_cross_pod(request)) {
      reject = Reason::kBudgetExhausted;
      return 0;
    }
    ++counters_.cross_pod_enqueued;
    return static_cast<std::size_t>(global_shard_);
  }
  return static_cast<std::size_t>(shard);
}

void AdmissionService::push_response(TaskResponse&& resp) {
  ++counters_.responses;
  counters_.by_reason[static_cast<std::size_t>(resp.reason)] += 1;
  if (resp.accepted()) ++counters_.accepted;
  counters_.preemptions += resp.preempted.size();
  if (resp.client_tag != 0) inflight_tags_.erase(resp.client_tag);
  responses_.push_back(std::move(resp));
}

Seq AdmissionService::submit(const TaskRequest& request) {
  util::MutexLock lock(mu_);
  const Seq seq = next_seq_++;
  ++counters_.submitted;
  std::optional<Reason> reject;
  const std::size_t shard = classify(request, reject);
  if (reject) {
    TaskResponse resp;
    resp.seq = seq;
    resp.client_tag = request.client_tag;
    resp.reason = *reject;
    push_response(std::move(resp));
    return seq;
  }
  if (request.client_tag != 0) inflight_tags_.insert(request.client_tag);
  last_arrival_ = request.arrival;
  queue_.push_back(Pending{seq, shard, false, request});
  ++counters_.enqueued;
  counters_.max_queue_depth = std::max(counters_.max_queue_depth, queue_.size());
  work_cv_.notify_one();
  return seq;
}

bool AdmissionService::abandon(Seq seq) {
  util::MutexLock lock(mu_);
  for (Pending& p : queue_) {
    if (p.seq == seq && !p.abandoned) {
      p.abandoned = true;
      return true;
    }
  }
  return false;
}

bool AdmissionService::process_next_batch() {
  std::vector<Pending> batch;
  {
    util::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    const std::size_t n = std::min(config_.max_batch, queue_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    batch_in_flight_ = true;
    ++counters_.batches;
    counters_.batch_hist[hist_bucket(batch.size())] += 1;
  }

  // Group by shard. Queue order is submission (seq) order, so every group
  // preserves it — the property the determinism argument rests on.
  std::vector<TaskResponse> out(batch.size());
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].abandoned) {
      out[i].seq = batch[i].seq;
      out[i].client_tag = batch[i].request.client_tag;
      out[i].reason = Reason::kAbandoned;
    } else {
      groups[batch[i].shard].push_back(i);
    }
  }
  std::vector<std::size_t> active_shards;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (!groups[s].empty()) active_shards.push_back(s);
  }
  const auto run_group = [&](std::size_t s) {
    for (const std::size_t i : groups[s]) {
      out[i] = shards_[s]->process(batch[i].seq, batch[i].request);
    }
  };
  if (pool_ != nullptr && active_shards.size() > 1) {
    pool_->parallel_for(active_shards.size(),
                        [&](std::size_t k) { run_group(active_shards[k]); });
  } else {
    for (const std::size_t s : active_shards) run_group(s);
  }

  {
    util::MutexLock lock(mu_);
    for (TaskResponse& resp : out) push_response(std::move(resp));
    batch_in_flight_ = false;
    idle_cv_.notify_all();
  }
  return true;
}

void AdmissionService::dispatcher_loop() {
  for (;;) {
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.wait(mu_);
      if (stopping_) return;  // stop() answers whatever is still queued
    }
    process_next_batch();
  }
}

void AdmissionService::start() {
  {
    util::MutexLock lock(mu_);
    if (started_) return;
    if (stopping_) throw std::logic_error("AdmissionService: start() after stop()");
    started_ = true;
  }
  if (config_.threads > 0) pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  dispatcher_ = util::Thread([this] { dispatcher_loop(); });
}

void AdmissionService::stop() {
  {
    util::MutexLock lock(mu_);
    if (stopping_ && !started_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.reset();
  {
    util::MutexLock lock(mu_);
    // The dispatcher finished its in-flight batch before exiting; answer
    // everything still queued so no request goes silently missing.
    while (!queue_.empty()) {
      Pending p = std::move(queue_.front());
      queue_.pop_front();
      TaskResponse resp;
      resp.seq = p.seq;
      resp.client_tag = p.request.client_tag;
      resp.reason = p.abandoned ? Reason::kAbandoned : Reason::kShutdown;
      push_response(std::move(resp));
    }
    started_ = false;
    idle_cv_.notify_all();
  }
}

void AdmissionService::pump() {
  {
    util::MutexLock lock(mu_);
    assert(!started_);
    if (started_) return;
  }
  while (process_next_batch()) {
  }
}

void AdmissionService::wait_idle() {
  util::MutexLock lock(mu_);
  while (started_ && (!queue_.empty() || batch_in_flight_)) idle_cv_.wait(mu_);
}

std::vector<TaskResponse> AdmissionService::take_responses() {
  util::MutexLock lock(mu_);
  std::vector<TaskResponse> out = std::move(responses_);
  responses_.clear();
  return out;
}

ServiceStats AdmissionService::stats() const {
  util::MutexLock lock(mu_);
  return counters_;
}

void AdmissionService::advance_clock(double t) {
  for (auto& s : shards_) s->advance_to(t);
}

std::optional<std::string> AdmissionService::audit() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (auto violation = shards_[i]->audit()) {
      return "shard " + std::to_string(i) + ": " + *violation;
    }
  }
  return std::nullopt;
}

}  // namespace taps::svc
