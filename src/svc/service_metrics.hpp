// metrics:: surfacing for the admission service: render service counters
// (outcome mix, batch-size histogram, queue depth) and the aggregated
// per-shard TapsCounters as metrics::Table rows, and fold a finished run
// into metrics::RunMetrics so existing reporting/bench tooling can consume
// controller runs like simulator runs.
#pragma once

#include <vector>

#include "metrics/collector.hpp"
#include "metrics/report.hpp"
#include "svc/service.hpp"

namespace taps::svc {

/// Sum of the per-shard counters (quiescent shards only).
[[nodiscard]] ShardStats aggregate(const std::vector<ShardStats>& shards);

/// All shard stats of a quiescent service, in shard order.
[[nodiscard]] std::vector<ShardStats> shard_stats(const AdmissionService& service);

/// Two-column (metric, value) table: service counters, reason breakdown,
/// batch histogram, aggregated TapsCounters, and admissions per virtual
/// second (accepted / max shard clock).
[[nodiscard]] metrics::Table stats_table(const ServiceStats& service,
                                         const std::vector<ShardStats>& shards);

/// Fold a service run into RunMetrics: decision counts plus the planner-
/// effort fields (replans, flows_planned, prefix reuse) from the aggregated
/// TapsCounters.
[[nodiscard]] metrics::RunMetrics to_run_metrics(const ServiceStats& service,
                                                 const std::vector<ShardStats>& shards);

}  // namespace taps::svc
