// Wire-level types of the in-process admission service: the task-arrival
// request a client submits, the response it gets back, and the reason
// vocabulary. Every submitted request produces exactly one response — the
// service never drops silently; overload, malformed input, shutdown and
// abandonment all surface as explicit reject reasons.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.hpp"
#include "topo/graph.hpp"
#include "util/interval_set.hpp"

namespace taps::svc {

/// Service-assigned submission sequence number: dense, in submission order,
/// returned synchronously by submit() and echoed in the response.
using Seq = std::uint64_t;
inline constexpr Seq kInvalidSeq = ~static_cast<Seq>(0);

// taps-threading: thread-compatible
struct FlowRequest {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  double size = 0.0;  // bytes, must be > 0
};

/// One task arrival (the paper's coflow + deadline). Requests must be
/// submitted in non-decreasing `arrival` order — the service runs the
/// scheduler in virtual time and cannot admit into the past.
// taps-threading: thread-compatible
struct TaskRequest {
  double arrival = 0.0;
  double deadline = 0.0;  // absolute, must be > arrival
  std::vector<FlowRequest> flows;
  /// Optional client-chosen id (0 = untagged). While a tagged request is
  /// in flight, submitting the same tag again is rejected as a duplicate.
  std::uint64_t client_tag = 0;
};

enum class Reason : std::uint8_t {
  kAccepted,
  /// The TAPS reject rule declined the task (infeasible, not worth a
  /// preemption) — the only reason that involves running the planner.
  kPlannerReject,
  /// Endpoints span multiple pods while the service runs sharded with
  /// cross-pod admission disabled; see docs/CONTROLLER.md ("Sharding")
  /// for the single-shard fallback.
  kCrossShard,
  kMalformed,
  /// Arrival time earlier than an already-enqueued arrival.
  kOutOfOrder,
  /// client_tag equal to a request still in flight.
  kDuplicate,
  /// Queue at capacity — explicit backpressure, retry later.
  kQueueFull,
  /// Client abandoned the request before a batch picked it up.
  kAbandoned,
  /// Service stopping; the request was flushed unprocessed.
  kShutdown,
  /// Cross-pod task declined before planning: the budgeted share of some
  /// endpoint pod's aggregate uplink time for its deadline window is
  /// already reserved (see docs/CONTROLLER.md, "Cross-pod admission").
  kBudgetExhausted,
};

[[nodiscard]] inline const char* to_string(Reason r) {
  switch (r) {
    case Reason::kAccepted: return "accepted";
    case Reason::kPlannerReject: return "planner-reject";
    case Reason::kCrossShard: return "cross-shard";
    case Reason::kMalformed: return "malformed";
    case Reason::kOutOfOrder: return "out-of-order";
    case Reason::kDuplicate: return "duplicate";
    case Reason::kQueueFull: return "queue-full";
    case Reason::kAbandoned: return "abandoned";
    case Reason::kShutdown: return "shutdown";
    case Reason::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

/// What an accepted flow gets: its route and pre-allocated exclusive-use
/// transmission slices (the controller's instructions to the rate limiter).
// taps-threading: thread-compatible
struct FlowGrant {
  topo::Path path;
  util::IntervalSet slices;

  friend bool operator==(const FlowGrant&, const FlowGrant&) = default;
};

// taps-threading: thread-compatible
struct TaskResponse {
  Seq seq = kInvalidSeq;
  std::uint64_t client_tag = 0;
  Reason reason = Reason::kMalformed;
  /// One grant per requested flow, in request order (accepted only).
  std::vector<FlowGrant> grants;
  /// Previously accepted tasks revoked to admit this one (their flows must
  /// stop transmitting), identified by their submission seq.
  std::vector<Seq> preempted;

  [[nodiscard]] bool accepted() const { return reason == Reason::kAccepted; }

  friend bool operator==(const TaskResponse&, const TaskResponse&) = default;
};

}  // namespace taps::svc
