// One admission domain of the controller service: a Network + TapsScheduler
// pair driven in virtual time by its request stream. The pod-sharded service
// (svc::AdmissionService) owns several shards over the same topology; a pod
// shard only ever plans flows whose candidate paths stay inside its own
// pod's links, and the optional global domain plans the pod-spanning tasks
// under the service's cross-pod budget. Shards share no mutable state
// (each owns its Network), so they admit concurrently without locks.
//
// A shard is single-threaded by construction — the service guarantees at
// most one thread is inside process() at a time (one batch in flight, each
// shard's group handled by one worker). Everything here is deterministic:
// the same request sequence produces bitwise-identical responses and state,
// regardless of batching, threading, or registry compaction.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/taps_scheduler.hpp"
#include "net/network.hpp"
#include "svc/request.hpp"
#include "topo/paths.hpp"

namespace taps::svc {

// taps-threading: thread-compatible
struct ShardConfig {
  core::TapsConfig taps;
  /// Rebuild the shard's task/flow registry every this many processed
  /// requests, dropping finished tasks (0 disables). Together with the
  /// scheduler's trim_interval this bounds memory on unbounded arrival
  /// streams; decisions are bit-identical with compaction on or off
  /// (pinned by tests/svc/svc_service_test.cpp and the equivalence
  /// property test).
  std::size_t compact_interval = 1024;
};

// taps-threading: thread-compatible
struct ShardStats {
  std::size_t processed = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;   // planner rejects
  std::size_t preempted = 0;  // victims revoked after acceptance
  std::size_t completed = 0;  // flows finished in virtual time
  std::size_t compactions = 0;
  std::size_t live_tasks = 0;
  std::size_t live_flows = 0;
  /// Registry sizes — with compaction on these stay bounded by
  /// compact_interval plus the live set instead of growing with the stream.
  std::size_t registered_tasks = 0;
  std::size_t registered_flows = 0;
  double clock = 0.0;
  core::TapsCounters taps;
};

// taps-threading: single-domain -- each shard is pinned to one worker at a time
class Shard {
 public:
  /// The topology must outlive the shard.
  Shard(const topo::Topology& topology, const ShardConfig& config);

  /// Admit or reject one validated request at its arrival time. Requests
  /// must come in non-decreasing `arrival` order (the service's submit path
  /// enforces this globally). Advances the shard's virtual clock, retiring
  /// flows whose pre-allocated slices have fully elapsed.
  [[nodiscard]] TaskResponse process(Seq seq, const TaskRequest& request);

  /// Advance virtual time without a new arrival (drain completions).
  void advance_to(double t);

  [[nodiscard]] ShardStats stats() const;
  [[nodiscard]] double virtual_time() const { return clock_; }
  [[nodiscard]] const net::Network& network() const { return *net_; }
  [[nodiscard]] const core::TapsScheduler& scheduler() const { return sched_; }

  /// Attach a decision observer (e.g. sim::TimelineRecorder) to the shard's
  /// scheduler. Pure observation — responses, fingerprints and audits stay
  /// bit-identical (pinned by tests/timeline/timeline_identity_test.cpp).
  /// Set while the shard is quiescent. Note: event task/flow ids are in the
  /// shard-local registry id space current at event time; registry
  /// compaction (compact_interval) renumbers live flows, so timelines that
  /// span a compaction mix id generations (docs/TIMELINE.md).
  void set_schedule_observer(sched::ScheduleObserver* observer) {
    sched_.set_schedule_observer(observer);
  }

  /// Deterministic full-precision (hexfloat) dump of the shard's committed
  /// state: two shards fed the same request sequence compare bitwise equal.
  /// Test/debug aid for the equivalence suites.
  [[nodiscard]] std::string fingerprint() const;

  /// Invariant oracle: every live flow holds canonical, deadline-respecting
  /// slices that are mutually exclusive per link and present in the
  /// scheduler's committed occupancy. Returns a description of the first
  /// violation, or nullopt when silent.
  [[nodiscard]] std::optional<std::string> audit() const;

 private:
  void maybe_compact();

  const topo::Topology* topo_;
  ShardConfig config_;
  std::unique_ptr<net::Network> net_;
  core::TapsScheduler sched_;
  double clock_ = 0.0;
  std::size_t arrivals_since_compact_ = 0;
  std::vector<Seq> task_seq_;             // local TaskId -> submission seq
  std::vector<net::TaskId> live_tasks_;   // admitted, unfinished
  std::vector<net::FlowId> live_flows_;   // admitted, unfinished
  std::size_t processed_ = 0;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t preempted_ = 0;
  std::size_t completed_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace taps::svc
