// The standalone TAPS admission controller: an in-process service that
// accepts task-arrival requests through a bounded queue, batches
// near-simultaneous arrivals, and fans each batch out over pod-sharded
// admission domains (svc::Shard) on a thread pool. Sharded services admit
// pod-spanning tasks hierarchically: a budgeted pod-uplink reservation under
// the service lock (local reserve), then planning on a dedicated
// global-domain shard (global commit) — see docs/CONTROLLER.md.
//
// Concurrency model (see docs/CONTROLLER.md):
//   - submit()/abandon()/take_responses()/stats() are thread-safe; all
//     shared bookkeeping lives behind one annotated util::Mutex.
//   - At most one batch is in flight at a time. Within a batch, requests
//     are grouped by shard; each group is processed by exactly one worker,
//     in submission (seq) order. Shards share no mutable state, so groups
//     run concurrently without locks.
//   - Determinism: because per-shard processing order equals submission
//     order restricted to the shard, and responses depend only on that
//     per-shard order, the produced responses and final shard state are
//     bitwise-identical regardless of batch boundaries, worker threads, or
//     whether the service runs started (dispatcher thread) or pumped
//     inline. The equivalence property test pins this against the
//     sequential single-shard oracle.
//
// Every submitted request gets exactly one response; overload, malformed
// input, abandonment and shutdown all produce explicit reject reasons
// (never a silent drop).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "svc/shard.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace taps::svc {

inline constexpr std::size_t kReasonCount = 10;
/// Batch-size histogram buckets: bucket b counts batches of size in
/// [2^b, 2^(b+1)).
inline constexpr std::size_t kBatchHistBuckets = 16;

// taps-threading: thread-compatible
struct ServiceConfig {
  /// Admission domains. 1 = the paper's global controller (any topology);
  /// >1 requires a fat-tree and maps pod p to shard p % shards. Tasks whose
  /// endpoints span pods take the hierarchical cross-pod path (below) or,
  /// with cross_pod disabled, are rejected kCrossShard.
  std::size_t shards = 1;
  /// Hierarchical cross-pod admission (sharded services only): spanning
  /// tasks reserve budgeted pod-uplink time under the service lock in
  /// submission order (local reserve), then commit on a dedicated
  /// global-domain shard alongside the pod shards (global commit).
  /// Unsharded services need no budget — every task already plans against
  /// full topology state (the single-shard fallback).
  bool cross_pod = true;
  /// Fraction of a pod's aggregate uplink time a deadline window's cross-pod
  /// reservations may claim before kBudgetExhausted. Reservations are made
  /// in submission order and expire with their window, never on planner
  /// reject — decisions stay independent of batch boundaries and threading.
  double cross_pod_budget = 0.5;
  /// Width (seconds) of one cross-pod reservation window.
  double cross_pod_window = 1.0;
  /// Worker threads for fanning a batch out over shards (0 = process shard
  /// groups inline on the dispatching thread).
  std::size_t threads = 0;
  /// Max requests drained into one batch.
  std::size_t max_batch = 64;
  /// Bound on queued-but-unprocessed requests; beyond it submissions are
  /// rejected kQueueFull (explicit backpressure).
  std::size_t queue_capacity = 4096;
  ShardConfig shard;
};

// taps-threading: thread-compatible
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t enqueued = 0;           // passed validation, entered the queue
  std::size_t cross_pod_enqueued = 0; // spanning tasks routed to the global domain
  std::size_t responses = 0;
  std::size_t accepted = 0;
  std::size_t preemptions = 0;
  std::size_t batches = 0;
  std::size_t max_queue_depth = 0;
  /// Responses by Reason (indexed by static_cast<size_t>(Reason)).
  std::array<std::size_t, kReasonCount> by_reason{};
  std::array<std::size_t, kBatchHistBuckets> batch_hist{};
};

// taps-threading: guarded -- mu_ guards all mutable state; public API is thread-safe
class AdmissionService {
 public:
  /// The topology must outlive the service. Throws std::invalid_argument
  /// when config.shards > 1 on a topology that is not a fat-tree.
  AdmissionService(const topo::Topology& topology, const ServiceConfig& config);
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Validate and enqueue one request; returns its seq. Invalid requests
  /// (and every request after stop()) are answered immediately with a
  /// reject response — the seq is still consumed. Thread-safe.
  Seq submit(const TaskRequest& request);

  /// Withdraw a queued request before a batch picks it up. Returns true if
  /// the request was still queued (it will be answered kAbandoned instead
  /// of being processed); false if it was already taken or answered.
  bool abandon(Seq seq);

  /// Spawn the dispatcher (and worker pool when threads > 0). Without
  /// start(), the service runs in pump mode: call pump() to process the
  /// queue inline — same results, bit for bit.
  void start();
  /// Drain: stop the dispatcher after its current batch, answer everything
  /// still queued with kShutdown, and join all threads. Idempotent; the
  /// destructor calls it. After stop() submissions answer kShutdown.
  void stop();

  /// Inline processing (pump mode, service not started): process queued
  /// requests batch by batch until the queue is empty.
  void pump();

  /// Block until the queue is empty and no batch is in flight (started
  /// services; returns immediately otherwise).
  void wait_idle();

  /// Move out all responses produced so far (any order between shards;
  /// sort by seq for a canonical view). Thread-safe.
  [[nodiscard]] std::vector<TaskResponse> take_responses();

  [[nodiscard]] ServiceStats stats() const;

  // ---- quiescent-only introspection (no batch in flight: before start(),
  // or after wait_idle()/stop()) -----------------------------------------

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const Shard& shard(std::size_t i) const { return *shards_[i]; }
  /// True when spanning tasks are admitted on a dedicated global domain
  /// (sharded service with cross_pod on). That domain is the last shard.
  [[nodiscard]] bool has_global_domain() const { return global_shard_ >= 0; }
  [[nodiscard]] std::size_t global_domain() const {
    return static_cast<std::size_t>(global_shard_);
  }
  /// Attach a decision observer to shard `i`'s scheduler (quiescent-only;
  /// see Shard::set_schedule_observer for the purity and id-space notes).
  void set_shard_schedule_observer(std::size_t i, sched::ScheduleObserver* observer) {
    shards_[i]->set_schedule_observer(observer);
  }
  /// Advance every shard's virtual clock (drain completions; testing aid).
  void advance_clock(double t);
  /// First invariant violation across all shards, or nullopt.
  [[nodiscard]] std::optional<std::string> audit() const;

 private:
  struct Pending {
    Seq seq = kInvalidSeq;
    std::size_t shard = 0;
    bool abandoned = false;
    TaskRequest request;
  };

  void dispatcher_loop();
  /// Drain and process one batch; returns false when the queue was empty.
  bool process_next_batch();
  /// Validation + shard classification; returns the target shard or, via
  /// `reject`, the immediate-reject reason. Commits cross-pod budget
  /// reservations (hence non-const): called under mu_ in submission order,
  /// so reservation state is a pure function of the submitted sequence.
  [[nodiscard]] std::size_t classify(const TaskRequest& request,
                                     std::optional<Reason>& reject) TAPS_REQUIRES(mu_);
  /// Reserve budgeted pod-uplink time for a spanning task; false when some
  /// endpoint pod's window budget cannot cover it (nothing is committed).
  [[nodiscard]] bool reserve_cross_pod(const TaskRequest& request) TAPS_REQUIRES(mu_);
  void push_response(TaskResponse&& resp) TAPS_REQUIRES(mu_);

  const topo::Topology* topo_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// NodeId -> owning shard, -1 for non-host nodes (malformed endpoints).
  std::vector<int> node_shard_;
  /// Index of the global cross-pod domain in shards_, -1 when disabled.
  int global_shard_ = -1;
  /// Per-pod cross-pod reservations: deadline window -> seconds of the
  /// pod's aggregate uplink time already promised to spanning tasks.
  std::vector<std::map<std::int64_t, double>> pod_reserved_ TAPS_GUARDED_BY(mu_);

  mutable util::Mutex mu_;
  util::CondVar work_cv_;
  util::CondVar idle_cv_;
  std::deque<Pending> queue_ TAPS_GUARDED_BY(mu_);
  std::vector<TaskResponse> responses_ TAPS_GUARDED_BY(mu_);
  /// client_tags currently in flight (duplicate detection; point lookups
  /// only — no iteration, so determinism is unaffected).
  std::set<std::uint64_t> inflight_tags_ TAPS_GUARDED_BY(mu_);
  Seq next_seq_ TAPS_GUARDED_BY(mu_) = 0;
  double last_arrival_ TAPS_GUARDED_BY(mu_) = 0.0;
  bool started_ TAPS_GUARDED_BY(mu_) = false;
  bool stopping_ TAPS_GUARDED_BY(mu_) = false;
  bool batch_in_flight_ TAPS_GUARDED_BY(mu_) = false;
  ServiceStats counters_ TAPS_GUARDED_BY(mu_);

  util::Thread dispatcher_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace taps::svc
