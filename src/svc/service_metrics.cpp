#include "svc/service_metrics.hpp"

#include <algorithm>
#include <string>

namespace taps::svc {

ShardStats aggregate(const std::vector<ShardStats>& shards) {
  ShardStats total;
  for (const ShardStats& s : shards) {
    total.processed += s.processed;
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.preempted += s.preempted;
    total.completed += s.completed;
    total.compactions += s.compactions;
    total.live_tasks += s.live_tasks;
    total.live_flows += s.live_flows;
    total.registered_tasks += s.registered_tasks;
    total.registered_flows += s.registered_flows;
    total.clock = std::max(total.clock, s.clock);
    total.taps.tasks_accepted += s.taps.tasks_accepted;
    total.taps.tasks_rejected += s.taps.tasks_rejected;
    total.taps.tasks_preempted += s.taps.tasks_preempted;
    total.taps.replans += s.taps.replans;
    total.taps.replan_reverts += s.taps.replan_reverts;
    total.taps.incremental_sorts += s.taps.incremental_sorts;
    total.taps.full_sorts += s.taps.full_sorts;
    total.taps.flows_planned += s.taps.flows_planned;
    total.taps.cross_arrival_reuse_flows += s.taps.cross_arrival_reuse_flows;
    total.taps.checkpoint_reuse_flows += s.taps.checkpoint_reuse_flows;
    total.taps.session_restarts += s.taps.session_restarts;
    total.taps.occupancy_trims += s.taps.occupancy_trims;
    total.taps.pod_fast_rejects += s.taps.pod_fast_rejects;
    total.taps.pod_local_plans += s.taps.pod_local_plans;
    total.taps.budget_reservations += s.taps.budget_reservations;
    total.taps.global_fallbacks += s.taps.global_fallbacks;
  }
  return total;
}

std::vector<ShardStats> shard_stats(const AdmissionService& service) {
  std::vector<ShardStats> out;
  out.reserve(service.shard_count());
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    out.push_back(service.shard(i).stats());
  }
  return out;
}

metrics::Table stats_table(const ServiceStats& service, const std::vector<ShardStats>& shards) {
  const ShardStats total = aggregate(shards);
  metrics::Table table({"metric", "value"});
  table.row("submitted", service.submitted);
  table.row("enqueued", service.enqueued);
  table.row("cross_pod_enqueued", service.cross_pod_enqueued);
  table.row("responses", service.responses);
  table.row("accepted", service.accepted);
  table.row("preemptions", service.preemptions);
  table.row("batches", service.batches);
  table.row("max_queue_depth", service.max_queue_depth);
  for (std::size_t r = 0; r < kReasonCount; ++r) {
    if (service.by_reason[r] == 0) continue;
    table.row(std::string("reason/") + to_string(static_cast<Reason>(r)), service.by_reason[r]);
  }
  for (std::size_t b = 0; b < kBatchHistBuckets; ++b) {
    if (service.batch_hist[b] == 0) continue;
    table.row("batch_hist/ge_" + std::to_string(std::size_t{1} << b), service.batch_hist[b]);
  }
  table.row("shards", shards.size());
  table.row("virtual_clock", total.clock);
  table.row("flows_completed", total.completed);
  table.row("live_tasks", total.live_tasks);
  table.row("registered_tasks", total.registered_tasks);
  table.row("compactions", total.compactions);
  if (total.clock > 0.0) {
    table.row("admissions_per_virtual_sec",
              static_cast<double>(total.accepted) / total.clock);
  }
  table.row("taps/replans", total.taps.replans);
  table.row("taps/flows_planned", total.taps.flows_planned);
  table.row("taps/prefix_reuse_flows",
            total.taps.cross_arrival_reuse_flows + total.taps.checkpoint_reuse_flows);
  table.row("taps/occupancy_trims", total.taps.occupancy_trims);
  return table;
}

metrics::RunMetrics to_run_metrics(const ServiceStats& service,
                                   const std::vector<ShardStats>& shards) {
  const ShardStats total = aggregate(shards);
  metrics::RunMetrics m;
  m.tasks_total = total.processed;
  m.tasks_completed = total.accepted - total.preempted;
  m.tasks_rejected = total.rejected + total.preempted;
  m.task_completion_ratio =
      total.processed == 0
          ? 0.0
          : static_cast<double>(m.tasks_completed) / static_cast<double>(total.processed);
  m.flows_completed = total.completed;
  m.replans = total.taps.replans;
  m.flows_planned = total.taps.flows_planned;
  m.prefix_reuse_flows = total.taps.cross_arrival_reuse_flows + total.taps.checkpoint_reuse_flows;
  const double denom = static_cast<double>(m.prefix_reuse_flows + m.flows_planned);
  m.prefix_reuse_ratio = denom == 0.0 ? 0.0 : static_cast<double>(m.prefix_reuse_flows) / denom;
  m.pod_fast_rejects = total.taps.pod_fast_rejects;
  m.pod_local_plans = total.taps.pod_local_plans;
  m.budget_reservations = total.taps.budget_reservations;
  m.global_fallbacks = total.taps.global_fallbacks;
  // Queue-level rejects (malformed, overload, ...) never reach a shard, so
  // service.responses can exceed tasks_total; the reason breakdown in
  // stats_table carries that detail.
  (void)service;
  return m;
}

}  // namespace taps::svc
