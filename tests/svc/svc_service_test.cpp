// Unit tests for the admission controller service: grant contents, reject
// reasons, preemption reporting, decision agreement with the FluidSimulator
// oracle, sharded cross-pod classification, registry-compaction
// transparency, and the metrics:: surfacing.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

using svc::AdmissionService;
using svc::Reason;
using svc::ServiceConfig;
using svc::TaskResponse;

TEST(SvcService, AcceptsFeasibleTaskWithDeadlineRespectingGrants) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  const svc::Seq seq =
      service.submit(task_req(0.0, 10.0, {flow_req(d.left[0], d.right[0], 4.0)}, 7));
  service.pump();
  const auto responses = service.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  const TaskResponse& r = responses.front();
  EXPECT_EQ(r.seq, seq);
  EXPECT_EQ(r.client_tag, 7u);
  ASSERT_TRUE(r.accepted());
  ASSERT_EQ(r.grants.size(), 1u);
  EXPECT_FALSE(r.grants[0].path.empty());
  ASSERT_FALSE(r.grants[0].slices.empty());
  EXPECT_GE(r.grants[0].slices.front_start(), 0.0);
  EXPECT_LE(r.grants[0].slices.back_end(), 10.0);
  EXPECT_NEAR(r.grants[0].slices.measure(), 4.0, 1e-9);  // unit capacity
  EXPECT_EQ(service.audit(), std::nullopt);
  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.responses, 1u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(SvcService, PlannerRejectsInfeasibleTask) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  // The bottleneck fits 10 units by t=10; the second task cannot.
  (void)service.submit(task_req(0.0, 10.0, {flow_req(d.left[0], d.right[0], 9.0)}));
  (void)service.submit(task_req(1.0, 6.0, {flow_req(d.left[1], d.right[1], 4.0)}));
  service.pump();
  const auto responses = service.take_responses();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].accepted());
  EXPECT_EQ(responses[1].reason, Reason::kPlannerReject);
  EXPECT_TRUE(responses[1].grants.empty());
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcService, PreemptionReportsVictimSeq) {
  auto d = make_dumbbell();
  ServiceConfig config;
  config.shard.taps.preempt_policy = core::PreemptPolicy::kSchedulable;
  AdmissionService service(*d.topology, config);
  const svc::Seq hog =
      service.submit(task_req(0.0, 10.0, {flow_req(d.left[0], d.right[0], 9.0)}));
  const svc::Seq urgent =
      service.submit(task_req(1.0, 3.0, {flow_req(d.left[1], d.right[1], 1.9)}));
  service.pump();
  auto responses = service.take_responses();
  std::sort(responses.begin(), responses.end(),
            [](const TaskResponse& a, const TaskResponse& b) { return a.seq < b.seq; });
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].accepted());
  ASSERT_TRUE(responses[1].accepted());
  EXPECT_EQ(responses[1].seq, urgent);
  ASSERT_EQ(responses[1].preempted.size(), 1u);
  EXPECT_EQ(responses[1].preempted[0], hog);
  EXPECT_EQ(service.stats().preemptions, 1u);
  EXPECT_EQ(service.audit(), std::nullopt);
}

// The service drives TapsScheduler in virtual time instead of under the
// event loop; on the same workload both must reach the same final task
// verdicts (admitted tasks complete by their deadline under the fluid
// contract, everything else is rejected).
TEST(SvcService, MatchesFluidSimulatorVerdicts) {
  topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(20260809);
  const double capacity = kPow2Capacity;
  std::vector<svc::TaskRequest> requests;
  double arrival = 0.0;
  double horizon = 0.0;
  for (int i = 0; i < 60; ++i) {
    arrival += rng.exponential(0.01) + 1e-7;
    const auto& hosts = ft.hosts();
    const auto pick = [&] {
      return hosts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    };
    std::vector<svc::FlowRequest> fs;
    double total = 0.0;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t f = 0; f < n; ++f) {
      const topo::NodeId src = pick();
      topo::NodeId dst = src;
      while (dst == src) dst = pick();
      const double transfer = rng.uniform_real(0.005, 0.03);
      total += transfer;
      fs.push_back(flow_req(src, dst, transfer * capacity));
    }
    const double deadline = arrival + rng.uniform_real(1.3, 3.0) * total;
    horizon = std::max(horizon, deadline);
    requests.push_back(task_req(arrival, deadline, std::move(fs)));
  }

  ServiceConfig config;
  config.shard.compact_interval = 0;  // keep local ids == seq for comparison
  AdmissionService service(ft, config);
  for (const auto& r : requests) (void)service.submit(r);
  service.pump();
  service.advance_clock(horizon + 1.0);
  EXPECT_EQ(service.audit(), std::nullopt);

  net::Network net(ft);
  for (const auto& r : requests) {
    std::vector<net::FlowSpec> specs;
    for (const auto& f : r.flows) specs.push_back(flow(f.src, f.dst, f.size));
    (void)add_task(net, r.arrival, r.deadline, specs);
  }
  core::TapsScheduler sched;
  (void)run(net, sched);

  const net::Network& svc_net = service.shard(0).network();
  ASSERT_EQ(svc_net.tasks().size(), requests.size());
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto id = static_cast<net::TaskId>(i);
    EXPECT_EQ(svc_net.task(id).state, net.task(id).state) << "task " << i;
    if (svc_net.task(id).state == net::TaskState::kCompleted) ++accepted;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(service.stats().accepted, sched.counters().tasks_accepted);
}

TEST(SvcService, ShardedServiceAdmitsCrossPodTasksOnGlobalDomain) {
  topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  const svc::TaskRequest cross =
      task_req(0.0, 1.0, {flow_req(ft.host(0, 0, 0), ft.host(1, 0, 0), 1000.0)});
  const svc::TaskRequest local =
      task_req(0.0, 1.0, {flow_req(ft.host(2, 0, 0), ft.host(2, 1, 0), 1000.0)});

  ServiceConfig sharded;
  sharded.shards = 4;
  {
    AdmissionService service(ft, sharded);
    ASSERT_TRUE(service.has_global_domain());
    EXPECT_EQ(service.shard_count(), 5u);
    (void)service.submit(cross);
    (void)service.submit(local);
    service.pump();
    auto responses = service.take_responses();
    std::sort(responses.begin(), responses.end(),
              [](const TaskResponse& a, const TaskResponse& b) { return a.seq < b.seq; });
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_TRUE(responses[0].accepted());
    ASSERT_EQ(responses[0].grants.size(), 1u);
    EXPECT_TRUE(responses[1].accepted());
    // The spanning task committed on the global domain, the pod-local one on
    // its pod shard.
    EXPECT_EQ(service.shard(service.global_domain()).stats().accepted, 1u);
    EXPECT_EQ(service.stats().cross_pod_enqueued, 1u);
    EXPECT_EQ(service.audit(), std::nullopt);
  }
  {
    // Legacy classification: with cross-pod admission off, spanning tasks
    // are still rejected kCrossShard.
    ServiceConfig legacy = sharded;
    legacy.cross_pod = false;
    AdmissionService service(ft, legacy);
    EXPECT_FALSE(service.has_global_domain());
    EXPECT_EQ(service.shard_count(), 4u);
    (void)service.submit(cross);
    service.pump();
    const auto responses = service.take_responses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].reason, Reason::kCrossShard);
  }
  {
    // The single-shard (global) service admits the same cross-pod task.
    AdmissionService service(ft, ServiceConfig{});
    EXPECT_FALSE(service.has_global_domain());
    (void)service.submit(cross);
    service.pump();
    const auto responses = service.take_responses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].accepted());
  }
}

TEST(SvcService, ShardingRequiresFatTree) {
  auto d = make_dumbbell();
  ServiceConfig config;
  config.shards = 2;
  EXPECT_THROW(AdmissionService(*d.topology, config), std::invalid_argument);
}

// Registry compaction must be invisible in every response (decisions,
// grants, preemptions) while keeping the task/flow registry bounded.
TEST(SvcService, CompactionIsTransparentAndBoundsRegistry) {
  topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(1234);
  WorkloadKnobs knobs;
  knobs.tasks = 300;
  const auto requests = pod_local_workload(ft, rng, knobs);

  ServiceConfig compacting;
  compacting.shard.compact_interval = 16;
  compacting.shard.taps.trim_interval = 8;
  ServiceConfig plain = compacting;
  plain.shard.compact_interval = 0;

  const SvcRun a = run_service(ft, requests, compacting, /*started=*/false);
  const SvcRun b = run_service(ft, requests, plain, /*started=*/false);
  EXPECT_EQ(compare_responses(a.responses, b.responses), std::nullopt);
  EXPECT_EQ(a.audit, std::nullopt);
  EXPECT_EQ(b.audit, std::nullopt);
  ASSERT_EQ(a.shards.size(), 1u);
  EXPECT_GT(a.shards[0].compactions, 0u);
  EXPECT_EQ(b.shards[0].registered_tasks, requests.size());
  EXPECT_LT(a.shards[0].registered_tasks, requests.size() / 2);
}

TEST(SvcService, MetricsSurfaceCoversCountersAndReasons) {
  topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(99);
  const auto requests = pod_local_workload(ft, rng);
  const SvcRun run = run_service(ft, requests, ServiceConfig{}, /*started=*/false);

  const metrics::Table table = svc::stats_table(run.stats, run.shards);
  EXPECT_GE(table.rows().size(), 10u);
  bool saw_submitted = false;
  for (const auto& row : table.rows()) {
    if (row.front() == "submitted") {
      saw_submitted = true;
      EXPECT_EQ(row.back(), metrics::Table::format(requests.size()));
    }
  }
  EXPECT_TRUE(saw_submitted);

  const metrics::RunMetrics m = svc::to_run_metrics(run.stats, run.shards);
  EXPECT_EQ(m.tasks_total, requests.size());
  EXPECT_EQ(m.tasks_completed + m.tasks_rejected, m.tasks_total);
  EXPECT_EQ(m.replans, svc::aggregate(run.shards).taps.replans);
}

}  // namespace
}  // namespace taps::test
