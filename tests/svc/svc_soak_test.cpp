// Long-haul soak for the admission service: a sustained pod-local arrival
// stream through a started, sharded, threaded service. Verifies exact
// response accounting (zero counter drift between service and shard
// counters), bounded task/flow registries under compaction, and bounded
// process RSS growth.
//
// Scale: TAPS_SOAK_ARRIVALS overrides the arrival count. The default (100k,
// well under a second) rides along in the default ctest run; CI's soak-smoke
// job and thorough local runs use TAPS_SOAK_ARRIVALS=1000000 (~4 s; see
// docs/CONTROLLER.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

std::size_t soak_arrivals() {
  if (const char* env = std::getenv("TAPS_SOAK_ARRIVALS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 0));
  }
  return 100000;
}

/// Resident set size in KiB, or 0 when /proc is unavailable.
std::size_t rss_kib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kib = 0;
      fields >> kib;
      return kib;
    }
  }
#endif
  return 0;
}

/// Streaming pod-local generator: arrivals strictly increase for the whole
/// soak, across chunk boundaries.
class ArrivalStream {
 public:
  ArrivalStream(const topo::FatTree& ft, std::uint64_t seed) : ft_(&ft), rng_(seed) {}

  std::vector<svc::TaskRequest> next_chunk(std::size_t n) {
    const int half = ft_->k() / 2;
    const double capacity = ft_->graph().links().front().capacity;
    std::vector<svc::TaskRequest> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      arrival_ += rng_.exponential(0.01) + 1e-7;
      const int pod = static_cast<int>(rng_.uniform_int(0, ft_->k() - 1));
      const topo::NodeId src = ft_->host(pod, static_cast<int>(rng_.uniform_int(0, half - 1)),
                                         static_cast<int>(rng_.uniform_int(0, half - 1)));
      topo::NodeId dst = src;
      while (dst == src) {
        dst = ft_->host(pod, static_cast<int>(rng_.uniform_int(0, half - 1)),
                        static_cast<int>(rng_.uniform_int(0, half - 1)));
      }
      const double transfer = rng_.uniform_real(0.002, 0.02);
      out.push_back(task_req(arrival_, arrival_ + rng_.uniform_real(1.2, 3.0) * transfer,
                             {flow_req(src, dst, transfer * capacity)}));
    }
    return out;
  }

 private:
  const topo::FatTree* ft_;
  util::Rng rng_;
  double arrival_ = 0.0;
};

TEST(SvcSoak, SustainedStreamHasExactAccountingAndBoundedMemory) {
  const std::size_t total = soak_arrivals();
  const std::size_t chunk = std::min<std::size_t>(total, 10000);
  const topo::FatTree ft(topo::FatTreeConfig::scaled());  // k=8, 128 hosts

  svc::ServiceConfig config;
  config.shards = 8;
  config.threads = 4;
  config.max_batch = 64;
  config.queue_capacity = chunk + 1;  // a full chunk never overflows
  config.shard.compact_interval = 4096;
  svc::AdmissionService service(ft, config);
  service.start();

  ArrivalStream stream(ft, 0x5047a6ULL);
  std::size_t submitted = 0;
  std::size_t responded = 0;
  std::array<std::size_t, svc::kReasonCount> reasons{};
  std::size_t warmup_rss = 0;
  while (submitted < total) {
    const std::size_t n = std::min(chunk, total - submitted);
    for (const svc::TaskRequest& r : stream.next_chunk(n)) (void)service.submit(r);
    submitted += n;
    service.wait_idle();
    for (const svc::TaskResponse& r : service.take_responses()) {
      ++responded;
      reasons[static_cast<std::size_t>(r.reason)] += 1;
    }
    if (warmup_rss == 0) warmup_rss = rss_kib();
  }
  service.stop();
  for (const svc::TaskResponse& r : service.take_responses()) {
    ++responded;
    reasons[static_cast<std::size_t>(r.reason)] += 1;
  }

  // Exactly one response per submission; nothing dropped, nothing invented.
  EXPECT_EQ(responded, submitted);
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.responses, submitted);
  std::size_t tallied = 0;
  for (const std::size_t n : stats.by_reason) tallied += n;
  EXPECT_EQ(tallied, submitted);
  for (std::size_t r = 0; r < svc::kReasonCount; ++r) {
    EXPECT_EQ(reasons[r], stats.by_reason[r]) << svc::to_string(static_cast<svc::Reason>(r));
  }
  // The stream is well-formed, ordered and pod-local: only the planner may
  // say no.
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(svc::Reason::kMalformed)], 0u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(svc::Reason::kOutOfOrder)], 0u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(svc::Reason::kCrossShard)], 0u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(svc::Reason::kQueueFull)], 0u);
  EXPECT_GT(stats.accepted, submitted / 2);  // the load is mostly feasible

  // Zero drift between the service's books and the shards'.
  const std::vector<svc::ShardStats> shards = svc::shard_stats(service);
  const svc::ShardStats total_shard = svc::aggregate(shards);
  EXPECT_EQ(total_shard.processed, stats.enqueued);
  EXPECT_EQ(total_shard.accepted, stats.accepted);
  EXPECT_EQ(total_shard.preempted, stats.preemptions);
  EXPECT_EQ(service.audit(), std::nullopt);

  // Compaction keeps every shard's registry bounded by the compaction window
  // plus the live set — not by the length of the stream.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_LE(shards[i].registered_tasks,
              config.shard.compact_interval + shards[i].live_tasks + 1)
        << "shard " << i;
    if (shards[i].processed > 2 * config.shard.compact_interval) {
      EXPECT_GT(shards[i].compactions, 0u) << "shard " << i;
    }
  }

  // RSS growth after warm-up stays bounded (generous to absorb allocator
  // noise; without compaction this leaks linearly in the stream length).
  const std::size_t end_rss = rss_kib();
  if (warmup_rss != 0 && end_rss != 0) {
    EXPECT_LT(end_rss, warmup_rss + 256 * 1024) << "RSS grew by more than 256 MiB";
  }
}

}  // namespace
}  // namespace taps::test
