// Fault injection for the admission service: malformed requests, duplicate
// client tags, out-of-order arrivals, abandonment, queue-overflow
// backpressure and shutdown with work still queued or in flight. The
// contract under test: every submit() gets exactly one response carrying an
// explicit reason — faults never crash, never drop silently, and never
// corrupt shard state (audit stays silent).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

using svc::AdmissionService;
using svc::Reason;
using svc::ServiceConfig;
using svc::TaskResponse;

std::vector<TaskResponse> by_seq(std::vector<TaskResponse> responses) {
  std::sort(responses.begin(), responses.end(),
            [](const TaskResponse& a, const TaskResponse& b) { return a.seq < b.seq; });
  return responses;
}

TEST(SvcFault, MalformedRequestsRejectedImmediately) {
  auto d = make_dumbbell();
  const topo::NodeId a = d.left[0];
  const topo::NodeId b = d.right[0];
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const topo::NodeId tor = 0;  // make_dumbbell adds the ToR switches first
  struct Case {
    const char* label;
    svc::TaskRequest request;
  };
  const std::vector<Case> cases = {
      {"empty flow list", task_req(0.0, 1.0, {})},
      {"negative arrival", task_req(-1.0, 1.0, {flow_req(a, b, 1.0)})},
      {"NaN arrival", task_req(nan, 1.0, {flow_req(a, b, 1.0)})},
      {"deadline == arrival", task_req(1.0, 1.0, {flow_req(a, b, 1.0)})},
      {"deadline < arrival", task_req(1.0, 0.5, {flow_req(a, b, 1.0)})},
      {"infinite deadline", task_req(0.0, inf, {flow_req(a, b, 1.0)})},
      {"unknown src node", task_req(0.0, 1.0, {flow_req(9999, b, 1.0)})},
      {"negative dst node", task_req(0.0, 1.0, {flow_req(a, -3, 1.0)})},
      {"switch as endpoint", task_req(0.0, 1.0, {flow_req(tor, b, 1.0)})},
      {"src == dst", task_req(0.0, 1.0, {flow_req(a, a, 1.0)})},
      {"zero size", task_req(0.0, 1.0, {flow_req(a, b, 0.0)})},
      {"negative size", task_req(0.0, 1.0, {flow_req(a, b, -2.0)})},
      {"NaN size", task_req(0.0, 1.0, {flow_req(a, b, nan)})},
      {"bad second flow", task_req(0.0, 1.0, {flow_req(a, b, 1.0), flow_req(a, b, -1.0)})},
  };
  AdmissionService service(*d.topology, ServiceConfig{});
  for (const Case& c : cases) {
    (void)service.submit(c.request);
    const auto responses = service.take_responses();
    ASSERT_EQ(responses.size(), 1u) << c.label;
    EXPECT_EQ(responses[0].reason, Reason::kMalformed) << c.label;
    EXPECT_TRUE(responses[0].grants.empty()) << c.label;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, cases.size());
  EXPECT_EQ(stats.enqueued, 0u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(Reason::kMalformed)], cases.size());
  // A valid request still goes through after the garbage.
  (void)service.submit(task_req(0.0, 5.0, {flow_req(a, b, 1.0)}));
  service.pump();
  const auto ok = service.take_responses();
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].accepted());
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcFault, DuplicateClientTagRejectedWhileInFlight) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  (void)service.submit(task_req(0.0, 5.0, {flow_req(d.left[0], d.right[0], 1.0)}, 42));
  (void)service.submit(task_req(0.1, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}, 42));
  {
    const auto responses = service.take_responses();
    ASSERT_EQ(responses.size(), 1u);  // only the duplicate answered so far
    EXPECT_EQ(responses[0].reason, Reason::kDuplicate);
    EXPECT_EQ(responses[0].client_tag, 42u);
  }
  service.pump();
  {
    const auto responses = service.take_responses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].accepted());
  }
  // Once answered, the tag is free again.
  (void)service.submit(task_req(0.2, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}, 42));
  service.pump();
  EXPECT_TRUE(service.take_responses().at(0).accepted());
  // Tag 0 means untagged: never treated as a duplicate.
  (void)service.submit(task_req(0.3, 5.0, {flow_req(d.left[2], d.right[2], 0.5)}, 0));
  (void)service.submit(task_req(0.4, 5.0, {flow_req(d.left[3], d.right[3], 0.5)}, 0));
  EXPECT_EQ(service.stats().enqueued, 4u);
  service.pump();
  EXPECT_EQ(service.take_responses().size(), 2u);
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcFault, OutOfOrderArrivalRejected) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  (void)service.submit(task_req(1.0, 5.0, {flow_req(d.left[0], d.right[0], 1.0)}));
  (void)service.submit(task_req(0.5, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}));
  // Equal arrival times are fine (near-simultaneous batch members).
  (void)service.submit(task_req(1.0, 5.0, {flow_req(d.left[2], d.right[2], 1.0)}));
  service.pump();
  const auto responses = by_seq(service.take_responses());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].accepted());
  EXPECT_EQ(responses[1].reason, Reason::kOutOfOrder);
  EXPECT_TRUE(responses[2].accepted());
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcFault, QueueOverflowAppliesExplicitBackpressure) {
  auto d = make_dumbbell();
  ServiceConfig config;
  config.queue_capacity = 2;
  AdmissionService service(*d.topology, config);
  for (int i = 0; i < 4; ++i) {
    (void)service.submit(
        task_req(0.1 * i, 5.0, {flow_req(d.left[i], d.right[i], 0.1)}));
  }
  service.pump();
  const auto responses = by_seq(service.take_responses());
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].accepted());
  EXPECT_TRUE(responses[1].accepted());
  EXPECT_EQ(responses[2].reason, Reason::kQueueFull);
  EXPECT_EQ(responses[3].reason, Reason::kQueueFull);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.responses, 4u);
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcFault, AbandonedRequestAnsweredWithoutProcessing) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  const svc::Seq doomed =
      service.submit(task_req(0.0, 5.0, {flow_req(d.left[0], d.right[0], 9.0)}));
  const svc::Seq kept =
      service.submit(task_req(0.1, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}));
  EXPECT_TRUE(service.abandon(doomed));
  EXPECT_FALSE(service.abandon(doomed));  // already flagged
  EXPECT_FALSE(service.abandon(kept + 100));  // never existed
  service.pump();
  const auto responses = by_seq(service.take_responses());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].reason, Reason::kAbandoned);
  EXPECT_TRUE(responses[1].accepted());
  // The abandoned task's 9.0-unit flow never touched the shard: the kept
  // task was planned as if it were alone.
  EXPECT_EQ(service.shard(0).stats().processed, 1u);
  EXPECT_FALSE(service.abandon(kept));  // already answered
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcFault, StopAnswersQueuedRequestsAndRefusesNewOnes) {
  auto d = make_dumbbell();
  AdmissionService service(*d.topology, ServiceConfig{});
  for (int i = 0; i < 3; ++i) {
    (void)service.submit(
        task_req(0.1 * i, 5.0, {flow_req(d.left[i], d.right[i], 0.1)}));
  }
  service.stop();
  const auto responses = by_seq(service.take_responses());
  ASSERT_EQ(responses.size(), 3u);
  for (const TaskResponse& r : responses) EXPECT_EQ(r.reason, Reason::kShutdown);
  (void)service.submit(task_req(1.0, 5.0, {flow_req(d.left[4], d.right[4], 0.1)}));
  const auto late = service.take_responses();
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].reason, Reason::kShutdown);
  EXPECT_EQ(service.stats().submitted, 4u);
  EXPECT_EQ(service.stats().responses, 4u);
}

TEST(SvcFault, StopWithInFlightBatchesAnswersEverySubmission) {
  topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(7);
  WorkloadKnobs knobs;
  knobs.tasks = 200;
  const auto requests = pod_local_workload(ft, rng, knobs);
  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 8;
  config.queue_capacity = requests.size() + 1;
  AdmissionService service(ft, config);
  service.start();
  for (const auto& r : requests) (void)service.submit(r);
  service.stop();  // no wait_idle: some batches are mid-flight, rest queued
  const auto responses = service.take_responses();
  EXPECT_EQ(responses.size(), requests.size());
  const auto stats = service.stats();
  EXPECT_EQ(stats.responses, stats.submitted);
  std::size_t tallied = 0;
  for (const std::size_t n : stats.by_reason) tallied += n;
  EXPECT_EQ(tallied, stats.responses);
  for (const TaskResponse& r : responses) {
    EXPECT_TRUE(r.reason == Reason::kAccepted || r.reason == Reason::kShutdown)
        << svc::to_string(r.reason);
  }
  EXPECT_EQ(service.audit(), std::nullopt);
}

// A hostile mixed stream: the service keeps exact response accounting and
// shard invariants through interleaved faults.
TEST(SvcFault, MixedFaultStreamKeepsExactAccounting) {
  auto d = make_dumbbell();
  ServiceConfig config;
  config.queue_capacity = 4;
  AdmissionService service(*d.topology, config);
  std::size_t submitted = 0;
  const auto sub = [&](const svc::TaskRequest& r) {
    ++submitted;
    return service.submit(r);
  };
  (void)sub(task_req(0.0, 5.0, {flow_req(d.left[0], d.right[0], 1.0)}, 1));
  (void)sub(task_req(0.1, 5.0, {}));                                         // malformed
  (void)sub(task_req(0.05, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}));    // out of order
  (void)sub(task_req(0.2, 5.0, {flow_req(d.left[1], d.right[1], 1.0)}, 1));  // duplicate
  const svc::Seq gone = sub(task_req(0.3, 5.0, {flow_req(d.left[2], d.right[2], 1.0)}));
  EXPECT_TRUE(service.abandon(gone));
  (void)sub(task_req(0.4, 5.0, {flow_req(d.left[3], d.right[3], 1.0)}));
  (void)sub(task_req(0.5, 5.0, {flow_req(d.left[4], d.right[4], 1.0)}));
  (void)sub(task_req(0.6, 5.0, {flow_req(d.left[5], d.right[5], 1.0)}));  // queue full
  service.pump();
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.responses, submitted);
  std::size_t tallied = 0;
  for (const std::size_t n : stats.by_reason) tallied += n;
  EXPECT_EQ(tallied, submitted);
  EXPECT_EQ(service.take_responses().size(), submitted);
  EXPECT_EQ(service.audit(), std::nullopt);
}

}  // namespace
}  // namespace taps::test
