// Hierarchical cross-pod admission on the sharded service: spanning tasks
// reserve budgeted pod-uplink time at submit (local reserve) and commit on
// the dedicated global domain (global commit). These tests pin the budget
// boundary (exhaustion rejects BEFORE planning; disjoint pods have disjoint
// budgets; windows free up over virtual time) and the mixed-workload quality
// contract against the unsharded full-replan controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

using svc::AdmissionService;
using svc::Reason;
using svc::ServiceConfig;
using svc::TaskResponse;

/// One spanning task: a single flow from pod `src_pod` to pod `dst_pod`
/// whose transfer takes `transfer` seconds at host line rate.
svc::TaskRequest spanning(const topo::FatTree& ft, double arrival, double deadline,
                          int src_pod, int dst_pod, double transfer) {
  return task_req(arrival, deadline,
                  {flow_req(ft.host(src_pod, 0, 0), ft.host(dst_pod, 0, 0),
                            transfer * kPow2Capacity)});
}

TEST(SvcCrossPod, BudgetExhaustionRejectsBeforePlanning) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  ServiceConfig config;
  config.shards = 4;
  // Pod uplink budget per 1s deadline window: 0.15s of aggregate uplink
  // time. One flow of 0.4s host-rate transfer reserves 0.4/4 = 0.1s on each
  // endpoint pod, so the first spanning task fits and the second does not.
  config.cross_pod_budget = 0.15;
  AdmissionService service(ft, config);
  (void)service.submit(spanning(ft, 0.0, 0.9, 0, 1, 0.4));
  (void)service.submit(spanning(ft, 0.0, 0.9, 0, 1, 0.4));
  // Pods 2 and 3 have untouched budgets: disjoint pods, disjoint reserves.
  (void)service.submit(spanning(ft, 0.0, 0.9, 2, 3, 0.4));
  service.pump();
  auto responses = service.take_responses();
  std::sort(responses.begin(), responses.end(),
            [](const TaskResponse& a, const TaskResponse& b) { return a.seq < b.seq; });
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].accepted());
  EXPECT_EQ(responses[1].reason, Reason::kBudgetExhausted);
  EXPECT_TRUE(responses[2].accepted());
  // The budget reject never reached a shard — it is an admission-control
  // decision, not a planner one.
  EXPECT_EQ(service.shard(service.global_domain()).stats().processed, 2u);
  EXPECT_EQ(service.stats().cross_pod_enqueued, 2u);
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcCrossPod, BudgetRecoversInLaterWindows) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  ServiceConfig config;
  config.shards = 4;
  config.cross_pod_budget = 0.15;
  AdmissionService service(ft, config);
  (void)service.submit(spanning(ft, 0.0, 0.9, 0, 1, 0.4));
  (void)service.submit(spanning(ft, 0.0, 0.9, 0, 1, 0.4));  // exhausted
  // A later deadline window has its own budget; the old window's
  // reservations expire once arrivals move past it.
  (void)service.submit(spanning(ft, 2.5, 2.9, 0, 1, 0.4));
  service.pump();
  auto responses = service.take_responses();
  std::sort(responses.begin(), responses.end(),
            [](const TaskResponse& a, const TaskResponse& b) { return a.seq < b.seq; });
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].accepted());
  EXPECT_EQ(responses[1].reason, Reason::kBudgetExhausted);
  EXPECT_TRUE(responses[2].accepted());
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcCrossPod, MixedWorkloadMatchesUnshardedAcceptanceWhenUncontended) {
  // A light mixed stream (intra-pod majority, ~30% spanning) that both the
  // hierarchical sharded service and the unsharded full-replan controller
  // should admit in full: quality loss under the default budget is zero
  // when the network is uncontended. (Contended quality is measured by
  // bench_svc_admission's oracle-agreement entries.)
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(0x5eed);
  std::vector<svc::TaskRequest> requests;
  double arrival = 0.0;
  for (int i = 0; i < 40; ++i) {
    arrival += rng.exponential(0.05) + 1e-7;
    const double transfer = rng.uniform_real(0.005, 0.02);
    const int src_pod = static_cast<int>(rng.uniform_int(0, 3));
    int dst_pod = src_pod;
    if (rng.bernoulli(0.3)) {
      while (dst_pod == src_pod) dst_pod = static_cast<int>(rng.uniform_int(0, 3));
    }
    const topo::NodeId src = ft.host(src_pod, 0, static_cast<int>(rng.uniform_int(0, 1)));
    topo::NodeId dst = src;
    while (dst == src) {
      dst = ft.host(dst_pod, 1, static_cast<int>(rng.uniform_int(0, 1)));
    }
    const double deadline = arrival + rng.uniform_real(3.0, 6.0) * transfer;
    requests.push_back(task_req(arrival, deadline, {flow_req(src, dst, transfer * kPow2Capacity)}));
  }

  ServiceConfig sharded;
  sharded.shards = 4;
  const SvcRun hier = run_service(ft, requests, sharded, /*started=*/false);
  const SvcRun oracle = run_service(ft, requests, ServiceConfig{}, /*started=*/false);

  EXPECT_EQ(hier.audit, std::nullopt);
  EXPECT_EQ(hier.stats.by_reason[static_cast<std::size_t>(Reason::kCrossShard)], 0u);
  EXPECT_GT(hier.stats.cross_pod_enqueued, 0u);
  EXPECT_EQ(hier.stats.accepted, requests.size());
  EXPECT_EQ(oracle.stats.accepted, requests.size());
}

}  // namespace
}  // namespace taps::test
