// Shared helpers for the admission-service test suites: request builders,
// seeded pod-local fat-tree workloads, service runners (pumped inline or
// started with threads), and response/fingerprint comparison.
//
// The suites use a power-of-two link capacity (kPow2Capacity) so byte <->
// slice-measure conversions (remaining = capacity * measure and need =
// remaining / capacity) are exact in double precision — partial-progress
// bookkeeping then carries no rounding of its own, which keeps the audit's
// remaining-vs-occupancy cross-check tight. Bitwise run-vs-run equivalence
// does not depend on it (compared runs perform identical arithmetic); see
// docs/CONTROLLER.md.
#pragma once

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "svc/service_metrics.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace taps::svc {

// Printers so the property-test kit can show shrunk counterexamples.
inline std::ostream& operator<<(std::ostream& os, const TaskRequest& r) {
  os << "{t=" << r.arrival << " d=" << r.deadline << " flows=[";
  for (const FlowRequest& f : r.flows) {
    os << "(" << f.src << "->" << f.dst << " " << f.size << ")";
  }
  return os << "] tag=" << r.client_tag << "}";
}

}  // namespace taps::svc

namespace taps::test {

/// 2^30 bytes/second — within 8% of the paper's 1 Gbps, but exact under
/// doubles' multiply/divide round-trip (see header comment).
inline constexpr double kPow2Capacity = 1073741824.0;

inline svc::TaskRequest task_req(double arrival, double deadline,
                                 std::vector<svc::FlowRequest> flows,
                                 std::uint64_t tag = 0) {
  svc::TaskRequest r;
  r.arrival = arrival;
  r.deadline = deadline;
  r.flows = std::move(flows);
  r.client_tag = tag;
  return r;
}

inline svc::FlowRequest flow_req(topo::NodeId src, topo::NodeId dst, double size) {
  svc::FlowRequest f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  return f;
}

struct WorkloadKnobs {
  std::size_t tasks = 20;
  double mean_gap = 0.01;       // seconds between arrivals (exponential)
  double mean_transfer = 0.02;  // seconds of transmission per flow
  double slack_lo = 1.2;        // deadline = arrival + slack * sum(transfer)
  double slack_hi = 4.0;
  std::size_t max_flows = 3;
};

/// Seeded workload whose tasks each stay inside one fat-tree pod (so every
/// sharded run classifies them identically). Arrivals strictly increase.
inline std::vector<svc::TaskRequest> pod_local_workload(const topo::FatTree& ft,
                                                        util::Rng& rng,
                                                        const WorkloadKnobs& knobs = {}) {
  const int half = ft.k() / 2;
  const double capacity = ft.graph().links().front().capacity;
  std::vector<svc::TaskRequest> out;
  out.reserve(knobs.tasks);
  double arrival = 0.0;
  for (std::size_t i = 0; i < knobs.tasks; ++i) {
    arrival += rng.exponential(knobs.mean_gap) + 1e-7;
    const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
    const std::size_t flows =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(knobs.max_flows)));
    std::vector<svc::FlowRequest> fs;
    double total_transfer = 0.0;
    for (std::size_t f = 0; f < flows; ++f) {
      const topo::NodeId src = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                                       static_cast<int>(rng.uniform_int(0, half - 1)));
      topo::NodeId dst = src;
      while (dst == src) {
        dst = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                      static_cast<int>(rng.uniform_int(0, half - 1)));
      }
      const double transfer = rng.uniform_real(0.25, 1.0) * knobs.mean_transfer;
      total_transfer += transfer;
      fs.push_back(flow_req(src, dst, transfer * capacity));
    }
    const double slack = rng.uniform_real(knobs.slack_lo, knobs.slack_hi);
    out.push_back(task_req(arrival, arrival + slack * total_transfer, std::move(fs)));
  }
  return out;
}

struct SvcRun {
  std::vector<svc::TaskResponse> responses;  // sorted by seq
  std::vector<std::string> fingerprints;     // one per shard
  svc::ServiceStats stats;
  std::vector<svc::ShardStats> shards;
  std::optional<std::string> audit;
};

/// Run `requests` through a service. `started` = dispatcher + worker pool;
/// otherwise pump mode (inline, single-threaded). Queue capacity is raised
/// to hold the whole workload so results never depend on drain timing.
inline SvcRun run_service(const topo::Topology& topology,
                          const std::vector<svc::TaskRequest>& requests,
                          svc::ServiceConfig config, bool started) {
  config.queue_capacity = std::max(config.queue_capacity, requests.size() + 1);
  svc::AdmissionService service(topology, config);
  if (started) service.start();
  for (const svc::TaskRequest& r : requests) (void)service.submit(r);
  if (started) {
    service.wait_idle();
  } else {
    service.pump();
  }
  SvcRun run;
  run.responses = service.take_responses();
  std::sort(run.responses.begin(), run.responses.end(),
            [](const svc::TaskResponse& a, const svc::TaskResponse& b) { return a.seq < b.seq; });
  run.stats = service.stats();
  run.shards = svc::shard_stats(service);
  run.audit = service.audit();
  run.fingerprints.reserve(service.shard_count());
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    run.fingerprints.push_back(service.shard(i).fingerprint());
  }
  return run;
}

/// First difference between two response streams (bitwise: reason, grants
/// with paths and slices, preempted seqs), or nullopt.
inline std::optional<std::string> compare_responses(const std::vector<svc::TaskResponse>& a,
                                                    const std::vector<svc::TaskResponse>& b) {
  if (a.size() != b.size()) {
    return "response counts differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    std::ostringstream os;
    os << "responses for seq " << a[i].seq << " differ: " << svc::to_string(a[i].reason)
       << " (" << a[i].grants.size() << " grants, " << a[i].preempted.size()
       << " preempted) vs " << svc::to_string(b[i].reason) << " (" << b[i].grants.size()
       << " grants, " << b[i].preempted.size() << " preempted)";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace taps::test
