// Property: the service's batching, queueing, pod-sharding and worker
// threads are pure plumbing — admission outcomes, grant slices and committed
// occupancy are bit-identical to the *sequential full-replan oracle*: a bare
// svc::Shard per admission domain, fed that domain's requests one at a time
// in submission order, with incremental replanning, occupancy trimming and
// registry compaction all disabled (TapsConfig::incremental_replan = false
// keeps the original replan-from-scratch path).
//
// For every seeded pod-local workload we compare, bitwise:
//   - single-shard service (the paper's global controller) vs a single
//     oracle Shard over the whole stream;
//   - 4-shard service vs four oracle Shards, each over its pod's
//     subsequence;
//   - pumped-inline vs started-with-worker-pool runs of the same config,
//     including per-shard state fingerprints;
// under several batch-size / compaction / trim knob combinations. Failures
// shrink to a minimal request subsequence and print a TAPS_PROP_SEED.
//
// Note what is deliberately NOT claimed: a 1-shard and a 4-shard run are
// not bitwise comparable to each other. TAPS breaks EDF ties by *remaining*
// flow size, and remaining is a function of the replan times — a global
// controller replans a pod's flows at other pods' arrivals too, so
// same-deadline flows can legitimately reorder. Sharded admission is
// per-pod TAPS by definition, and each shard is pinned to the sequential
// oracle over its own stream. See docs/CONTROLLER.md.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/prop.hpp"
#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

struct Knobs {
  const char* label;
  std::size_t max_batch;
  std::size_t compact_interval;
  std::size_t trim_interval;
};

constexpr Knobs kKnobCombos[] = {
    {"batch1/compact0/trim0", 1, 0, 0},
    {"batch3/compact5/trim3", 3, 5, 3},
    {"batch64/compact16/trim64", 64, 16, 64},
};

svc::ServiceConfig service_config(const Knobs& knobs, std::size_t shards, std::size_t threads) {
  svc::ServiceConfig config;
  config.shards = shards;
  config.threads = threads;
  config.max_batch = knobs.max_batch;
  config.shard.compact_interval = knobs.compact_interval;
  config.shard.taps.trim_interval = knobs.trim_interval;
  return config;
}

struct OracleRun {
  std::vector<svc::TaskResponse> responses;  // seq order == submission order
  std::vector<std::string> fingerprints;     // one per admission domain
};

/// The sequential full-replan oracle: no queue, no batches, no threads —
/// each domain's Shard processes its requests directly, one at a time.
OracleRun run_oracle(const topo::FatTree& ft, const std::vector<svc::TaskRequest>& requests,
                     std::size_t shards) {
  svc::ShardConfig config;
  config.compact_interval = 0;
  config.taps.incremental_replan = false;
  config.taps.trim_interval = 0;
  // Sharded services also carry the (here idle) global cross-pod domain;
  // mirror the layout so fingerprint vectors compare index for index.
  const std::size_t domain_count = shards > 1 ? shards + 1 : shards;
  std::vector<std::unique_ptr<svc::Shard>> domains;
  domains.reserve(domain_count);
  for (std::size_t s = 0; s < domain_count; ++s) {
    domains.push_back(std::make_unique<svc::Shard>(ft, config));
  }
  OracleRun run;
  run.responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t s =
        shards > 1
            ? static_cast<std::size_t>(ft.pod_of_host(requests[i].flows.front().src)) % shards
            : 0;
    run.responses.push_back(domains[s]->process(i, requests[i]));
  }
  for (const auto& d : domains) run.fingerprints.push_back(d->fingerprint());
  return run;
}

TAPS_PROP(SvcEquivProp, BatchedShardedMatchesSequentialFullReplanOracle, 160) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  prop.for_all(
      [&ft](util::Rng& rng) {
        WorkloadKnobs knobs;
        knobs.tasks = static_cast<std::size_t>(rng.uniform_int(1, 25));
        knobs.mean_gap = rng.uniform_real(0.001, 0.02);
        knobs.slack_lo = 1.05;
        knobs.slack_hi = rng.uniform_real(1.5, 4.0);
        return pod_local_workload(ft, rng, knobs);
      },
      [&ft](const std::vector<svc::TaskRequest>& requests) -> std::optional<std::string> {
        for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
          const OracleRun oracle = run_oracle(ft, requests, shards);
          const std::string tag = "shards=" + std::to_string(shards) + " ";
          for (const Knobs& knobs : kKnobCombos) {
            const SvcRun pumped =
                run_service(ft, requests, service_config(knobs, shards, 0), /*started=*/false);
            if (pumped.audit) {
              return tag + knobs.label + ": audit: " + *pumped.audit;
            }
            if (auto diff = compare_responses(oracle.responses, pumped.responses)) {
              return tag + knobs.label + ": oracle vs service: " + *diff;
            }
            // With trimming and compaction off, the full committed state —
            // per-link occupancy included — must match the oracle bitwise.
            if (knobs.compact_interval == 0 && knobs.trim_interval == 0 &&
                pumped.fingerprints != oracle.fingerprints) {
              return tag + knobs.label + ": committed state diverges from the oracle";
            }

            const SvcRun threaded =
                run_service(ft, requests, service_config(knobs, shards, 4), /*started=*/true);
            if (threaded.audit) {
              return tag + knobs.label + ": threaded audit: " + *threaded.audit;
            }
            if (auto diff = compare_responses(pumped.responses, threaded.responses)) {
              return tag + knobs.label + ": pumped vs threaded: " + *diff;
            }
            if (pumped.fingerprints != threaded.fingerprints) {
              return tag + knobs.label +
                     ": shard fingerprints diverge between pumped and threaded runs";
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace taps::test
