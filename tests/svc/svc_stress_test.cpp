// Concurrency stress for the admission service, built to run under
// ThreadSanitizer (ctest label `tsan`): a many-producer submission storm,
// concurrent shard admissions checked bitwise against a sequential rerun,
// and a shutdown racing live producers. Sizes are modest — TSan multiplies
// runtime — but every cross-thread edge the service has is exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

using svc::AdmissionService;
using svc::Reason;
using svc::ServiceConfig;

TEST(SvcStress, ManyProducerStormGetsExactlyOneResponseEach) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 100;
  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 16;
  config.queue_capacity = kProducers * kPerProducer + 1;
  AdmissionService service(ft, config);
  service.start();

  // All arrivals share t=0 so interleaved producers can never trip the
  // monotone-arrival check; contention comes purely from the submit path.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(1000 + p);
      const int half = ft.k() / 2;
      const double capacity = kPow2Capacity;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
        const topo::NodeId src = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                                         static_cast<int>(rng.uniform_int(0, half - 1)));
        topo::NodeId dst = src;
        while (dst == src) {
          dst = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                        static_cast<int>(rng.uniform_int(0, half - 1)));
        }
        const double transfer = rng.uniform_real(0.001, 0.01);
        (void)service.submit(task_req(0.0, rng.uniform_real(0.5, 2.0),
                                      {flow_req(src, dst, transfer * capacity)}));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.wait_idle();
  service.stop();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.responses, stats.submitted);
  EXPECT_EQ(service.take_responses().size(), stats.submitted);
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcStress, ConcurrentShardAdmitsMatchSequentialRerun) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  util::Rng rng(0xcafe);
  WorkloadKnobs knobs;
  knobs.tasks = 200;
  const auto requests = pod_local_workload(ft, rng, knobs);

  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 32;
  const SvcRun threaded = run_service(ft, requests, config, /*started=*/true);
  ServiceConfig sequential = config;
  sequential.threads = 0;
  const SvcRun pumped = run_service(ft, requests, sequential, /*started=*/false);

  EXPECT_EQ(compare_responses(threaded.responses, pumped.responses), std::nullopt);
  EXPECT_EQ(threaded.fingerprints, pumped.fingerprints);
  EXPECT_EQ(threaded.audit, std::nullopt);
  EXPECT_EQ(pumped.audit, std::nullopt);
}

TEST(SvcStress, ShutdownRacingProducersLosesNoRequest) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  ServiceConfig config;
  config.shards = 4;
  config.threads = 2;
  config.max_batch = 8;
  config.queue_capacity = kProducers * kPerProducer + 1;
  AdmissionService service(ft, config);
  service.start();

  std::atomic<std::size_t> submitted{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(7000 + p);
      const int half = ft.k() / 2;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
        const topo::NodeId src = ft.host(pod, 0, static_cast<int>(rng.uniform_int(0, half - 1)));
        const topo::NodeId dst = ft.host(pod, 1, static_cast<int>(rng.uniform_int(0, half - 1)));
        (void)service.submit(
            task_req(0.0, 1.0, {flow_req(src, dst, 0.001 * kPow2Capacity)}));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Pull the plug while producers are mid-stream: some requests are in
  // flight, some queued, the rest arrive after stopping.
  while (submitted.load(std::memory_order_relaxed) < kProducers * kPerProducer / 4) {
    std::this_thread::yield();
  }
  service.stop();
  for (std::thread& t : producers) t.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.responses, stats.submitted);
  const auto responses = service.take_responses();
  EXPECT_EQ(responses.size(), stats.submitted);
  for (const svc::TaskResponse& r : responses) {
    EXPECT_TRUE(r.reason == Reason::kAccepted || r.reason == Reason::kPlannerReject ||
                r.reason == Reason::kShutdown)
        << svc::to_string(r.reason);
  }
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcStress, CrossPodReserveCommitStorm) {
  // Producers race the cross-pod reserve path (budget bookkeeping under the
  // service lock) against parallel commits on pod shards AND the global
  // domain. Every request gets exactly one response with a cross-pod-era
  // reason, and the committed state audits clean.
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kPerProducer = 100;
  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 16;
  config.queue_capacity = kProducers * kPerProducer + 1;
  config.cross_pod_budget = 0.05;  // tight: budget rejects happen under load
  AdmissionService service(ft, config);
  ASSERT_TRUE(service.has_global_domain());
  service.start();

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(4200 + p);
      const int half = ft.k() / 2;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const int src_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
        int dst_pod = src_pod;
        if (rng.bernoulli(0.4)) {
          dst_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
        }
        const topo::NodeId src = ft.host(src_pod, 0, static_cast<int>(rng.uniform_int(0, half - 1)));
        topo::NodeId dst = src;
        while (dst == src) {
          dst = ft.host(dst_pod, 1, static_cast<int>(rng.uniform_int(0, half - 1)));
        }
        const double transfer = rng.uniform_real(0.001, 0.01);
        (void)service.submit(task_req(0.0, rng.uniform_real(0.5, 2.0),
                                      {flow_req(src, dst, transfer * kPow2Capacity)}));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.wait_idle();
  service.stop();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.responses, stats.submitted);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(Reason::kCrossShard)], 0u);
  const auto responses = service.take_responses();
  EXPECT_EQ(responses.size(), stats.submitted);
  for (const svc::TaskResponse& r : responses) {
    EXPECT_TRUE(r.reason == Reason::kAccepted || r.reason == Reason::kPlannerReject ||
                r.reason == Reason::kBudgetExhausted)
        << svc::to_string(r.reason);
  }
  EXPECT_EQ(service.audit(), std::nullopt);
}

}  // namespace
}  // namespace taps::test
