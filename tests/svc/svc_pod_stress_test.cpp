// Concurrency stress for the hierarchical admission path, built to run under
// ThreadSanitizer (ctest label `tsan`): a many-producer storm of pod-spanning
// tasks drives the service-lock budget reservation (reserve_cross_pod under
// AdmissionService::mu_) concurrently with the dispatcher advancing shard
// domains whose TapsScheduler commits into core::PodAdmissionIndex
// (begin_commit / observe_commit_entry / end_commit). The index itself is
// `taps-threading: single-domain`; what this suite pins is that the service
// keeps it that way — every index mutation stays on the shard's domain while
// submitters hammer the reserve side of the path.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include "svc/svc_fixtures.hpp"

namespace taps::test {
namespace {

using svc::AdmissionService;
using svc::Reason;
using svc::ServiceConfig;

/// A spanning task: src in `pod`, dst in a different pod — classified to the
/// cross-pod service path (budget reserve, global-domain plan/commit).
svc::TaskRequest spanning_task(const topo::FatTree& ft, util::Rng& rng, double arrival) {
  const int half = ft.k() / 2;
  const double capacity = kPow2Capacity;
  const int src_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
  int dst_pod = src_pod;
  while (dst_pod == src_pod) {
    dst_pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
  }
  const topo::NodeId src = ft.host(src_pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                                   static_cast<int>(rng.uniform_int(0, half - 1)));
  const topo::NodeId dst = ft.host(dst_pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                                   static_cast<int>(rng.uniform_int(0, half - 1)));
  const double transfer = rng.uniform_real(0.001, 0.01);
  return task_req(arrival, rng.uniform_real(0.5, 2.0), {flow_req(src, dst, transfer * capacity)});
}

TEST(SvcPodStress, SubmittingStormRacesCrossPodReserveAndCommit) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 100;

  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 16;
  config.cross_pod = true;
  config.queue_capacity = kProducers * kPerProducer + 1;
  AdmissionService service(ft, config);
  service.start();

  // All arrivals share t=0 (interleaved producers must not trip the
  // monotone-arrival check); every task spans pods, so each submit takes the
  // budget-reservation critical section while committed batches update the
  // pod index on the global shard's domain.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(4200 + p);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        (void)service.submit(spanning_task(ft, rng, 0.0));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.wait_idle();
  service.stop();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.responses, stats.submitted);
  // The storm must actually exercise the cross-pod path (not degrade to
  // budget rejects only): some tasks reserve, enqueue, and get planned.
  EXPECT_GT(stats.cross_pod_enqueued, 0u);

  // Exactly one response per submitted task, with well-formed seqs.
  const auto responses = service.take_responses();
  ASSERT_EQ(responses.size(), stats.submitted);
  std::set<std::uint64_t> seqs;
  std::size_t accepted = 0;
  for (const svc::TaskResponse& r : responses) {
    EXPECT_TRUE(seqs.insert(r.seq).second) << "duplicate response for seq " << r.seq;
    if (r.reason == Reason::kAccepted) {
      ++accepted;
      EXPECT_FALSE(r.grants.empty());
    }
  }
  EXPECT_EQ(accepted, stats.accepted);
  // Committed shard state (including the pod index's gate bookkeeping) must
  // audit clean after the race.
  EXPECT_EQ(service.audit(), std::nullopt);
}

TEST(SvcPodStress, MixedLocalAndSpanningStormAuditsClean) {
  const topo::FatTree ft(topo::FatTreeConfig{4, kPow2Capacity});
  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kPerProducer = 80;

  ServiceConfig config;
  config.shards = 4;
  config.threads = 4;
  config.max_batch = 8;
  config.cross_pod = true;
  config.queue_capacity = kProducers * kPerProducer + 1;
  AdmissionService service(ft, config);
  service.start();

  // Half the producers submit pod-local tasks (sharded domains, index
  // commits per shard), half submit spanning tasks (budget reserve + global
  // domain) — the two admission paths race each other end to end.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(9900 + p);
      const int half = ft.k() / 2;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        if (p % 2 == 0) {
          (void)service.submit(spanning_task(ft, rng, 0.0));
          continue;
        }
        const int pod = static_cast<int>(rng.uniform_int(0, ft.k() - 1));
        const topo::NodeId src = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                                         static_cast<int>(rng.uniform_int(0, half - 1)));
        topo::NodeId dst = src;
        while (dst == src) {
          dst = ft.host(pod, static_cast<int>(rng.uniform_int(0, half - 1)),
                        static_cast<int>(rng.uniform_int(0, half - 1)));
        }
        const double transfer = rng.uniform_real(0.001, 0.01);
        (void)service.submit(task_req(0.0, rng.uniform_real(0.5, 2.0),
                                      {flow_req(src, dst, transfer * kPow2Capacity)}));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.wait_idle();
  service.stop();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.responses, stats.submitted);
  EXPECT_EQ(service.take_responses().size(), stats.submitted);
  EXPECT_EQ(service.audit(), std::nullopt);
}

}  // namespace
}  // namespace taps::test
