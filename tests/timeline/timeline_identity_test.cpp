// Recorder-purity pins: attaching a sim::TimelineRecorder must leave every
// observable result bit-identical to the recorder-less run —
//   * FluidSimulator runs (flow outcomes, slices, occupancy, counters),
//     under both full and incremental replanning;
//   * sweep CSVs, with and without --timeline-dir artifact capture;
//   * svc::Shard request streams (responses + fingerprint), including across
//     a registry compaction;
//   * the sharded AdmissionService (per-shard fingerprints).
// This is what lets production sweeps and services record timelines
// unconditionally: observation can never perturb a schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "exp/sweep.hpp"
#include "sim/timeline.hpp"
#include "svc/svc_fixtures.hpp"

namespace taps::sim {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

/// Full-precision (hexfloat) dump of a run's committed state: flow outcomes
/// and byte accounting, per-flow paths and slices, per-link occupancy, and
/// the decision counters.
std::string run_fingerprint(const net::Network& net, const core::TapsScheduler& sched) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const net::Flow& f : net.flows()) {
    os << f.id() << ' ' << net::to_string(f.state) << ' ' << f.remaining << ' '
       << f.bytes_sent << ' ' << f.completion_time << " p=";
    for (const topo::LinkId l : f.path.links) os << l << ',';
    os << " s=" << sched.slices(f.id()) << '\n';
  }
  const std::size_t links = net.graph().link_count();
  for (topo::LinkId l = 0; l < static_cast<topo::LinkId>(links); ++l) {
    os << 'L' << l << ' ' << sched.occupancy().link(l) << '\n';
  }
  const core::TapsCounters& c = sched.counters();
  os << c.tasks_accepted << ' ' << c.tasks_rejected << ' ' << c.tasks_preempted << ' '
     << c.replans << ' ' << c.flows_planned << ' ' << c.plan_commits << ' '
     << c.slice_grants << '\n';
  return os.str();
}

/// A contended dumbbell workload mixing feasible tasks, a preemption, and a
/// reject, so the compared runs cross every decision path.
void build_workload(net::Network& net, const test::Dumbbell& d) {
  add_task(net, 0.0, 8.0, {flow(d.left[0], d.right[0], 4.0), flow(d.left[1], d.right[1], 2.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[2], d.right[2], 1.5)});
  add_task(net, 1.0, 9.0, {flow(d.left[3], d.right[3], 3.0)});
  add_task(net, 2.0, 4.0, {flow(d.left[0], d.right[1], 1.0)});
  add_task(net, 2.5, 5.0, {flow(d.left[1], d.right[0], 2.0)});
  add_task(net, 3.0, 6.5, {flow(d.left[2], d.right[3], 2.5)});
}

TEST(TimelineIdentity, SimulatorRunBitIdenticalWithRecorderAttached) {
  for (const bool incremental : {false, true}) {
    auto run_once = [incremental](bool with_recorder) {
      auto d = make_dumbbell(4);
      net::Network net(*d.topology);
      build_workload(net, d);
      core::TapsConfig cfg;
      cfg.incremental_replan = incremental;
      cfg.preempt_policy = core::PreemptPolicy::kSchedulable;
      cfg.trim_interval = 2;
      core::TapsScheduler sched(cfg);
      TimelineRecorder rec(TimelineConfig{.record_transmissions = true});
      if (with_recorder) sched.set_schedule_observer(&rec);
      FluidSimulator simulator(net, sched);
      if (with_recorder) simulator.set_observer(&rec);
      (void)simulator.run();
      if (with_recorder) {
        EXPECT_GT(rec.events().size(), 6u);
      }
      return run_fingerprint(net, sched);
    };
    const std::string without = run_once(false);
    const std::string with = run_once(true);
    EXPECT_EQ(without, with) << "recorder perturbed the schedule (incremental="
                             << incremental << ")";
  }
}

TEST(TimelineIdentity, SweepCsvByteIdenticalWithTimelineCapture) {
  workload::Scenario s = workload::Scenario::single_rooted(false);
  s.workload.task_count = 8;
  s.seed = 23;
  std::vector<exp::SweepPoint> points{exp::SweepPoint{1.0, s}};
  const std::vector<exp::SchedulerKind> scheds{exp::SchedulerKind::kFairSharing,
                                               exp::SchedulerKind::kTaps};

  const auto tmp = std::filesystem::temp_directory_path();
  const std::string tl_dir = (tmp / "taps_timeline_identity_tl").string();
  const std::string csv_plain = (tmp / "taps_timeline_identity_a.csv").string();
  const std::string csv_recorded = (tmp / "taps_timeline_identity_b.csv").string();

  const exp::SweepResult plain = exp::run_sweep(points, scheds, 1, 2);
  const exp::SweepResult recorded = exp::run_sweep(points, scheds, 1, 2, tl_dir);
  exp::write_sweep_csv(csv_plain, "x", points, scheds, plain, /*include_timing=*/false);
  exp::write_sweep_csv(csv_recorded, "x", points, scheds, recorded,
                       /*include_timing=*/false);

  auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(csv_plain), slurp(csv_recorded));

  // The capture side effect itself: one parseable artifact per cell.
  for (const exp::SchedulerKind k : scheds) {
    const std::string path =
        tl_dir + "/timeline_p0_" + std::string(exp::to_string(k)) + ".tlbin";
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is) << "missing timeline artifact " << path;
    const Timeline tl = read_timeline_binary(is);
    EXPECT_FALSE(tl.events.empty());
    EXPECT_EQ(tl.events.back().kind, TimelineEventKind::kRunEnd);
  }
  std::filesystem::remove_all(tl_dir);
  std::remove(csv_plain.c_str());
  std::remove(csv_recorded.c_str());
}

TEST(TimelineIdentity, ShardStreamBitIdenticalAcrossCompaction) {
  topo::FatTree ft(topo::FatTreeConfig{4, test::kPow2Capacity});
  util::Rng rng(0x5EED);
  test::WorkloadKnobs knobs;
  knobs.tasks = 40;
  const std::vector<svc::TaskRequest> requests = test::pod_local_workload(ft, rng, knobs);

  auto run_once = [&](bool with_recorder) {
    svc::ShardConfig cfg;
    cfg.compact_interval = 8;  // several compactions inside the stream
    svc::Shard shard(ft, cfg);
    TimelineRecorder rec;
    if (with_recorder) shard.set_schedule_observer(&rec);
    std::vector<svc::TaskResponse> responses;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses.push_back(shard.process(static_cast<svc::Seq>(i), requests[i]));
    }
    if (with_recorder) {
      EXPECT_GT(rec.count(TimelineEventKind::kArrive), 0u);
      EXPECT_EQ(rec.count(TimelineEventKind::kAdmit) + rec.count(TimelineEventKind::kReject),
                requests.size());
    }
    return std::make_pair(shard.fingerprint(), std::move(responses));
  };
  const auto [fp_plain, resp_plain] = run_once(false);
  const auto [fp_rec, resp_rec] = run_once(true);
  EXPECT_EQ(fp_plain, fp_rec);
  EXPECT_EQ(resp_plain, resp_rec);
}

TEST(TimelineIdentity, ShardedServiceBitIdenticalWithShardRecorders) {
  topo::FatTree ft(topo::FatTreeConfig{4, test::kPow2Capacity});
  util::Rng rng(0xBEEF);
  const std::vector<svc::TaskRequest> requests = test::pod_local_workload(ft, rng);

  auto run_once = [&](bool with_recorders) {
    svc::ServiceConfig config;
    config.shards = 2;
    config.queue_capacity = requests.size() + 1;
    svc::AdmissionService service(ft, config);
    std::vector<std::unique_ptr<TimelineRecorder>> recorders;
    if (with_recorders) {
      for (std::size_t i = 0; i < service.shard_count(); ++i) {
        recorders.push_back(std::make_unique<TimelineRecorder>());
        service.set_shard_schedule_observer(i, recorders.back().get());
      }
    }
    for (const svc::TaskRequest& r : requests) (void)service.submit(r);
    service.pump();
    std::vector<std::string> fps;
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      fps.push_back(service.shard(i).fingerprint());
    }
    if (with_recorders) {
      std::size_t events = 0;
      for (const auto& rec : recorders) events += rec->events().size();
      EXPECT_GT(events, 0u);
    }
    auto responses = service.take_responses();
    std::sort(responses.begin(), responses.end(),
              [](const svc::TaskResponse& a, const svc::TaskResponse& b) {
                return a.seq < b.seq;
              });
    return std::make_pair(std::move(fps), std::move(responses));
  };
  const auto [fp_plain, resp_plain] = run_once(false);
  const auto [fp_rec, resp_rec] = run_once(true);
  EXPECT_EQ(fp_plain, fp_rec);
  EXPECT_EQ(resp_plain, resp_rec);
}

}  // namespace
}  // namespace taps::sim
