// Property tests for recorded timelines: on random dumbbell scenarios (with
// preemption enabled and a short trim cadence) every recorded stream must
// satisfy the schedule semantics it claims to capture —
//   * timestamps are monotone non-decreasing and the stream ends with `end`;
//   * per-link slice exclusivity: at every instant of the replayed stream,
//     live grants never overlap on a shared link;
//   * every preemption names a victim that was admitted and granted before;
//   * completions are consistent with the granted slices: the executed
//     portions of a completed flow's grants sum to its size (unit capacity)
//     and the completion instant is the end of its last executed slice;
//   * event counts agree with TapsCounters (grants == slice_grants, ...);
//   * the stream is bit-identical under full and incremental replanning.
//
// The replay logic mirrors what scripts/render_gantt.py does when turning a
// stream into Gantt rows, so these properties also pin the renderer's input
// contract.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/prop.hpp"
#include "core/taps_scheduler.hpp"
#include "sim/timeline.hpp"

namespace taps::sim {
namespace {

constexpr double kFar = 1e18;  // clip horizon standing in for +infinity

struct FlowGen {
  std::size_t left = 0;
  std::size_t right = 0;
  double size = 1.0;
};

struct TaskGen {
  double arrival = 0.0;
  double slack = 1.0;
  std::vector<FlowGen> flows;
};

std::ostream& operator<<(std::ostream& os, const TaskGen& t) {
  os << "{t=" << t.arrival << " slack=" << t.slack << " flows=[";
  for (const FlowGen& f : t.flows) {
    os << "(" << f.left << "->" << f.right << " sz=" << f.size << ")";
  }
  return os << "]}";
}

constexpr int kSide = 6;

std::vector<TaskGen> gen_scenario(util::Rng& rng) {
  std::vector<TaskGen> tasks;
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i > 0 && !rng.bernoulli(0.4)) t += rng.uniform_real(0.1, 1.5);
    TaskGen task;
    task.arrival = t;
    // A tight tail forces rejections and (under kSchedulable) preemptions.
    task.slack =
        rng.bernoulli(0.3) ? rng.uniform_real(0.3, 1.0) : rng.uniform_real(1.0, 6.0);
    const int nf = static_cast<int>(rng.uniform_int(1, 3));
    for (int j = 0; j < nf; ++j) {
      task.flows.push_back(FlowGen{static_cast<std::size_t>(rng.uniform_int(0, kSide - 1)),
                                   static_cast<std::size_t>(rng.uniform_int(0, kSide - 1)),
                                   rng.uniform_real(0.2, 2.0)});
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

struct RecordedRun {
  std::unique_ptr<test::Dumbbell> d;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<core::TapsScheduler> sched;
  TimelineRecorder rec;
  std::vector<double> flow_sizes;  // by FlowId (insertion order)
};

std::unique_ptr<RecordedRun> run_scenario(const std::vector<TaskGen>& tasks,
                                          bool incremental) {
  auto r = std::make_unique<RecordedRun>();
  r->d = std::make_unique<test::Dumbbell>(test::make_dumbbell(kSide));
  r->net = std::make_unique<net::Network>(*r->d->topology);
  for (const TaskGen& t : tasks) {
    std::vector<net::FlowSpec> flows;
    for (const FlowGen& f : t.flows) {
      flows.push_back(test::flow(r->d->left[f.left], r->d->right[f.right], f.size));
      r->flow_sizes.push_back(f.size);
    }
    test::add_task(*r->net, t.arrival, t.arrival + t.slack, std::move(flows));
  }
  core::TapsConfig cfg;
  cfg.incremental_replan = incremental;
  cfg.preempt_policy = core::PreemptPolicy::kSchedulable;
  cfg.trim_interval = 4;
  r->sched = std::make_unique<core::TapsScheduler>(cfg);
  r->sched->set_schedule_observer(&r->rec);
  FluidSimulator simulator(*r->net, *r->sched);
  simulator.set_observer(&r->rec);
  (void)simulator.run();
  return r;
}

struct FlowTrack {
  std::vector<topo::LinkId> links;
  util::IntervalSet current;   // slices of the live grant
  util::IntervalSet executed;  // grant portions that were carried out
  net::TaskId task = net::kInvalidTask;
  bool live = false;
  bool ever_granted = false;
};

/// Fold `track.current` up to time `t` into `track.executed` and retire the
/// grant (regrant replacement, preemption, miss, or completion).
void finalize_grant(FlowTrack& track, double t) {
  util::IntervalSet done = track.current;
  done.erase(t, kFar);
  track.executed = track.executed.unite(done);
  track.current.clear();
  track.live = false;
}

/// The exclusivity sweep run at every timestamp boundary: no two live
/// grants may overlap on a shared link. (Within one instant, regrant
/// cascades replace entries in commit order, so the check only applies to
/// the settled state at the end of the instant.)
std::optional<std::string> check_exclusive(const std::map<net::FlowId, FlowTrack>& flows,
                                           double t) {
  for (auto a = flows.begin(); a != flows.end(); ++a) {
    if (!a->second.live) continue;
    for (auto b = std::next(a); b != flows.end(); ++b) {
      if (!b->second.live) continue;
      bool share = false;
      for (const topo::LinkId l : a->second.links) {
        for (const topo::LinkId m : b->second.links) share = share || l == m;
      }
      if (!share) continue;
      const util::IntervalSet clash = a->second.current.intersect(b->second.current);
      if (clash.measure() > 0.0) {
        std::ostringstream os;
        os << "at t=" << t << " flows " << a->first << " and " << b->first
           << " hold overlapping slices " << clash << " on a shared link";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> replay_and_check(const RecordedRun& run) {
  const Timeline& tl = run.rec.timeline();
  std::map<net::FlowId, FlowTrack> flows;
  std::set<net::TaskId> arrived;
  std::set<net::TaskId> admitted;
  std::ostringstream os;
  const auto fail = [&os]() -> std::optional<std::string> { return os.str(); };

  double prev = 0.0;
  for (std::size_t i = 0; i < tl.events.size(); ++i) {
    const TimelineEvent& e = tl.events[i];
    if (e.time < prev) {
      os << "event " << i << " (" << to_string(e.kind) << ") at t=" << e.time
         << " goes back in time from t=" << prev;
      return fail();
    }
    if (e.time > prev) {
      if (auto err = check_exclusive(flows, prev)) return err;
      prev = e.time;
    }
    switch (e.kind) {
      case TimelineEventKind::kArrive:
        arrived.insert(e.a);
        break;
      case TimelineEventKind::kAdmit:
      case TimelineEventKind::kReject:
        if (arrived.count(e.a) == 0) {
          os << to_string(e.kind) << " of task " << e.a << " without a prior arrival";
          return fail();
        }
        if (e.kind == TimelineEventKind::kAdmit) admitted.insert(e.a);
        break;
      case TimelineEventKind::kPreempt: {
        if (admitted.count(e.a) == 0) {
          os << "preempt of task " << e.a << " that was never admitted";
          return fail();
        }
        bool victim_granted = false;
        for (auto& [id, track] : flows) {
          if (track.task != e.a) continue;
          victim_granted = victim_granted || track.ever_granted;
          if (track.live) finalize_grant(track, e.time);
        }
        if (!victim_granted) {
          os << "preempt of task " << e.a << " with no prior grant for any of its flows";
          return fail();
        }
        break;
      }
      case TimelineEventKind::kGrant: {
        FlowTrack& track = flows[e.a];
        if (track.live) finalize_grant(track, e.time);
        track.task = e.b;
        track.links.assign(tl.links.begin() + e.links_offset,
                           tl.links.begin() + e.links_offset + e.links_count);
        track.current.clear();
        for (std::uint32_t s = 0; s < e.slices_count; ++s) {
          track.current.insert(tl.slices[e.slices_offset + s]);
        }
        if (track.links.empty() || track.current.empty() ||
            !track.current.check_invariants()) {
          os << "grant for flow " << e.a << " with empty or non-canonical payload";
          return fail();
        }
        if (track.current.front_start() < e.time - kTimeEpsilon) {
          os << "grant for flow " << e.a << " at t=" << e.time
             << " allocates into the past: " << track.current;
          return fail();
        }
        track.live = true;
        track.ever_granted = true;
        break;
      }
      case TimelineEventKind::kComplete:
      case TimelineEventKind::kMiss: {
        auto it = flows.find(e.a);
        if (e.kind == TimelineEventKind::kComplete) {
          if (it == flows.end() || !it->second.ever_granted) {
            os << "completion of flow " << e.a << " that was never granted";
            return fail();
          }
          FlowTrack& track = it->second;
          finalize_grant(track, e.time + kTimeEpsilon);
          const double size = run.flow_sizes[static_cast<std::size_t>(e.a)];
          if (std::abs(track.executed.measure() - size) > kByteEpsilon) {
            os << "flow " << e.a << " completed having executed "
               << track.executed.measure() << " of size " << size << " (slices "
               << track.executed << ")";
            return fail();
          }
          if (std::abs(track.executed.back_end() - e.time) > kByteEpsilon) {
            os << "flow " << e.a << " completed at t=" << e.time
               << " but its last executed slice ends at " << track.executed.back_end();
            return fail();
          }
        } else if (it != flows.end() && it->second.live) {
          finalize_grant(it->second, e.time);
        }
        break;
      }
      case TimelineEventKind::kTransmit:
        break;
      case TimelineEventKind::kRunEnd:
        if (i + 1 != tl.events.size()) {
          os << "end event at position " << i << " of " << tl.events.size();
          return fail();
        }
        break;
    }
  }
  if (tl.events.empty() || tl.events.back().kind != TimelineEventKind::kRunEnd) {
    os << "stream does not end with an end event";
    return fail();
  }
  if (auto err = check_exclusive(flows, prev)) return err;

  // Event counts must agree with the scheduler's own (observer-independent)
  // decision counters.
  const core::TapsCounters& c = run.sched->counters();
  if (run.rec.count(TimelineEventKind::kGrant) != c.slice_grants ||
      run.rec.count(TimelineEventKind::kAdmit) != c.tasks_accepted ||
      run.rec.count(TimelineEventKind::kReject) != c.tasks_rejected ||
      run.rec.count(TimelineEventKind::kPreempt) != c.tasks_preempted) {
    os << "event counts disagree with TapsCounters: grants "
       << run.rec.count(TimelineEventKind::kGrant) << "/" << c.slice_grants << " admits "
       << run.rec.count(TimelineEventKind::kAdmit) << "/" << c.tasks_accepted
       << " rejects " << run.rec.count(TimelineEventKind::kReject) << "/"
       << c.tasks_rejected << " preempts " << run.rec.count(TimelineEventKind::kPreempt)
       << "/" << c.tasks_preempted;
    return fail();
  }
  return std::nullopt;
}

TAPS_PROP(TimelineProp, RecordedStreamsSatisfyScheduleSemantics, 120) {
  prop.for_all(gen_scenario, [](const std::vector<TaskGen>& tasks) {
    const auto run = run_scenario(tasks, /*incremental=*/true);
    return replay_and_check(*run);
  });
}

TAPS_PROP(TimelineProp, StreamIsIdenticalUnderIncrementalAndFullReplan, 80) {
  prop.for_all(gen_scenario,
               [](const std::vector<TaskGen>& tasks) -> std::optional<std::string> {
                 const auto inc = run_scenario(tasks, /*incremental=*/true);
                 const auto full = run_scenario(tasks, /*incremental=*/false);
                 const std::string diff = diff_timeline_text(full->rec.text(), inc->rec.text());
                 if (diff.empty()) return std::nullopt;
                 return "incremental timeline diverges from full-replan timeline:\n" + diff;
               });
}

}  // namespace
}  // namespace taps::sim
