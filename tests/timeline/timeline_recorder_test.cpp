// Unit tests for sim::TimelineRecorder and the taps-timeline-v1 formats:
// event capture across both observer interfaces (with arrival dedupe),
// counter parity with TapsCounters, the exact text rendering, the binary
// round trip, malformed-input rejection, and the golden-diff helper.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "sim/timeline.hpp"

namespace taps::sim {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

/// Attach `rec` to both the simulator and (when supported) the scheduler,
/// then run to quiescence — the same double attachment the experiment
/// driver performs.
void run_recorded(net::Network& net, Scheduler& scheduler, TimelineRecorder& rec) {
  if (auto* base = dynamic_cast<sched::BaseScheduler*>(&scheduler)) {
    base->set_schedule_observer(&rec);
  }
  FluidSimulator simulator(net, scheduler);
  simulator.set_observer(&rec);
  (void)simulator.run();
}

/// The dumbbell preemption scenario used throughout this suite: under the
/// schedulability policy the urgent newcomer B displaces the doomed
/// incumbent A on the shared bottleneck.
struct PreemptionRun {
  test::Dumbbell d = make_dumbbell(2);
  std::unique_ptr<net::Network> net;
  std::unique_ptr<core::TapsScheduler> sched;

  PreemptionRun() {
    net = std::make_unique<net::Network>(*d.topology);
    add_task(*net, 0.0, 4.5, {flow(d.left[0], d.right[0], 4.0)});  // A
    add_task(*net, 1.0, 3.0, {flow(d.left[1], d.right[1], 2.0)});  // B
    core::TapsConfig cfg;
    cfg.preempt_policy = core::PreemptPolicy::kSchedulable;
    sched = std::make_unique<core::TapsScheduler>(cfg);
  }
};

TEST(TimelineRecorder, CapturesDecisionAndDataPlaneEvents) {
  PreemptionRun r;
  TimelineRecorder rec;
  run_recorded(*r.net, *r.sched, rec);

  // Both observer channels announce each arrival; the recorder keeps one.
  EXPECT_EQ(rec.count(TimelineEventKind::kArrive), 2u);
  EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), 2u);
  EXPECT_EQ(rec.count(TimelineEventKind::kPreempt), 1u);
  EXPECT_EQ(rec.count(TimelineEventKind::kRunEnd), 1u);
  EXPECT_GE(rec.count(TimelineEventKind::kGrant), 2u);
  EXPECT_EQ(rec.count(TimelineEventKind::kTransmit), 0u);  // off by default

  // The preempt event names victim and preemptor.
  for (const TimelineEvent& e : rec.events()) {
    if (e.kind != TimelineEventKind::kPreempt) continue;
    EXPECT_EQ(e.a, 0);  // task A (first added) is the victim
    EXPECT_EQ(e.b, 1);  // displaced by task B
    EXPECT_EQ(e.time, 1.0);
  }

  // Timestamps are monotone non-decreasing and grant arena views in range.
  double prev = 0.0;
  for (const TimelineEvent& e : rec.events()) {
    EXPECT_GE(e.time, prev) << rec.text();
    prev = e.time;
    EXPECT_LE(std::size_t{e.links_offset} + e.links_count, rec.timeline().links.size());
    EXPECT_LE(std::size_t{e.slices_offset} + e.slices_count, rec.timeline().slices.size());
    if (e.kind == TimelineEventKind::kGrant) {
      EXPECT_GT(e.slices_count, 0u);
    }
  }
}

TEST(TimelineRecorder, GrantAndDecisionCountsMatchTapsCounters) {
  PreemptionRun r;
  TimelineRecorder rec;
  run_recorded(*r.net, *r.sched, rec);

  const core::TapsCounters& c = r.sched->counters();
  EXPECT_EQ(rec.count(TimelineEventKind::kGrant), c.slice_grants);
  EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), c.tasks_accepted);
  EXPECT_EQ(rec.count(TimelineEventKind::kReject), c.tasks_rejected);
  EXPECT_EQ(rec.count(TimelineEventKind::kPreempt), c.tasks_preempted);
  EXPECT_GT(c.plan_commits, 0u);
}

TEST(TimelineRecorder, TransmitEventsOnlyWhenConfigured) {
  for (const bool record_transmissions : {false, true}) {
    auto d = make_dumbbell(2);
    net::Network net(*d.topology);
    add_task(net, 0.0, 3.0, {flow(d.left[0], d.right[0], 2.0)});
    add_task(net, 0.0, 3.0, {flow(d.left[1], d.right[1], 2.0)});
    sched::FairSharing fair;
    TimelineRecorder rec(TimelineConfig{.record_transmissions = record_transmissions});
    run_recorded(net, fair, rec);

    // Fair sharing emits no decision hooks: arrivals/completions/misses only.
    EXPECT_EQ(rec.count(TimelineEventKind::kArrive), 2u);
    EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), 0u);
    EXPECT_EQ(rec.count(TimelineEventKind::kGrant), 0u);
    // Both flows share the bottleneck at rate 1/2 and miss at t=3.
    EXPECT_EQ(rec.count(TimelineEventKind::kMiss), 2u);
    if (record_transmissions) {
      EXPECT_GT(rec.count(TimelineEventKind::kTransmit), 0u);
    } else {
      EXPECT_EQ(rec.count(TimelineEventKind::kTransmit), 0u);
    }
  }
}

TEST(TimelineRecorder, ClearResetsTheStream) {
  PreemptionRun r;
  TimelineRecorder rec;
  run_recorded(*r.net, *r.sched, rec);
  ASSERT_FALSE(rec.events().empty());
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_TRUE(rec.timeline().links.empty());
  EXPECT_TRUE(rec.timeline().slices.empty());
  EXPECT_EQ(rec.text(), "taps-timeline-v1\n");
}

TEST(TimelineFormat, TextRenderingIsExact) {
  // One of each event shape, hand-built: pins every field label, the double
  // rendering (shortest round-trip), and the trailing end line.
  Timeline tl;
  tl.links = {1, 5};
  tl.slices = {util::Interval{0.5, 2.0}};
  TimelineEvent e;
  e.kind = TimelineEventKind::kArrive;
  e.a = 0;
  tl.events.push_back(e);
  e.kind = TimelineEventKind::kAdmit;
  tl.events.push_back(e);
  e.kind = TimelineEventKind::kGrant;
  e.b = 0;
  e.links_count = 2;
  e.slices_count = 1;
  tl.events.push_back(e);
  e = TimelineEvent{};
  e.kind = TimelineEventKind::kPreempt;
  e.time = 1.5;
  e.a = 0;
  e.b = 1;
  tl.events.push_back(e);
  e = TimelineEvent{};
  e.kind = TimelineEventKind::kTransmit;
  e.time = 0.5;
  e.a = 0;
  e.b = 0;
  e.x0 = 1.5;
  e.x1 = 1.0;
  tl.events.push_back(e);
  e = TimelineEvent{};
  e.kind = TimelineEventKind::kComplete;
  e.time = 2.0;
  e.a = 0;
  e.b = 0;
  tl.events.push_back(e);
  e = TimelineEvent{};
  e.kind = TimelineEventKind::kRunEnd;
  e.time = 2.0;
  tl.events.push_back(e);

  std::ostringstream os;
  write_timeline_text(os, tl);
  EXPECT_EQ(os.str(),
            "taps-timeline-v1\n"
            "arrive t=0 task=0\n"
            "admit t=0 task=0\n"
            "grant t=0 flow=0 task=0 links=1,5 slices=0.5:2\n"
            "preempt t=1.5 victim=0 by=1\n"
            "transmit t=0.5 flow=0 task=0 until=1.5 bytes=1\n"
            "complete t=2 flow=0 task=0\n"
            "end t=2 events=7\n");
}

TEST(TimelineFormat, BinaryRoundTripsLosslessly) {
  PreemptionRun r;
  TimelineRecorder rec(TimelineConfig{.record_transmissions = true});
  run_recorded(*r.net, *r.sched, rec);
  ASSERT_GT(rec.events().size(), 4u);

  std::stringstream buf;
  write_timeline_binary(buf, rec.timeline());
  const Timeline parsed = read_timeline_binary(buf);
  EXPECT_EQ(parsed, rec.timeline());
}

TEST(TimelineFormat, BinaryRejectsMalformedInput) {
  {
    std::stringstream buf("not a timeline at all......");
    EXPECT_THROW((void)read_timeline_binary(buf), std::runtime_error);
  }
  {
    std::stringstream buf;  // truncated: magic only
    buf.write("TAPSTL01", 8);
    EXPECT_THROW((void)read_timeline_binary(buf), std::runtime_error);
  }
  {
    // Valid header claiming one event, but no event bytes follow.
    std::stringstream buf;
    buf.write("TAPSTL01", 8);
    const char version_and_count[12] = {1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0};
    buf.write(version_and_count, sizeof(version_and_count));
    EXPECT_THROW((void)read_timeline_binary(buf), std::runtime_error);
  }
  {
    // Unsupported version.
    std::stringstream buf;
    buf.write("TAPSTL01", 8);
    const char version_and_count[12] = {9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    buf.write(version_and_count, sizeof(version_and_count));
    EXPECT_THROW((void)read_timeline_binary(buf), std::runtime_error);
  }
}

TEST(TimelineFormat, DiffReportsFirstDivergentLine) {
  const std::string a =
      "taps-timeline-v1\narrive t=0 task=0\nadmit t=0 task=0\nend t=1 events=3\n";
  EXPECT_EQ(diff_timeline_text(a, a), "");

  const std::string b =
      "taps-timeline-v1\narrive t=0 task=0\nreject t=0 task=0\nend t=1 events=3\n";
  const std::string diff = diff_timeline_text(a, b);
  EXPECT_NE(diff.find("line 3"), std::string::npos) << diff;
  EXPECT_NE(diff.find("- expected: admit t=0 task=0"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+ actual:   reject t=0 task=0"), std::string::npos) << diff;

  // Length mismatch alone is also a divergence.
  const std::string shorter = "taps-timeline-v1\narrive t=0 task=0\n";
  EXPECT_NE(diff_timeline_text(a, shorter).find("<end of stream>"), std::string::npos);
}

}  // namespace
}  // namespace taps::sim
