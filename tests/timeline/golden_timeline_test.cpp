// Golden-timeline regression harness: four canonical scenarios whose
// taps-timeline-v1 text dumps are committed under tests/golden/timeline/ and
// compared byte for byte. A mismatch prints the event-level diff
// (sim::diff_timeline_text); regenerate intentionally-changed goldens with
//
//   TAPS_UPDATE_GOLDENS=1 ctest -L timeline
//
// and review the textual diff like any other code change (docs/TIMELINE.md).
//
// The scenarios use unit capacities and dyadic sizes/instants, so every
// simulated time and byte count is exact in binary floating point — the
// dumps are byte-stable across compilers and optimization levels, not just
// across runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "sim/timeline.hpp"
#include "topo/fattree.hpp"

namespace taps::sim {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;
using test::make_fig3_topology;

std::string golden_path(const std::string& name) {
  return std::string(TAPS_GOLDEN_DIR) + "/" + name + ".txt";
}

void run_recorded(net::Network& net, Scheduler& scheduler, TimelineRecorder& rec) {
  if (auto* base = dynamic_cast<sched::BaseScheduler*>(&scheduler)) {
    base->set_schedule_observer(&rec);
  }
  FluidSimulator simulator(net, scheduler);
  simulator.set_observer(&rec);
  (void)simulator.run();
}

void check_golden(const std::string& name, const TimelineRecorder& rec) {
  const std::string path = golden_path(name);
  const std::string actual = rec.text();
  // taps-lint: allow(wall-clock) -- getenv, not a clock; golden update knob
  if (std::getenv("TAPS_UPDATE_GOLDENS") != nullptr) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os) << "cannot write golden " << path;
    os << actual;
    ASSERT_TRUE(os) << "short write to " << path;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is) << "missing golden " << path
                  << " — generate it with TAPS_UPDATE_GOLDENS=1";
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string diff = diff_timeline_text(buf.str(), actual);
  EXPECT_TRUE(diff.empty()) << "golden timeline mismatch for '" << name << "':\n"
                            << diff
                            << "(regenerate intentionally-changed goldens with "
                               "TAPS_UPDATE_GOLDENS=1)";
}

// Scenario 1: single-link preemption. Incumbent A ([0,4) on the dumbbell
// bottleneck, deadline 4.5) is displaced under the schedulability policy by
// urgent B (needs [1,3), deadline 3): after B's trial plan A's remainder
// would land at [3,6), past A's deadline, so the reject rule revokes A.
TEST(GoldenTimeline, SingleLinkPreemption) {
  auto d = make_dumbbell(2);
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.5, {flow(d.left[0], d.right[0], 4.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 2.0)});
  core::TapsConfig cfg;
  cfg.preempt_policy = core::PreemptPolicy::kSchedulable;
  core::TapsScheduler sched(cfg);
  TimelineRecorder rec;
  run_recorded(net, sched, rec);

  EXPECT_EQ(rec.count(TimelineEventKind::kPreempt), 1u);
  EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), 2u);
  check_golden("single_link_preemption", rec);
}

// Scenario 2: multi-task regrant cascade on the paper's Fig. 3 topology.
// t2's urgent f3 (deadline 5) is planned ahead of t1's incumbents at its
// arrival, pushing t1's f1 to a later slice (a re-grant without
// preemption); t3's own flow cannot fit 3 units before its deadline at 4,
// so it is rejected outright.
TEST(GoldenTimeline, MultiTaskCascade) {
  auto t = make_fig3_topology();
  net::Network net(*t.topology);
  add_task(net, 0.0, 10.0, {flow(t.h1, t.h2, 3.0), flow(t.h1, t.h4, 4.0)});
  add_task(net, 1.0, 5.0, {flow(t.h3, t.h2, 2.0)});
  add_task(net, 2.0, 4.0, {flow(t.h3, t.h4, 3.0)});
  core::TapsScheduler sched;
  TimelineRecorder rec;
  run_recorded(net, sched, rec);

  EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), 2u);
  EXPECT_EQ(rec.count(TimelineEventKind::kReject), 1u);
  EXPECT_EQ(rec.count(TimelineEventKind::kPreempt), 0u);
  check_golden("multi_task_cascade", rec);
}

// Scenario 3: cross-pod admissions on a k=4 fat-tree — two tasks whose
// flows traverse core links between distinct pod pairs; no contention, both
// admit, and the grants pin the centrally chosen core paths.
TEST(GoldenTimeline, CrossPodAdmit) {
  topo::FatTree ft(topo::FatTreeConfig{4, 1.0});
  net::Network net(ft);
  add_task(net, 0.0, 4.0,
           {flow(ft.host(0, 0, 0), ft.host(2, 0, 0), 2.0),
            flow(ft.host(0, 0, 1), ft.host(2, 0, 1), 2.0)});
  add_task(net, 1.0, 6.0, {flow(ft.host(1, 0, 0), ft.host(3, 0, 0), 4.0)});
  core::TapsScheduler sched;
  TimelineRecorder rec;
  run_recorded(net, sched, rec);

  EXPECT_EQ(rec.count(TimelineEventKind::kAdmit), 2u);
  EXPECT_EQ(rec.count(TimelineEventKind::kReject), 0u);
  EXPECT_EQ(rec.count(TimelineEventKind::kComplete), 3u);
  check_golden("cross_pod_admit", rec);
}

// Scenario 4: deadline misses under fair sharing (no decision hooks — the
// timeline is data-plane only, with transmissions recorded). Two equal
// flows split the bottleneck at rate 1/2 and both miss at t=3.
TEST(GoldenTimeline, DeadlineMiss) {
  auto d = make_dumbbell(2);
  net::Network net(*d.topology);
  add_task(net, 0.0, 3.0, {flow(d.left[0], d.right[0], 2.0)});
  add_task(net, 0.0, 3.0, {flow(d.left[1], d.right[1], 2.0)});
  sched::FairSharing sched;
  TimelineRecorder rec(TimelineConfig{.record_transmissions = true});
  run_recorded(net, sched, rec);

  EXPECT_EQ(rec.count(TimelineEventKind::kMiss), 2u);
  EXPECT_GT(rec.count(TimelineEventKind::kTransmit), 0u);
  check_golden("deadline_miss", rec);
}

}  // namespace
}  // namespace taps::sim
