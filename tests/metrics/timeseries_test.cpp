#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::metrics {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

struct Env {
  test::Dumbbell d = make_dumbbell();
  net::Network net{*d.topology};
};

TEST(SegmentRecorder, BinsSplitSegmentsProRata) {
  Env s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 3.0)});
  s.net.task(0).state = net::TaskState::kAdmitted;
  s.net.flow(0).state = net::FlowState::kActive;

  SegmentRecorder rec;
  // 3 bytes uniformly over [0.5, 3.5): 1 byte per unit time.
  rec.on_transmit(s.net.flow(0), 0.5, 3.5, 3.0);
  s.net.on_flow_completed(0, 3.5);

  const auto bins = rec.bins(s.net, 1.0);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_NEAR(bins[0].useful_bytes, 0.5, 1e-12);
  EXPECT_NEAR(bins[1].useful_bytes, 1.0, 1e-12);
  EXPECT_NEAR(bins[2].useful_bytes, 1.0, 1e-12);
  EXPECT_NEAR(bins[3].useful_bytes, 0.5, 1e-12);
  for (const auto& b : bins) EXPECT_DOUBLE_EQ(b.wasted_bytes, 0.0);
}

TEST(SegmentRecorder, ClassifiesByFinalState) {
  Env s;
  add_task(s.net, 0.0, 2.0, {flow(s.d.left[0], s.d.right[0], 5.0)});
  s.net.task(0).state = net::TaskState::kAdmitted;
  s.net.flow(0).state = net::FlowState::kActive;
  SegmentRecorder rec;
  rec.on_transmit(s.net.flow(0), 0.0, 2.0, 2.0);
  s.net.on_flow_missed(0);  // flow failed: all its bytes are waste

  const auto bins = rec.bins(s.net, 1.0);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].wasted_bytes, 1.0);
  EXPECT_DOUBLE_EQ(bins[1].wasted_bytes, 1.0);
  EXPECT_DOUBLE_EQ(bins[0].useful_bytes, 0.0);
  EXPECT_DOUBLE_EQ(bins[0].effective_fraction(), 0.0);
}

TEST(SegmentRecorder, EffectiveFractionMixes) {
  Env s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 1.0)});
  add_task(s.net, 0.0, 1.0, {flow(s.d.left[1], s.d.right[1], 9.0)});
  for (net::FlowId id : {0, 1}) {
    s.net.task(id).state = net::TaskState::kAdmitted;
    s.net.flow(id).state = net::FlowState::kActive;
  }
  SegmentRecorder rec;
  rec.on_transmit(s.net.flow(0), 0.0, 1.0, 1.0);
  rec.on_transmit(s.net.flow(1), 0.0, 1.0, 3.0);
  s.net.on_flow_completed(0, 1.0);
  s.net.on_flow_missed(1);

  const auto bins = rec.bins(s.net, 1.0);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_NEAR(bins[0].effective_fraction(), 0.25, 1e-12);
}

TEST(SegmentRecorder, EmptyRecorderYieldsNoBins) {
  Env s;
  const SegmentRecorder rec;
  EXPECT_TRUE(rec.bins(s.net, 1.0).empty());
  EXPECT_EQ(rec.segment_count(), 0u);
}

TEST(SegmentRecorder, IgnoresDegenerateSegments) {
  Env s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 1.0)});
  SegmentRecorder rec;
  rec.on_transmit(s.net.flow(0), 1.0, 1.0, 0.0);
  rec.on_transmit(s.net.flow(0), 2.0, 1.0, 1.0);  // inverted
  EXPECT_EQ(rec.segment_count(), 0u);
}

TEST(SegmentRecorder, IdleBinHasZeroFraction) {
  Env s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 1.0)});
  s.net.task(0).state = net::TaskState::kAdmitted;
  s.net.flow(0).state = net::FlowState::kActive;
  SegmentRecorder rec;
  rec.on_transmit(s.net.flow(0), 2.0, 3.0, 1.0);  // nothing in [0,2)
  s.net.on_flow_completed(0, 3.0);
  const auto bins = rec.bins(s.net, 1.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0].effective_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(bins[2].effective_fraction(), 1.0);
}

}  // namespace
}  // namespace taps::metrics
