#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::metrics {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

TEST(Collector, EmptyNetwork) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const RunMetrics m = collect(net);
  EXPECT_EQ(m.tasks_total, 0u);
  EXPECT_DOUBLE_EQ(m.task_completion_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.wasted_bandwidth_ratio, 0.0);
}

TEST(Collector, CountsCompletedTasksAndFlows) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 2.0)});
  add_task(net, 0.0, 4.0, {flow(d.left[2], d.right[2], 4.0)});

  // Task 0 fully completes; task 1's flow misses after sending 1 byte-unit.
  net.task(0).state = net::TaskState::kAdmitted;
  net.flow(0).state = net::FlowState::kActive;
  net.flow(1).state = net::FlowState::kActive;
  net.flow(0).bytes_sent = 2.0;
  net.flow(1).bytes_sent = 2.0;
  net.on_flow_completed(0, 1.0);
  net.on_flow_completed(1, 2.0);
  net.task(1).state = net::TaskState::kAdmitted;
  net.flow(2).state = net::FlowState::kActive;
  net.flow(2).bytes_sent = 1.0;
  net.on_flow_missed(2);

  const RunMetrics m = collect(net);
  EXPECT_EQ(m.tasks_total, 2u);
  EXPECT_EQ(m.tasks_completed, 1u);
  EXPECT_DOUBLE_EQ(m.task_completion_ratio, 0.5);
  EXPECT_EQ(m.flows_total, 3u);
  EXPECT_EQ(m.flows_completed, 2u);
  EXPECT_NEAR(m.flow_completion_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.total_bytes, 8.0);
  EXPECT_DOUBLE_EQ(m.useful_bytes, 4.0);
  EXPECT_DOUBLE_EQ(m.app_throughput, 0.5);
  EXPECT_DOUBLE_EQ(m.wasted_bytes, 1.0);       // the missed flow's sent bytes
  EXPECT_DOUBLE_EQ(m.wasted_bandwidth_ratio, 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.task_size_ratio, 0.5);    // bytes in completed tasks
}

TEST(Collector, RejectedTasksCounted) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 2.0)});
  net.reject_task(0);
  const RunMetrics m = collect(net);
  EXPECT_EQ(m.tasks_rejected, 1u);
  EXPECT_EQ(m.tasks_completed, 0u);
  EXPECT_DOUBLE_EQ(m.wasted_bytes, 0.0);
}

TEST(Collector, CompletedFlowInFailedTaskIsNotFlowLevelWaste) {
  // Fig. 8's definition charges only bytes of flows that themselves failed.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 2.0)});
  net.task(0).state = net::TaskState::kAdmitted;
  net.flow(0).state = net::FlowState::kActive;
  net.flow(1).state = net::FlowState::kActive;
  net.flow(0).bytes_sent = 2.0;
  net.on_flow_completed(0, 1.0);
  net.flow(1).bytes_sent = 1.5;
  net.on_flow_missed(1);

  const RunMetrics m = collect(net);
  EXPECT_DOUBLE_EQ(m.wasted_bytes, 1.5);
  EXPECT_DOUBLE_EQ(m.useful_bytes, 2.0);  // flow-level accounting
  EXPECT_DOUBLE_EQ(m.task_size_ratio, 0.0);  // but no task completed
}

}  // namespace
}  // namespace taps::metrics
