#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace taps::metrics {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row("short", 1);
  t.row("much-longer-name", 22);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  // The second column starts at the same character offset on every line.
  std::istringstream lines(out);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row2.find("22"));
  EXPECT_EQ(row1.find('1'), row2.find("22"));
}

TEST(Table, FormatsDoublesWithFourDecimals) {
  EXPECT_EQ(Table::format(0.5), "0.5000");
  EXPECT_EQ(Table::format(1.0 / 3.0), "0.3333");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);  // header + rule
}

}  // namespace
}  // namespace taps::metrics
