#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::net {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

struct NetworkFixture : public ::testing::Test {
  test::Dumbbell d = make_dumbbell();
  Network net{*d.topology};
};

TEST_F(NetworkFixture, AddTaskAssignsContiguousIds) {
  const TaskId t0 = add_task(net, 0.0, 1.0,
                             {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 2.0)});
  const TaskId t1 = add_task(net, 0.5, 2.0, {flow(d.left[2], d.right[2], 3.0)});
  EXPECT_EQ(t0, 0);
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(net.flows().size(), 3u);
  EXPECT_EQ(net.flow(0).task(), t0);
  EXPECT_EQ(net.flow(2).task(), t1);
  EXPECT_EQ(net.task(t0).spec.flows, (std::vector<FlowId>{0, 1}));
}

TEST_F(NetworkFixture, FlowsInheritTaskTiming) {
  add_task(net, 1.5, 3.0, {flow(d.left[0], d.right[0], 1.0)});
  EXPECT_DOUBLE_EQ(net.flow(0).spec.arrival, 1.5);
  EXPECT_DOUBLE_EQ(net.flow(0).spec.deadline, 3.0);
  EXPECT_DOUBLE_EQ(net.flow(0).remaining, 1.0);
  EXPECT_EQ(net.flow(0).state, FlowState::kPending);
}

TEST_F(NetworkFixture, CompletionPromotesTask) {
  add_task(net, 0.0, 5.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  net.task(0).state = TaskState::kAdmitted;
  net.flow(0).state = FlowState::kActive;
  net.flow(1).state = FlowState::kActive;

  net.on_flow_completed(0, 1.0);
  EXPECT_EQ(net.task(0).state, TaskState::kAdmitted);  // one flow left
  EXPECT_DOUBLE_EQ(net.task(0).completion_ratio(), 0.5);
  net.on_flow_completed(1, 2.0);
  EXPECT_EQ(net.task(0).state, TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(net.task(0).completion_ratio(), 1.0);
}

TEST_F(NetworkFixture, MissFailsTask) {
  add_task(net, 0.0, 5.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  net.task(0).state = TaskState::kAdmitted;
  net.flow(0).state = FlowState::kActive;
  net.flow(1).state = FlowState::kActive;
  net.on_flow_missed(0);
  EXPECT_EQ(net.task(0).state, TaskState::kFailed);
  EXPECT_EQ(net.flow(0).state, FlowState::kMissed);
  // A later completion does not resurrect the task.
  net.on_flow_completed(1, 2.0);
  EXPECT_EQ(net.task(0).state, TaskState::kFailed);
}

TEST_F(NetworkFixture, RejectTaskSparesCompletedFlows) {
  add_task(net, 0.0, 5.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  net.task(0).state = TaskState::kAdmitted;
  net.flow(0).state = FlowState::kActive;
  net.flow(1).state = FlowState::kActive;
  net.on_flow_completed(0, 1.0);
  net.reject_task(0);
  EXPECT_EQ(net.task(0).state, TaskState::kRejected);
  EXPECT_EQ(net.flow(0).state, FlowState::kCompleted);  // finished stays
  EXPECT_EQ(net.flow(1).state, FlowState::kRejected);
  EXPECT_DOUBLE_EQ(net.flow(1).rate, 0.0);
}

TEST_F(NetworkFixture, UniformCapacityDetection) {
  EXPECT_TRUE(net.uniform_capacity());
}

TEST_F(NetworkFixture, ExpectedTimeAndTimeToDeadline) {
  add_task(net, 0.0, 5.0, {flow(d.left[0], d.right[0], 4.0)});
  const Flow& f = net.flow(0);
  EXPECT_DOUBLE_EQ(f.expected_time(2.0), 2.0);
  EXPECT_DOUBLE_EQ(f.time_to_deadline(1.0), 4.0);
  EXPECT_DOUBLE_EQ(f.time_to_deadline(6.0), -1.0);
}

TEST_F(NetworkFixture, StateNamesAreStable) {
  EXPECT_STREQ(to_string(FlowState::kPending), "pending");
  EXPECT_STREQ(to_string(FlowState::kMissed), "missed");
  EXPECT_STREQ(to_string(TaskState::kRejected), "rejected");
  EXPECT_STREQ(to_string(TaskState::kFailed), "failed");
}

TEST_F(NetworkFixture, ExtendTaskKeepsCompletionAccounting) {
  const TaskId t0 = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  net.task(t0).state = TaskState::kAdmitted;
  net.flow(0).state = FlowState::kActive;
  net.on_flow_completed(0, 1.0);
  EXPECT_EQ(net.task(t0).state, TaskState::kCompleted);

  // A later wave reopens the task.
  net.extend_task(t0, 2.0, std::vector<FlowSpec>{flow(d.left[1], d.right[1], 1.0)});
  EXPECT_EQ(net.task(t0).state, TaskState::kAdmitted);
  EXPECT_DOUBLE_EQ(net.task(t0).completion_ratio(), 0.5);
  net.flow(1).state = FlowState::kActive;
  net.on_flow_completed(1, 3.0);
  EXPECT_EQ(net.task(t0).state, TaskState::kCompleted);
}

}  // namespace
}  // namespace taps::net
