// Grow-while-read stress for FlowStateArena, built to run under
// ThreadSanitizer (ctest label `tsan`): one owner thread keeps pushing slots
// — growing chunks and periodically doubling/republishing the chunk pointer
// table — while reader threads concurrently resolve random already-published
// slots through size()'s acquire. Pins the arena's cross-domain contract
// (src/net/flow_arena.hpp header comment): a slot index below an observed
// size() is always safe to read, even mid-growth, because chunks never move
// and superseded tables are retained.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/flow_arena.hpp"

namespace taps::net {
namespace {

// Enough slots to force several pointer-table doublings (initial capacity 8
// chunks): 24 chunks -> table republished at 8 and 16 chunks.
constexpr std::size_t kSlots = 24 * FlowStateArena::kChunkSize;
constexpr std::size_t kReaders = 4;
constexpr std::size_t kReadsPerReader = 200000;

/// The value push() seeds slot i with, so readers can verify content, not
/// just the absence of TSan reports.
double expected_remaining(std::size_t i) { return static_cast<double>(i) + 1.0; }

TEST(FlowArenaStress, ReadersRaceTableGrowthWithoutTearing) {
  FlowStateArena arena;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&arena, r] {
      // Cheap xorshift so readers hit random slots (and thus random chunks /
      // table entries) rather than marching in the writer's footsteps.
      std::uint64_t x = 0x9e3779b97f4a7c15ULL + r;
      std::size_t bad = 0;
      for (std::size_t n = 0; n < kReadsPerReader; ++n) {
        const std::size_t published = arena.size();  // acquire
        if (published == 0) continue;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::size_t i = static_cast<std::size_t>(x % published);
        const FlowStateArena& ro = arena;
        if (ro.remaining(i) != expected_remaining(i)) ++bad;
        if (ro.state(i) != FlowState::kPending) ++bad;
        if (ro.bytes_sent(i) != 0.0) ++bad;
      }
      // Aggregated so the hot loop stays assertion-free under TSan.
      EXPECT_EQ(bad, 0u);
    });
  }

  for (std::size_t i = 0; i < kSlots; ++i) {
    ASSERT_EQ(arena.push(expected_remaining(i)), i);
  }
  for (std::thread& t : readers) t.join();

  // Post-join sanity: the final table resolves every slot.
  ASSERT_EQ(arena.size(), kSlots);
  for (std::size_t i = 0; i < kSlots; i += FlowStateArena::kChunkSize / 3) {
    EXPECT_EQ(arena.remaining(i), expected_remaining(i));
  }
}

TEST(FlowArenaStress, SizeIsMonotoneAcrossThreads) {
  FlowStateArena arena;
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&arena] {
      std::size_t last = 0;
      std::size_t regressions = 0;
      for (std::size_t n = 0; n < kReadsPerReader; ++n) {
        const std::size_t s = arena.size();
        if (s < last) ++regressions;
        last = s;
      }
      EXPECT_EQ(regressions, 0u);
    });
  }
  for (std::size_t i = 0; i < kSlots; ++i) arena.push(expected_remaining(i));
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(arena.size(), kSlots);
}

}  // namespace
}  // namespace taps::net
