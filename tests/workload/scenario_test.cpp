#include "workload/scenario.hpp"

#include <gtest/gtest.h>

namespace taps::workload {
namespace {

TEST(Scenario, SingleRootedPresets) {
  const Scenario scaled = Scenario::single_rooted(false);
  EXPECT_EQ(scaled.topo, TopoKind::kSingleRooted);
  EXPECT_FALSE(scaled.full_scale);
  EXPECT_EQ(scaled.workload.task_count, 30);  // paper Sec. V-A

  const Scenario full = Scenario::single_rooted(true);
  EXPECT_TRUE(full.full_scale);
  EXPECT_DOUBLE_EQ(full.workload.flows_per_task_mean, 1200.0);  // paper value
}

TEST(Scenario, FatTreePresets) {
  const Scenario full = Scenario::fat_tree(true);
  EXPECT_DOUBLE_EQ(full.workload.flows_per_task_mean, 1024.0);
  const Scenario scaled = Scenario::fat_tree(false);
  EXPECT_GT(scaled.workload.flows_per_task_mean, 0.0);
}

TEST(Scenario, TestbedPreset) {
  const Scenario t = Scenario::testbed();
  EXPECT_EQ(t.topo, TopoKind::kTestbed);
  EXPECT_EQ(t.workload.task_count, 100);      // 100 iperf flows
  EXPECT_TRUE(t.workload.single_flow_tasks);
  EXPECT_DOUBLE_EQ(t.workload.mean_flow_size, 100e3);
  EXPECT_DOUBLE_EQ(t.workload.mean_deadline, 0.040);
}

TEST(Scenario, TopologyFactoryMatchesKind) {
  EXPECT_EQ(make_topology(Scenario::single_rooted(false))->name(), "single-rooted-tree");
  EXPECT_EQ(make_topology(Scenario::fat_tree(false))->name(), "fat-tree");
  EXPECT_EQ(make_topology(Scenario::testbed())->name(), "partial-fat-tree-testbed");
}

TEST(Scenario, ScaledTopologiesAreSmall) {
  EXPECT_LE(make_topology(Scenario::single_rooted(false))->host_count(), 1000u);
  EXPECT_LE(make_topology(Scenario::fat_tree(false))->host_count(), 1000u);
  EXPECT_EQ(make_topology(Scenario::testbed())->host_count(), 8u);
}

TEST(Scenario, TopoKindNames) {
  EXPECT_STREQ(to_string(TopoKind::kSingleRooted), "single-rooted");
  EXPECT_STREQ(to_string(TopoKind::kFatTree), "fat-tree");
  EXPECT_STREQ(to_string(TopoKind::kTestbed), "testbed");
}

}  // namespace
}  // namespace taps::workload
