#include "workload/task_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/tree.hpp"

namespace taps::workload {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig c;
  c.task_count = 50;
  c.flows_per_task_mean = 10.0;
  c.arrival_rate = 100.0;
  return c;
}

TEST(TaskGenerator, ProducesRequestedTaskCount) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  util::Rng rng(1);
  const auto ids = generate(net, small_config(), rng);
  EXPECT_EQ(ids.size(), 50u);
  EXPECT_EQ(net.tasks().size(), 50u);
}

TEST(TaskGenerator, DeterministicForSameSeed) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network a(tree), b(tree);
  util::Rng ra(7), rb(7);
  (void)generate(a, small_config(), ra);
  (void)generate(b, small_config(), rb);
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    EXPECT_EQ(a.flows()[i].spec.src, b.flows()[i].spec.src);
    EXPECT_EQ(a.flows()[i].spec.dst, b.flows()[i].spec.dst);
    EXPECT_DOUBLE_EQ(a.flows()[i].spec.size, b.flows()[i].spec.size);
  }
}

TEST(TaskGenerator, DifferentSeedsDiffer) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network a(tree), b(tree);
  util::Rng ra(7), rb(8);
  (void)generate(a, small_config(), ra);
  (void)generate(b, small_config(), rb);
  bool any_diff = a.flows().size() != b.flows().size();
  for (std::size_t i = 0; !any_diff && i < a.flows().size(); ++i) {
    any_diff = a.flows()[i].spec.src != b.flows()[i].spec.src ||
               a.flows()[i].spec.size != b.flows()[i].spec.size;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TaskGenerator, FlowsShareTaskArrivalAndDeadline) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  util::Rng rng(3);
  (void)generate(net, small_config(), rng);
  for (const auto& t : net.tasks()) {
    for (const net::FlowId fid : t.spec.flows) {
      const auto& f = net.flow(fid);
      EXPECT_DOUBLE_EQ(f.spec.arrival, t.spec.arrival);
      EXPECT_DOUBLE_EQ(f.spec.deadline, t.spec.deadline);
    }
    EXPECT_GT(t.spec.deadline, t.spec.arrival);
  }
}

TEST(TaskGenerator, EndpointsAreDistinctHosts) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  util::Rng rng(5);
  (void)generate(net, small_config(), rng);
  for (const auto& f : net.flows()) {
    EXPECT_NE(f.spec.src, f.spec.dst);
    EXPECT_EQ(tree.graph().node(f.spec.src).kind, topo::NodeKind::kHost);
    EXPECT_EQ(tree.graph().node(f.spec.dst).kind, topo::NodeKind::kHost);
  }
}

TEST(TaskGenerator, ArrivalsAreMonotone) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  util::Rng rng(9);
  (void)generate(net, small_config(), rng);
  double prev = -1.0;
  for (const auto& t : net.tasks()) {
    EXPECT_GE(t.spec.arrival, prev);
    prev = t.spec.arrival;
  }
  EXPECT_DOUBLE_EQ(net.tasks().front().spec.arrival, 0.0);
}

TEST(TaskGenerator, MeansApproximatelyMatchConfig) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c = small_config();
  c.task_count = 400;
  util::Rng rng(11);
  (void)generate(net, c, rng);

  double flow_sum = 0.0;
  for (const auto& f : net.flows()) flow_sum += f.spec.size;
  EXPECT_NEAR(flow_sum / static_cast<double>(net.flows().size()), c.mean_flow_size,
              c.mean_flow_size * 0.05);

  double deadline_sum = 0.0;
  for (const auto& t : net.tasks()) deadline_sum += t.spec.deadline - t.spec.arrival;
  EXPECT_NEAR(deadline_sum / 400.0, c.mean_deadline, c.mean_deadline * 0.25);

  EXPECT_NEAR(static_cast<double>(net.flows().size()) / 400.0, c.flows_per_task_mean,
              c.flows_per_task_mean * 0.15);
}

TEST(TaskGenerator, SingleFlowTasksMode) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c = small_config();
  c.single_flow_tasks = true;
  util::Rng rng(13);
  (void)generate(net, c, rng);
  for (const auto& t : net.tasks()) EXPECT_EQ(t.flow_count(), 1u);
}

TEST(TaskGenerator, SizesRespectFloor) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c = small_config();
  c.mean_flow_size = 10e3;
  c.flow_size_stddev = 50e3;  // wild spread: truncation must kick in
  c.min_flow_size = 5e3;
  util::Rng rng(17);
  (void)generate(net, c, rng);
  for (const auto& f : net.flows()) EXPECT_GE(f.spec.size, c.min_flow_size);
}

class SizeDistributionTest : public ::testing::TestWithParam<SizeDistribution> {};

TEST_P(SizeDistributionTest, MeanMatchesConfig) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c = small_config();
  c.task_count = 600;
  c.size_distribution = GetParam();
  util::Rng rng(23);
  (void)generate(net, c, rng);

  double sum = 0.0;
  for (const auto& f : net.flows()) {
    sum += f.spec.size;
    EXPECT_GE(f.spec.size, c.min_flow_size);
  }
  const double mean = sum / static_cast<double>(net.flows().size());
  // Pareto (shape 1.5) has huge sampling variance; allow a wider band.
  const double tol = GetParam() == SizeDistribution::kPareto ? 0.25 : 0.05;
  EXPECT_NEAR(mean, c.mean_flow_size, c.mean_flow_size * tol)
      << to_string(GetParam());
}

TEST_P(SizeDistributionTest, HeavyTailsAreHeavier) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c = small_config();
  c.task_count = 400;
  c.size_distribution = GetParam();
  util::Rng rng(29);
  (void)generate(net, c, rng);

  double max_size = 0.0;
  for (const auto& f : net.flows()) max_size = std::max(max_size, f.spec.size);
  if (GetParam() == SizeDistribution::kPareto) {
    EXPECT_GT(max_size, 5.0 * c.mean_flow_size);  // elephants exist
  } else if (GetParam() == SizeDistribution::kNormal) {
    EXPECT_LT(max_size, 3.0 * c.mean_flow_size);  // thin tail
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SizeDistributionTest,
                         ::testing::Values(SizeDistribution::kNormal,
                                           SizeDistribution::kLognormal,
                                           SizeDistribution::kPareto),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(TaskGenerator, RejectsNonEmptyNetwork) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  util::Rng rng(19);
  (void)generate(net, small_config(), rng);
  EXPECT_THROW((void)generate(net, small_config(), rng), std::invalid_argument);
}

}  // namespace
}  // namespace taps::workload
