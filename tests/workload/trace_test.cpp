#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "topo/tree.hpp"
#include "workload/task_generator.hpp"

namespace taps::workload {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Trace, RoundTripPreservesWorkload) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network original(tree);
  WorkloadConfig c;
  c.task_count = 20;
  c.flows_per_task_mean = 5.0;
  util::Rng rng(31);
  (void)generate(original, c, rng);

  const std::string path = temp_path("taps_trace_roundtrip.csv");
  save_trace(original, path);

  net::Network loaded(tree);
  const std::size_t tasks = load_trace(loaded, path);
  EXPECT_EQ(tasks, original.tasks().size());
  ASSERT_EQ(loaded.flows().size(), original.flows().size());
  for (std::size_t i = 0; i < original.flows().size(); ++i) {
    const auto& a = original.flows()[i].spec;
    const auto& b = loaded.flows()[i].spec;
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_DOUBLE_EQ(a.size, b.size);
    EXPECT_DOUBLE_EQ(a.deadline, b.deadline);
    EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsNonEmptyNetwork) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  WorkloadConfig c;
  c.task_count = 2;
  util::Rng rng(1);
  (void)generate(net, c, rng);
  const std::string path = temp_path("taps_trace_nonempty.csv");
  save_trace(net, path);
  EXPECT_THROW((void)load_trace(net, path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileThrows) {
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  EXPECT_THROW((void)load_trace(net, "/nonexistent/trace.csv"), std::runtime_error);
}

TEST(Trace, MalformedRowThrows) {
  const std::string path = temp_path("taps_trace_bad.csv");
  {
    std::ofstream out(path);
    out << "task,arrival,deadline,flow,src,dst,size\n1,0.0,1.0\n";
  }
  const topo::SingleRootedTree tree(topo::SingleRootedConfig::scaled());
  net::Network net(tree);
  EXPECT_THROW((void)load_trace(net, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace taps::workload
