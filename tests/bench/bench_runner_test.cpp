// Unit tests for the perf-harness runner and its JSON document — the
// machine-readable contract scripts/bench_compare.py gates on.
#include "bench/bench_runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace taps::bench {
namespace {

RunnerOptions quiet() {
  RunnerOptions o;
  o.repeats = 5;
  o.warmup = 1;
  o.min_sample_seconds = 0.0;  // no calibration loops: 1 iter per sample
  o.verbose = false;
  return o;
}

TEST(BenchRunner, RunRecordsRequestedRepeats) {
  BenchRunner runner(quiet());
  int calls = 0;
  const BenchResult& r = runner.run("counting", [&] {
    ++calls;
    for (int spin = 0; spin < 200; ++spin) do_not_optimize(spin);  // samples > 0 on coarse clocks
  });
  EXPECT_EQ(r.name, "counting");
  EXPECT_EQ(r.samples.size(), 5u);
  // warmup (1) + calibration probe (1) + 5 timed samples.
  EXPECT_GE(calls, 6);
  EXPECT_GT(r.median, 0.0);
  EXPECT_LE(r.min, r.median);
  EXPECT_LE(r.median, r.max);
}

TEST(BenchRunner, AddSamplesComputesOrderStatistics) {
  BenchRunner runner(quiet());
  const BenchResult& r = runner.add_samples("fixed", {5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(r.median, 3.0);
  EXPECT_DOUBLE_EQ(r.min, 1.0);
  EXPECT_DOUBLE_EQ(r.max, 5.0);
  EXPECT_DOUBLE_EQ(r.mean, 3.0);
  EXPECT_LE(r.p10, r.median);
  EXPECT_GE(r.p90, r.median);
}

TEST(BenchRunner, JsonDocumentCarriesSchemaBenchmarksAndMetrics) {
  BenchRunner runner(quiet());
  runner.add_samples("alpha", {1.0, 2.0, 3.0});
  runner.add_metric("flows_completed", 17.0);
  const std::string text = runner.to_json("unit", {{"seed", "42"}}).dump(2);

  EXPECT_NE(text.find("\"schema\": \"taps-bench-v1\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"alpha\""), std::string::npos);
  EXPECT_NE(text.find("\"median\""), std::string::npos);
  EXPECT_NE(text.find("\"flows_completed\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\": \"42\""), std::string::npos);
  EXPECT_NE(text.find("\"context\""), std::string::npos);
}

TEST(BenchRunner, WriteJsonDefaultsToBenchNamePath) {
  BenchRunner runner(quiet());
  runner.add_samples("alpha", {1.0});
  const std::string dir = ::testing::TempDir();
  const std::string path = runner.write_json("writer_unit", dir + "BENCH_writer_unit.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("taps-bench-v1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace taps::bench
