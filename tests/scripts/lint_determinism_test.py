"""Tests for scripts/lint_determinism.py (the determinism linter).

Run from ctest as `lint_determinism_py` — stdlib only. The linter is
exercised end-to-end as a subprocess so the exit-code contract (0 clean /
1 findings / 2 usage error) is what is actually pinned. One positive
fixture per rule, the allow()/allow-file() escape hatches, and a clean run
over the real repo src/ (the zero-findings acceptance gate).
"""

import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "lint_determinism.py"


def run_lint(*args, cwd=None):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True, text=True, cwd=cwd, check=False)


class LintFixtureTest(unittest.TestCase):
    """Each rule must fire on a minimal positive fixture."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def lint_source(self, source, name="fixture.cpp"):
        path = self.tmp / name
        path.write_text(source, encoding="utf-8")
        return run_lint(path)

    def assert_finding(self, source, rule, name="fixture.cpp"):
        proc = self.lint_source(source, name)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn(f"[{rule}]", proc.stdout)
        return proc

    def assert_clean(self, source, name="fixture.cpp"):
        proc = self.lint_source(source, name)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        return proc

    def test_rand(self):
        self.assert_finding("int x = rand();\n", "rand")
        self.assert_finding("std::random_device rd;\n", "rand")
        self.assert_finding("srand(42);\n", "rand")

    def test_wall_clock(self):
        self.assert_finding("auto t = std::time(nullptr);\n", "wall-clock")
        self.assert_finding(
            "auto n = std::chrono::system_clock::now();\n", "wall-clock")
        self.assert_finding(
            "auto n = std::chrono::steady_clock::now();\n", "wall-clock")
        self.assert_finding("gettimeofday(&tv, nullptr);\n", "wall-clock")

    def test_wall_clock_does_not_flag_sim_time_identifiers(self):
        self.assert_clean("double next_flush_time() const;\n"
                          "double t = peek_time();\n")

    def test_unordered_iteration(self):
        self.assert_finding(
            "std::unordered_map<int, double> pending_;\n"
            "void f() { for (const auto& [k, v] : pending_) use(k); }\n",
            "unordered-iteration")

    def test_unordered_iteration_sees_companion_header(self):
        (self.tmp / "w.hpp").write_text(
            "#include <unordered_set>\n"
            "struct W { std::unordered_set<int> live_; void f(); };\n",
            encoding="utf-8")
        (self.tmp / "w.cpp").write_text(
            "#include \"w.hpp\"\n"
            "void W::f() { for (int x : live_) emit(x); }\n",
            encoding="utf-8")
        proc = run_lint(self.tmp / "w.cpp")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("[unordered-iteration]", proc.stdout)

    def test_ordered_map_iteration_is_fine(self):
        self.assert_clean(
            "std::map<int, double> pending_;\n"
            "void f() { for (const auto& [k, v] : pending_) use(k); }\n")

    def test_pointer_key(self):
        self.assert_finding("std::map<Flow*, int> by_flow;\n", "pointer-key")
        self.assert_finding("std::set<const Node*> seen;\n", "pointer-key")

    def test_pointer_value_is_fine(self):
        self.assert_clean("std::map<int, Flow*> by_id;\n")

    def test_uninitialized_member(self):
        self.assert_finding(
            "struct FlowConfig {\n"
            "  double deadline;\n"
            "  int waves = 1;\n"
            "};\n",
            "uninitialized-member")

    def test_initialized_members_are_fine(self):
        self.assert_clean(
            "struct FlowConfig {\n"
            "  double deadline = 0.0;\n"
            "  std::size_t waves = 1;\n"
            "  std::string name;\n"  # non-POD: value-initialized anyway
            "};\n")

    def test_struct_with_constructor_is_exempt(self):
        self.assert_clean(
            "struct Entry {\n"
            "  Entry(double t) : time(t) {}\n"
            "  double time;\n"
            "};\n")

    def test_float_type(self):
        self.assert_finding("float ratio = 0.5f;\n", "float-type")

    def test_float_in_comment_or_string_is_fine(self):
        self.assert_clean("// accumulates float error\n"
                          "const char* s = \"float\";\n"
                          "double x = 0.0;\n")

    def test_allow_same_line(self):
        self.assert_clean(
            "auto t = std::time(nullptr);"
            "  // taps-lint: allow(wall-clock) -- logging timestamp only\n")

    def test_allow_line_above(self):
        self.assert_clean(
            "// taps-lint: allow(rand) -- fixture exercising rand itself\n"
            "int x = rand();\n")

    def test_allow_multiple_rules(self):
        self.assert_clean(
            "// taps-lint: allow(rand, wall-clock) -- test fixture\n"
            "int x = rand() + time(nullptr);\n")

    def test_allow_wrong_rule_does_not_suppress(self):
        self.assert_finding(
            "// taps-lint: allow(wall-clock) -- mismatched rule id\n"
            "int x = rand();\n",
            "rand")

    def test_allow_does_not_leak_two_lines_down(self):
        self.assert_finding(
            "// taps-lint: allow(rand)\n"
            "int ok = rand();\n"
            "int bad = rand();\n",
            "rand")

    def test_allow_file(self):
        self.assert_clean(
            "// taps-lint: allow-file(float-type) -- fp32 conversion shim\n"
            "float a;\nfloat b;\n"
            "struct P { P() {} };\n")


class LintCliTest(unittest.TestCase):
    def test_list_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("rand", "wall-clock", "unordered-iteration",
                     "pointer-key", "uninitialized-member", "float-type"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_lint("no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_repo_src_is_clean(self):
        """The acceptance gate: the real tree has zero findings."""
        proc = run_lint("src", cwd=REPO)
        self.assertEqual(proc.returncode, 0,
                         f"src/ has findings:\n{proc.stdout}{proc.stderr}")
        self.assertIn("0 findings", proc.stdout)


if __name__ == "__main__":
    unittest.main()
