"""Tests for scripts/render_gantt.py (the timeline Gantt renderer).

Run from ctest as `python3 -m unittest discover -s tests/scripts` — stdlib
only, no pytest/pip dependencies. The script is exercised end-to-end as a
subprocess so the exit-code contract (0 ok / 2 input error) and the file
outputs are what is actually pinned. The binary fixture is packed here with
struct against the taps-timeline-v1 layout documented in docs/TIMELINE.md —
a second, independent encoder keeps the C++ writer honest.
"""

import pathlib
import struct
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "render_gantt.py"

TEXT_TIMELINE = """taps-timeline-v1
arrive t=0 task=0
admit t=0 task=0
grant t=0 flow=0 task=0 links=2,0,7 slices=0:4
arrive t=1 task=1
preempt t=1 victim=0 by=1
admit t=1 task=1
grant t=1 flow=1 task=1 links=4,0,9 slices=1:3
complete t=3 flow=1 task=1
end t=3 events=9
"""


def pack_binary():
    """The same stream as TEXT_TIMELINE, packed in the .tlbin layout."""
    kinds = {
        "arrive": 0,
        "admit": 1,
        "reject": 2,
        "preempt": 3,
        "grant": 4,
        "complete": 5,
        "miss": 6,
        "transmit": 7,
        "end": 8,
    }
    out = bytearray(b"TAPSTL01")
    events = [
        ("arrive", 0.0, 0, -1),
        ("admit", 0.0, 0, -1),
        ("grant", 0.0, 0, 0, [2, 0, 7], [(0.0, 4.0)]),
        ("arrive", 1.0, 1, -1),
        ("preempt", 1.0, 0, 1),
        ("admit", 1.0, 1, -1),
        ("grant", 1.0, 1, 1, [4, 0, 9], [(1.0, 3.0)]),
        ("complete", 3.0, 1, 1),
        ("end", 3.0, -1, -1),
    ]
    out += struct.pack("<IQ", 1, len(events))
    for e in events:
        kind, t, a, b = e[0], e[1], e[2], e[3]
        out += struct.pack("<Bdii", kinds[kind], t, a, b)
        if kind == "grant":
            links, slices = e[4], e[5]
            out += struct.pack("<II", len(links), len(slices))
            out += struct.pack(f"<{len(links)}i", *links)
            for lo, hi in slices:
                out += struct.pack("<dd", lo, hi)
    return bytes(out)


def run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True,
        text=True,
        check=False,
    )


class RenderGanttTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.dir = pathlib.Path(self.tmp.name)

    def write_text(self, name="run.timeline", content=TEXT_TIMELINE):
        path = self.dir / name
        path.write_text(content, encoding="utf-8")
        return path

    def test_renders_text_timeline_to_svg(self):
        src = self.write_text()
        out = self.dir / "run.svg"
        result = run(src, "--out", out)
        self.assertEqual(result.returncode, 0, result.stderr)
        svg = out.read_text(encoding="utf-8")
        self.assertIn("<svg", svg)
        # Preempted flow 0 is clipped at t=1: links 2, 0, 7 each get one
        # rect; flow 1 draws on links 4, 0, 9 — six slice rects in all.
        self.assertEqual(svg.count("<rect"), 6 + 1)  # + background
        self.assertIn("preempt task 0 by task 1", svg)
        # Rows are the five distinct links.
        for link in (0, 2, 4, 7, 9):
            self.assertIn(f"link {link}", svg)

    def test_binary_and_text_render_identically(self):
        text_src = self.write_text()
        bin_src = self.dir / "run.tlbin"
        bin_src.write_bytes(pack_binary())
        self.assertEqual(run(text_src, "--out", self.dir / "a.svg").returncode, 0)
        self.assertEqual(run(bin_src, "--out", self.dir / "b.svg").returncode, 0)
        a = (self.dir / "a.svg").read_text(encoding="utf-8")
        b = (self.dir / "b.svg").read_text(encoding="utf-8")
        # Identical modulo the title line, which carries the input filename.
        strip = lambda s: [l for l in s.splitlines() if "font-size=\"14\"" not in l]
        self.assertEqual(strip(a), strip(b))

    def test_flow_rows_mode(self):
        src = self.write_text()
        out = self.dir / "flows.svg"
        result = run(src, "--rows", "flows", "--out", out)
        self.assertEqual(result.returncode, 0, result.stderr)
        svg = out.read_text(encoding="utf-8")
        self.assertIn("flow 0", svg)
        self.assertIn("flow 1", svg)
        self.assertEqual(svg.count("<rect"), 2 + 1)  # one per flow + background

    def test_aggregates_above_max_rects(self):
        src = self.write_text()
        out = self.dir / "agg.svg"
        result = run(src, "--max-rects", "2", "--out", out)
        self.assertEqual(result.returncode, 0, result.stderr)
        svg = out.read_text(encoding="utf-8")
        self.assertIn("aggregated to per-row utilization", svg)

    def test_transmit_only_stream_falls_back_to_flow_rows(self):
        src = self.write_text(
            content=(
                "taps-timeline-v1\n"
                "arrive t=0 task=0\n"
                "transmit t=0 flow=0 task=0 until=3 bytes=1.5\n"
                "transmit t=0 flow=1 task=1 until=3 bytes=1.5\n"
                "miss t=3 flow=0 task=0\n"
                "miss t=3 flow=1 task=1\n"
                "end t=3 events=6\n"
            )
        )
        out = self.dir / "fair.svg"
        result = run(src, "--out", out)
        self.assertEqual(result.returncode, 0, result.stderr)
        svg = out.read_text(encoding="utf-8")
        self.assertEqual(svg.count("<rect"), 2 + 1)
        self.assertEqual(svg.count("<circle"), 2)  # two miss markers

    def test_out_dir_renders_many_inputs(self):
        a = self.write_text("a.timeline")
        b = self.write_text("b.timeline")
        result = run(a, b, "--out-dir", self.dir / "charts")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertTrue((self.dir / "charts" / "a.svg").exists())
        self.assertTrue((self.dir / "charts" / "b.svg").exists())

    def test_out_with_multiple_inputs_is_a_usage_error(self):
        a = self.write_text("a.timeline")
        b = self.write_text("b.timeline")
        result = run(a, b, "--out", self.dir / "x.svg")
        self.assertEqual(result.returncode, 2)

    def test_pod_grouping_labels_each_pod_block(self):
        # Fixture links 0,2,4 sit in pod 0 of a k=2 fat-tree (6 links per
        # pod), links 7,9 in pod 1 — both separator bands must appear, rows
        # ordered pod-major.
        src = self.write_text()
        out = self.dir / "pods.svg"
        result = run(src, "--pods", 2, "--out", out)
        self.assertEqual(result.returncode, 0, result.stderr)
        svg = out.read_text(encoding="utf-8")
        self.assertIn(">pod 0<", svg)
        self.assertIn(">pod 1<", svg)
        self.assertIn("grouped into 2 pods", svg)
        self.assertLess(svg.index(">pod 0<"), svg.index(">pod 1<"))
        # Ungrouped rendering is untouched: no pod bands without --pods.
        self.assertEqual(run(src, "--out", self.dir / "plain.svg").returncode, 0)
        self.assertNotIn("pod ", (self.dir / "plain.svg").read_text(encoding="utf-8"))

    def test_pod_grouping_link_out_of_range_is_input_error(self):
        src = self.write_text(
            content=TEXT_TIMELINE.replace("links=4,0,9", "links=4,0,99")
        )
        result = run(src, "--pods", 2, "--out", self.dir / "x.svg")
        self.assertEqual(result.returncode, 2)
        self.assertIn("outside a k=2 fat-tree", result.stderr)

    def test_pods_with_flow_rows_is_a_usage_error(self):
        src = self.write_text()
        result = run(src, "--pods", 2, "--rows", "flows")
        self.assertEqual(result.returncode, 2)

    def test_pods_must_be_a_valid_fattree_arity(self):
        src = self.write_text()
        result = run(src, "--pods", 3)
        self.assertEqual(result.returncode, 2)

    def test_fattree_link_pods_matches_topology_block_sizes(self):
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            from render_gantt import fattree_link_pods
        finally:
            sys.path.pop(0)
        # k=4: 4 pods x (2*2*2 agg<->core + 2*(2*2 edge<->agg + 2*2
        # host<->edge)) = 24 links each, 96 total.
        pods = fattree_link_pods(4)
        self.assertEqual(len(pods), 96)
        for p in range(4):
            self.assertEqual(pods.count(p), 24)
        self.assertEqual(pods, sorted(pods))

    def test_rejects_garbage_input(self):
        src = self.dir / "junk"
        src.write_bytes(b"\x00\x01garbage not a timeline")
        result = run(src)
        self.assertEqual(result.returncode, 2)
        self.assertIn("error:", result.stderr)

    def test_rejects_truncated_binary(self):
        src = self.dir / "trunc.tlbin"
        src.write_bytes(pack_binary()[:30])
        result = run(src)
        self.assertEqual(result.returncode, 2)
        self.assertIn("truncated", result.stderr)

    def test_rejects_unsupported_binary_version(self):
        data = bytearray(pack_binary())
        data[8] = 9
        src = self.dir / "v9.tlbin"
        src.write_bytes(bytes(data))
        result = run(src)
        self.assertEqual(result.returncode, 2)
        self.assertIn("version", result.stderr)


if __name__ == "__main__":
    unittest.main()
