"""Tests for scripts/bench_compare.py (the perf-regression gate).

Run from ctest as `python3 -m unittest discover -s tests/scripts` — stdlib
only, no pytest/pip dependencies. The script is exercised end-to-end as a
subprocess so the exit-code contract (0 ok / 1 regression / 2 input error)
is what is actually pinned.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "bench_compare.py"


def doc(benchmarks, metrics=(), schema="taps-bench-v1"):
    return {
        "schema": schema,
        "benchmarks": [
            {"name": name, "median": median, "repeats": 5}
            for name, median in benchmarks
        ],
        "metrics": [{"name": name, "value": value} for name, value in metrics],
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, content):
        path = self.tmp / name
        if isinstance(content, str):
            path.write_text(content, encoding="utf-8")
        else:
            path.write_text(json.dumps(content), encoding="utf-8")
        return path

    def run_compare(self, *args):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *[str(a) for a in args]],
            capture_output=True,
            text=True,
            check=False,
        )

    def test_within_threshold_passes(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.05)]))
        result = self.run_compare(base, cur, "--threshold", "0.10")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("ok", result.stdout)

    def test_regression_detected(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.50)]))
        result = self.run_compare(base, cur, "--threshold", "0.10")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSED", result.stdout)
        self.assertIn("regressions:", result.stderr)

    def test_warn_only_downgrades_regression_to_exit_zero(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 2.00)]))
        result = self.run_compare(base, cur, "--warn-only")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("REGRESSED", result.stdout)
        self.assertIn("--warn-only", result.stderr)

    def test_improvement_passes_and_is_reported(self):
        base = self.write("base.json", doc([("replan/n=10", 2.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.00)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("improved", result.stdout)

    def test_malformed_json_exits_two(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", "{not json at all")
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 2)
        self.assertIn("cannot read", result.stderr)

    def test_missing_file_exits_two(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        result = self.run_compare(base, self.tmp / "does_not_exist.json")
        self.assertEqual(result.returncode, 2)

    def test_wrong_schema_exits_two(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.00)], schema="other-v9"))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 2)
        self.assertIn("schema", result.stderr)

    def test_empty_baseline_exits_two(self):
        base = self.write("base.json", doc([]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.00)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 2)
        self.assertIn("no benchmarks", result.stderr)

    def test_nonpositive_threshold_exits_two(self):
        base = self.write("base.json", doc([("replan/n=10", 1.00)]))
        cur = self.write("cur.json", doc([("replan/n=10", 1.00)]))
        result = self.run_compare(base, cur, "--threshold", "0")
        self.assertEqual(result.returncode, 2)

    def test_new_and_missing_benchmarks_are_not_gated(self):
        base = self.write("base.json", doc([("old/bench", 1.00), ("kept", 1.00)]))
        cur = self.write("cur.json", doc([("kept", 1.00), ("new/bench", 5.00)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("MISSING", result.stdout)
        self.assertIn("new", result.stdout)

    def test_metric_drift_is_reported_but_not_gated(self):
        base = self.write(
            "base.json", doc([("kept", 1.00)], metrics=[("speedup", 1.5)])
        )
        cur = self.write(
            "cur.json", doc([("kept", 1.00)], metrics=[("speedup", 9.9)])
        )
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("not gated", result.stdout)


if __name__ == "__main__":
    unittest.main()
