"""Tests for scripts/lint_concurrency.py (the concurrency-contract linter).

Run from ctest as `lint_concurrency_py` — stdlib only. The linter is
exercised end-to-end as a subprocess so the exit-code contract (0 clean /
1 findings / 2 usage error) is what is actually pinned. Fixtures cover
every rule positively and negatively, the allow()/allow-file() escape
hatches, lock-order graph extraction (nesting, declared edges, cycles,
--dump-lock-order), and a clean run over the real repo src/ (the
zero-findings acceptance gate).

Fixture files are placed under a `src/core/` subdirectory of the tempdir
when a rule is scoped to the marker-covered directories, and under
`src/util/` to exercise the util exemptions.
"""

import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "lint_concurrency.py"


def run_lint(*args, cwd=None):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True, text=True, cwd=cwd, check=False)


class LintCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, source, name="src/core/fixture.hpp"):
        path = self.tmp / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        return path

    def lint(self, source, name="src/core/fixture.hpp"):
        return run_lint(self.write(source, name))

    def assert_finding(self, source, rule, name="src/core/fixture.hpp"):
        proc = self.lint(source, name)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn(f"[{rule}]", proc.stdout)
        return proc

    def assert_clean(self, source, name="src/core/fixture.hpp"):
        proc = self.lint(source, name)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        return proc


class UnmarkedClassTest(LintCase):
    def test_struct_with_member_fires(self):
        self.assert_finding("struct Foo {\n  int x = 0;\n};\n",
                            "unmarked-class")

    def test_class_with_member_fires(self):
        self.assert_finding(
            "class Bar {\n public:\n  void f();\n private:\n"
            "  double y_ = 0.0;\n};\n", "unmarked-class")

    def test_marker_on_head_line_accepted(self):
        self.assert_clean(
            "struct Foo {  // taps-threading: thread-compatible\n"
            "  int x = 0;\n};\n")

    def test_marker_above_head_accepted(self):
        self.assert_clean(
            "// taps-threading: single-domain -- owned by one domain\n"
            "struct Foo {\n  int x = 0;\n};\n")

    def test_marker_in_doc_comment_block_accepted(self):
        self.assert_clean(
            "/// Documentation line one.\n"
            "// taps-threading: immutable-after-build\n"
            "/// More documentation.\n"
            "struct Foo {\n  int x = 0;\n};\n")

    def test_methods_only_class_is_exempt(self):
        self.assert_clean(
            "struct Stateless {\n  int f() const;\n  void g(int v);\n};\n")

    def test_using_and_constants_are_not_members(self):
        self.assert_clean(
            "struct Consts {\n"
            "  using Id = int;\n"
            "  static constexpr int kMax = 4;\n"
            "  enum class Kind { kA, kB };\n"
            "};\n")

    def test_forward_declaration_is_exempt(self):
        self.assert_clean("struct Fwd;\nclass Other;\n")

    def test_outside_covered_dirs_is_exempt(self):
        self.assert_clean("struct Foo {\n  int x = 0;\n};\n",
                          name="src/exp/fixture.hpp")

    def test_nested_class_reported_once_at_top_level(self):
        proc = self.assert_finding(
            "struct Outer {\n  struct Inner {\n    int v = 0;\n  };\n"
            "  Inner i;\n};\n", "unmarked-class")
        self.assertEqual(proc.stdout.count("[unmarked-class]"), 1)

    def test_member_with_guarded_by_annotation_is_a_member(self):
        # Trailing TAPS macros carry parens; they must not make the
        # declaration look like a function.
        self.assert_finding(
            "struct S {\n  int v TAPS_GUARDED_BY(mu_) = 0;\n};\n",
            "unmarked-class")

    def test_allow_on_head_line(self):
        self.assert_clean(
            "struct Foo {  // taps-lint: allow(unmarked-class) -- fixture\n"
            "  int x = 0;\n};\n")


class MarkerVocabTest(LintCase):
    def test_unknown_marker_fires(self):
        self.assert_finding(
            "// taps-threading: lockfree\n"
            "struct Foo {\n  int x = 0;\n};\n", "marker-vocab")

    def test_all_four_markers_accepted(self):
        for marker in ("single-domain", "guarded", "immutable-after-build",
                       "thread-compatible"):
            src = (f"// taps-threading: {marker}\n"
                   "struct Foo {\n  int x TAPS_GUARDED_BY(mu_) = 0;\n};\n")
            self.assert_clean(src)

    def test_marker_with_rationale_accepted(self):
        self.assert_clean(
            "// taps-threading: single-domain -- one instance per domain\n"
            "struct Foo {\n  int x = 0;\n};\n")


class GuardedUnannotatedTest(LintCase):
    def test_guarded_without_annotation_fires(self):
        self.assert_finding(
            "// taps-threading: guarded\n"
            "struct Foo {\n  int x = 0;\n};\n", "guarded-unannotated")

    def test_guarded_with_annotation_accepted(self):
        self.assert_clean(
            "// taps-threading: guarded\n"
            "struct Foo {\n  int x TAPS_GUARDED_BY(mu_) = 0;\n};\n")

    def test_guarded_with_pt_annotation_accepted(self):
        self.assert_clean(
            "// taps-threading: guarded\n"
            "struct Foo {\n  int* p TAPS_PT_GUARDED_BY(mu_) = nullptr;\n};\n")


class MutableStaticTest(LintCase):
    def test_thread_local_fires(self):
        self.assert_finding(
            "void f() {\n  thread_local int calls = 0;\n}\n",
            "mutable-static", name="src/core/fixture.cpp")

    def test_non_const_static_fires(self):
        self.assert_finding("static int counter = 0;\n", "mutable-static",
                            name="src/core/fixture.cpp")

    def test_g_prefixed_global_fires(self):
        self.assert_finding("int g_total = 0;\n", "mutable-static",
                            name="src/core/fixture.cpp")

    def test_constexpr_static_is_exempt(self):
        self.assert_clean(
            "static constexpr int kMax = 8;\n"
            "static const char* const kName = \"x\";\n",
            name="src/core/fixture.cpp")

    def test_util_is_exempt(self):
        self.assert_clean("static int g_level = 0;\nthread_local int t = 0;\n",
                          name="src/util/fixture.cpp")

    def test_allow_with_justification(self):
        self.assert_clean(
            "// taps-lint: allow(mutable-static) -- interned at startup\n"
            "static int counter = 0;\n", name="src/core/fixture.cpp")


class RawPrimitiveTest(LintCase):
    def test_std_mutex_fires(self):
        self.assert_finding("std::mutex mu;\n", "raw-primitive",
                            name="src/core/fixture.cpp")

    def test_std_thread_fires(self):
        self.assert_finding("std::thread t;\n", "raw-primitive",
                            name="src/core/fixture.cpp")

    def test_std_atomic_fires(self):
        self.assert_finding("std::atomic<int> n{0};\n", "raw-primitive",
                            name="src/core/fixture.cpp")

    def test_lock_guard_and_async_fire(self):
        self.assert_finding("std::lock_guard<std::mutex> l(mu);\n",
                            "raw-primitive", name="src/core/fixture.cpp")
        self.assert_finding("auto fut = std::async(f);\n", "raw-primitive",
                            name="src/core/fixture.cpp")

    def test_util_aliases_are_clean(self):
        self.assert_clean(
            "util::Atomic<int> n{0};\nutil::Thread worker;\n"
            "util::Mutex mu;\n", name="src/core/fixture.cpp")

    def test_std_future_is_not_banned(self):
        # ThreadPool::submit legitimately hands std::future to callers.
        self.assert_clean("std::future<int> fut;\n",
                          name="src/core/fixture.cpp")

    def test_util_is_exempt(self):
        self.assert_clean("std::mutex mu;\nstd::atomic<int> n{0};\n",
                          name="src/util/sync_impl.hpp")

    def test_comment_and_string_mentions_are_clean(self):
        self.assert_clean(
            "// std::mutex is banned here\n"
            "const char* s = \"std::thread\";\n",
            name="src/core/fixture.cpp")


class LockOrderTest(LintCase):
    def test_consistent_nesting_is_clean(self):
        self.assert_clean(
            "void f() {\n  util::MutexLock a(mu_a);\n"
            "  util::MutexLock b(mu_b);\n}\n"
            "void g() {\n  util::MutexLock a(mu_a);\n"
            "  util::MutexLock b(mu_b);\n}\n",
            name="src/util/fixture.cpp")

    def test_inverted_nesting_reports_cycle(self):
        proc = self.assert_finding(
            "void f() {\n  util::MutexLock a(mu_a);\n"
            "  util::MutexLock b(mu_b);\n}\n"
            "void g() {\n  util::MutexLock b(mu_b);\n"
            "  util::MutexLock a(mu_a);\n}\n",
            "lock-order", name="src/util/fixture.cpp")
        self.assertIn("acquisition cycle", proc.stdout)

    def test_reacquisition_of_held_mutex_fires(self):
        self.assert_finding(
            "void f() {\n  util::MutexLock a(mu_a);\n"
            "  util::MutexLock b(mu_a);\n}\n",
            "lock-order", name="src/util/fixture.cpp")

    def test_scoped_release_breaks_nesting(self):
        self.assert_clean(
            "void f() {\n  { util::MutexLock a(mu_a); }\n"
            "  { util::MutexLock b(mu_b); }\n}\n"
            "void g() {\n  { util::MutexLock b(mu_b); }\n"
            "  { util::MutexLock a(mu_a); }\n}\n",
            name="src/util/fixture.cpp")

    def test_member_mutex_qualified_by_class(self):
        path_a = self.write(
            "struct A {\n  void f();\n  util::Mutex mu_;\n};\n"
            "void A::f() {\n  util::MutexLock l(mu_);\n"
            "  util::MutexLock g(g_mu);\n}\n", name="src/util/a.cpp")
        path_b = self.write(
            "struct B {\n  void f();\n  util::Mutex mu_;\n};\n"
            "void B::f() {\n  util::MutexLock g(g_mu);\n"
            "  util::MutexLock l(mu_);\n}\n", name="src/util/b.cpp")
        # A::mu_ -> g_mu and g_mu -> B::mu_ is NOT a cycle: the two
        # member mutexes are distinct nodes.
        proc = run_lint(path_a, path_b)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_declared_acquired_before_cycle(self):
        self.assert_finding(
            "struct S {\n"
            "  util::Mutex a_ TAPS_ACQUIRED_BEFORE(b_);\n"
            "  util::Mutex b_ TAPS_ACQUIRED_BEFORE(a_);\n"
            "};\n", "lock-order", name="src/util/fixture.hpp")

    def test_declared_acquired_after_consistent(self):
        self.assert_clean(
            "struct S {\n"
            "  util::Mutex a_ TAPS_ACQUIRED_BEFORE(b_);\n"
            "  util::Mutex b_ TAPS_ACQUIRED_AFTER(a_);\n"
            "};\n", name="src/util/fixture.hpp")

    def test_dump_lock_order_topological(self):
        path = self.write(
            "struct S {\n"
            "  util::Mutex a_ TAPS_ACQUIRED_BEFORE(b_);\n"
            "  util::Mutex b_ TAPS_ACQUIRED_BEFORE(c_);\n"
            "  util::Mutex c_;\n"
            "};\n", name="src/util/fixture.hpp")
        proc = run_lint("--dump-lock-order", path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        lines = proc.stdout.split()
        self.assertLess(lines.index("S::a_"), lines.index("S::b_"))
        self.assertLess(lines.index("S::b_"), lines.index("S::c_"))

    def test_dump_lock_order_cycle_fails(self):
        path = self.write(
            "struct S {\n"
            "  util::Mutex a_ TAPS_ACQUIRED_BEFORE(b_);\n"
            "  util::Mutex b_ TAPS_ACQUIRED_BEFORE(a_);\n"
            "};\n", name="src/util/fixture.hpp")
        proc = run_lint("--dump-lock-order", path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("CYCLE", proc.stdout)

    def test_allow_drops_edge(self):
        self.assert_clean(
            "void f() {\n  util::MutexLock a(mu_a);\n"
            "  util::MutexLock b(mu_b);\n}\n"
            "void g() {\n  util::MutexLock b(mu_b);\n"
            "  // taps-lint: allow(lock-order) -- fixture justifies inversion\n"
            "  util::MutexLock a(mu_a);\n}\n",
            name="src/util/fixture.cpp")


class EscapeHatchTest(LintCase):
    def test_allow_covers_next_line(self):
        self.assert_clean(
            "// taps-lint: allow(raw-primitive) -- fixture\n"
            "std::mutex mu;\n", name="src/core/fixture.cpp")

    def test_allow_file_disables_rule_everywhere(self):
        self.assert_clean(
            "// taps-lint: allow-file(raw-primitive) -- fixture\n"
            "std::mutex a;\nstd::mutex b;\nstd::thread t;\n",
            name="src/core/fixture.cpp")

    def test_allow_does_not_cover_other_rules(self):
        self.assert_finding(
            "// taps-lint: allow(mutable-static) -- wrong rule\n"
            "std::mutex mu;\n", "raw-primitive",
            name="src/core/fixture.cpp")

    def test_allow_multiple_rules(self):
        self.assert_clean(
            "// taps-lint: allow(raw-primitive, mutable-static) -- fixture\n"
            "static std::mutex mu;\n", name="src/core/fixture.cpp")


class CliTest(LintCase):
    def test_list_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("unmarked-class", "marker-vocab", "guarded-unannotated",
                     "mutable-static", "raw-primitive", "lock-order"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_lint(self.tmp / "does-not-exist")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)


class CleanTreeTest(unittest.TestCase):
    """The acceptance gate: the real tree has zero findings."""

    def test_repo_src_is_clean(self):
        proc = run_lint(REPO / "src")
        self.assertEqual(proc.returncode, 0,
                         "concurrency lint found issues:\n" + proc.stdout)

    def test_repo_lock_order_is_acyclic(self):
        proc = run_lint("--dump-lock-order", REPO / "src")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("CYCLE", proc.stdout)


if __name__ == "__main__":
    unittest.main()
