// Bit-identity pin for hierarchical admission: the pod-local conservative
// precheck (TapsConfig::hierarchical_precheck = true) must never reject a
// task the global planner would admit — on random fat-tree scenarios, every
// committed decision, path, slice set, per-link occupancy and flow outcome
// must be BITWISE identical with the precheck on and off (the always-global
// pipeline is the oracle).
//
// The scenarios are biased toward what makes the precheck fire: hotspot
// sources (many tasks sharing a host uplink), same-instant cascades (the
// no-transmission gate holds), tight deadlines (provably-infeasible
// arrivals), cross-pod flows (pod-uplink budget tests), and exact-fit sizes
// (the budget-exhausted boundary, which must NOT fast-reject).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/prop.hpp"
#include "core/taps_scheduler.hpp"
#include "topo/fattree.hpp"

namespace taps::core {
namespace {

struct FlowGen {
  std::size_t src = 0;
  std::size_t dst = 0;
  double size = 1.0;
};

struct TaskGen {
  double arrival = 0.0;
  double slack = 1.0;  // deadline = arrival + slack
  std::vector<FlowGen> flows;
};

std::ostream& operator<<(std::ostream& os, const TaskGen& t) {
  os << "{t=" << t.arrival << " slack=" << t.slack << " flows=[";
  for (const FlowGen& f : t.flows) {
    os << "(" << f.src << "->" << f.dst << " sz=" << f.size << ")";
  }
  return os << "]}";
}

// k=4 fat-tree with unit capacity: 16 hosts in 4 pods, sizes read as seconds.
constexpr int kHosts = 16;

std::vector<TaskGen> gen_scenario(util::Rng& rng) {
  std::vector<TaskGen> tasks;
  const int n = static_cast<int>(rng.uniform_int(2, 16));
  // A couple of hotspot hosts most sources concentrate on, so host-uplink
  // mass actually accumulates and the precheck has something to prove.
  const auto hot_a = static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1));
  const auto hot_b = static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    // Mostly same-instant cascades (gate armed); occasionally advance time
    // so the gate closes and the fallback path runs under the comparison.
    if (i > 0 && rng.bernoulli(0.25)) t += rng.uniform_real(0.1, 1.5);
    TaskGen task;
    task.arrival = t;
    // Tight tail forces provable infeasibility; round sizes + slacks land
    // exact-exhaustion boundaries reasonably often.
    task.slack = rng.bernoulli(0.4) ? rng.uniform_real(0.3, 1.2)
                                    : rng.uniform_real(1.2, 6.0);
    const int nf = static_cast<int>(rng.uniform_int(1, 3));
    for (int j = 0; j < nf; ++j) {
      FlowGen f;
      f.src = rng.bernoulli(0.6) ? (rng.bernoulli(0.5) ? hot_a : hot_b)
                                 : static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1));
      f.dst = static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1));
      if (f.dst == f.src) f.dst = (f.dst + 1) % kHosts;
      f.size = rng.bernoulli(0.5) ? rng.uniform_real(0.2, 2.0)
                                  : static_cast<double>(rng.uniform_int(1, 4)) * 0.5;
      task.flows.push_back(f);
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

struct ScenarioRun {
  std::unique_ptr<topo::FatTree> topo;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<TapsScheduler> sched;
};

ScenarioRun run_scenario(const std::vector<TaskGen>& tasks, bool precheck, bool incremental) {
  ScenarioRun r;
  r.topo = std::make_unique<topo::FatTree>(topo::FatTreeConfig{4, 1.0});
  r.net = std::make_unique<net::Network>(*r.topo);
  const std::vector<topo::NodeId>& hosts = r.topo->hosts();
  for (const TaskGen& t : tasks) {
    std::vector<net::FlowSpec> flows;
    for (const FlowGen& f : t.flows) {
      flows.push_back(test::flow(hosts[f.src], hosts[f.dst], f.size));
    }
    test::add_task(*r.net, t.arrival, t.arrival + t.slack, std::move(flows));
  }
  TapsConfig cfg;
  cfg.hierarchical_precheck = precheck;
  cfg.incremental_replan = incremental;
  cfg.trim_interval = 4;  // exercise registry compaction under the comparison
  r.sched = std::make_unique<TapsScheduler>(cfg);
  (void)test::run(*r.net, *r.sched);
  return r;
}

std::optional<std::string> compare_runs(const ScenarioRun& on, const ScenarioRun& off) {
  std::ostringstream os;
  const auto fail = [&os]() -> std::optional<std::string> { return os.str(); };

  for (std::size_t i = 0; i < on.net->tasks().size(); ++i) {
    if (on.net->tasks()[i].state != off.net->tasks()[i].state) {
      os << "task " << i << " state: precheck-on " << net::to_string(on.net->tasks()[i].state)
         << " vs off " << net::to_string(off.net->tasks()[i].state);
      return fail();
    }
  }
  for (std::size_t i = 0; i < on.net->flows().size(); ++i) {
    const net::Flow& a = on.net->flows()[i];
    const net::Flow& b = off.net->flows()[i];
    if (a.state != b.state) {
      os << "flow " << i << " state differs";
      return fail();
    }
    if (a.remaining != b.remaining) {  // bitwise on purpose
      os << "flow " << i << " remaining: " << a.remaining << " vs " << b.remaining;
      return fail();
    }
    if (a.completion_time != b.completion_time) {
      os << "flow " << i << " completion: " << a.completion_time << " vs "
         << b.completion_time;
      return fail();
    }
    if (a.path.links != b.path.links) {
      os << "flow " << i << " committed path differs";
      return fail();
    }
    if (on.sched->slices(a.id()) != off.sched->slices(b.id())) {
      os << "flow " << i << " slices: " << on.sched->slices(a.id()) << " vs "
         << off.sched->slices(b.id());
      return fail();
    }
  }
  const std::size_t links = on.net->graph().link_count();
  for (topo::LinkId l = 0; l < static_cast<topo::LinkId>(links); ++l) {
    if (on.sched->occupancy().link(l) != off.sched->occupancy().link(l)) {
      os << "occupancy on link " << l << ": " << on.sched->occupancy().link(l) << " vs "
         << off.sched->occupancy().link(l);
      return fail();
    }
  }
  // Decision counters must match; effort counters (replans, flows_planned,
  // reuse, sorts) legitimately differ — skipping the trial replan on a fast
  // reject is the whole point.
  const TapsCounters& ca = on.sched->counters();
  const TapsCounters& cb = off.sched->counters();
  if (ca.tasks_accepted != cb.tasks_accepted || ca.tasks_rejected != cb.tasks_rejected ||
      ca.tasks_preempted != cb.tasks_preempted || ca.plan_commits != cb.plan_commits ||
      ca.slice_grants != cb.slice_grants || ca.replan_reverts != cb.replan_reverts) {
    os << "decision counters differ: accepted " << ca.tasks_accepted << "/"
       << cb.tasks_accepted << " rejected " << ca.tasks_rejected << "/" << cb.tasks_rejected
       << " preempted " << ca.tasks_preempted << "/" << cb.tasks_preempted << " commits "
       << ca.plan_commits << "/" << cb.plan_commits << " grants " << ca.slice_grants << "/"
       << cb.slice_grants << " reverts " << ca.replan_reverts << "/" << cb.replan_reverts;
    return fail();
  }
  if (cb.pod_fast_rejects != 0) {
    os << "oracle run fast-rejected " << cb.pod_fast_rejects << " tasks with the precheck off";
    return fail();
  }
  return std::nullopt;
}

TAPS_PROP(TapsHierarchyProp, PrecheckBitIdenticalIncremental, 150) {
  prop.for_all(gen_scenario, [](const std::vector<TaskGen>& tasks) {
    const ScenarioRun on = run_scenario(tasks, /*precheck=*/true, /*incremental=*/true);
    const ScenarioRun off = run_scenario(tasks, /*precheck=*/false, /*incremental=*/true);
    return compare_runs(on, off);
  });
}

TAPS_PROP(TapsHierarchyProp, PrecheckBitIdenticalFullReplan, 60) {
  prop.for_all(gen_scenario, [](const std::vector<TaskGen>& tasks) {
    const ScenarioRun on = run_scenario(tasks, /*precheck=*/true, /*incremental=*/false);
    const ScenarioRun off = run_scenario(tasks, /*precheck=*/false, /*incremental=*/false);
    return compare_runs(on, off);
  });
}

TEST(TapsHierarchyProp, FastRejectsActuallyHappenInAggregate) {
  // Guard against the precheck silently degenerating into "never fires":
  // across a batch of hotspot-biased random scenarios it must reject a
  // nonzero number of tasks locally, and must save real planning work.
  util::Rng rng(0xBADCAFE);
  std::size_t fast = 0;
  std::size_t planned_on = 0;
  std::size_t planned_off = 0;
  for (int i = 0; i < 25; ++i) {
    const std::vector<TaskGen> tasks = gen_scenario(rng);
    const ScenarioRun on = run_scenario(tasks, /*precheck=*/true, /*incremental=*/true);
    const ScenarioRun off = run_scenario(tasks, /*precheck=*/false, /*incremental=*/true);
    fast += on.sched->counters().pod_fast_rejects;
    planned_on += on.sched->counters().flows_planned;
    planned_off += off.sched->counters().flows_planned;
  }
  EXPECT_GT(fast, 0u);
  EXPECT_LT(planned_on, planned_off);
}

}  // namespace
}  // namespace taps::core
