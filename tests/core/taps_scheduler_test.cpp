#include "core/taps_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/optimal.hpp"
#include "util/rng.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;
using test::make_fig3_topology;

TEST(TapsScheduler, Fig1eCompletesOneTask) {
  // Paper Fig. 1: t1 (2+4 units, deadline 4) can never fit the bottleneck;
  // TAPS rejects it outright and completes t2 (1+3 units) — one full task,
  // where Fair Sharing / D3 / PDQ complete none (their tests).
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 4.0)});
  add_task(net, 0.0, 4.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 3.0)});
  TapsScheduler sched;
  (void)test::run(net, sched);

  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kRejected);
  EXPECT_EQ(net.tasks()[1].state, net::TaskState::kCompleted);
  EXPECT_EQ(test::completed_tasks(net), 1u);
  // Rejected task never sent a byte (the paper's no-waste property).
  EXPECT_DOUBLE_EQ(net.flows()[0].bytes_sent, 0.0);
  EXPECT_DOUBLE_EQ(net.flows()[1].bytes_sent, 0.0);
}

TEST(TapsScheduler, Fig2dCompletesBothTasks) {
  // Paper Fig. 2(d): the urgent late task squeezes in ahead of the earlier
  // loose one via global re-planning; both tasks complete (Baraat: 1 of 2,
  // Varys: 1 of 2).
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  add_task(net, 0.0, 2.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 1.0)});
  TapsScheduler sched;
  (void)test::run(net, sched);

  EXPECT_EQ(test::completed_tasks(net), 2u);
  // The urgent task's flows run first: [0,1) and [1,2).
  EXPECT_NEAR(net.flows()[2].completion_time, 1.0, 1e-9);
  EXPECT_NEAR(net.flows()[3].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[0].completion_time, 3.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 4.0, 1e-9);
}

TEST(TapsScheduler, Fig3CompletesAllFourFlows) {
  // Paper Fig. 3: TAPS's global multi-path slice scheduling completes all
  // four flows, where flow-list-limited PDQ loses f4 (see pdq_test).
  auto t = make_fig3_topology();
  net::Network net(*t.topology);
  add_task(net, 0.0, 1.0, {flow(t.h1, t.h2, 1.0)});
  add_task(net, 0.0, 2.0, {flow(t.h1, t.h4, 1.0)});
  add_task(net, 0.0, 2.0, {flow(t.h3, t.h2, 1.0)});
  add_task(net, 0.0, 3.0, {flow(t.h3, t.h4, 2.0)});
  TapsScheduler sched;
  (void)test::run(net, sched);
  EXPECT_EQ(test::completed_flows(net), 4u);
  EXPECT_EQ(test::completed_tasks(net), 4u);
}

TEST(TapsScheduler, AdmittedTasksAlwaysComplete) {
  // The defining TAPS guarantee: an admitted task either completes in full
  // before its deadline or is preempted — it never silently fails.
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    auto d = make_dumbbell(8);
    net::Network net(*d.topology);
    const int tasks = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < tasks; ++i) {
      const double arrival = rng.uniform_real(0.0, 3.0);
      const double deadline = arrival + rng.uniform_real(0.5, 4.0);
      std::vector<net::FlowSpec> flows;
      const int nf = static_cast<int>(rng.uniform_int(1, 3));
      for (int j = 0; j < nf; ++j) {
        const auto l = static_cast<std::size_t>(rng.uniform_int(0, 7));
        const auto r = static_cast<std::size_t>(rng.uniform_int(0, 7));
        flows.push_back(flow(d.left[l], d.right[r], rng.uniform_real(0.2, 2.0)));
      }
      add_task(net, arrival, deadline, flows);
    }
    TapsScheduler sched;
    (void)test::run(net, sched);
    for (const auto& t : net.tasks()) {
      EXPECT_TRUE(t.state == net::TaskState::kCompleted ||
                  t.state == net::TaskState::kRejected)
          << "trial " << trial << " task " << t.id() << " state "
          << net::to_string(t.state);
    }
    // No-waste: flows of rejected tasks transmitted nothing after rejection
    // (bytes may have flowed before a preemption, which these instances do
    // not trigger at arrival-time-only rejection).
    for (const auto& f : net.flows()) {
      if (net.task(f.task()).state == net::TaskState::kRejected) {
        EXPECT_EQ(f.state, net::FlowState::kRejected);
      }
    }
  }
}

TEST(TapsScheduler, SlicesNeverOverlapOnALink) {
  // Exclusive-use invariant: after admissions, per-link occupancy equals the
  // disjoint union of admitted flows' slices.
  auto d = make_dumbbell(8);
  net::Network net(*d.topology);
  util::Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    add_task(net, 0.0, rng.uniform_real(2.0, 8.0),
             {flow(d.left[static_cast<std::size_t>(i)],
                   d.right[static_cast<std::size_t>(i)], rng.uniform_real(0.3, 2.0))});
  }
  TapsScheduler sched;
  sched.bind(net);
  for (const auto& t : net.tasks()) sched.on_task_arrival(t.id(), 0.0);

  // Pairwise disjointness of slices of flows sharing the bottleneck.
  for (std::size_t i = 0; i < net.flows().size(); ++i) {
    for (std::size_t j = i + 1; j < net.flows().size(); ++j) {
      const auto& fi = net.flows()[i];
      const auto& fj = net.flows()[j];
      if (fi.state != net::FlowState::kActive || fj.state != net::FlowState::kActive) {
        continue;
      }
      const auto overlap =
          sched.slices(fi.id()).intersect(sched.slices(fj.id()));
      EXPECT_TRUE(overlap.empty())
          << "flows " << i << " and " << j << " overlap on the bottleneck";
    }
  }
}

TEST(TapsScheduler, UrgentLateTaskFitsViaReplanning) {
  // The Varys contrast: a later, more urgent task is admitted because TAPS
  // re-plans the incumbent's slices instead of holding static reservations.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 8.0, {flow(d.left[0], d.right[0], 3.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 1.5)});
  TapsScheduler sched;
  (void)test::run(net, sched);
  EXPECT_EQ(test::completed_tasks(net), 2u);
  // Urgent flow runs immediately after its arrival: 1.5 units from t=1.
  EXPECT_NEAR(net.flows()[1].completion_time, 2.5, 1e-9);
}

TEST(TapsScheduler, CountersTrackDecisions) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 3.0)});
  add_task(net, 0.0, 4.0, {flow(d.left[1], d.right[1], 3.0)});  // cannot fit
  TapsScheduler sched;
  (void)test::run(net, sched);
  EXPECT_EQ(sched.counters().tasks_accepted, 1u);
  EXPECT_EQ(sched.counters().tasks_rejected, 1u);
  EXPECT_EQ(sched.counters().tasks_preempted, 0u);
  EXPECT_GE(sched.counters().replans, 2u);
}

TEST(TapsScheduler, MatchesOptimalOnSingleLinkInstances) {
  // TAPS vs the exact solver on random single-bottleneck instances: the
  // heuristic must accept a feasible set (every admitted task completes) and
  // come close to the optimal count.
  util::Rng rng(2024);
  int taps_total = 0;
  int optimal_total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto d = make_dumbbell(10);
    net::Network net(*d.topology);
    std::vector<SlTask> sl_tasks;
    const int tasks = 5;
    for (int i = 0; i < tasks; ++i) {
      const double deadline = rng.uniform_real(1.0, 6.0);
      const double size = rng.uniform_real(0.4, 2.5);
      add_task(net, 0.0, deadline,
               {flow(d.left[static_cast<std::size_t>(i)],
                     d.right[static_cast<std::size_t>(i)], size)});
      sl_tasks.push_back(SlTask{{SlFlow{0.0, deadline, size}}});
    }
    TapsScheduler sched;
    (void)test::run(net, sched);
    const auto taps_done = static_cast<int>(test::completed_tasks(net));
    const auto opt = optimal_single_link(sl_tasks);
    taps_total += taps_done;
    optimal_total += static_cast<int>(opt.tasks_completed);
    EXPECT_LE(taps_done, static_cast<int>(opt.tasks_completed));
  }
  // Aggregate quality: within 20% of optimal across the batch.
  EXPECT_GE(taps_total, optimal_total * 4 / 5);
}

}  // namespace
}  // namespace taps::core
