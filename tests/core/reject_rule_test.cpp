#include "core/reject_rule.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

struct RuleFixture : public ::testing::Test {
  test::Dumbbell d = make_dumbbell(8);
  net::Network net{*d.topology};

  net::TaskId two_flow_task(int base) {
    return add_task(net, 0.0, 4.0,
                    {flow(d.left[static_cast<std::size_t>(base)],
                          d.right[static_cast<std::size_t>(base)], 1.0),
                     flow(d.left[static_cast<std::size_t>(base) + 1],
                          d.right[static_cast<std::size_t>(base) + 1], 1.0)});
  }

  static FlowPlan plan(net::FlowId fid, bool feasible) {
    FlowPlan p;
    p.flow = fid;
    p.feasible = feasible;
    return p;
  }
};

TEST_F(RuleFixture, AcceptWhenAllFeasible) {
  const net::TaskId t0 = two_flow_task(0);
  const net::TaskId t1 = two_flow_task(2);
  (void)t0;
  const std::vector<FlowPlan> trial{plan(0, true), plan(1, true), plan(2, true),
                                    plan(3, true)};
  const RejectOutcome out = apply_reject_rule(net, t1, trial);
  EXPECT_EQ(out.decision, Decision::kAccept);
}

TEST_F(RuleFixture, RejectWhenNewTaskInfeasible) {
  (void)two_flow_task(0);
  const net::TaskId t1 = two_flow_task(2);
  const std::vector<FlowPlan> trial{plan(0, true), plan(1, true), plan(2, true),
                                    plan(3, false)};  // flow 3 belongs to t1
  const RejectOutcome out = apply_reject_rule(net, t1, trial);
  EXPECT_EQ(out.decision, Decision::kRejectNew);
}

TEST_F(RuleFixture, RejectWhenMultipleTasksMiss) {
  (void)two_flow_task(0);
  (void)two_flow_task(2);
  const net::TaskId t2 = two_flow_task(4);
  const std::vector<FlowPlan> trial{plan(0, false), plan(1, true), plan(2, false),
                                    plan(3, true),  plan(4, true), plan(5, true)};
  const RejectOutcome out = apply_reject_rule(net, t2, trial);
  EXPECT_EQ(out.decision, Decision::kRejectNew);
}

TEST_F(RuleFixture, RejectWhenVictimHasEqualProgress) {
  // Single missing task != newcomer, but completion ratios tie (0 == 0):
  // the paper keeps the incumbent ("not less than" -> reject the newcomer).
  const net::TaskId t0 = two_flow_task(0);
  (void)t0;
  const net::TaskId t1 = two_flow_task(2);
  const std::vector<FlowPlan> trial{plan(0, false), plan(1, true), plan(2, true),
                                    plan(3, true)};
  const RejectOutcome out = apply_reject_rule(net, t1, trial);
  EXPECT_EQ(out.decision, Decision::kRejectNew);
}

TEST_F(RuleFixture, PreemptsVictimWithLowerProgress) {
  const net::TaskId t0 = two_flow_task(0);
  const net::TaskId t1 = two_flow_task(2);
  // Give the newcomer t1 progress (one flow already completed) and let t0 be
  // the single missing task with zero progress: t0 is preempted.
  net.task(t1).state = net::TaskState::kAdmitted;
  net.flow(2).state = net::FlowState::kActive;
  net.on_flow_completed(2, 1.0);
  const std::vector<FlowPlan> trial{plan(0, false), plan(1, true), plan(3, true)};
  const RejectOutcome out = apply_reject_rule(net, t1, trial);
  EXPECT_EQ(out.decision, Decision::kPreemptVictim);
  EXPECT_EQ(out.victim, t0);
}

TEST_F(RuleFixture, KeepsVictimWithHigherProgress) {
  const net::TaskId t0 = two_flow_task(0);
  const net::TaskId t1 = two_flow_task(2);
  // Incumbent t0 already completed one flow; newcomer t1 has none.
  net.task(t0).state = net::TaskState::kAdmitted;
  net.flow(0).state = net::FlowState::kActive;
  net.on_flow_completed(0, 1.0);
  const std::vector<FlowPlan> trial{plan(1, false), plan(2, true), plan(3, true)};
  const RejectOutcome out = apply_reject_rule(net, t1, trial);
  EXPECT_EQ(out.decision, Decision::kRejectNew);
}

TEST(RejectRuleNames, ToString) {
  EXPECT_STREQ(to_string(Decision::kAccept), "accept");
  EXPECT_STREQ(to_string(Decision::kRejectNew), "reject-new");
  EXPECT_STREQ(to_string(Decision::kPreemptVictim), "preempt-victim");
}

}  // namespace
}  // namespace taps::core
