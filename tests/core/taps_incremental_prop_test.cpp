// Bit-identity pin for incremental replanning: the journaled in-place
// session (TapsConfig::incremental_replan = true) must produce schedules
// BITWISE identical to the from-scratch full replan (= false, the oracle) on
// random scenarios — same admission/rejection/preemption decisions, same
// committed paths and slices, same per-link occupancy, same flow outcomes.
//
// The scenarios deliberately mix same-instant arrival cascades (maximum
// cross-arrival prefix reuse) with spread arrivals (transmission between
// commits breaks the reusable prefix), tight deadlines (rejects, compacting
// replans and their reverts) and multi-flow tasks (preemption validation),
// so every resume/restart path of the session runs under the comparison.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/prop.hpp"
#include "core/taps_scheduler.hpp"

namespace taps::core {
namespace {

struct FlowGen {
  std::size_t left = 0;
  std::size_t right = 0;
  double size = 1.0;
};

struct TaskGen {
  double arrival = 0.0;
  double slack = 1.0;  // deadline = arrival + slack
  std::vector<FlowGen> flows;
};

std::ostream& operator<<(std::ostream& os, const TaskGen& t) {
  os << "{t=" << t.arrival << " slack=" << t.slack << " flows=[";
  for (const FlowGen& f : t.flows) {
    os << "(" << f.left << "->" << f.right << " sz=" << f.size << ")";
  }
  return os << "]}";
}

constexpr int kSide = 6;

std::vector<TaskGen> gen_scenario(util::Rng& rng) {
  std::vector<TaskGen> tasks;
  const int n = static_cast<int>(rng.uniform_int(2, 14));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    // ~half the arrivals land on the same instant as the previous one
    // (cascades); the rest advance time so flows transmit between commits.
    if (i > 0 && !rng.bernoulli(0.5)) t += rng.uniform_real(0.1, 1.5);
    TaskGen task;
    task.arrival = t;
    // Mostly feasible-ish slacks with a tight tail to force rejections and
    // preemption attempts.
    task.slack = rng.bernoulli(0.25) ? rng.uniform_real(0.3, 1.0)
                                     : rng.uniform_real(1.0, 6.0);
    const int nf = static_cast<int>(rng.uniform_int(1, 3));
    for (int j = 0; j < nf; ++j) {
      task.flows.push_back(
          FlowGen{static_cast<std::size_t>(rng.uniform_int(0, kSide - 1)),
                  static_cast<std::size_t>(rng.uniform_int(0, kSide - 1)),
                  rng.uniform_real(0.2, 2.0)});
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

struct ScenarioRun {
  std::unique_ptr<test::Dumbbell> d;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<TapsScheduler> sched;
};

ScenarioRun run_scenario(const std::vector<TaskGen>& tasks, bool incremental) {
  ScenarioRun r;
  r.d = std::make_unique<test::Dumbbell>(test::make_dumbbell(kSide));
  r.net = std::make_unique<net::Network>(*r.d->topology);
  for (const TaskGen& t : tasks) {
    std::vector<net::FlowSpec> flows;
    for (const FlowGen& f : t.flows) {
      flows.push_back(test::flow(r.d->left[f.left], r.d->right[f.right], f.size));
    }
    test::add_task(*r.net, t.arrival, t.arrival + t.slack, std::move(flows));
  }
  TapsConfig cfg;
  cfg.incremental_replan = incremental;
  cfg.trim_interval = 4;  // exercise the trim cadence under the comparison
  r.sched = std::make_unique<TapsScheduler>(cfg);
  (void)test::run(*r.net, *r.sched);
  return r;
}

std::optional<std::string> compare_runs(const ScenarioRun& inc, const ScenarioRun& full) {
  std::ostringstream os;
  const auto fail = [&os]() -> std::optional<std::string> { return os.str(); };

  for (std::size_t i = 0; i < inc.net->tasks().size(); ++i) {
    if (inc.net->tasks()[i].state != full.net->tasks()[i].state) {
      os << "task " << i << " state: incremental " << net::to_string(inc.net->tasks()[i].state)
         << " vs full " << net::to_string(full.net->tasks()[i].state);
      return fail();
    }
  }
  for (std::size_t i = 0; i < inc.net->flows().size(); ++i) {
    const net::Flow& a = inc.net->flows()[i];
    const net::Flow& b = full.net->flows()[i];
    if (a.state != b.state) {
      os << "flow " << i << " state differs";
      return fail();
    }
    if (a.remaining != b.remaining) {  // bitwise on purpose
      os << "flow " << i << " remaining: " << a.remaining << " vs " << b.remaining;
      return fail();
    }
    if (a.completion_time != b.completion_time) {
      os << "flow " << i << " completion: " << a.completion_time << " vs "
         << b.completion_time;
      return fail();
    }
    if (a.path.links != b.path.links) {
      os << "flow " << i << " committed path differs";
      return fail();
    }
    if (inc.sched->slices(a.id()) != full.sched->slices(b.id())) {
      os << "flow " << i << " slices: " << inc.sched->slices(a.id()) << " vs "
         << full.sched->slices(b.id());
      return fail();
    }
  }
  const std::size_t links = inc.net->graph().link_count();
  for (topo::LinkId l = 0; l < static_cast<topo::LinkId>(links); ++l) {
    if (inc.sched->occupancy().link(l) != full.sched->occupancy().link(l)) {
      os << "occupancy on link " << l << ": " << inc.sched->occupancy().link(l) << " vs "
         << full.sched->occupancy().link(l);
      return fail();
    }
  }
  const TapsCounters& ca = inc.sched->counters();
  const TapsCounters& cb = full.sched->counters();
  if (ca.tasks_accepted != cb.tasks_accepted || ca.tasks_rejected != cb.tasks_rejected ||
      ca.tasks_preempted != cb.tasks_preempted || ca.replans != cb.replans ||
      ca.replan_reverts != cb.replan_reverts) {
    os << "decision counters differ: accepted " << ca.tasks_accepted << "/"
       << cb.tasks_accepted << " rejected " << ca.tasks_rejected << "/" << cb.tasks_rejected
       << " preempted " << ca.tasks_preempted << "/" << cb.tasks_preempted << " replans "
       << ca.replans << "/" << cb.replans << " reverts " << ca.replan_reverts << "/"
       << cb.replan_reverts;
    return fail();
  }
  return std::nullopt;
}

TAPS_PROP(TapsIncrementalProp, BitIdenticalToFullReplan, 150) {
  prop.for_all(gen_scenario, [](const std::vector<TaskGen>& tasks) {
    const ScenarioRun inc = run_scenario(tasks, /*incremental=*/true);
    const ScenarioRun full = run_scenario(tasks, /*incremental=*/false);
    return compare_runs(inc, full);
  });
}

TEST(TapsIncrementalProp, ReuseActuallyHappensInAggregate) {
  // Guard against the reuse machinery silently degenerating into "restart
  // every session": across a batch of random scenarios (each containing
  // same-instant cascades) prefix reuse must fire, and must save real
  // planning work relative to the full-replan oracle.
  util::Rng rng(0xC0FFEE);
  std::size_t reused = 0;
  std::size_t planned_inc = 0;
  std::size_t planned_full = 0;
  for (int i = 0; i < 25; ++i) {
    const std::vector<TaskGen> tasks = gen_scenario(rng);
    const ScenarioRun inc = run_scenario(tasks, /*incremental=*/true);
    const ScenarioRun full = run_scenario(tasks, /*incremental=*/false);
    reused += inc.sched->counters().cross_arrival_reuse_flows +
              inc.sched->counters().checkpoint_reuse_flows;
    planned_inc += inc.sched->counters().flows_planned;
    planned_full += full.sched->counters().flows_planned;
  }
  EXPECT_GT(reused, 0u);
  EXPECT_LT(planned_inc, planned_full);
}

}  // namespace
}  // namespace taps::core
