#include "core/occupancy.hpp"

#include <gtest/gtest.h>

namespace taps::core {
namespace {

topo::Path path_of(std::initializer_list<topo::LinkId> ids) {
  topo::Path p;
  p.links = ids;
  return p;
}

util::IntervalSet slices(std::initializer_list<util::Interval> ivs) {
  util::IntervalSet s;
  for (const auto& iv : ivs) s.insert(iv);
  return s;
}

TEST(OccupancyMap, StartsEmpty) {
  const OccupancyMap occ(4);
  EXPECT_EQ(occ.link_count(), 4u);
  for (topo::LinkId l = 0; l < 4; ++l) EXPECT_TRUE(occ.link(l).empty());
}

TEST(OccupancyMap, OccupyMarksEveryLinkOnPath) {
  OccupancyMap occ(4);
  occ.occupy(path_of({0, 2}), slices({{1.0, 2.0}}));
  EXPECT_DOUBLE_EQ(occ.link(0).measure(), 1.0);
  EXPECT_TRUE(occ.link(1).empty());
  EXPECT_DOUBLE_EQ(occ.link(2).measure(), 1.0);
}

TEST(OccupancyMap, PathUnionMergesLinkSets) {
  OccupancyMap occ(3);
  occ.occupy(path_of({0}), slices({{0.0, 1.0}}));
  occ.occupy(path_of({1}), slices({{0.5, 2.0}}));
  const util::IntervalSet u = occ.path_union(path_of({0, 1}));
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u.intervals()[0], (util::Interval{0.0, 2.0}));
}

TEST(OccupancyMap, PathUnionOfIdleLinksIsEmpty) {
  OccupancyMap occ(3);
  EXPECT_TRUE(occ.path_union(path_of({0, 1, 2})).empty());
}

TEST(OccupancyMap, CollisionDetection) {
  OccupancyMap occ(3);
  occ.occupy(path_of({1}), slices({{1.0, 2.0}}));
  EXPECT_TRUE(occ.collides(path_of({0, 1}), slices({{1.5, 3.0}})));
  EXPECT_FALSE(occ.collides(path_of({0, 1}), slices({{2.0, 3.0}})));
  EXPECT_FALSE(occ.collides(path_of({0, 2}), slices({{1.0, 2.0}})));
}

TEST(OccupancyMap, DisjointSlicesNeverCollide) {
  OccupancyMap occ(2);
  occ.occupy(path_of({0, 1}), slices({{0.0, 1.0}, {2.0, 3.0}}));
  occ.occupy(path_of({0, 1}), slices({{1.0, 2.0}}));
  EXPECT_DOUBLE_EQ(occ.link(0).measure(), 3.0);
}

TEST(OccupancyMap, ClearResets) {
  OccupancyMap occ(2);
  occ.occupy(path_of({0, 1}), slices({{0.0, 5.0}}));
  occ.clear();
  EXPECT_TRUE(occ.link(0).empty());
  EXPECT_TRUE(occ.link(1).empty());
}

TEST(OccupancyMap, TrimBeforeDropsPast) {
  OccupancyMap occ(1);
  occ.occupy(path_of({0}), slices({{0.0, 2.0}, {3.0, 4.0}}));
  occ.trim_before(1.0);
  EXPECT_DOUBLE_EQ(occ.link(0).measure(), 2.0);
  EXPECT_FALSE(occ.link(0).contains(0.5));
}

}  // namespace
}  // namespace taps::core
