// Differential test: TAPS vs the exact optimal admission solver, on
// exhaustively enumerated small instances.
//
// Topology: the single-rooted tree of the paper's evaluation, reduced to its
// essence — every flow crosses the one root (bottleneck) link and otherwise
// uses private host links (distinct endpoints per flow), so preemptive EDF
// on that single link (core::optimal) is the exact feasibility oracle.
//
// Enumerated: ALL task sets of <= 3 tasks x <= 2 flows, flow durations in
// {1,2,3} transfer-time units, task deadlines in {2,4,6} — 4059 instances.
// For each one, TAPS runs under the strict invariant oracle and must satisfy:
//   (a) no admitted task ever fails (TAPS only admits what it can finish);
//   (b) the set of tasks TAPS completes is feasible, hence its size is
//       bounded by the exhaustive optimum (TAPS accepts a *subset* of what
//       optimal proves feasible);
//   (c) a task that is infeasible even in isolation is never completed.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/fixtures.hpp"
#include "core/optimal.hpp"
#include "core/taps_scheduler.hpp"
#include "sim/invariant_checker.hpp"

namespace taps::core {
namespace {

struct TaskVariant {
  std::vector<double> durations;  // 1 or 2 flows, unit-capacity transfer times
  double deadline = 0.0;
};

std::vector<TaskVariant> all_task_variants() {
  const std::vector<double> sizes{1.0, 2.0, 3.0};
  const std::vector<double> deadlines{2.0, 4.0, 6.0};
  std::vector<TaskVariant> variants;
  for (const double d : deadlines) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      variants.push_back(TaskVariant{{sizes[i]}, d});
      for (std::size_t j = i; j < sizes.size(); ++j) {
        variants.push_back(TaskVariant{{sizes[i], sizes[j]}, d});
      }
    }
  }
  return variants;  // 9 flow combos x 3 deadlines = 27
}

std::string describe(const std::vector<TaskVariant>& tasks) {
  std::ostringstream os;
  for (const TaskVariant& t : tasks) {
    os << "{d=" << t.deadline << " sizes=[";
    for (const double s : t.durations) os << s << " ";
    os << "]} ";
  }
  return os.str();
}

/// Run one instance under TAPS + strict oracle and check (a)-(c).
/// Returns false (with a recorded gtest failure) on the first divergence.
bool check_instance(const std::vector<TaskVariant>& tasks) {
  // 6 host pairs cover the at most 3x2 flows with globally distinct
  // endpoints, so the root link is the only shared resource.
  test::Dumbbell d = test::make_dumbbell(6);
  net::Network net(*d.topology);
  int next_host = 0;
  for (const TaskVariant& t : tasks) {
    std::vector<net::FlowSpec> flows;
    for (const double size : t.durations) {
      flows.push_back(test::flow(d.left[next_host], d.right[next_host], size));
      ++next_host;
    }
    test::add_task(net, 0.0, t.deadline, std::move(flows));
  }

  TapsScheduler scheduler;
  sim::InvariantConfig cfg;
  cfg.exclusive_links = true;
  sim::InvariantChecker oracle(net, cfg);
  sim::FluidSimulator simulator(net, scheduler);
  simulator.set_observer(&oracle);
  try {
    (void)simulator.run();
  } catch (const sim::InvariantViolation& e) {
    ADD_FAILURE() << "oracle violation on " << describe(tasks) << "\n" << e.what();
    return false;
  }

  // Exact reference on the shared bottleneck link.
  std::vector<SlTask> sl_tasks;
  for (const TaskVariant& t : tasks) {
    SlTask sl;
    for (const double size : t.durations) sl.flows.push_back(SlFlow{0.0, t.deadline, size});
    sl_tasks.push_back(std::move(sl));
  }
  const OptimalResult optimal = optimal_single_link(sl_tasks);

  std::size_t completed = 0;
  for (std::size_t i = 0; i < net.tasks().size(); ++i) {
    const net::Task& t = net.tasks()[i];
    // (a) all-or-nothing admission: an admitted task never fails.
    if (t.state == net::TaskState::kFailed) {
      ADD_FAILURE() << "TAPS admitted task " << i << " which then missed its deadline: "
                    << describe(tasks);
      return false;
    }
    if (t.state == net::TaskState::kCompleted) ++completed;
    // (c) a task infeasible in isolation must never complete.
    if (t.state == net::TaskState::kCompleted && !edf_feasible(sl_tasks[i].flows)) {
      ADD_FAILURE() << "TAPS completed task " << i
                    << " which is infeasible even alone: " << describe(tasks);
      return false;
    }
  }
  // (b) the heuristic never beats the exhaustive optimum.
  if (completed > optimal.tasks_completed) {
    ADD_FAILURE() << "TAPS completed " << completed << " tasks but optimal proves only "
                  << optimal.tasks_completed << " feasible: " << describe(tasks);
    return false;
  }
  return true;
}

TEST(TapsVsOptimal, ExhaustiveSmallInstances) {
  const std::vector<TaskVariant> variants = all_task_variants();
  const std::size_t n = variants.size();
  ASSERT_EQ(n, 27u);

  std::size_t instances = 0;
  std::size_t nontrivial = 0;  // instances where optimal rejects something
  // All multisets of 1..3 variants (order is irrelevant: same arrival time).
  for (std::size_t i = 0; i < n; ++i) {
    if (!check_instance({variants[i]})) return;
    ++instances;
    for (std::size_t j = i; j < n; ++j) {
      if (!check_instance({variants[i], variants[j]})) return;
      ++instances;
      for (std::size_t k = j; k < n; ++k) {
        const std::vector<TaskVariant> set{variants[i], variants[j], variants[k]};
        if (!check_instance(set)) return;
        ++instances;
        std::vector<SlTask> sl;
        for (const TaskVariant& t : set) {
          SlTask s;
          for (const double size : t.durations) s.flows.push_back(SlFlow{0.0, t.deadline, size});
          sl.push_back(std::move(s));
        }
        if (optimal_single_link(sl).tasks_completed < 3) ++nontrivial;
      }
    }
  }
  EXPECT_EQ(instances, 27u + 378u + 3654u);
  // The enumeration must exercise contention, not just trivially feasible
  // sets (sanity check on the grid choice).
  EXPECT_GT(nontrivial, 1000u);
}

}  // namespace
}  // namespace taps::core
