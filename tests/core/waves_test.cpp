// Multi-wave tasks: the paper's dynamic Algorithm-1 setting where a task's
// flows arrive over time (sharing the task deadline). These tests exercise
// the wave plumbing end-to-end and — crucially — the reject rule's
// preemption branch, which is only reachable when a newcomer wave belongs to
// a task with more progress than the task it displaces.
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "sched/varys.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

net::TaskId add_wave_task(net::Network& net, double arrival, double deadline,
                          std::vector<net::FlowSpec> first_wave) {
  for (auto& f : first_wave) {
    f.arrival = arrival;
    f.deadline = deadline;
  }
  return net.add_task(arrival, deadline, first_wave);
}

TEST(Waves, ExtendTaskRegistersLaterFlows) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId tid =
      add_wave_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  net.extend_task(tid, 2.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 1.0)});

  ASSERT_EQ(net.task(tid).flow_count(), 2u);
  EXPECT_DOUBLE_EQ(net.flows()[1].spec.arrival, 2.0);
  EXPECT_DOUBLE_EQ(net.flows()[1].spec.deadline, 10.0);  // inherits the deadline
  EXPECT_EQ(net.flows()[1].task(), tid);
}

TEST(Waves, ExtendRejectedTaskMarksFlowsRejected) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId tid =
      add_wave_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  net.reject_task(tid);
  net.extend_task(tid, 2.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 1.0)});
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kRejected);
}

TEST(Waves, FairSharingTransmitsWavesAsTheyArrive) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId tid =
      add_wave_task(net, 0.0, 20.0, {flow(d.left[0], d.right[0], 2.0)});
  net.extend_task(tid, 5.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 2.0)});

  sched::FairSharing sched;
  (void)test::run(net, sched);
  // First wave finishes alone at t=2; second starts at its arrival t=5.
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 7.0, 1e-9);
  EXPECT_EQ(net.task(tid).state, net::TaskState::kCompleted);
}

TEST(Waves, TaskNotCompleteUntilAllWavesFinish) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId tid =
      add_wave_task(net, 0.0, 20.0, {flow(d.left[0], d.right[0], 1.0)});
  net.extend_task(tid, 8.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 1.0)});
  sched::FairSharing sched;
  sim::FluidSimulator simulator(net, sched);
  (void)simulator.run();
  EXPECT_EQ(net.task(tid).state, net::TaskState::kCompleted);
  EXPECT_GT(net.flows()[1].completion_time, net.flows()[0].completion_time);
}

TEST(Waves, TapsSchedulesLaterWaves) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId tid =
      add_wave_task(net, 0.0, 20.0, {flow(d.left[0], d.right[0], 2.0)});
  net.extend_task(tid, 3.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 2.0)});
  TapsScheduler sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.task(tid).state, net::TaskState::kCompleted);
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 5.0, 1e-9);
}

TEST(Waves, TapsRejectsWholeTaskWhenWaveCannotFit) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Wave 2 of t0 arrives so late that its flow cannot meet the deadline.
  const net::TaskId tid = add_wave_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 1.0)});
  net.extend_task(tid, 3.5, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 2.0)});
  TapsScheduler sched;
  (void)test::run(net, sched);
  // The task is rejected as a whole (task is the accept/reject unit); the
  // first wave's completed flow stays completed, the late wave never runs.
  EXPECT_EQ(net.task(tid).state, net::TaskState::kRejected);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kRejected);
  EXPECT_DOUBLE_EQ(net.flows()[1].bytes_sent, 0.0);
}

TEST(Waves, VarysRejectsWholeTaskWhenWaveDoesNotFit) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  const net::TaskId t0 = add_wave_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 1.0)});
  // Second wave demands r = 4/2 = 2 > capacity: impossible reservation.
  net.extend_task(t0, 2.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 4.0)});
  sched::Varys sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.task(t0).state, net::TaskState::kRejected);
}

// The paper's preemption branch, finally live: task A is half done when its
// second wave arrives; fresh task B holds the capacity the wave needs. The
// trial's only missing flows belong to B, and B's completion ratio (0) is
// strictly below A's (1/3 completed) -> B is preempted, A completes.
TEST(Waves, ProgressPreemptionDisplacesFresherTask) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Task A: first wave 1 unit at t=0, deadline 10.
  const net::TaskId a = add_wave_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  // Task B arrives at t=2 and fills the rest of the horizon: 7 units, d=10.
  add_task(net, 2.0, 10.0, {flow(d.left[1], d.right[1], 7.0)});
  // Task A's second wave: 2 flows x 3 units, deadline 10 — cannot fit while
  // B holds [3,10).
  net.extend_task(a, 3.0,
                  std::vector<net::FlowSpec>{flow(d.left[2], d.right[2], 3.0),
                                             flow(d.left[3], d.right[3], 3.0)});

  TapsScheduler sched;
  (void)test::run(net, sched);

  EXPECT_EQ(net.task(a).state, net::TaskState::kCompleted);
  EXPECT_EQ(net.task(1).state, net::TaskState::kRejected);  // B preempted
  EXPECT_EQ(sched.counters().tasks_preempted, 1u);
}

TEST(Waves, SchedulablePolicyPreemptsForFreshTasks) {
  // Under kSchedulable, a fully feasible newcomer (ratio 1) displaces a
  // doomed incumbent even with zero progress — the Varys-limitation fix in
  // its most aggressive reading.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 9.0)});  // incumbent hog
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 1.9)});   // urgent newcomer
  TapsConfig config;
  config.preempt_policy = PreemptPolicy::kSchedulable;
  TapsScheduler sched(config);
  (void)test::run(net, sched);

  EXPECT_EQ(net.task(1).state, net::TaskState::kCompleted);
  EXPECT_EQ(net.task(0).state, net::TaskState::kRejected);
  EXPECT_EQ(sched.counters().tasks_preempted, 1u);
}

TEST(Waves, ProgressPolicyKeepsIncumbentOnTie) {
  // Same scenario under the paper-literal policy: both ratios are 0, so the
  // newcomer is rejected and the incumbent finishes.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 9.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 1.9)});
  TapsScheduler sched;  // kProgress default
  (void)test::run(net, sched);

  EXPECT_EQ(net.task(0).state, net::TaskState::kCompleted);
  EXPECT_EQ(net.task(1).state, net::TaskState::kRejected);
  EXPECT_EQ(sched.counters().tasks_preempted, 0u);
}

TEST(Waves, GeneratorSplitsFlowsAcrossWaves) {
  const auto topo = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topo);
  workload::WorkloadConfig wc;
  wc.task_count = 10;
  wc.flows_per_task_mean = 9.0;
  wc.waves_per_task = 3;
  util::Rng rng(5);
  (void)workload::generate(net, wc, rng);

  std::size_t multi_arrival_tasks = 0;
  for (const auto& t : net.tasks()) {
    double first = -1.0;
    bool differs = false;
    for (const net::FlowId fid : t.spec.flows) {
      const auto& f = net.flow(fid);
      EXPECT_DOUBLE_EQ(f.spec.deadline, t.spec.deadline);
      EXPECT_GE(f.spec.arrival, t.spec.arrival);
      EXPECT_LT(f.spec.arrival, t.spec.deadline);
      if (first < 0.0) {
        first = f.spec.arrival;
      } else if (f.spec.arrival != first) {
        differs = true;
      }
    }
    if (differs) ++multi_arrival_tasks;
  }
  EXPECT_GT(multi_arrival_tasks, 0u);
}

TEST(Waves, AllSchedulersSurviveWavyWorkload) {
  const auto topo = workload::make_topology(workload::Scenario::single_rooted(false));
  for (const exp::SchedulerKind kind : exp::all_schedulers()) {
    net::Network net(*topo);
    workload::WorkloadConfig wc;
    wc.task_count = 12;
    wc.flows_per_task_mean = 8.0;
    wc.waves_per_task = 3;
    util::Rng rng(11);
    (void)workload::generate(net, wc, rng);
    const auto sched = exp::make_scheduler(kind, 16);
    sim::FluidSimulator simulator(net, *sched);
    (void)simulator.run();
    for (const auto& f : net.flows()) {
      EXPECT_TRUE(f.finished()) << exp::to_string(kind);
      EXPECT_NEAR(f.bytes_sent + f.remaining, f.spec.size, 1e-3) << exp::to_string(kind);
    }
  }
}

TEST(Waves, TapsAdmittedTasksStillNeverFailWithWaves) {
  const auto topo = workload::make_topology(workload::Scenario::single_rooted(false));
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    net::Network net(*topo);
    workload::WorkloadConfig wc;
    wc.task_count = 15;
    wc.flows_per_task_mean = 10.0;
    wc.waves_per_task = 2;
    util::Rng rng(seed);
    (void)workload::generate(net, wc, rng);
    TapsScheduler sched;
    sim::FluidSimulator simulator(net, sched);
    (void)simulator.run();
    for (const auto& t : net.tasks()) {
      EXPECT_NE(t.state, net::TaskState::kFailed) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace taps::core
