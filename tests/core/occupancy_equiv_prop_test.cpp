// Property: the hinted OccupancyMap fast paths agree exactly with the
// unoptimized reference scans on random mutate/query sequences.
//
// The replan optimization added three query shortcuts (per-link earliest-free
// hints, path_union_from, the fused allocate_time) while keeping the plain
// scans (path_union + IntervalSet search, allocate_time_reference) in-tree as
// references. These properties pin the equivalence on random instances —
// including interleaved mutations, which are exactly what invalidates hints.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.hpp"
#include "core/occupancy.hpp"
#include "core/time_allocation.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace taps::core {
namespace {

constexpr std::size_t kLinks = 6;

struct Op {
  enum Kind : int {
    kOccupy,         // add a random busy window on a random link
    kTrim,           // trim_before a random time on the whole map
    kClear,          // clear the whole map
    kQueryIndex,     // first_index_after: hinted vs IntervalSet binary search
    kQueryUnion,     // path_union_from vs filtered path_union
    kQueryAllocate,  // fused allocate_time vs allocate_time_reference
    kQueryCollides,  // collides on a random probe set
  };
  Kind kind = kOccupy;
  int link = 0;
  double a = 0.0;
  double b = 0.0;

  friend std::ostream& operator<<(std::ostream& os, const Op& op) {
    static const char* names[] = {"occupy",      "trim",        "clear",   "query_index",
                                  "query_union", "query_alloc", "collides"};
    return os << names[op.kind] << "(link=" << op.link << ", a=" << op.a << ", b=" << op.b
              << ")";
  }
};

std::vector<Op> generate_ops(util::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 60));
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    // Mutations and queries interleave ~1:2 so hints get exercised both
    // warm (repeated queries) and freshly invalidated (query after occupy).
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 2) {
      op.kind = Op::kOccupy;
    } else if (roll == 2) {
      op.kind = Op::kTrim;
    } else if (roll == 3) {
      op.kind = Op::kClear;
    } else {
      op.kind = static_cast<Op::Kind>(Op::kQueryIndex + (roll - 4) % 4);
    }
    op.link = static_cast<int>(rng.uniform_int(0, kLinks - 1));
    op.a = rng.uniform_real(0.0, 40.0);
    op.b = op.a + rng.uniform_real(0.05, 6.0);
    ops.push_back(op);
  }
  return ops;
}

/// A path over a prefix of the links, seeded off the op so different ops
/// exercise different subsets (including the single-link case).
topo::Path path_for(const Op& op) {
  topo::Path p;
  const int hops = 1 + op.link % static_cast<int>(kLinks);
  for (int l = 0; l < hops; ++l) p.links.push_back(static_cast<topo::LinkId>(l));
  return p;
}

// Deterministic per-op horizon spread in [1, 9]: tight horizons exercise the
// infeasible path, loose ones the early-exit path. Derived from the op so
// shrinking keeps cases reproducible.
double horizon_spread(const Op& op) {
  return 1.0 + 8.0 * (op.a - static_cast<double>(static_cast<int>(op.a)));
}

std::optional<std::string> check(const std::vector<Op>& ops) {
  OccupancyMap occ(kLinks);
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kOccupy: {
        // occupy() asserts slices don't collide: pre-filter with collides()
        // (itself cross-checked below) and skip colliding windows.
        topo::Path one;
        one.links.push_back(static_cast<topo::LinkId>(op.link));
        util::IntervalSet slices;
        slices.insert(op.a, op.b);
        if (!occ.collides(one, slices)) occ.occupy(one, slices);
        break;
      }
      case Op::kTrim:
        occ.trim_before(op.a);
        break;
      case Op::kClear:
        occ.clear();
        break;

      case Op::kQueryIndex: {
        const auto lid = static_cast<topo::LinkId>(op.link);
        const std::size_t hinted = occ.first_index_after(lid, op.a);
        const std::size_t plain = occ.link(lid).first_index_after(op.a);
        if (hinted != plain) {
          std::ostringstream os;
          os << "first_index_after(link=" << op.link << ", from=" << op.a << "): hinted "
             << hinted << " != reference " << plain;
          return os.str();
        }
        // Ask again at an earlier time: forces the hint-miss path.
        const double earlier = op.a / 2.0;
        if (occ.first_index_after(lid, earlier) != occ.link(lid).first_index_after(earlier)) {
          return "first_index_after mismatch on backward re-query";
        }
        break;
      }

      case Op::kQueryUnion: {
        const topo::Path p = path_for(op);
        const util::IntervalSet fast = occ.path_union_from(p, op.a);
        // Contract: identical to the full union from `a` onward (below `a`
        // the two may differ — see the path_union_from header comment).
        util::IntervalSet window;
        window.insert(op.a, 1e9);
        const util::IntervalSet got = fast.intersect(window);
        const util::IntervalSet expect = occ.path_union(p).intersect(window);
        if (!(got == expect)) {
          std::ostringstream os;
          os << "path_union_from(from=" << op.a << "): " << got << " != " << expect
             << " on [from, inf)";
          return os.str();
        }
        if (!fast.check_invariants()) return "path_union_from broke canonical form";
        break;
      }

      case Op::kQueryAllocate: {
        const topo::Path p = path_for(op);
        const double duration = op.b - op.a;
        const double horizon = op.a + duration * horizon_spread(op);
        const TimeAllocation fast = allocate_time(occ, p, op.a, duration, horizon);
        const TimeAllocation ref = allocate_time_reference(occ, p, op.a, duration, horizon);
        if (fast.feasible() != ref.feasible() || !(fast.slices == ref.slices) ||
            fast.completion != ref.completion) {
          std::ostringstream os;
          os << "allocate_time(from=" << op.a << ", dur=" << duration
             << ", horizon=" << horizon << "): fused {" << fast.slices
             << ", completion=" << fast.completion << "} != reference {" << ref.slices
             << ", completion=" << ref.completion << "}";
          return os.str();
        }
        if (fast.feasible() && !fast.slices.check_invariants()) {
          return "fused allocate_time broke canonical form";
        }
        if (ref.feasible()) {
          // Branch-and-bound contract: a bound above the true completion
          // must not change the result; a bound at (or below) it must abort.
          const TimeAllocation loose =
              allocate_time(occ, p, op.a, duration, horizon, ref.completion + 1.0);
          if (!(loose.slices == ref.slices)) {
            return "bounded allocate_time diverged under a loose bound";
          }
          const TimeAllocation tight =
              allocate_time(occ, p, op.a, duration, horizon, ref.completion);
          if (tight.feasible()) {
            return "bounded allocate_time returned a completion at/past its bound";
          }
          // single_link_completion is a lower bound on any path through the
          // link (tolerance: its prefix-summation rounding, well under the
          // kLbSlack plan_one_flow prunes with).
          for (const topo::LinkId lid : p.links) {
            const double lb = occ.single_link_completion(lid, op.a, duration);
            if (lb > ref.completion + 1e-9) {
              std::ostringstream os;
              os << "single_link_completion(link=" << lid << ") = " << lb
                 << " exceeds the path completion " << ref.completion;
              return os.str();
            }
          }
        }
        // On a single-link path with no horizon pressure, the lower bound is
        // the exact completion (same math as the reference, summed prefix-
        // style) — pin it against the reference allocator.
        topo::Path one;
        one.links.push_back(static_cast<topo::LinkId>(op.link));
        const double lb1 = occ.single_link_completion(
            static_cast<topo::LinkId>(op.link), op.a, duration);
        const TimeAllocation ref1 = allocate_time_reference(occ, one, op.a, duration, 1e12);
        if (!ref1.feasible() || lb1 < ref1.completion - 1e-9 || lb1 > ref1.completion + 1e-9) {
          std::ostringstream os;
          os << "single_link_completion(link=" << op.link << ", from=" << op.a
             << ", need=" << duration << ") = " << lb1 << " != single-link reference "
             << ref1.completion;
          return os.str();
        }
        break;
      }

      case Op::kQueryCollides: {
        const topo::Path p = path_for(op);
        util::IntervalSet probe;
        probe.insert(op.a, op.b);
        probe.insert(op.b + 1.0, op.b + 1.5);
        bool expect = false;
        for (const topo::LinkId lid : p.links) {
          for (const auto& iv : probe.intervals()) {
            if (occ.link(lid).intersects(iv.lo, iv.hi)) expect = true;
          }
        }
        if (occ.collides(p, probe) != expect) return "collides mismatch";
        break;
      }
    }
  }
  return std::nullopt;
}

TAPS_PROP(OccupancyEquivProp, HintedQueriesMatchReferenceScans, 400) {
  prop.for_all(generate_ops, check);
}

}  // namespace
}  // namespace taps::core
