// The defining TAPS data-plane invariant (paper Sec. IV): "there is at most
// one flow on transmission on each link at any time". Verified on the actual
// transmission segments of full simulations — not just on planned slices —
// by recording every (flow, interval) a simulation produces and checking
// per-link disjointness.
#include <gtest/gtest.h>

#include <map>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "workload/task_generator.hpp"

namespace taps::core {
namespace {

/// Records per-link transmission intervals and reports overlaps.
class ExclusiveUseChecker final : public sim::TransmitObserver {
 public:
  void on_transmit(const net::Flow& f, double t0, double t1, double bytes) override {
    if (bytes <= 0.0) return;
    for (const topo::LinkId lid : f.path.links) {
      auto& occupied = per_link_[lid];
      if (occupied.intersects(t0 + kSlack, t1 - kSlack)) ++violations_;
      occupied.insert(t0, t1);
    }
  }

  [[nodiscard]] std::size_t violations() const { return violations_; }
  [[nodiscard]] std::size_t links_used() const { return per_link_.size(); }

 private:
  // Adjacent slices of consecutive flows legitimately touch at endpoints;
  // only interior overlap is a violation.
  static constexpr double kSlack = 1e-9;
  std::map<topo::LinkId, util::IntervalSet> per_link_;
  std::size_t violations_ = 0;
};

class ExclusiveUse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExclusiveUse, HoldsOnSingleRootedWorkload) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 20;
  wc.flows_per_task_mean = 12.0;
  util::Rng rng(GetParam());
  (void)workload::generate(net, wc, rng);

  TapsScheduler sched;
  ExclusiveUseChecker checker;
  sim::FluidSimulator simulator(net, sched);
  simulator.set_observer(&checker);
  (void)simulator.run();

  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_GT(checker.links_used(), 0u);
}

TEST_P(ExclusiveUse, HoldsOnFatTreeMultipath) {
  const auto topology = workload::make_topology(workload::Scenario::fat_tree(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 10;
  wc.flows_per_task_mean = 24.0;
  wc.arrival_rate = 1000.0;
  util::Rng rng(GetParam() + 100);
  (void)workload::generate(net, wc, rng);

  TapsScheduler sched;
  ExclusiveUseChecker checker;
  sim::FluidSimulator simulator(net, sched);
  simulator.set_observer(&checker);
  (void)simulator.run();

  EXPECT_EQ(checker.violations(), 0u);
}

TEST_P(ExclusiveUse, HoldsWithMultiWaveTasks) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 15;
  wc.flows_per_task_mean = 10.0;
  wc.waves_per_task = 3;
  util::Rng rng(GetParam() + 200);
  (void)workload::generate(net, wc, rng);

  TapsScheduler sched;
  ExclusiveUseChecker checker;
  sim::FluidSimulator simulator(net, sched);
  simulator.set_observer(&checker);
  (void)simulator.run();

  EXPECT_EQ(checker.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExclusiveUse, ::testing::Values(1u, 7u, 42u, 1337u));

// Sanity check of the checker itself: Fair Sharing multiplexes links, so it
// must report overlaps (otherwise the invariant tests above prove nothing).
TEST(ExclusiveUseChecker, DetectsFairSharingMultiplexing) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 20;
  wc.flows_per_task_mean = 12.0;
  util::Rng rng(42);
  (void)workload::generate(net, wc, rng);

  const auto sched = exp::make_scheduler(exp::SchedulerKind::kFairSharing, 16);
  ExclusiveUseChecker checker;
  sim::FluidSimulator simulator(net, *sched);
  simulator.set_observer(&checker);
  (void)simulator.run();

  EXPECT_GT(checker.violations(), 0u);
}

}  // namespace
}  // namespace taps::core
