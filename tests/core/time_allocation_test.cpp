#include "core/time_allocation.hpp"

#include <gtest/gtest.h>

namespace taps::core {
namespace {

topo::Path path_of(std::initializer_list<topo::LinkId> ids) {
  topo::Path p;
  p.links = ids;
  return p;
}

TEST(TimeAllocation, IdlePathStartsImmediately) {
  const OccupancyMap occ(3);
  const TimeAllocation a = allocate_time(occ, path_of({0, 1}), 1.0, 2.0, 10.0);
  ASSERT_TRUE(a.feasible());
  EXPECT_DOUBLE_EQ(a.completion, 3.0);
  ASSERT_EQ(a.slices.size(), 1u);
  EXPECT_EQ(a.slices.intervals()[0], (util::Interval{1.0, 3.0}));
}

TEST(TimeAllocation, AvoidsBusyTimeOnAnyLink) {
  OccupancyMap occ(3);
  // Link 0 busy [0,1), link 1 busy [2,3): union blocks both windows.
  {
    util::IntervalSet s;
    s.insert(0.0, 1.0);
    topo::Path p0;
    p0.links = {0};
    occ.occupy(p0, s);
  }
  {
    util::IntervalSet s;
    s.insert(2.0, 3.0);
    topo::Path p1;
    p1.links = {1};
    occ.occupy(p1, s);
  }
  const TimeAllocation a = allocate_time(occ, path_of({0, 1}), 0.0, 2.0, 10.0);
  ASSERT_TRUE(a.feasible());
  ASSERT_EQ(a.slices.size(), 2u);
  EXPECT_EQ(a.slices.intervals()[0], (util::Interval{1.0, 2.0}));
  EXPECT_EQ(a.slices.intervals()[1], (util::Interval{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.completion, 4.0);
}

TEST(TimeAllocation, InfeasibleBeforeHorizon) {
  OccupancyMap occ(1);
  util::IntervalSet s;
  s.insert(0.0, 3.0);
  topo::Path p0;
  p0.links = {0};
  occ.occupy(p0, s);
  // Deadline 4 leaves one idle unit; two units cannot fit.
  const TimeAllocation a = allocate_time(occ, path_of({0}), 0.0, 2.0, 4.0);
  EXPECT_FALSE(a.feasible());
}

TEST(TimeAllocation, ExactFitAtHorizon) {
  OccupancyMap occ(1);
  const TimeAllocation a = allocate_time(occ, path_of({0}), 0.0, 4.0, 4.0);
  ASSERT_TRUE(a.feasible());
  EXPECT_DOUBLE_EQ(a.completion, 4.0);
}

TEST(TimeAllocation, ZeroDurationInfeasible) {
  const OccupancyMap occ(1);
  EXPECT_FALSE(allocate_time(occ, path_of({0}), 0.0, 0.0, 10.0).feasible());
}

TEST(TimeAllocation, HorizonBeforeNowInfeasible) {
  const OccupancyMap occ(1);
  EXPECT_FALSE(allocate_time(occ, path_of({0}), 5.0, 1.0, 4.0).feasible());
}

}  // namespace
}  // namespace taps::core
